"""Serialisation of plans and evaluations to JSON.

A marching result carries numpy arrays and nested dataclasses; this
module flattens the durable parts (positions, targets, per-robot
paths, metric scalars) into a plain-JSON document so downstream
analysis does not need the library - and a round-trip loader so it can
have the trajectory back when it does.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ReproError
from repro.marching.result import MarchingResult, RepairInfo
from repro.network.links import LinkTable
from repro.robots.motion import SwarmTrajectory, TimedPath

__all__ = [
    "FORMAT_VERSION",
    "SUPPORTED_FORMAT_VERSIONS",
    "result_to_dict",
    "save_result",
    "load_result_dict",
    "trajectory_from_dict",
    "canonical_digest",
    "check_format_version",
    "dumps_canonical",
    "evaluation_to_dict",
    "evaluation_from_dict",
    "scenario_run_to_dict",
    "scenario_run_from_dict",
    "plan_document",
    "mission_document",
    "JOURNAL_FORMAT_VERSION",
    "SUPPORTED_JOURNAL_VERSIONS",
    "journal_record",
    "check_journal_version",
]

FORMAT_VERSION = 1

#: every document version this build of the library can read back.
SUPPORTED_FORMAT_VERSIONS = (1,)

#: format version stamped on every write-ahead journal record.
JOURNAL_FORMAT_VERSION = 1

#: every journal record version this build can replay.
SUPPORTED_JOURNAL_VERSIONS = (1,)


def check_format_version(data: Any, source: Any = None) -> None:
    """Reject documents whose ``format_version`` this build cannot read.

    The planning service ships these documents over the wire, so an
    old client meeting a new document (or vice versa) must fail loudly
    rather than half-parse.
    """
    version = data.get("format_version") if isinstance(data, dict) else None
    if version not in SUPPORTED_FORMAT_VERSIONS:
        where = f" in {source}" if source is not None else ""
        raise ReproError(
            f"unsupported result format_version {version!r}{where}; this "
            f"build reads versions {list(SUPPORTED_FORMAT_VERSIONS)} - "
            "regenerate the document with this library's save_result / "
            "service, or upgrade the library"
        )


def journal_record(rtype: str, **fields: Any) -> dict[str, Any]:
    """A versioned write-ahead journal record.

    Every record the service journal appends goes through here so the
    on-disk format has exactly one author: a flat JSON object carrying
    ``journal_version`` and ``type`` plus the caller's fields, always
    serialised with :func:`dumps_canonical`.
    """
    record = {"journal_version": JOURNAL_FORMAT_VERSION, "type": str(rtype)}
    record.update(fields)
    return record


def check_journal_version(record: Any, source: Any = None) -> None:
    """Reject journal records this build cannot replay.

    Recovery correctness depends on interpreting every surviving record;
    a version this build does not know must stop the replay loudly
    rather than silently dropping state transitions.
    """
    from repro.errors import JournalError

    version = record.get("journal_version") if isinstance(record, dict) else None
    if version not in SUPPORTED_JOURNAL_VERSIONS:
        where = f" in {source}" if source is not None else ""
        raise JournalError(
            f"unsupported journal_version {version!r}{where}; this build "
            f"replays versions {list(SUPPORTED_JOURNAL_VERSIONS)} - recover "
            "with a matching library build or discard the journal directory"
        )


def dumps_canonical(doc: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, minimal separators, UTF-8.

    The one serialisation used for documents whose bytes are compared
    or content-addressed (service result payloads, byte-identity
    tests): two equal documents always produce identical bytes.
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")


def canonical_digest(doc: Any) -> str:
    """Hex SHA-256 of a document's canonical bytes.

    A compact fingerprint for byte-identity comparisons across runs
    and processes (the load generator reports one per summary so CI
    can assert reproducibility without shipping whole documents).
    """
    import hashlib

    return hashlib.sha256(dumps_canonical(doc)).hexdigest()


def _trajectory_to_dict(trajectory: SwarmTrajectory) -> dict[str, Any]:
    return {
        "t_start": trajectory.t_start,
        "t_end": trajectory.t_end,
        "paths": [
            {
                "waypoints": p.waypoints.tolist(),
                "times": p.times.tolist(),
            }
            for p in trajectory.paths
        ],
    }


def trajectory_from_dict(data: dict[str, Any]) -> SwarmTrajectory:
    """Rebuild a :class:`SwarmTrajectory` from its JSON form."""
    try:
        paths = [
            TimedPath(np.asarray(p["waypoints"], dtype=float),
                      np.asarray(p["times"], dtype=float))
            for p in data["paths"]
        ]
        return SwarmTrajectory(paths, float(data["t_start"]), float(data["t_end"]))
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed trajectory document: {exc}") from exc


def result_to_dict(result: MarchingResult) -> dict[str, Any]:
    """Flatten a :class:`MarchingResult` into a JSON-serialisable dict.

    Stage artifacts (meshes, disk maps) are intentionally dropped; they
    are reproducible from the inputs and not part of the durable record.
    """
    return {
        "format_version": FORMAT_VERSION,
        "method": result.method,
        "rotation_angle": result.rotation_angle,
        "rotation_evaluations": result.rotation_evaluations,
        "lloyd_iterations": result.lloyd_iterations,
        "boundary_anchors": list(result.boundary_anchors),
        "start_positions": result.start_positions.tolist(),
        "march_targets": result.march_targets.tolist(),
        "final_positions": result.final_positions.tolist(),
        "links": result.links.links.tolist(),
        "comm_range": result.links.comm_range,
        "repair": {
            "escorted": list(result.repair.escorted),
            "references": {str(k): v for k, v in result.repair.references.items()},
            "rounds": result.repair.rounds,
            "isolated_before": result.repair.isolated_before,
        },
        "trajectory": _trajectory_to_dict(result.trajectory),
    }


def save_result(result: MarchingResult, path) -> Path:
    """Write a result as pretty-printed JSON; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(result_to_dict(result), indent=2))
    return p


def load_result_dict(path) -> dict[str, Any]:
    """Load a saved result document and restore the heavyweight fields.

    Returns a dict with numpy arrays for the position fields, a
    :class:`LinkTable`, a :class:`SwarmTrajectory`, and a
    :class:`RepairInfo` - everything the metrics functions need.

    Raises
    ------
    ReproError
        On version mismatch or malformed content.
    """
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read result file {path}: {exc}") from exc
    check_format_version(data, source=path)
    out = dict(data)
    for key in ("start_positions", "march_targets", "final_positions"):
        out[key] = np.asarray(data[key], dtype=float)
    out["links"] = LinkTable(
        links=np.asarray(data["links"], dtype=int).reshape(-1, 2),
        comm_range=float(data["comm_range"]),
    )
    out["trajectory"] = trajectory_from_dict(data["trajectory"])
    rep = data["repair"]
    out["repair"] = RepairInfo(
        escorted=tuple(rep["escorted"]),
        references={int(k): int(v) for k, v in rep["references"].items()},
        rounds=int(rep["rounds"]),
        isolated_before=int(rep["isolated_before"]),
    )
    return out


# ----------------------------------------------------------------------
# Harness evaluations (what the planning service returns over the wire)


def evaluation_to_dict(evaluation) -> dict[str, Any]:
    """Flatten a :class:`~repro.experiments.TransitionEvaluation`."""
    return {
        "method": evaluation.method,
        "total_distance": evaluation.total_distance,
        "stable_link_ratio": evaluation.stable_link_ratio,
        "globally_connected": evaluation.globally_connected,
        "max_isolated": evaluation.max_isolated,
        "final_positions": evaluation.final_positions.tolist(),
    }


def evaluation_from_dict(data: dict[str, Any]):
    """Rebuild a :class:`~repro.experiments.TransitionEvaluation`."""
    from repro.experiments.harness import TransitionEvaluation

    try:
        return TransitionEvaluation(
            method=str(data["method"]),
            total_distance=float(data["total_distance"]),
            stable_link_ratio=float(data["stable_link_ratio"]),
            globally_connected=bool(data["globally_connected"]),
            max_isolated=int(data["max_isolated"]),
            final_positions=np.asarray(data["final_positions"], dtype=float),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed evaluation document: {exc}") from exc


def scenario_run_to_dict(run) -> dict[str, Any]:
    """Flatten a :class:`~repro.experiments.ScenarioRun` (one fragment of
    a :func:`plan_document`; carries no ``format_version`` of its own)."""
    return {
        "scenario_id": run.scenario_id,
        "separation_factor": run.separation_factor,
        "evaluations": {
            method: evaluation_to_dict(e) for method, e in run.evaluations.items()
        },
    }


def scenario_run_from_dict(data: dict[str, Any]):
    """Rebuild a :class:`~repro.experiments.ScenarioRun`."""
    from repro.experiments.harness import ScenarioRun

    try:
        return ScenarioRun(
            scenario_id=int(data["scenario_id"]),
            separation_factor=float(data["separation_factor"]),
            evaluations={
                method: evaluation_from_dict(payload)
                for method, payload in data["evaluations"].items()
            },
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed scenario run document: {exc}") from exc


def plan_document(runs: dict[int, Any]) -> dict[str, Any]:
    """The versioned wire document for a batch of scenario runs.

    ``runs`` is the ``{scenario_id: ScenarioRun}`` mapping returned by
    :func:`repro.experiments.run_scenarios`; serialise the document
    with :func:`dumps_canonical` when bytes must be comparable.
    """
    return {
        "format_version": FORMAT_VERSION,
        "kind": "plan_batch",
        "runs": {str(sid): scenario_run_to_dict(run) for sid, run in runs.items()},
    }


def mission_document(
    spec: dict[str, Any],
    config: dict[str, Any],
    faults: dict[str, Any] | None,
    epochs: list[dict[str, Any]],
    summary: dict[str, Any],
) -> dict[str, Any]:
    """The versioned wire document for one completed mission.

    Every field is deterministic (no wall-clock content), so the
    document is byte-stable under :func:`dumps_canonical` across
    processes, worker counts, and service shards - the property the
    mission byte-identity contract rests on.
    """
    return {
        "format_version": FORMAT_VERSION,
        "kind": "mission",
        "spec": spec,
        "config": config,
        "faults": faults,
        "epochs": list(epochs),
        "summary": summary,
    }
