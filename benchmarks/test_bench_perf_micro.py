"""Micro-benchmarks of the performance-critical kernels.

These are conventional pytest-benchmark timings (multiple rounds) for
the kernels the experiment harness leans on: the Hungarian assignment
at the paper's problem size (144 robots), the sparse harmonic solve,
the unit-disk graph build, and one Lloyd iteration.
"""

import numpy as np
import pytest

from repro.baselines import solve_assignment
from repro.coverage.lloyd import lloyd_iteration
from repro.foi import m1_base
from repro.geometry import pairwise_distances
from repro.harmonic import boundary_parameterization, circle_positions
from repro.harmonic.solvers import solve_linear
from repro.mesh import triangulate_foi
from repro.network import UnitDiskGraph


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(7)


def test_perf_hungarian_144(benchmark, rng):
    p = rng.uniform(0, 1000, (144, 2))
    q = rng.uniform(0, 1000, (144, 2))
    cost = pairwise_distances(p, q)
    result = benchmark(solve_assignment, cost)
    assert sorted(result.tolist()) == list(range(144))


def test_perf_harmonic_solve(benchmark):
    mesh = triangulate_foi(m1_base(), target_points=600).mesh
    loop, angles = boundary_parameterization(mesh)
    bpos = circle_positions(angles)
    out = benchmark(solve_linear, mesh, loop, bpos)
    assert np.hypot(out[:, 0], out[:, 1]).max() <= 1.0 + 1e-9


def test_perf_udg_build(benchmark, rng):
    pts = rng.uniform(0, 2000, (144, 2))

    def build():
        return UnitDiskGraph(pts, 80.0).edges

    edges = benchmark(build)
    assert edges.ndim == 2


def test_perf_lloyd_iteration(benchmark, rng):
    foi = m1_base()
    grid = foi.grid_points(np.sqrt(foi.area / 2000))
    weights = np.ones(len(grid))
    sites = foi.sample_free_points(144, rng)
    out = benchmark(lloyd_iteration, sites, foi, grid, weights)
    assert out.shape == (144, 2)


def test_perf_disabled_span_overhead(benchmark):
    """A thousand ambient no-op spans: the cost instrumentation adds to
    hot paths when no tracer is activated (must stay negligible)."""
    from repro.obs import get_tracer, span

    assert not get_tracer().enabled

    def enter_spans():
        for _ in range(1000):
            with span("bench.noop"):
                pass

    benchmark(enter_spans)
