"""Harmonic (Tutte) interior solvers: iterative and sparse-linear.

With the boundary pinned to a convex curve and every interior vertex
placed at the average of its neighbours, the resulting piecewise-linear
map is the discrete harmonic map with uniform spring weights.  Tutte's
theorem guarantees it is an embedding (a diffeomorphism in the paper's
language) for a triangulated disk with convex boundary.

Two solvers compute the same fixed point:

* :func:`solve_iterative` - repeated neighbour averaging, exactly the
  paper's distributed computation ("at each step, an inner vertex
  computes its position as the average of the positions of its
  neighboring vertices").
* :func:`solve_linear` - the sparse Laplacian system solved directly;
  orders of magnitude faster and used as the default engine.

:func:`solve_linear` reuses sparse LU factorizations across calls: the
CSC Laplacian is content-addressed (:func:`repro.exec.stable_hash` of
its structure and values) and the ``spla.factorized`` solve closure is
kept in a small process-wide LRU, so the rotation search's repeated
harmonic evaluations - and any multi-RHS solve - factorize an unchanged
matrix exactly once.  ``scipy.sparse.linalg.spsolve`` solves dense
multi-column systems through the very same factorization path, so warm
results are byte-identical to cold ``spsolve`` results (a regression
test pins this).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import MappingError
from repro.mesh.trimesh import TriMesh
from repro.obs import get_metrics, span

__all__ = [
    "solve_linear",
    "solve_iterative",
    "harmonic_energy",
    "clear_factorization_cache",
]

# Process-wide LRU of LU factorizations keyed by the CSC matrix's
# content hash.  A handful of distinct Laplacians are live at any time
# (swarm mesh + target mesh per planning problem), so a small capacity
# suffices; the SuperLU objects it holds are the expensive part of a
# solve and are pure functions of the matrix.
FACTORIZATION_CACHE_CAPACITY = 16
_factor_cache: "OrderedDict[str, Callable[[np.ndarray], np.ndarray]]" = OrderedDict()
_factor_lock = threading.Lock()


def clear_factorization_cache() -> None:
    """Drop all cached LU factorizations (tests / memory pressure)."""
    with _factor_lock:
        _factor_cache.clear()


def _laplacian_key(mat: sp.csc_matrix) -> str:
    from repro.exec.cache import stable_hash

    return stable_hash(
        "tutte-laplacian",
        int(mat.shape[0]),
        mat.indptr.astype(np.int64),
        mat.indices.astype(np.int64),
        np.asarray(mat.data, dtype=float),
    )


def _factorized_solver(mat: sp.csc_matrix) -> tuple[Callable, str]:
    """LU solve closure for ``mat``, reused across equal-content calls."""
    key = _laplacian_key(mat)
    with _factor_lock:
        solver = _factor_cache.get(key)
        if solver is not None:
            _factor_cache.move_to_end(key)
    if solver is not None:
        get_metrics().counter("cache.harmonic_factorization.hits").inc()
        return solver, "hit"
    solver = spla.factorized(mat)
    get_metrics().counter("cache.harmonic_factorization.misses").inc()
    with _factor_lock:
        _factor_cache[key] = solver
        _factor_cache.move_to_end(key)
        while len(_factor_cache) > FACTORIZATION_CACHE_CAPACITY:
            _factor_cache.popitem(last=False)
    return solver, "miss"


def _split_vertices(
    mesh: TriMesh, boundary: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Interior and boundary index arrays; validates the boundary set."""
    b = np.asarray(boundary, dtype=int)
    if len(b) == 0:
        raise MappingError("harmonic solve needs pinned boundary vertices")
    if len(np.unique(b)) != len(b):
        raise MappingError("boundary vertex list contains duplicates")
    mask = np.zeros(mesh.vertex_count, dtype=bool)
    mask[b] = True
    interior = np.flatnonzero(~mask)
    return interior, b


def _interior_neighbors(
    mesh: TriMesh, interior: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flattened sorted neighbour array and per-vertex counts.

    Equivalent to ``concatenate([adjacency[v] for v in interior])`` but
    sliced out of the mesh's CSR adjacency with pure numpy indexing.
    """
    indptr, indices = mesh.adjacency_csr
    counts = indptr[interior + 1] - indptr[interior]
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    nbr_flat = indices[np.repeat(indptr[interior], counts) + offsets]
    return nbr_flat, counts


def solve_linear(
    mesh: TriMesh,
    boundary: np.ndarray,
    boundary_positions: np.ndarray,
    reuse_factorization: bool = True,
) -> np.ndarray:
    """Solve the uniform-weight Tutte system with a sparse direct solver.

    Parameters
    ----------
    mesh : TriMesh
        Connectivity source (vertex coordinates are ignored).
    boundary : (b,) int array
        Pinned vertex indices.
    boundary_positions : (b, 2) array
        Their target positions (typically on the unit circle).
    reuse_factorization : bool
        Look the CSC Laplacian's LU factorization up in the process
        LRU before factorizing (default).  ``False`` forces a fresh
        ``spsolve`` - the oracle path the byte-identity tests compare
        against.

    Returns
    -------
    (n, 2) ndarray
        Positions for all vertices.
    """
    interior, b_idx = _split_vertices(mesh, boundary)
    bpos = np.asarray(boundary_positions, dtype=float)
    if bpos.shape != (len(b_idx), 2):
        raise MappingError("boundary position array shape mismatch")
    n = mesh.vertex_count
    out = np.zeros((n, 2))
    out[b_idx] = bpos
    if len(interior) == 0:
        return out

    ni = len(interior)
    pos_in_interior = -np.ones(n, dtype=int)
    pos_in_interior[interior] = np.arange(ni)
    nbr_flat, counts = _interior_neighbors(mesh, interior)
    if np.any(counts == 0):
        v = int(interior[int(np.flatnonzero(counts == 0)[0])])
        raise MappingError(f"interior vertex {v} has no neighbours")

    with span("harmonic.solve_linear", vertices=n, interior=ni) as sp_:
        # Vectorised COO assembly: one flattened neighbour array, split
        # into interior couplings (matrix entries) and boundary
        # couplings (right-hand-side contributions).
        seg_ids = np.repeat(np.arange(ni), counts)
        inv_deg = 1.0 / counts.astype(float)
        nbr_slot = pos_in_interior[nbr_flat]
        to_interior = nbr_slot >= 0

        diag = np.arange(ni)
        rows = np.concatenate([diag, seg_ids[to_interior]])
        cols = np.concatenate([diag, nbr_slot[to_interior]])
        vals = np.concatenate([np.ones(ni), -inv_deg[seg_ids[to_interior]]])

        rhs = np.zeros((ni, 2))
        bnd_rows = seg_ids[~to_interior]
        np.add.at(
            rhs, bnd_rows, out[nbr_flat[~to_interior]] * inv_deg[bnd_rows][:, None]
        )

        mat = sp.csr_matrix((vals, (rows, cols)), shape=(ni, ni))
        sp_.set_attributes(nnz=int(mat.nnz))
        csc = mat.tocsc()
        if reuse_factorization:
            solver, state = _factorized_solver(csc)
            solution = solver(rhs)
            sp_.set_attributes(factorization=state)
        else:
            solution = spla.spsolve(csc, rhs)
            sp_.set_attributes(factorization="off")
        if solution.ndim == 1:
            solution = solution[:, None]
        if not np.all(np.isfinite(solution)):
            raise MappingError(
                "harmonic linear solve produced non-finite positions"
            )
        out[interior] = solution
        residual = mat @ solution - rhs
        sp_.set_attributes(residual=float(np.abs(residual).max()))
    return out


def solve_iterative(
    mesh: TriMesh,
    boundary: np.ndarray,
    boundary_positions: np.ndarray,
    tol: float = 1e-7,
    max_iterations: int = 100_000,
) -> tuple[np.ndarray, int]:
    """Neighbour-averaging iteration (the paper's distributed solver).

    Interior vertices start at the disk centre (as in Sec. III-B) and
    repeatedly move to the mean of their neighbours until the largest
    move falls below ``tol``.

    Returns
    -------
    (positions, iterations)

    Raises
    ------
    MappingError
        If convergence is not reached within ``max_iterations``.
    """
    interior, b_idx = _split_vertices(mesh, boundary)
    bpos = np.asarray(boundary_positions, dtype=float)
    if bpos.shape != (len(b_idx), 2):
        raise MappingError("boundary position array shape mismatch")
    n = mesh.vertex_count
    pos = np.zeros((n, 2))
    pos[b_idx] = bpos
    if len(interior) == 0:
        return pos, 0

    # Flattened CSR adjacency indices for a vectorised Jacobi sweep.
    nbr_flat, counts = _interior_neighbors(mesh, interior)
    if np.any(counts == 0):
        raise MappingError("interior vertex with no neighbours")
    seg_ids = np.repeat(np.arange(len(interior)), counts)

    with span(
        "harmonic.solve_iterative", vertices=n, interior=len(interior), tol=tol
    ) as sp_:
        for iteration in range(1, max_iterations + 1):
            sums = np.zeros((len(interior), 2))
            np.add.at(sums, seg_ids, pos[nbr_flat])
            new = sums / counts[:, None]
            delta = float(np.abs(new - pos[interior]).max())
            pos[interior] = new
            if delta < tol:
                sp_.set_attributes(iterations=iteration, residual=delta)
                return pos, iteration
    raise MappingError(
        f"harmonic iteration did not converge in {max_iterations} sweeps"
    )


def harmonic_energy(mesh: TriMesh, positions: np.ndarray) -> float:
    """Uniform-weight spring energy ``sum_edges |x_u - x_v|^2``.

    The discrete harmonic map minimises this energy subject to the
    boundary constraint; tests use it to verify both solvers find the
    same minimum.
    """
    p = np.asarray(positions, dtype=float)
    e = mesh.edges
    d = p[e[:, 0]] - p[e[:, 1]]
    return float((d * d).sum())
