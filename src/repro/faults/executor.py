"""Resilient mission execution under an injected fault schedule.

:class:`ResilientExecutor` runs one full marching transition while the
faults of a :class:`~repro.faults.schedule.FaultSchedule` fire, and
recovers automatically:

* **detect** - each fault fires at its mission-fraction instant; the
  march freezes there and the fleet state is snapshotted.
* **cascade** - every crash event replans the survivors from their
  frozen positions (the same recovery
  :func:`~repro.marching.replan.replan_after_failure` implements),
  event after event, with later instants rescaled onto each fresh plan.
* **repair** - when a crash cuts the survivor network, the cut
  subgroups are escorted back: each minor component moves rigidly (all
  internal links frozen, exactly like the planner's parallel-escort
  repair) until it re-enters communication range of the main body.
* **refuse loudly** - when recovery is impossible (too few survivors,
  the planner cannot plan, the recovery consensus cannot complete under
  the injected message faults) a typed
  :class:`~repro.errors.UnrecoverableError` is raised.  Every code path
  ends in a recovered report or that error; nothing hangs (every loop
  and every protocol run is bounded) and nothing silently proceeds.

Recovery cost is measured (:class:`~repro.metrics.recovery.RecoveryMetrics`)
and mirrored into obs spans and gauges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.distributed.protocols.reliable_flood import ReliableFloodNode
from repro.distributed.runtime import LinkFaults, SyncNetwork
from repro.errors import PlanningError, ProtocolError, UnrecoverableError
from repro.faults.schedule import CrashFault, FaultSchedule, SlowFault, StuckFault
from repro.foi.region import FieldOfInterest
from repro.marching.planner import MarchingConfig, MarchingPlanner
from repro.marching.replan import (
    FailureEvent,
    _remap_event_time,
    replan_after_failure,
)
from repro.marching.result import MarchingResult
from repro.metrics.connectivity import ConnectivityReport, connectivity_report
from repro.metrics.recovery import RecoveryMetrics
from repro.metrics.stable_links import stable_link_ratio
from repro.network.udg import UnitDiskGraph
from repro.obs import get_metrics, span
from repro.robots.swarm import Swarm

__all__ = [
    "ChaosRunReport",
    "ResilientExecutor",
    "SegmentRecord",
    "execute_with_faults",
    "rejoin_components",
]


@dataclass(frozen=True)
class SegmentRecord:
    """One executed piece of the mission.

    Attributes
    ----------
    kind : str
        ``"march"`` (a portion of a plan actually flown), ``"rejoin"``
        (an escort move pulling cut survivors back into range), or
        ``"hold"`` (a stuck/slow window costing only time).
    survivor_ids : tuple[int, ...]
        Robots alive during the segment, original numbering.
    distance : float
        Fleet distance flown in the segment.
    duration : float
        Mission time the segment consumed.
    connectivity : ConnectivityReport or None
        Definition-2 check of the segment's plan (march segments of
        replanned legs; ``None`` for rejoin/hold segments).
    """

    kind: str
    survivor_ids: tuple[int, ...]
    distance: float
    duration: float
    connectivity: ConnectivityReport | None = None


@dataclass(frozen=True)
class ChaosRunReport:
    """Outcome of one fault-injected mission that *recovered*.

    Unrecoverable runs raise :class:`~repro.errors.UnrecoverableError`
    instead - the executor has exactly two outcomes.

    Attributes
    ----------
    schedule : FaultSchedule
    outcome : str
        Always ``"recovered"`` on a returned report.
    survivor_ids : tuple[int, ...]
        Robots (original numbering) that reached the target.
    final_result : MarchingResult
        The last plan the survivors executed.
    metrics : RecoveryMetrics
    segments : tuple[SegmentRecord, ...]
        The mission's executed pieces in time order.
    """

    schedule: FaultSchedule
    outcome: str
    survivor_ids: tuple[int, ...]
    final_result: MarchingResult
    metrics: RecoveryMetrics
    segments: tuple[SegmentRecord, ...]

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON summary (chaos sweep documents)."""
        return {
            "outcome": self.outcome,
            "schedule": self.schedule.to_dict(),
            "survivors": list(self.survivor_ids),
            "metrics": self.metrics.to_dict(),
            "segments": [
                {
                    "kind": s.kind,
                    "robots": len(s.survivor_ids),
                    "distance": s.distance,
                    "duration": s.duration,
                    "connected": None
                    if s.connectivity is None
                    else s.connectivity.connected,
                }
                for s in self.segments
            ],
        }


def rejoin_components(
    positions: np.ndarray,
    comm_range: float,
    margin: float = 0.9,
) -> tuple[np.ndarray, float, float]:
    """Escort cut components back into one connected network.

    Each minor component repeatedly translates rigidly toward the
    closest robot of the main (largest) component until its closest
    member sits ``margin * comm_range`` away - a rigid move keeps every
    intra-component link alive by construction, exactly like the
    planner's parallel-escort repair freezes relative positions.

    Returns
    -------
    (rejoined_positions, fleet_distance, longest_single_move)

    Raises
    ------
    UnrecoverableError
        If the merge loop exceeds its bound (cannot happen for finite
        inputs - every round strictly reduces the component count - but
        the executor never trusts an unbounded loop).
    """
    pos = np.asarray(positions, dtype=float).copy()
    n = len(pos)
    fleet_distance = 0.0
    longest = 0.0
    for _ in range(max(n, 1)):
        graph = UnitDiskGraph(pos, comm_range)
        comps = graph.components
        if len(comps) <= 1:
            return pos, fleet_distance, longest
        main = comps[0]
        best: tuple[float, int, int, int] | None = None
        for ci, comp in enumerate(comps[1:], start=1):
            for j in comp:
                delta = pos[main] - pos[j]
                dist = np.hypot(delta[:, 0], delta[:, 1])
                k = int(np.argmin(dist))
                cand = (float(dist[k]), j, main[k], ci)
                if best is None or cand < best:
                    best = cand
        dist, j, anchor, ci = best
        direction = pos[anchor] - pos[j]
        shift = direction * (1.0 - margin * comm_range / max(dist, 1e-12))
        comp = comps[ci]
        pos[comp] += shift
        move = float(np.hypot(shift[0], shift[1]))
        fleet_distance += move * len(comp)
        longest = max(longest, move)
    raise UnrecoverableError(
        "escort rejoin failed to reconnect the survivors",
        stage="rejoin",
        survivors=n,
    )


class ResilientExecutor:
    """Runs marching transitions to completion under fault schedules.

    Parameters
    ----------
    config : MarchingConfig, optional
        Planner settings shared by the original plan and every replan.
    resolution : int
        Metric sampling resolution (connectivity and ``L``).
    consensus_round_time : float
        Mission time charged per consensus round of each recovery
        (models the paper's robots pausing to cooperatively determine
        the new plan; 0 makes consensus free).
    consensus_attempts : int
        Round-budget doublings before a failing recovery consensus is
        declared unrecoverable.
    """

    def __init__(
        self,
        config: MarchingConfig | None = None,
        resolution: int = 16,
        consensus_round_time: float = 0.0,
        consensus_attempts: int = 2,
    ) -> None:
        self.config = config or MarchingConfig()
        self.resolution = int(resolution)
        self.consensus_round_time = float(consensus_round_time)
        self.consensus_attempts = max(1, int(consensus_attempts))

    # ------------------------------------------------------------------

    def execute(
        self,
        swarm: Swarm,
        target_foi: FieldOfInterest,
        schedule: FaultSchedule,
        source_foi: FieldOfInterest | None = None,
        original: MarchingResult | None = None,
    ) -> ChaosRunReport:
        """Run the transition under ``schedule`` and recover from it.

        Parameters
        ----------
        swarm : Swarm
            The fleet on the current FoI.
        target_foi : FieldOfInterest
        schedule : FaultSchedule
        source_foi : FieldOfInterest, optional
            Forwarded to the planner (hole-aware detours).
        original : MarchingResult, optional
            A precomputed fault-free plan for this exact transition
            (skips the initial planning; property tests reuse one plan
            across many schedules).

        Returns
        -------
        ChaosRunReport
            When every fault was recovered and every post-replan leg
            kept Definition-2 connectivity.

        Raises
        ------
        UnrecoverableError
            When recovery is impossible; the error's ``stage`` and
            ``survivors`` say where it died.
        """
        with span(
            "faults.execute",
            robots=swarm.size,
            crashes=len(schedule.crashes),
            seed=schedule.seed,
        ) as sp_:
            report = self._execute(swarm, target_foi, schedule, source_foi, original)
            m = report.metrics
            sp_.set_attributes(
                replans=m.replan_count,
                rejoins=m.rejoin_count,
                survivors=m.survivor_count,
                extra_distance=m.extra_distance,
                time_to_recover=m.time_to_recover,
            )
        metrics = get_metrics()
        metrics.counter("faults.missions_recovered").inc()
        metrics.counter("faults.replans").inc(m.replan_count)
        metrics.counter("faults.rejoins").inc(m.rejoin_count)
        metrics.gauge("faults.time_to_recover").set(m.time_to_recover)
        metrics.gauge("faults.extra_distance").set(m.extra_distance)
        metrics.gauge("faults.stable_link_degradation").set(
            m.stable_link_degradation
        )
        return report

    # ------------------------------------------------------------------

    def _execute(
        self,
        swarm: Swarm,
        target_foi: FieldOfInterest,
        schedule: FaultSchedule,
        source_foi: FieldOfInterest | None,
        original: MarchingResult | None,
    ) -> ChaosRunReport:
        comm_range = swarm.radio.comm_range
        if original is None:
            with span("faults.baseline_plan"):
                original = MarchingPlanner(self.config).plan(
                    swarm, target_foi, source_foi=source_foi
                )
        baseline_distance = original.total_distance
        baseline_L = stable_link_ratio(
            original.links, original.trajectory, self.resolution
        )
        nominal_duration = original.trajectory.duration

        current = original
        alive = np.arange(original.robot_count)
        window_start = 0.0  # mission fraction where the current plan began
        cursor = current.trajectory.t_start  # local time already executed
        executed_distance = 0.0
        time_to_recover = 0.0
        consensus_rounds = 0
        replans = 0
        rejoins = 0
        segments: list[SegmentRecord] = []
        replanned: list[MarchingResult] = []

        for fault in schedule.events():
            traj = current.trajectory
            t_fault = _remap_event_time(
                fault.at, window_start, 1.0, traj.t_start, traj.t_end
            )

            if isinstance(fault, StuckFault):
                hold = fault.duration * nominal_duration
                time_to_recover += hold
                segments.append(
                    SegmentRecord(
                        kind="hold",
                        survivor_ids=tuple(int(i) for i in alive),
                        distance=0.0,
                        duration=hold,
                    )
                )
                continue
            if isinstance(fault, SlowFault):
                dilation = (
                    fault.duration * nominal_duration * (1.0 / fault.factor - 1.0)
                )
                time_to_recover += dilation
                segments.append(
                    SegmentRecord(
                        kind="hold",
                        survivor_ids=tuple(int(i) for i in alive),
                        distance=0.0,
                        duration=dilation,
                    )
                )
                continue

            assert isinstance(fault, CrashFault)
            id_to_local = {int(orig): k for k, orig in enumerate(alive)}
            newly_dead = sorted(
                id_to_local[int(i)] for i in fault.robots if int(i) in id_to_local
            )
            if not newly_dead:
                continue  # every named robot already died earlier

            # Freeze: account the distance flown on this plan so far.
            flown = float(traj.distances_between(cursor, t_fault).sum())
            executed_distance += flown
            segments.append(
                SegmentRecord(
                    kind="march",
                    survivor_ids=tuple(int(i) for i in alive),
                    distance=flown,
                    duration=max(0.0, t_fault - cursor),
                    connectivity=None,
                )
            )

            survivors_local = np.array(
                [k for k in range(len(alive)) if k not in set(newly_dead)],
                dtype=int,
            )
            if len(survivors_local) < 4:
                raise UnrecoverableError(
                    f"only {len(survivors_local)} survivors left at mission "
                    f"fraction {fault.at}; a marching problem needs 4",
                    stage="survivors",
                    survivors=len(survivors_local),
                )

            positions = traj.positions_at(t_fault)[survivors_local]
            graph = UnitDiskGraph(positions, comm_range)
            if not graph.is_connected():
                with span(
                    "faults.rejoin", components=len(graph.components)
                ):
                    positions, rejoin_dist, longest = rejoin_components(
                        positions, comm_range
                    )
                rejoins += 1
                executed_distance += rejoin_dist
                # The escorted components fly at nominal mission speed;
                # the fleet waits for the longest move.
                speed = _nominal_speed(original)
                rejoin_time = longest / speed if speed > 0 else 0.0
                time_to_recover += rejoin_time
                segments.append(
                    SegmentRecord(
                        kind="rejoin",
                        survivor_ids=tuple(int(alive[k]) for k in survivors_local),
                        distance=rejoin_dist,
                        duration=rejoin_time,
                    )
                )

            # The survivors cooperatively agree on the new roster before
            # planning - over links subject to the schedule's message
            # faults.
            consensus_rounds += self._consensus(
                positions, comm_range, schedule
            )

            with span("faults.replan", survivors=len(survivors_local)):
                try:
                    new_result = self._replan(
                        current, t_fault, newly_dead, positions, target_foi,
                        comm_range,
                    )
                except PlanningError as exc:
                    raise UnrecoverableError(
                        f"survivors could not replan at mission fraction "
                        f"{fault.at}: {exc}",
                        stage="replan",
                        survivors=len(survivors_local),
                    ) from exc
            replans += 1
            replanned.append(new_result)
            alive = alive[survivors_local]
            current = new_result
            window_start = fault.at
            cursor = new_result.trajectory.t_start
            time_to_recover += consensus_rounds * self.consensus_round_time

        # Fly the last plan to completion.
        traj = current.trajectory
        flown = float(traj.distances_between(cursor, traj.t_end).sum())
        executed_distance += flown

        # Every replanned leg must deliver the Definition-2 guarantee at
        # each sampled instant; a recovered report never hides a cut.
        final_report: ConnectivityReport | None = None
        for result in replanned:
            rep = connectivity_report(
                result.trajectory,
                comm_range,
                result.boundary_anchors,
                self.resolution,
            )
            if result is current:
                final_report = rep
            if not rep.connected:
                raise UnrecoverableError(
                    "a replanned leg violates global connectivity at "
                    f"sampled instant {rep.first_failure_time}",
                    stage="replan",
                    survivors=len(alive),
                )
        segments.append(
            SegmentRecord(
                kind="march",
                survivor_ids=tuple(int(i) for i in alive),
                distance=flown,
                duration=max(0.0, traj.t_end - cursor),
                connectivity=final_report,
            )
        )

        final_L = (
            stable_link_ratio(current.links, current.trajectory, self.resolution)
            if replans
            else baseline_L
        )
        metrics = RecoveryMetrics(
            replan_count=replans,
            rejoin_count=rejoins,
            consensus_rounds=consensus_rounds,
            time_to_recover=time_to_recover,
            baseline_distance=baseline_distance,
            executed_distance=executed_distance,
            extra_distance=executed_distance - baseline_distance,
            baseline_stable_link_ratio=baseline_L,
            final_stable_link_ratio=final_L,
            stable_link_degradation=baseline_L - final_L,
            connected_all=True,
            lost_robots=original.robot_count - len(alive),
            survivor_count=len(alive),
        )
        return ChaosRunReport(
            schedule=schedule,
            outcome="recovered",
            survivor_ids=tuple(int(i) for i in alive),
            final_result=current,
            metrics=metrics,
            segments=tuple(segments),
        )

    # ------------------------------------------------------------------

    def _replan(
        self,
        current: MarchingResult,
        t_fault: float,
        newly_dead: list[int],
        positions: np.ndarray,
        target_foi: FieldOfInterest,
        comm_range: float,
    ) -> MarchingResult:
        """One recovery replan, via the paper's freeze-and-replan path.

        When the survivors stayed connected this is exactly
        :func:`replan_after_failure` on the current plan; after an
        escort rejoin the frozen positions moved, so the survivors are
        planned directly from their rejoined positions.
        """
        frozen = current.trajectory.positions_at(t_fault)
        survivors_local = [
            k for k in range(len(frozen)) if k not in set(newly_dead)
        ]
        if np.allclose(frozen[survivors_local], positions):
            outcome = replan_after_failure(
                current,
                FailureEvent(time=t_fault, failed=tuple(newly_dead)),
                target_foi,
                comm_range,
                config=self.config,
            )
            return outcome.result
        from repro.robots.robot import RadioSpec

        swarm = Swarm(positions, RadioSpec.from_comm_range(comm_range))
        return MarchingPlanner(self.config).plan(swarm, target_foi)

    def _consensus(
        self, positions: np.ndarray, comm_range: float, schedule: FaultSchedule
    ) -> int:
        """Survivor roster consensus under the schedule's message faults.

        A reliable flood over the survivors' communication graph; every
        node must learn every other node's presence.  The round budget
        doubles ``consensus_attempts`` times before the recovery is
        declared unrecoverable - so extreme message faults surface as
        the typed error, never as a hang.
        """
        k = len(positions)
        adjacency = UnitDiskGraph(positions, comm_range).adjacency
        faults = schedule.comms
        loss = faults.loss_rate if faults is not None else 0.0
        # Reliable flood retransmits until acked, so its expected round
        # count scales like 1/(1 - loss); a linear budget with headroom
        # stays generous without ever ballooning into a near-hang.
        budget = int((6 * k + 30) / max(0.1, 1.0 - loss))
        if faults is not None and faults.delay_rate > 0:
            budget += faults.max_delay * (k + 10)
        last_error: ProtocolError | None = None
        for attempt in range(self.consensus_attempts):
            nodes = [ReliableFloodNode(i, 1.0, k) for i in range(k)]
            net = SyncNetwork(
                nodes,
                adjacency,
                seed=schedule.seed + attempt,
                faults=faults,
            )
            with span(
                "faults.consensus", survivors=k, attempt=attempt
            ) as sp_:
                try:
                    rounds = net.run(max_rounds=budget << attempt)
                except ProtocolError as exc:
                    last_error = exc
                    sp_.set_attributes(failed=True)
                    continue
                if all(node.complete for node in nodes):
                    sp_.set_attributes(rounds=rounds)
                    return rounds
                last_error = ProtocolError(
                    "consensus went quiet with incomplete rosters"
                )
                sp_.set_attributes(failed=True)
        raise UnrecoverableError(
            f"recovery consensus failed after {self.consensus_attempts} "
            f"attempts: {last_error}",
            stage="consensus",
            survivors=k,
        ) from last_error


def _nominal_speed(original: MarchingResult) -> float:
    """Mission-reference speed: the fastest robot of the original plan."""
    duration = original.trajectory.duration
    if duration <= 0:
        return 0.0
    return float(original.trajectory.path_lengths().max()) / duration


def execute_with_faults(
    swarm: Swarm,
    target_foi: FieldOfInterest,
    schedule: FaultSchedule,
    config: MarchingConfig | None = None,
    resolution: int = 16,
    source_foi: FieldOfInterest | None = None,
    original: MarchingResult | None = None,
) -> ChaosRunReport:
    """Convenience wrapper around :class:`ResilientExecutor`.

    See :meth:`ResilientExecutor.execute`.
    """
    executor = ResilientExecutor(config=config, resolution=resolution)
    return executor.execute(
        swarm, target_foi, schedule, source_foi=source_foi, original=original
    )
