"""Distributed rotation-angle search (paper Sec. III-B / III-D2).

"At each step, a mobile robot divides current search interval of angle
into two and rotates its mapped position in unit disk with the midpoint
angle of the interval.  The mobile robot computes its mapped position
in M2 and exchanges the position with its one-range neighbors.  After
calculating its own stable link ratio, the mobile robot then floods the
information to other mobile robots."

Each robot here:

* holds only its own disk position and the (shared, static) target-FoI
  disk mesh - exactly what the paper loads onto every robot,
* evaluates a candidate angle *locally*: it rotates its own disk point,
  maps it into M2, exchanges mapped positions with its one-range
  neighbours, and counts its own surviving links (method (a)) or its
  own moving distance (method (b)),
* flood-sums the local scores so every robot holds the same global
  score, then all robots apply the identical deterministic
  interval-halving step - keeping the swarm's search state consistent
  without a leader.

The protocol result is bit-identical to the centralized
:func:`repro.harmonic.rotation.hierarchical_angle_search` over the
matching objective, which is what the equivalence test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.distributed.protocols.flooding import flood_aggregate
from repro.errors import ProtocolError
from repro.geometry.vec import rotate
from repro.harmonic.rotation import TWO_PI, AngleSearchResult
from repro.harmonic.transfer import InducedMap
from repro.obs import get_metrics, span

__all__ = ["DistributedRotationSearch", "distributed_rotation_search"]


@dataclass(frozen=True)
class _Candidate:
    """One angle evaluation: per-robot mapped positions and local scores."""

    angle: float
    targets: np.ndarray
    global_score: float


class DistributedRotationSearch:
    """Coordinates the swarm-wide angle search over a message topology.

    Parameters
    ----------
    induced : InducedMap
        The target FoI's disk embedding (known to every robot).
    disk_positions : (n, 2) ndarray
        Each robot's own position in T's disk embedding.
    start_positions : (n, 2) ndarray
        Geographic positions in M1 (for method (b)'s distances).
    links : (m, 2) int ndarray
        Communication links in M1.
    comm_range : float
    adjacency : sequence of sequences
        The communication topology used for the score flooding.
    """

    def __init__(
        self,
        induced: InducedMap,
        disk_positions: np.ndarray,
        start_positions: np.ndarray,
        links: np.ndarray,
        comm_range: float,
        adjacency: Sequence[Sequence[int]],
    ) -> None:
        self.induced = induced
        self.disk = np.asarray(disk_positions, dtype=float)
        self.starts = np.asarray(start_positions, dtype=float)
        self.links = np.asarray(links, dtype=int).reshape(-1, 2)
        self.comm_range = float(comm_range)
        self.adjacency = adjacency
        n = len(self.disk)
        if len(self.starts) != n or len(adjacency) != n:
            raise ProtocolError("inconsistent robot counts")
        # Per-robot incident-link lists for the local score.
        self._incident: list[list[int]] = [[] for _ in range(n)]
        for idx, (u, v) in enumerate(self.links):
            self._incident[int(u)].append(idx)
            self._incident[int(v)].append(idx)
        self.flood_rounds = 0

    # ------------------------------------------------------------------

    def _evaluate(self, angle: float, maximize: bool) -> _Candidate:
        """One candidate angle: local scores flooded to a global one."""
        # Every robot maps its own rotated disk point (local computation).
        rotated = rotate(self.disk, angle)
        targets = np.array([self.induced.map_point(p) for p in rotated])
        if maximize:
            # Local score: my surviving incident links (each link is seen
            # by both endpoints; the global flood sum therefore counts
            # every link twice, uniformly - the argmax is unaffected,
            # mirroring the double-sum in Definition 1).
            d = targets[self.links[:, 0]] - targets[self.links[:, 1]]
            alive = np.hypot(d[:, 0], d[:, 1]) <= self.comm_range
            local = [
                float(sum(alive[k] for k in self._incident[i]))
                for i in range(len(self.disk))
            ]
        else:
            # Local score: my own moving distance (negated: flooding
            # computes a sum, the halving step always maximises).
            d = targets - self.starts
            local = (-np.hypot(d[:, 0], d[:, 1])).tolist()
        totals = flood_aggregate(local, self.adjacency)
        self.flood_rounds += 1
        if max(totals) - min(totals) > 1e-6 * max(1.0, abs(totals[0])):
            raise ProtocolError("robots disagree on the flooded score")
        return _Candidate(angle=angle, targets=targets, global_score=totals[0])

    def run(
        self,
        depth: int = 4,
        initial_samples: int = 4,
        maximize: bool = True,
    ) -> tuple[AngleSearchResult, np.ndarray]:
        """Execute the search; returns the result and the winning targets."""
        if depth < 0:
            raise ProtocolError("depth must be non-negative")
        with span(
            "distributed.rotation_search",
            depth=depth,
            initial_samples=initial_samples,
            robots=len(self.disk),
        ) as sp:
            best: _Candidate | None = None
            evaluations = 0
            width = TWO_PI / max(1, initial_samples)
            for i in range(max(1, initial_samples)):
                cand = self._evaluate(((i + 0.5) * width) % TWO_PI, maximize)
                evaluations += 1
                if best is None or cand.global_score > best.global_score:
                    best = cand
            assert best is not None
            lo = best.angle - width / 2.0
            hi = best.angle + width / 2.0
            for _ in range(depth):
                mid = 0.5 * (lo + hi)
                left = self._evaluate((0.5 * (lo + mid)) % TWO_PI, maximize)
                right = self._evaluate((0.5 * (mid + hi)) % TWO_PI, maximize)
                evaluations += 2
                if left.global_score >= right.global_score:
                    hi = mid
                    if left.global_score > best.global_score:
                        best = left
                else:
                    lo = mid
                    if right.global_score > best.global_score:
                        best = right
            # One last flooded evaluation of the final bracket's centre,
            # mirroring the centralized search so the two stay
            # bit-identical and share the ``initial + 2*depth + 1``
            # evaluation budget.
            final = self._evaluate((0.5 * (lo + hi)) % TWO_PI, maximize)
            evaluations += 1
            if final.global_score > best.global_score:
                best = final
            result = AngleSearchResult(
                angle=best.angle % TWO_PI,
                score=best.global_score,
                evaluations=evaluations,
            )
            sp.set_attributes(
                angle=result.angle,
                evaluations=evaluations,
                flood_rounds=self.flood_rounds,
            )
        get_metrics().counter("rotation.objective_evaluations").inc(evaluations)
        return result, best.targets


def distributed_rotation_search(
    induced: InducedMap,
    disk_positions,
    start_positions,
    links,
    comm_range: float,
    adjacency,
    depth: int = 4,
    initial_samples: int = 4,
    maximize: bool = True,
) -> tuple[AngleSearchResult, np.ndarray]:
    """Convenience wrapper around :class:`DistributedRotationSearch`."""
    search = DistributedRotationSearch(
        induced, np.asarray(disk_positions, float),
        np.asarray(start_positions, float),
        links, comm_range, adjacency,
    )
    return search.run(depth=depth, initial_samples=initial_samples, maximize=maximize)
