"""Message-passing protocols backing the paper's distributed claims."""

from repro.distributed.protocols.averaging import (
    AveragingNode,
    run_distributed_harmonic,
)
from repro.distributed.protocols.boundary_loop import (
    BoundaryLoopNode,
    run_boundary_loop_protocol,
)
from repro.distributed.protocols.flooding import FloodSumNode, flood_aggregate
from repro.distributed.protocols.reliable_flood import (
    ReliableFloodNode,
    reliable_flood_aggregate,
)
from repro.distributed.protocols.rotation_search import (
    DistributedRotationSearch,
    distributed_rotation_search,
)
from repro.distributed.protocols.subgroup import (
    SubgroupDetectionNode,
    run_subgroup_detection,
)

__all__ = [
    "AveragingNode",
    "BoundaryLoopNode",
    "DistributedRotationSearch",
    "FloodSumNode",
    "ReliableFloodNode",
    "SubgroupDetectionNode",
    "distributed_rotation_search",
    "flood_aggregate",
    "reliable_flood_aggregate",
    "run_boundary_loop_protocol",
    "run_distributed_harmonic",
    "run_subgroup_detection",
]
