"""Equivalence tests: distributed rotation search and distributed planner."""

import numpy as np
import pytest

from repro.coverage import LloydConfig
from repro.distributed import DistributedRotationSearch
from repro.foi import FieldOfInterest, ellipse_polygon
from repro.harmonic import InducedMap, compute_disk_map, hierarchical_angle_search
from repro.marching import DistributedMarchingPlanner, MarchingConfig, MarchingPlanner
from repro.mesh import triangulate_foi
from repro.metrics import connectivity_report, stable_link_ratio
from repro.network import LinkTable, extract_triangulation
from repro.network.links import links_alive
from repro.robots import RadioSpec, Swarm

FAST = MarchingConfig(
    foi_target_points=220, lloyd=LloydConfig(grid_target=800, max_iterations=25)
)


@pytest.fixture(scope="module")
def setup():
    radio = RadioSpec.from_comm_range(80.0)
    m1 = FieldOfInterest(
        ellipse_polygon(1.0, 1.0, samples=40).scaled_to_area(150_000.0), name="m1"
    )
    swarm = Swarm.deploy_lattice(m1, 49, radio)
    m2 = FieldOfInterest(
        ellipse_polygon(1.4, 0.8, samples=40).scaled_to_area(130_000.0), name="m2"
    ).translated((1400.0, 200.0))
    return swarm, m2


class TestDistributedRotationSearch:
    def _pieces(self, setup):
        swarm, m2 = setup
        rc = swarm.radio.comm_range
        links = LinkTable.from_graph(swarm.communication_graph())
        t_mesh, vmap = extract_triangulation(swarm.positions, rc)
        assert len(vmap) == swarm.size
        dm_t = compute_disk_map(t_mesh)
        induced = InducedMap(compute_disk_map(triangulate_foi(m2, target_points=220).mesh))
        return swarm, rc, links, t_mesh, dm_t, induced

    def test_matches_centralized_angle(self, setup):
        swarm, rc, links, t_mesh, dm_t, induced = self._pieces(setup)
        search = DistributedRotationSearch(
            induced,
            dm_t.robot_disk_positions,
            swarm.positions,
            links.links,
            rc,
            t_mesh.adjacency,
        )
        result, targets = search.run(depth=4, initial_samples=4, maximize=True)

        disk = dm_t.robot_disk_positions

        def objective(angle: float) -> float:
            q = induced.map_points(disk, rotation=angle)
            return float(links_alive(links.links, q, rc).sum())

        central = hierarchical_angle_search(objective, depth=4, initial_samples=4)
        assert result.angle == pytest.approx(central.angle, abs=1e-12)
        # Flood sums every link at both endpoints: exactly 2x the count.
        assert result.score == pytest.approx(2.0 * central.score)
        assert targets.shape == (swarm.size, 2)

    def test_minimize_mode_matches(self, setup):
        swarm, rc, links, t_mesh, dm_t, induced = self._pieces(setup)
        search = DistributedRotationSearch(
            induced, dm_t.robot_disk_positions, swarm.positions,
            links.links, rc, t_mesh.adjacency,
        )
        result, _ = search.run(depth=3, initial_samples=4, maximize=False)

        disk = dm_t.robot_disk_positions

        def objective(angle: float) -> float:
            q = induced.map_points(disk, rotation=angle)
            d = q - swarm.positions
            return float(np.hypot(d[:, 0], d[:, 1]).sum())

        central = hierarchical_angle_search(
            objective, depth=3, initial_samples=4, maximize=False
        )
        assert result.angle == pytest.approx(central.angle, abs=1e-12)

    def test_flood_round_accounting(self, setup):
        swarm, rc, links, t_mesh, dm_t, induced = self._pieces(setup)
        search = DistributedRotationSearch(
            induced, dm_t.robot_disk_positions, swarm.positions,
            links.links, rc, t_mesh.adjacency,
        )
        result, _ = search.run(depth=2, initial_samples=4)
        assert search.flood_rounds == result.evaluations == 4 + 2 * 2 + 1


class TestDistributedPlanner:
    def test_matches_centralized_plan(self, setup):
        swarm, m2 = setup
        central = MarchingPlanner(FAST).plan(swarm, m2)
        distributed = DistributedMarchingPlanner(FAST).plan(swarm, m2)
        assert distributed.method == "ours (a, distributed)"
        # Same triangulation class, same search space: the march targets
        # agree closely (boundary parameterizations differ slightly:
        # hop-uniform protocol vs chord - both legal per the paper).
        gap = np.hypot(*(central.march_targets - distributed.march_targets).T)
        assert np.median(gap) < 0.25 * swarm.radio.comm_range

    def test_distributed_plan_guarantees(self, setup):
        swarm, m2 = setup
        result = DistributedMarchingPlanner(FAST).plan(swarm, m2)
        rep = connectivity_report(
            result.trajectory, swarm.radio.comm_range, result.boundary_anchors
        )
        assert rep.connected
        assert stable_link_ratio(result.links, result.trajectory) > 0.6
        assert m2.contains(result.final_positions).all()
        assert result.artifacts["flood_rounds"] == result.rotation_evaluations

    def test_method_b_supported(self, setup):
        swarm, m2 = setup
        cfg = MarchingConfig(
            method="b", foi_target_points=220,
            lloyd=LloydConfig(grid_target=800, max_iterations=25),
        )
        result = DistributedMarchingPlanner(cfg).plan(swarm, m2)
        assert result.method == "ours (b, distributed)"
        assert connectivity_report(
            result.trajectory, swarm.radio.comm_range, result.boundary_anchors
        ).connected
