"""Tests for mesh quality measures and virtual-vertex hole filling."""

import numpy as np
import pytest

from repro.mesh import (
    TriMesh,
    fill_holes,
    min_angle,
    orientation_signs,
    quality_report,
    triangle_angles,
)


def square_two_triangles():
    return TriMesh([(0, 0), (1, 0), (1, 1), (0, 1)], [(0, 1, 2), (0, 2, 3)])


def annulus_mesh():
    outer = [(0, 0), (4, 0), (4, 4), (0, 4)]
    inner = [(1, 1), (3, 1), (3, 3), (1, 3)]
    tris = [
        (0, 1, 4), (1, 5, 4), (1, 2, 5), (2, 6, 5),
        (2, 3, 6), (3, 7, 6), (3, 0, 7), (0, 4, 7),
    ]
    return TriMesh(outer + inner, tris)


class TestQuality:
    def test_angles_sum_to_pi(self):
        mesh = square_two_triangles()
        angles = triangle_angles(mesh)
        assert np.allclose(angles.sum(axis=1), np.pi)

    def test_right_isoceles_angles(self):
        mesh = TriMesh([(0, 0), (1, 0), (0, 1)], [(0, 1, 2)])
        angles = np.sort(triangle_angles(mesh)[0])
        assert np.allclose(angles, [np.pi / 4, np.pi / 4, np.pi / 2])

    def test_min_angle(self):
        mesh = square_two_triangles()
        assert min_angle(mesh) == pytest.approx(np.pi / 4)

    def test_orientation_signs_all_positive(self):
        mesh = square_two_triangles()
        assert np.all(orientation_signs(mesh) > 0)

    def test_orientation_detects_fold(self):
        mesh = square_two_triangles()
        # Fold vertex 3 across the diagonal: triangle (0,2,3) flips.
        folded = mesh.with_vertices(
            np.array([(0, 0), (1, 0), (1, 1), (0.9, 0.2)])
        )
        # with_vertices re-normalises orientation, so test on a raw copy.
        verts = np.array([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.9, 0.2)])
        signs_area = []
        for tri in mesh.triangles:
            a, b, c = verts[tri]
            signs_area.append(
                np.sign((b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]))
            )
        assert -1 in signs_area

    def test_quality_report_fields(self):
        rep = quality_report(square_two_triangles())
        assert rep.triangle_count == 2
        assert rep.total_area == pytest.approx(1.0)
        assert rep.min_edge == pytest.approx(1.0)
        assert rep.max_edge == pytest.approx(np.sqrt(2))
        assert "triangles" in str(rep)


class TestFillHoles:
    def test_no_holes_is_identity(self):
        mesh = square_two_triangles()
        filled = fill_holes(mesh)
        assert filled.mesh is mesh
        assert filled.virtual_vertices == ()

    def test_annulus_filled_to_disk(self):
        mesh = annulus_mesh()
        filled = fill_holes(mesh)
        assert filled.mesh.is_topological_disk()
        assert len(filled.virtual_vertices) == 1
        assert filled.original_vertex_count == 8
        assert filled.mesh.vertex_count == 9

    def test_virtual_vertex_at_hole_centroid(self):
        mesh = annulus_mesh()
        filled = fill_holes(mesh)
        v = filled.mesh.vertices[filled.virtual_vertices[0]]
        assert np.allclose(v, [2.0, 2.0])

    def test_fan_covers_hole_area(self):
        mesh = annulus_mesh()
        filled = fill_holes(mesh)
        # Ring area 16 - 4 = 12 plus filled hole area 4 = 16.
        assert filled.mesh.triangle_areas().sum() == pytest.approx(16.0)

    def test_is_virtual_mask(self):
        filled = fill_holes(annulus_mesh())
        mask = filled.is_virtual
        assert mask.sum() == 1
        assert mask[8]

    def test_strip_virtual(self):
        filled = fill_holes(annulus_mesh())
        data = np.arange(9, dtype=float)[:, None] * np.ones((1, 2))
        stripped = filled.strip_virtual(data)
        assert stripped.shape == (8, 2)

    def test_original_vertices_unchanged(self):
        mesh = annulus_mesh()
        filled = fill_holes(mesh)
        assert np.allclose(filled.mesh.vertices[:8], mesh.vertices)

    def test_foi_mesh_fill(self, holed_foi_mesh):
        filled = fill_holes(holed_foi_mesh.mesh)
        assert filled.mesh.is_topological_disk()
        assert len(filled.virtual_vertices) == 1
