"""Convex hulls (Andrew's monotone chain).

Used to validate deployments, build bounding regions for Voronoi
clipping, and in tests as an independent oracle for convexity
properties.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.vec import as_points

__all__ = ["convex_hull"]


def convex_hull(points) -> np.ndarray:
    """Convex hull of a point set in CCW order.

    Collinear points on the hull boundary are dropped; the returned
    array contains only the hull's corner vertices.

    Parameters
    ----------
    points : (n, 2) array-like
        At least one point.

    Returns
    -------
    (h, 2) ndarray
        Hull vertices in CCW order.  For 1 or 2 distinct input points
        the (degenerate) hull is returned as-is with ``h in {1, 2}``.
    """
    pts = as_points(points)
    if len(pts) == 0:
        raise GeometryError("convex hull of an empty point set")
    uniq = np.unique(pts, axis=0)
    order = np.lexsort((uniq[:, 1], uniq[:, 0]))
    uniq = uniq[order]
    if len(uniq) <= 2:
        return uniq

    def _cross(o, a, b) -> float:
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    # Pop on non-left turns.  The comparison is exact (no epsilon): a
    # tolerance here can misclassify a genuinely-left near-collinear
    # turn and discard a required hull vertex, silently shrinking the
    # hull.  Exactly-collinear chains still collapse to their endpoints.
    lower: list[np.ndarray] = []
    for p in uniq:
        while len(lower) >= 2 and _cross(lower[-2], lower[-1], p) <= 0.0:
            lower.pop()
        lower.append(p)
    upper: list[np.ndarray] = []
    for p in uniq[::-1]:
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) <= 0.0:
            upper.pop()
        upper.append(p)
    hull = np.array(lower[:-1] + upper[:-1])
    if len(hull) < 3:
        return uniq[:2]
    return hull
