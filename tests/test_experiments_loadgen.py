"""Tests for the seeded open-loop load generator.

Determinism is the product here: the schedule must be a pure function
of the config, the canonical summary must be byte-identical across
repeated runs *and* across fleets with different worker counts, and
the correctness checks (dedup exactness, zero 5xx, Retry-After) must
actually be able to fail - the 429 test drives a deliberately
undersized fleet into overload and watches the contract hold.
"""

import time

import pytest

from repro.errors import ServiceError
from repro.experiments.loadgen import (
    LoadgenConfig,
    build_schedule,
    loadgen_passed,
    render_loadgen,
    run_loadgen,
    run_loadgen_fleet,
    summary_bytes,
)
from repro.service import PlanningService
from repro.service.jobs import job_id_for


def echo_runner(request):
    time.sleep(0.005)
    return {"echo": request, "format_version": 1}


class TestConfig:
    def test_validation(self):
        with pytest.raises(ServiceError):
            LoadgenConfig(clients=0)
        with pytest.raises(ServiceError):
            LoadgenConfig(duplicate_fraction=1.0)
        with pytest.raises(ServiceError):
            LoadgenConfig(arrival_rate_hz=0.0)
        with pytest.raises(ServiceError):
            LoadgenConfig(families=("nope",))

    def test_to_dict_excludes_client_behaviour_knobs(self):
        doc = LoadgenConfig().to_dict()
        assert "retries" not in doc
        assert "max_inflight" not in doc
        assert "timeout_s" not in doc


class TestSchedule:
    def test_deterministic_for_a_seed(self):
        config = LoadgenConfig(clients=100, seed=3)
        assert build_schedule(config) == build_schedule(config)

    def test_different_seed_different_traffic(self):
        a = build_schedule(LoadgenConfig(clients=100, seed=0))
        b = build_schedule(LoadgenConfig(clients=100, seed=1))
        assert {e["job_id"] for e in a} != {e["job_id"] for e in b}

    def test_unique_pool_size_is_exact(self):
        config = LoadgenConfig(clients=100, duplicate_fraction=0.75)
        schedule = build_schedule(config)
        assert len(schedule) == 100
        assert len({e["job_id"] for e in schedule}) == 25

    def test_zero_duplicates_every_request_unique(self):
        config = LoadgenConfig(clients=40, duplicate_fraction=0.0)
        schedule = build_schedule(config)
        assert len({e["job_id"] for e in schedule}) == 40

    def test_arrival_times_monotonic(self):
        schedule = build_schedule(LoadgenConfig(clients=50))
        times = [e["t"] for e in schedule]
        assert times == sorted(times)
        assert times[0] > 0.0

    def test_job_ids_are_content_addresses(self):
        for entry in build_schedule(LoadgenConfig(clients=20)):
            assert entry["job_id"] == job_id_for(entry["request"])

    def test_families_cycle_through_the_mix(self):
        config = LoadgenConfig(clients=40, duplicate_fraction=0.0)
        families = {e["family"] for e in build_schedule(config)}
        assert families == set(config.families)

    def test_stream_every_marks_the_cohort(self):
        config = LoadgenConfig(clients=30, stream_every=10)
        schedule = build_schedule(config)
        assert sum(1 for e in schedule if e["stream"]) == 3


class TestAgainstFleet:
    CFG = dict(
        clients=60,
        duplicate_fraction=0.6,
        arrival_rate_hz=500.0,
        seed=11,
        stream_every=15,
        timeout_s=60.0,
    )

    def test_all_checks_pass_and_dedup_is_exact(self):
        summary = run_loadgen_fleet(
            LoadgenConfig(**self.CFG), service_workers=2, runner=echo_runner
        )
        canonical = summary["canonical"]
        assert canonical["dedup_exact"]
        assert canonical["dedup_hits"] == (
            canonical["clients"] - canonical["uniques"]
        )
        assert canonical["jobs_created"] == canonical["uniques"]
        assert canonical["zero_5xx"]
        assert canonical["results_byte_identical"]
        assert canonical["all_clients_completed"]
        assert summary["drain"]["draining_announced"]
        assert summary["drain"]["rejects_new_work"]
        assert summary["timing"]["streamed_events"] > 0
        assert loadgen_passed(summary)

    def test_byte_identical_across_runs_and_worker_counts(self):
        config = LoadgenConfig(**self.CFG)
        runs = [
            run_loadgen_fleet(config, service_workers=n, runner=echo_runner)
            for n in (1, 2, 1)
        ]
        payloads = {summary_bytes(s) for s in runs}
        assert len(payloads) == 1

    def test_429_under_overload_is_correct_not_fatal(self):
        config = LoadgenConfig(
            clients=12,
            duplicate_fraction=0.0,
            arrival_rate_hz=1000.0,
            seed=5,
            timeout_s=60.0,
        )

        def slow_runner(request):
            time.sleep(0.25)
            return {"echo": request, "format_version": 1}

        summary = run_loadgen_fleet(
            config,
            service_workers=1,
            dispatchers=1,
            capacity=3,
            runner=slow_runner,
        )
        assert summary["timing"]["rejected_429"] > 0
        assert summary["canonical"]["retry_after_correct"]
        assert summary["canonical"]["zero_5xx"]
        assert summary["canonical"]["all_clients_completed"]
        assert loadgen_passed(summary)

    def test_1000_concurrent_clients_against_2_shard_fleet(self):
        """The acceptance-criterion scale: >=1000 clients, 2 shards.

        The planner is swapped for a deterministic echo runner so the
        test exercises the serving stack (admission, routing, dedup,
        backpressure, result fan-out) at full scale without paying for
        1000 real solves.
        """
        config = LoadgenConfig(
            clients=1000,
            duplicate_fraction=0.9,
            arrival_rate_hz=2000.0,
            seed=7,
            stream_every=100,
            timeout_s=120.0,
        )
        summary = run_loadgen_fleet(
            config, service_workers=2, runner=echo_runner
        )
        canonical = summary["canonical"]
        assert canonical["clients"] == 1000
        assert canonical["uniques"] == 100
        assert canonical["dedup_hits"] == 900
        assert canonical["dedup_exact"]
        assert canonical["zero_5xx"]
        assert canonical["retry_after_correct"]
        assert canonical["all_clients_completed"]
        assert canonical["results_byte_identical"]
        assert loadgen_passed(summary)

    def test_attach_mode_against_running_service(self):
        config = LoadgenConfig(
            clients=20, duplicate_fraction=0.5, seed=2, timeout_s=30.0
        )
        with PlanningService(
            port=0, service_workers=2, dispatchers=2, runner=echo_runner
        ) as svc:
            summary = run_loadgen(config, port=svc.port)
        assert summary["canonical"]["dedup_exact"]
        assert "drain" not in summary
        assert loadgen_passed(summary)


class TestRendering:
    def test_render_and_canonical_bytes(self):
        summary = run_loadgen_fleet(
            LoadgenConfig(clients=15, seed=1, timeout_s=30.0),
            service_workers=1,
            runner=echo_runner,
        )
        text = render_loadgen(summary)
        assert "loadgen: 15 clients" in text
        assert "p99 ms" in text
        assert "canonical digest" in text
        assert b"timing" not in summary_bytes(summary)
        assert b"canonical" in summary_bytes(summary)


class TestCli:
    def test_loadgen_attach_mode_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        with PlanningService(
            port=0, service_workers=2, dispatchers=2, runner=echo_runner
        ) as svc:
            out = tmp_path / "load.json"
            code = main([
                "loadgen",
                "--port", str(svc.port),
                "--clients", "16",
                "--seed", "4",
                "--output", str(out),
            ])
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "[ok] dedup exact" in captured
