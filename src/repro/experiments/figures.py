"""Figure generation: render sweep results as the paper's plot panels.

Produces the fourth-row (total moving distance, normalised to the
Hungarian optimum) and fifth-row (total stable link ratio) panels of
Figs. 3-5 as SVG line charts from a :class:`SweepResult`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.experiments.harness import SweepResult, sweep_many
from repro.experiments.scenarios import get_scenario
from repro.viz.chart import LineChart

__all__ = ["write_sweep_figures", "write_all_sweep_figures"]


def write_sweep_figures(
    sweep: SweepResult,
    directory,
    methods: Sequence[str] = ("ours (a)", "ours (b)", "direct translation", "Hungarian"),
) -> list[Path]:
    """Write the two figure panels for one scenario sweep.

    Parameters
    ----------
    sweep : SweepResult
    directory : path-like
        Output directory (created if needed).
    methods : sequence of str
        Methods to plot, in the fixed palette order.

    Returns
    -------
    list of Path
        ``[<dir>/scenario<k>_distance_ratio.svg, <dir>/scenario<k>_stable_links.svg]``
    """
    out = Path(directory)
    seps = sweep.separations
    written: list[Path] = []

    distance = LineChart(
        title=f"Scenario {sweep.scenario_id}: total moving distance "
        "(normalised to Hungarian)",
        x_label="M1-M2 separation (x communication range)",
        y_label="D / D_Hungarian",
    )
    for m in methods:
        distance.add_series(m, seps, sweep.series("distance_ratio", m))
    written.append(out / f"scenario{sweep.scenario_id}_distance_ratio.svg")
    distance.save(written[-1])

    links = LineChart(
        title=f"Scenario {sweep.scenario_id}: total stable link ratio",
        x_label="M1-M2 separation (x communication range)",
        y_label="stable link ratio L",
        y_range=(0.0, 1.05),
    )
    for m in methods:
        links.add_series(m, seps, sweep.series("stable_link_ratio", m))
    written.append(out / f"scenario{sweep.scenario_id}_stable_links.svg")
    links.save(written[-1])
    return written


def write_all_sweep_figures(
    scenario_ids: Sequence[int],
    directory,
    separation_factors=(10.0, 40.0, 70.0, 100.0),
    methods: Sequence[str] = ("ours (a)", "ours (b)", "direct translation", "Hungarian"),
    workers: int | None = None,
    backend: str = "process",
    **run_kwargs,
) -> list[Path]:
    """Sweep several scenarios (optionally in parallel) and write all panels.

    The sweeps fan out one worker task per scenario through
    :class:`repro.exec.ParallelMap`; rendering happens in the parent, in
    scenario order, so the emitted SVG bytes are identical for any
    ``workers`` count.
    """
    sweeps = sweep_many(
        [get_scenario(sid) for sid in scenario_ids],
        separation_factors=separation_factors,
        methods=methods,
        workers=workers,
        backend=backend,
        **run_kwargs,
    )
    written: list[Path] = []
    for sweep in sweeps:
        written.extend(write_sweep_figures(sweep, directory, methods))
    return written
