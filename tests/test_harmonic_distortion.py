"""Tests for the stretch/distortion analysis."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.harmonic import edge_stretch, stretch_report


SQUARE_EDGES = np.array([[0, 1], [1, 2], [2, 3], [3, 0]])
SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


class TestEdgeStretch:
    def test_identity_map(self):
        r = edge_stretch(SQUARE_EDGES, SQUARE, SQUARE)
        assert np.allclose(r, 1.0)

    def test_uniform_scaling(self):
        r = edge_stretch(SQUARE_EDGES, SQUARE, 3.0 * SQUARE)
        assert np.allclose(r, 3.0)

    def test_anisotropic_scaling(self):
        image = SQUARE * np.array([2.0, 0.5])
        r = edge_stretch(SQUARE_EDGES, SQUARE, image)
        assert sorted(np.round(r, 6).tolist()) == [0.5, 0.5, 2.0, 2.0]

    def test_degenerate_source_edge_inf(self):
        src = SQUARE.copy()
        src[1] = src[0]
        r = edge_stretch(SQUARE_EDGES, src, SQUARE)
        assert np.isinf(r[0])

    def test_count_mismatch(self):
        with pytest.raises(MappingError):
            edge_stretch(SQUARE_EDGES, SQUARE, SQUARE[:3])


class TestStretchReport:
    def test_summary_fields(self):
        image = SQUARE * np.array([2.0, 1.0])
        rep = stretch_report(SQUARE_EDGES, SQUARE, image, threshold=1.5)
        assert rep.max_stretch == pytest.approx(2.0)
        assert rep.median_stretch == pytest.approx(1.5)
        assert rep.stretched_fraction == pytest.approx(0.5)

    def test_breaking_edges(self):
        image = SQUARE * 5.0
        rep = stretch_report(SQUARE_EDGES, SQUARE, image)
        lengths = np.ones(4)
        # Image edges are 5 long; range 4 breaks them all.
        assert rep.breaking_edges(lengths, comm_range=4.0).all()
        assert not rep.breaking_edges(lengths, comm_range=6.0).any()

    def test_all_degenerate_raises(self):
        src = np.zeros((4, 2))
        with pytest.raises(MappingError):
            stretch_report(SQUARE_EDGES, src, SQUARE)

    def test_harmonic_march_stretch_is_bounded(self, m1_small_swarm):
        """The planner's march should stretch the median link only
        mildly (the least-stretched-map property showing up end to end)."""
        from repro.coverage import LloydConfig
        from repro.foi import m2_scenario1
        from repro.marching import MarchingConfig, MarchingPlanner
        from repro.network import extract_triangulation

        m2 = m2_scenario1().translated((2500.0, 0.0))
        cfg = MarchingConfig(
            foi_target_points=220,
            lloyd=LloydConfig(grid_target=800, max_iterations=20),
        )
        result = MarchingPlanner(cfg).plan(m1_small_swarm, m2)
        mesh, vmap = extract_triangulation(
            m1_small_swarm.positions, m1_small_swarm.radio.comm_range
        )
        rep = stretch_report(
            mesh.edges,
            m1_small_swarm.positions[vmap],
            result.march_targets[vmap],
        )
        assert rep.median_stretch < 1.5
