"""Greedy nearest-target matching (extra baseline, not in the paper).

A cheap O(n^2 log n) alternative to the Hungarian matching: repeatedly
match the globally closest (robot, target) pair.  Used by the ablation
benchmarks to quantify how much optimality the exact matching buys, and
by tests as a sanity upper bound on the Hungarian cost.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.baselines.plans import BaselinePlan
from repro.errors import PlanningError
from repro.geometry.vec import as_points, pairwise_distances
from repro.robots.transition import straight_transition

__all__ = ["greedy_matching", "greedy_plan"]


def greedy_matching(starts, targets) -> np.ndarray:
    """Assignment built by repeatedly taking the closest unmatched pair."""
    p = as_points(starts)
    q = as_points(targets)
    if len(p) != len(q):
        raise PlanningError("starts and targets must have equal size")
    n = len(p)
    d = pairwise_distances(p, q)
    heap = [(float(d[i, j]), i, j) for i in range(n) for j in range(n)]
    heapq.heapify(heap)
    assignment = -np.ones(n, dtype=int)
    used_targets = np.zeros(n, dtype=bool)
    matched = 0
    while heap and matched < n:
        _, i, j = heapq.heappop(heap)
        if assignment[i] >= 0 or used_targets[j]:
            continue
        assignment[i] = j
        used_targets[j] = True
        matched += 1
    return assignment


def greedy_plan(starts, target_positions, t_end: float = 1.0) -> BaselinePlan:
    """Straight-line transition along the greedy matching."""
    p = as_points(starts)
    q = as_points(target_positions)
    assignment = greedy_matching(p, q)
    finals = q[assignment]
    return BaselinePlan(
        name="greedy matching",
        assignment=assignment,
        final_positions=finals,
        trajectory=straight_transition(p, finals, 0.0, t_end),
    )
