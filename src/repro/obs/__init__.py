"""Zero-dependency observability layer: tracing, metrics, JSONL events.

Three pieces, designed to cost nothing when unused:

* :class:`Tracer` - nestable wall-time spans with attributes.  Library
  code opens spans through the ambient :func:`span` helper; the default
  ambient tracer is a no-op, so instrumentation is free until a caller
  activates a real tracer with :func:`activate`.
* :class:`Metrics` - a thread-safe registry of counters, gauges and
  histograms, likewise reachable ambiently via :func:`get_metrics`.
* :class:`JsonlSink` - a structured JSON-lines event sink; give one to
  a ``Tracer`` and every span lands in the file as it closes (this is
  what the CLI's ``--trace out.jsonl`` wires up).

Typical use::

    from repro import obs

    tracer = obs.Tracer(sink=obs.JsonlSink("out.jsonl"))
    with obs.activate(tracer):
        result = MarchingPlanner().plan(swarm, target)
    print(tracer.phase_timings())

Span names follow the dotted ``<layer>.<operation>`` convention; the
planner's Fig. 2 stages are all under the ``plan.`` prefix.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    activate_metrics,
    get_metrics,
    set_metrics,
)
from repro.obs.sink import JsonlSink, read_jsonl
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    activate,
    get_tracer,
    set_tracer,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "activate_metrics",
    "get_metrics",
    "set_metrics",
    "JsonlSink",
    "read_jsonl",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanRecord",
    "Tracer",
    "activate",
    "get_tracer",
    "set_tracer",
    "span",
]
