"""E6 - Fig. 5(a) rows 4-5: scenario 6 (hole-bearing M1 -> hole-bearing M2)."""

from _shared import assert_paper_shape, get_sweep, print_sweep


def test_fig5a_scenario6(benchmark):
    sweep = benchmark.pedantic(get_sweep, args=(6,), rounds=1, iterations=1)
    print_sweep(sweep)
    assert_paper_shape(sweep)
