"""E8 - Table I: global connectivity Y/N per method per scenario.

The paper's table shows Y for both of our methods in all seven
scenarios, N for Hungarian everywhere, and N for direct translation in
scenarios 2, 6, 7.  Our guarantee (the repair of Sec. III-D1) is
asserted hard; the baselines' entries are *measured* on our parametric
scenario shapes and printed - whether a given baseline run loses
connectivity depends on the exact hand-drawn geometry, so only our
methods' column is a correctness requirement.
"""

from _shared import SEPARATIONS, get_sweep

from repro.experiments import DEFAULT_METHODS, format_table

ALL_SCENARIOS = (1, 2, 3, 4, 5, 6, 7)


def _collect():
    rows = []
    baseline_failures = 0
    for sid in ALL_SCENARIOS:
        sweep = get_sweep(sid)
        # Table I uses one transition per scenario; the paper does not
        # pin the separation, we report the worst case over the sweep.
        flags = {}
        for method in DEFAULT_METHODS:
            ok = all(pt.connected[method] for pt in sweep.points)
            flags[method] = "Y" if ok else "N"
            if method in ("direct translation", "Hungarian") and not ok:
                baseline_failures += 1
        rows.append([f"Scenario {sid}"] + [flags[m] for m in DEFAULT_METHODS])
    return rows, baseline_failures


def test_table1_global_connectivity(benchmark):
    rows, baseline_failures = benchmark.pedantic(
        _collect, rounds=1, iterations=1
    )
    print()
    print("TABLE I. GLOBAL CONNECTIVITY DURING TRANSITION PROCEDURE")
    print(f"(worst case over separations {SEPARATIONS} x r_c)")
    print(format_table(["Scenario"] + list(DEFAULT_METHODS), rows))
    # Hard guarantee: our methods are Y in every scenario.
    for row in rows:
        assert row[1] == "Y", f"{row[0]}: ours (a) lost connectivity"
        assert row[2] == "Y", f"{row[0]}: ours (b) lost connectivity"
