"""Counters, gauges and histograms with a thread-safe in-memory backend.

The metrics half of the observability layer: named instruments that
instrumented code bumps as it runs::

    get_metrics().counter("distributed.messages_delivered").inc(37)
    get_metrics().gauge("repair.rounds").set(2)
    get_metrics().histogram("harmonic.iterations").observe(412)

Instruments are created on first use and shared by name.  All updates
take the registry's lock, which is fine at the library's granularity:
instruments are bumped per stage / per protocol run, never inside
numerical inner loops.

Like the tracer, the registry is ambient: :func:`get_metrics` returns
the registry installed by :func:`activate_metrics` (or a process-wide
default), so library code never threads a registry through call
signatures.
"""

from __future__ import annotations

import contextvars
import threading
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "get_metrics",
    "set_metrics",
    "activate_metrics",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "counter", "name": self.name, "value": self._value}


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "gauge", "name": self.name, "value": self._value}


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean)."""

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = lock

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            self.count += 1
            self.total += v
            self.min = v if self.min is None else min(self.min, v)
            self.max = v if self.max is None else max(self.max, v)

    def absorb(self, payload: dict[str, Any]) -> None:
        """Fold another histogram's ``to_dict`` payload into this one."""
        count = int(payload.get("count", 0))
        if count <= 0:
            return
        other_min = payload.get("min")
        other_max = payload.get("max")
        with self._lock:
            self.count += count
            self.total += float(payload.get("total", 0.0))
            if other_min is not None:
                self.min = other_min if self.min is None else min(self.min, other_min)
            if other_max is not None:
                self.max = other_max if self.max is None else max(self.max, other_max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "histogram",
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class Metrics:
    """A registry of named instruments (get-or-create semantics).

    Asking for an existing name with a different instrument kind raises
    ``TypeError`` - instrument names are unique across kinds.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, cls) -> Any:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name, self._lock)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All instruments as plain dicts, keyed by name (sorted)."""
        with self._lock:
            insts = list(self._instruments.values())
        return {inst.name: inst.to_dict() for inst in sorted(insts, key=lambda i: i.name)}

    def merge(self, snapshot: dict[str, dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters add, gauges take the incoming value, histograms absorb
        the incoming summary.  This is how per-worker registries from
        :class:`repro.exec.ParallelMap` land back in the parent; merging
        snapshots in task order keeps the combined registry
        deterministic regardless of worker scheduling.
        """
        for name in sorted(snapshot):
            payload = snapshot[name]
            kind = payload.get("kind")
            if kind == "counter":
                self.counter(name).inc(float(payload.get("value", 0.0)))
            elif kind == "gauge":
                self.gauge(name).set(float(payload.get("value", 0.0)))
            elif kind == "histogram":
                self.histogram(name).absorb(payload)

    def reset(self) -> None:
        """Drop every instrument (fresh registry state)."""
        with self._lock:
            self._instruments.clear()


_DEFAULT = Metrics()
_ACTIVE: contextvars.ContextVar[Metrics] = contextvars.ContextVar(
    "repro_active_metrics", default=_DEFAULT
)


def get_metrics() -> Metrics:
    """The currently active (ambient) metrics registry."""
    return _ACTIVE.get()


def set_metrics(metrics: Metrics | None) -> None:
    """Install ``metrics`` as the ambient registry (None -> default)."""
    _ACTIVE.set(metrics if metrics is not None else _DEFAULT)


@contextmanager
def activate_metrics(metrics: Metrics | None) -> Iterator[Metrics]:
    """Scope ``metrics`` as the ambient registry for a ``with`` block."""
    resolved = metrics if metrics is not None else _DEFAULT
    token = _ACTIVE.set(resolved)
    try:
        yield resolved
    finally:
        _ACTIVE.reset(token)
