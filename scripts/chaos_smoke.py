#!/usr/bin/env python
"""CI smoke test for the fault-injection subsystem.

Runs ``python -m repro chaos`` twice (once serial, once with two
workers) over a small fixed-seed scenario x archetype matrix, through
a real process boundary, and asserts the resilience contract:

1. both invocations exit 0,
2. the two summary files are byte-identical (the determinism
   contract: same seeds => same recovery-metrics summary, regardless
   of worker count or process),
3. every case ends in exactly one of the two allowed outcomes
   (``recovered`` or ``unrecoverable`` with a typed stage), and
4. every recovered case reports ``connected_all`` - Definition-2 held
   at every sampled instant of every post-replan trajectory.

Run:  PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

MATRIX = [
    "--scenarios", "1", "2",
    "--archetypes", "single", "cascade", "stuck",
    "--seeds", "0",
]


def run_chaos(output: Path, workers: int) -> None:
    cmd = [
        sys.executable, "-m", "repro", "chaos",
        *MATRIX,
        "--workers", str(workers),
        "--output", str(output),
    ]
    print(f"$ {' '.join(cmd)}")
    proc = subprocess.run(cmd, text=True, capture_output=True)
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    assert proc.returncode == 0, f"exit code {proc.returncode}"


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        serial = Path(tmp) / "serial.json"
        parallel = Path(tmp) / "parallel.json"
        run_chaos(serial, workers=1)
        run_chaos(parallel, workers=2)

        a, b = serial.read_bytes(), parallel.read_bytes()
        assert a == b, "chaos summaries differ between worker counts"
        print(f"byte-identical summaries: {len(a)} bytes")

        doc = json.loads(a)
        agg = doc["summary"]
        assert agg["cases"] == len(doc["cases"]) > 0, agg
        for case in doc["cases"]:
            outcome = case["outcome"]
            assert outcome in ("recovered", "unrecoverable"), case
            if outcome == "recovered":
                assert case["metrics"]["connected_all"], case
            else:
                assert case["stage"], case
        assert agg["recovered"] + agg["unrecoverable"] == agg["cases"]
        assert agg["recovered"] > 0, "no case recovered - broken executor?"
        print(
            f"{agg['recovered']}/{agg['cases']} recovered, "
            f"{agg['replans_total']} replans; recovery metrics present"
        )
    print("chaos smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
