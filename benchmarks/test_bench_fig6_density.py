"""E9 - Fig. 6: density-adaptive deployment near a hot hole.

The modified scenario of Sec. IV-E: 144 robots redeploy from M1 into
the flower-pond FoI (Fig. 2(d)) with the requirement "the closer to the
hole, the more mobile robots are needed".  The benchmark compares the
robot count within one communication range of the hole under uniform vs
hole-proximity density and asserts the density visibly concentrates the
deployment.
"""

import numpy as np

from repro.coverage import hole_proximity_density
from repro.experiments import get_scenario
from repro.foi import m1_base, m2_scenario3
from repro.marching import MarchingConfig, MarchingPlanner
from repro.coverage import LloydConfig
from repro.robots import RadioSpec, Swarm

CFG = MarchingConfig(
    foi_target_points=320, lloyd=LloydConfig(grid_target=1400, max_iterations=50)
)


def _run():
    spec = get_scenario(3)
    radio = RadioSpec.from_comm_range(spec.comm_range)
    m1, m2 = spec.build(separation_factor=20.0)
    swarm = Swarm.deploy_lattice(m1, spec.robot_count, radio)
    planner = MarchingPlanner(CFG)
    uniform = planner.plan(swarm, m2)
    hot = planner.plan(
        swarm, m2, density=hole_proximity_density(m2, sigma=120.0, peak=6.0)
    )
    r = spec.comm_range

    def near(res):
        return int((m2.hole_distances(res.final_positions) <= r).sum())

    return near(uniform), near(hot), uniform, hot, m2


def test_fig6_density_adaptive(benchmark):
    near_uniform, near_hot, uniform, hot, m2 = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    print(f"\nFig. 6 - robots within one r_c of the hot hole "
          f"(n = {len(uniform.final_positions)}):")
    print(f"  uniform density        : {near_uniform}")
    print(f"  hole-proximity density : {near_hot}")
    # The density function must concentrate robots near the hole...
    assert near_hot > near_uniform
    # ... while the deployment stays inside the free region.
    assert m2.contains(hot.final_positions).all()
    # And both runs keep every robot out of the hole interior.
    hole = m2.holes[0]
    assert not hole.contains(hot.final_positions, include_boundary=False).any()
