"""Constructive reproductions of Lemma 1 and Lemma 2 (Fig. 1).

Lemma 1: maximising the stable link ratio ``L`` and minimising the
total moving distance ``D`` cannot both be achieved - shown on the
paper's seven-robot example (slim horizontal lattice to slim vertical
lattice, Fig. 1(a)).

Lemma 2: local connectivity cannot be fully preserved in general -
shown on the paper's hexagon-plus-centre to line example (Fig. 1(b)),
verified here *exhaustively* over all 5040 assignments.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np

from repro.baselines.hungarian import min_cost_matching, matching_cost
from repro.network.links import links_alive
from repro.network.udg import udg_edges

__all__ = [
    "Lemma1Example",
    "Lemma2Example",
    "lemma1_example",
    "lemma2_example",
]


@dataclass(frozen=True)
class Lemma1Example:
    """The Fig. 1(a) construction and its measured trade-off.

    Attributes
    ----------
    starts, targets : (7, 2) ndarray
        Horizontal and vertical lattice positions.
    link_preserving_assignment : (7,) int ndarray
        The order-preserving map (A->a, ..., G->g).
    min_distance_assignment : (7,) int ndarray
        The Hungarian matching.
    preserving_distance, min_distance : float
        Total moving distance of each.
    preserving_links, min_distance_links : int
        Links (of the start configuration) surviving each assignment.
    """

    starts: np.ndarray
    targets: np.ndarray
    link_preserving_assignment: np.ndarray
    min_distance_assignment: np.ndarray
    preserving_distance: float
    min_distance: float
    preserving_links: int
    min_distance_links: int

    @property
    def tradeoff_holds(self) -> bool:
        """Whether the example exhibits the Lemma-1 contradiction."""
        return (
            self.min_distance < self.preserving_distance
            and self.min_distance_links < self.preserving_links
        )


def _two_row_lattice(n: int, spacing: float) -> np.ndarray:
    """Seven-robot slim triangular lattice: 4 on one row, 3 staggered."""
    h = spacing * np.sqrt(3.0) / 2.0
    top = [(i * spacing, h) for i in range(4)]
    bottom = [(spacing / 2.0 + i * spacing, 0.0) for i in range(3)]
    return np.array(top + bottom)[:n]


def lemma1_example(spacing: float = 1.0, comm_range: float | None = None) -> Lemma1Example:
    """Build Fig. 1(a) and measure both assignments.

    Parameters
    ----------
    spacing : float
        Lattice edge length.
    comm_range : float, optional
        Defaults to ``1.05 * spacing`` (robots connected exactly to
        lattice neighbours).
    """
    rc = comm_range if comm_range is not None else 1.05 * spacing
    starts = _two_row_lattice(7, spacing)
    # The vertical lattice: same shape rotated 90 degrees, far to the right.
    targets = starts @ np.array([[0.0, 1.0], [-1.0, 0.0]]) + np.array([6.0 * spacing, 0.0])

    identity = np.arange(7)
    hungarian = min_cost_matching(starts, targets)
    links = udg_edges(starts, rc)

    def surviving(assignment: np.ndarray) -> int:
        finals = targets[assignment]
        return int(
            (links_alive(links, finals, rc) & links_alive(links, starts, rc)).sum()
        )

    return Lemma1Example(
        starts=starts,
        targets=targets,
        link_preserving_assignment=identity,
        min_distance_assignment=hungarian,
        preserving_distance=matching_cost(starts, targets, identity),
        min_distance=matching_cost(starts, targets, hungarian),
        preserving_links=surviving(identity),
        min_distance_links=surviving(hungarian),
    )


@dataclass(frozen=True)
class Lemma2Example:
    """The Fig. 1(b) construction with its exhaustive verdict.

    Attributes
    ----------
    starts : (7, 2) ndarray
        Hexagon plus centre.
    targets : (7, 2) ndarray
        Vertical line.
    total_links : int
        Links in the start configuration (12: 6 rim + 6 spokes).
    best_preserved : int
        Maximum links preserved over all 5040 assignments.
    best_assignment : (7,) int ndarray
    """

    starts: np.ndarray
    targets: np.ndarray
    total_links: int
    best_preserved: int
    best_assignment: np.ndarray

    @property
    def full_preservation_impossible(self) -> bool:
        """Lemma 2's claim, verified exhaustively."""
        return self.best_preserved < self.total_links


def lemma2_example(spacing: float = 1.0, comm_range: float | None = None) -> Lemma2Example:
    """Build Fig. 1(b) and search all assignments exhaustively."""
    rc = comm_range if comm_range is not None else 1.05 * spacing
    angles = np.arange(6) * np.pi / 3.0
    hexagon = spacing * np.column_stack([np.cos(angles), np.sin(angles)])
    starts = np.vstack([[0.0, 0.0], hexagon])
    targets = np.column_stack(
        [np.full(7, 10.0 * spacing), spacing * (np.arange(7) - 3.0)]
    )
    links = udg_edges(starts, rc)
    start_alive = links_alive(links, starts, rc)

    best_preserved = -1
    best_assignment = np.arange(7)
    for perm in permutations(range(7)):
        finals = targets[list(perm)]
        preserved = int((links_alive(links, finals, rc) & start_alive).sum())
        if preserved > best_preserved:
            best_preserved = preserved
            best_assignment = np.array(perm)
    return Lemma2Example(
        starts=starts,
        targets=targets,
        total_links=len(links),
        best_preserved=best_preserved,
        best_assignment=best_assignment,
    )
