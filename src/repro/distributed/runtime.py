"""Synchronous-round message-passing simulator.

The paper's algorithms are distributed: robots exchange messages with
one-range neighbours (boundary-loop hop counting, flooding of link
statistics, isolated-subgroup detection).  This runtime simulates that
execution model faithfully enough to validate the protocols:

* Nodes hold local state and a ``handle`` callback.
* Time advances in *rounds*; messages sent in round ``k`` are delivered
  at the start of round ``k + 1``, only along edges of the current
  communication topology.
* Nodes may only address direct neighbours (no global channels), and a
  node learns its neighbour set only through the runtime.

Protocols are deliberately written against this narrow API so that the
"fully distributed" claims of Sec. III are backed by running code, with
the centralized implementations in the rest of the library acting as
oracles in the test suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ProtocolError
from repro.obs import get_metrics, span

__all__ = ["Message", "Node", "SyncNetwork"]


@dataclass(frozen=True)
class Message:
    """One message in flight.

    Attributes
    ----------
    sender, receiver : int
        Node IDs; the runtime enforces that they are neighbours when
        the message is sent.
    kind : str
        Protocol-defined tag.
    payload : Any
        Protocol-defined content (kept immutable by convention).
    """

    sender: int
    receiver: int
    kind: str
    payload: Any = None


class Node:
    """A protocol participant: local state plus a message handler.

    Subclasses (or instances configured with callbacks) implement
    ``on_round``; the runtime calls it once per round with the messages
    delivered this round and a ``send`` function restricted to current
    neighbours.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = int(node_id)
        self.state: dict[str, Any] = {}
        self.halted = False

    def on_start(self, api: "NodeApi") -> None:
        """Called once before round 0; override to initiate messages."""

    def on_round(self, api: "NodeApi", inbox: Sequence[Message]) -> None:
        """Called every round with this round's delivered messages."""
        raise NotImplementedError

    def halt(self) -> None:
        """Mark this node as finished; it receives no further callbacks."""
        self.halted = True


@dataclass
class NodeApi:
    """The runtime services visible to one node during one round.

    Attributes
    ----------
    node_id : int
    round_index : int
    neighbors : tuple[int, ...]
        Current one-range neighbours.
    """

    node_id: int
    round_index: int
    neighbors: tuple[int, ...]
    _outbox: list[Message] = field(default_factory=list)

    def send(self, receiver: int, kind: str, payload: Any = None) -> None:
        """Queue a message to a direct neighbour for the next round.

        Raises
        ------
        ProtocolError
            If ``receiver`` is not a current neighbour.
        """
        if receiver not in self.neighbors:
            raise ProtocolError(
                f"node {self.node_id} tried to message non-neighbour {receiver}"
            )
        self._outbox.append(
            Message(sender=self.node_id, receiver=int(receiver), kind=kind, payload=payload)
        )

    def broadcast(self, kind: str, payload: Any = None) -> None:
        """Send the same message to every current neighbour."""
        for w in self.neighbors:
            self.send(w, kind, payload)


class SyncNetwork:
    """Drives a set of nodes over a (possibly time-varying) topology.

    Parameters
    ----------
    nodes : sequence of Node
        Node ``i`` must have ``node_id == i``.
    topology : callable(round_index) -> adjacency
        Returns per-node neighbour lists for the round.  A static
        topology can be passed as a plain adjacency list.
    loss_rate : float
        Probability that any individual message is silently dropped in
        transit (independent per message).  Defaults to 0 (reliable
        links); protocols claiming robustness are tested against
        positive rates.
    seed : int
        Seed of the loss process, so lossy runs are reproducible.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        topology: Callable[[int], Sequence[Sequence[int]]] | Sequence[Sequence[int]],
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.nodes = list(nodes)
        for i, node in enumerate(self.nodes):
            if node.node_id != i:
                raise ProtocolError(f"node at index {i} has id {node.node_id}")
        if callable(topology):
            self._topology = topology
        else:
            static = [tuple(int(w) for w in nbrs) for nbrs in topology]
            if len(static) != len(self.nodes):
                raise ProtocolError("topology size does not match node count")
            self._topology = lambda _round: static
        if not 0.0 <= loss_rate < 1.0:
            raise ProtocolError("loss_rate must be in [0, 1)")
        self.loss_rate = float(loss_rate)
        self._loss_rng = random.Random(seed)
        self.round_index = -1
        self._pending: list[Message] = []
        self.delivered_messages = 0
        self.dropped_messages = 0

    # ------------------------------------------------------------------

    def _adjacency(self) -> list[tuple[int, ...]]:
        adj = self._topology(max(self.round_index, 0))
        if len(adj) != len(self.nodes):
            raise ProtocolError("topology size does not match node count")
        return [tuple(int(w) for w in nbrs) for nbrs in adj]

    def run(self, max_rounds: int = 10_000) -> int:
        """Run until every node halts or no message is in flight.

        Returns the number of rounds executed.

        Raises
        ------
        ProtocolError
            If ``max_rounds`` is exceeded (livelock guard).
        """
        with span("distributed.network_run", nodes=len(self.nodes)) as sp_:
            delivered_at_start = self.delivered_messages
            dropped_at_start = self.dropped_messages
            rounds = self._run_rounds(max_rounds)
            delivered = self.delivered_messages - delivered_at_start
            dropped = self.dropped_messages - dropped_at_start
            sp_.set_attributes(
                rounds=rounds, delivered=delivered, dropped=dropped
            )
        m = get_metrics()
        m.counter("distributed.rounds").inc(rounds)
        m.counter("distributed.messages_delivered").inc(delivered)
        if dropped:
            m.counter("distributed.messages_dropped").inc(dropped)
        return rounds

    def _run_rounds(self, max_rounds: int) -> int:
        adj = self._adjacency()
        self.round_index = 0
        for i, node in enumerate(self.nodes):
            api = NodeApi(node_id=i, round_index=0, neighbors=adj[i])
            node.on_start(api)
            self._pending.extend(api._outbox)

        rounds = 0
        while rounds < max_rounds:
            if all(n.halted for n in self.nodes):
                return rounds
            if not self._pending and rounds > 0:
                # Quiescence: nothing in flight and nobody spoke last round.
                return rounds
            rounds += 1
            self.round_index = rounds
            adj = self._adjacency()
            inboxes: dict[int, list[Message]] = {}
            for msg in self._pending:
                # Deliver only if the link still exists this round and
                # the loss process spares the message.
                if msg.sender not in adj[msg.receiver]:
                    continue
                if self.loss_rate > 0 and self._loss_rng.random() < self.loss_rate:
                    self.dropped_messages += 1
                    continue
                inboxes.setdefault(msg.receiver, []).append(msg)
                self.delivered_messages += 1
            self._pending = []
            for i, node in enumerate(self.nodes):
                if node.halted:
                    continue
                api = NodeApi(node_id=i, round_index=rounds, neighbors=adj[i])
                node.on_round(api, inboxes.get(i, []))
                self._pending.extend(api._outbox)
        raise ProtocolError(f"protocol did not terminate within {max_rounds} rounds")
