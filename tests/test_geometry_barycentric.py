"""Property-based tests for barycentric coordinates (paper Appendix A)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    barycentric_coords,
    barycentric_coords_many,
    from_barycentric,
    point_in_triangle,
    triangle_area,
)

coord = st.floats(-50, 50, allow_nan=False, allow_infinity=False)
pt = st.tuples(coord, coord)


def nondegenerate(a, b, c, min_area=1e-3):
    return abs(triangle_area(a, b, c)) > min_area


class TestTriangleArea:
    def test_unit_right_triangle(self):
        assert triangle_area([0, 0], [1, 0], [0, 1]) == pytest.approx(0.5)

    def test_orientation_sign(self):
        assert triangle_area([0, 0], [0, 1], [1, 0]) == pytest.approx(-0.5)

    def test_degenerate_zero(self):
        assert triangle_area([0, 0], [1, 1], [2, 2]) == pytest.approx(0.0)


class TestBarycentric:
    def test_vertices_are_unit_coordinates(self):
        a, b, c = [0, 0], [2, 0], [0, 2]
        assert np.allclose(barycentric_coords(a, a, b, c), [1, 0, 0])
        assert np.allclose(barycentric_coords(b, a, b, c), [0, 1, 0])
        assert np.allclose(barycentric_coords(c, a, b, c), [0, 0, 1])

    def test_centroid(self):
        a, b, c = [0, 0], [3, 0], [0, 3]
        t = barycentric_coords([1, 1], a, b, c)
        assert np.allclose(t, [1 / 3, 1 / 3, 1 / 3])

    def test_degenerate_raises(self):
        with pytest.raises(GeometryError):
            barycentric_coords([0, 0], [0, 0], [1, 1], [2, 2])

    @given(pt, pt, pt, pt)
    @settings(max_examples=200)
    def test_sum_to_one_and_roundtrip(self, p, a, b, c):
        assume(nondegenerate(a, b, c))
        t = barycentric_coords(p, a, b, c)
        assert t.sum() == pytest.approx(1.0, abs=1e-9)
        back = from_barycentric(t, a, b, c)
        assert np.allclose(back, p, atol=1e-5)

    @given(
        st.floats(0, 1), st.floats(0, 1), pt, pt, pt
    )
    @settings(max_examples=200)
    def test_convex_combination_inside(self, u, v, a, b, c):
        assume(nondegenerate(a, b, c))
        t1 = u
        t2 = (1 - u) * v
        t3 = 1 - t1 - t2
        p = from_barycentric([t1, t2, t3], a, b, c)
        assert point_in_triangle(p, a, b, c, tol=1e-6)


class TestPointInTriangle:
    def test_inside(self):
        assert point_in_triangle([0.2, 0.2], [0, 0], [1, 0], [0, 1])

    def test_outside(self):
        assert not point_in_triangle([1.0, 1.0], [0, 0], [1, 0], [0, 1])

    def test_on_edge(self):
        assert point_in_triangle([0.5, 0.0], [0, 0], [1, 0], [0, 1])


class TestVectorisedBarycentric:
    def test_matches_scalar(self, rng):
        tri_a = rng.uniform(-5, 5, (10, 2))
        tri_b = rng.uniform(-5, 5, (10, 2))
        tri_c = rng.uniform(-5, 5, (10, 2))
        p = rng.uniform(-5, 5, 2)
        out = barycentric_coords_many(p, tri_a, tri_b, tri_c)
        for j in range(10):
            if abs(triangle_area(tri_a[j], tri_b[j], tri_c[j])) < 1e-6:
                continue
            expected = barycentric_coords(p, tri_a[j], tri_b[j], tri_c[j])
            assert np.allclose(out[j], expected, atol=1e-7)

    def test_degenerate_rows_are_nan(self):
        out = barycentric_coords_many(
            [0.0, 0.0], [[0, 0]], [[1, 1]], [[2, 2]]
        )
        assert np.isnan(out).all()
