"""Loss-tolerant flooding: periodic re-broadcast until quiescence.

The plain :class:`~repro.distributed.protocols.flooding.FloodSumNode`
broadcasts each record exactly once, which is correct over reliable
links but silently loses records when messages can drop - a neighbour
that missed the single transmission never hears it again.

The reliable variant re-broadcasts its *entire* record set (tagged with
a completeness flag) every round.  A node may halt only once it is
complete **and** has seen every neighbour report completeness - halting
earlier could starve a neighbour that still depends on this node's
echoes, a race the fault-injection tests exercise explicitly.
Duplicate suppression keeps the semantics identical to plain flooding;
the redundancy buys loss tolerance at a bandwidth cost the tests
measure.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ProtocolError
from repro.distributed.runtime import LinkFaults, Node, NodeApi, SyncNetwork

__all__ = ["ReliableFloodNode", "reliable_flood_aggregate"]


class ReliableFloodNode(Node):
    """Flooding participant that keeps re-broadcasting its knowledge.

    Parameters
    ----------
    node_id : int
    value : float
    expected_count : int
        Total participants.
    """

    def __init__(
        self,
        node_id: int,
        value: float,
        expected_count: int,
        farewell_rounds: int = 4,
    ) -> None:
        super().__init__(node_id)
        self.state["records"] = {node_id: float(value)}
        self._expected = int(expected_count)
        self._neighbor_complete: dict[int, bool] = {}
        self._farewell_target = int(farewell_rounds)
        self._farewells = 0

    @property
    def complete(self) -> bool:
        return len(self.state["records"]) >= self._expected

    def _broadcast_all(self, api: NodeApi) -> None:
        api.broadcast(
            "records",
            (self.complete, tuple(sorted(self.state["records"].items()))),
        )

    def on_start(self, api: NodeApi) -> None:
        if self._expected == 1:
            self.halt()
            return
        self._broadcast_all(api)

    def on_round(self, api: NodeApi, inbox) -> None:
        records = self.state["records"]
        for msg in inbox:
            sender_complete, items = msg.payload
            self._neighbor_complete[msg.sender] = sender_complete
            for origin, value in items:
                if origin not in records:
                    records[origin] = value
        neighbors_done = all(
            self._neighbor_complete.get(w, False) for w in api.neighbors
        )
        if self.complete and neighbors_done and api.neighbors:
            # Farewell phase: keep echoing the completeness flag for a
            # few rounds so a neighbour whose copy of our flag was lost
            # almost surely hears a retransmission, then retire.  (The
            # residual deadlock probability decays as loss^farewells; a
            # lossless run needs exactly one farewell.)
            self._farewells += 1
            self._broadcast_all(api)
            if self._farewells >= self._farewell_target:
                self.halt()
            return
        self._farewells = 0
        self._broadcast_all(api)


def reliable_flood_aggregate(
    values,
    adjacency,
    combine: Callable[[list[float]], float] = sum,
    loss_rate: float = 0.0,
    seed: int = 0,
    max_rounds: int | None = None,
    faults: LinkFaults | None = None,
) -> list[float]:
    """Loss-tolerant version of :func:`flood_aggregate`.

    Parameters
    ----------
    values : sequence of float
    adjacency : sequence of sequences
        Connected communication topology.
    combine : callable
    loss_rate : float
        Per-message drop probability injected by the runtime.
    seed : int
        Loss-process seed.
    max_rounds : int, optional
        Defaults to a bound scaled by the loss rate.
    faults : LinkFaults, optional
        Full runtime fault model (delay, duplication, per-edge loss,
        crashes) injected on top of ``loss_rate``.  Delay and
        duplication the protocol tolerates by design; a crash makes the
        record set unreachable and raises like extreme loss does.

    Raises
    ------
    ProtocolError
        If some node still misses records when the round budget runs
        out (loss too extreme, or a participant crashed), or the
        protocol fails to go quiet.
    """
    n = len(values)
    nodes = [ReliableFloodNode(i, float(values[i]), n) for i in range(n)]
    worst_loss = loss_rate + (faults.loss_rate if faults is not None else 0.0)
    if max_rounds is None:
        max_rounds = int((6 * n + 30) / max(1e-6, (1.0 - min(worst_loss, 0.99))) ** 3)
        if faults is not None and faults.delay_rate > 0:
            max_rounds += faults.max_delay * (n + 10)
    net = SyncNetwork(nodes, adjacency, loss_rate=loss_rate, seed=seed, faults=faults)
    net.run(max_rounds=max_rounds)
    out = []
    for node in nodes:
        if not node.complete:
            raise ProtocolError(
                f"node {node.node_id} holds "
                f"{len(node.state['records'])}/{n} records after "
                f"{max_rounds} rounds (loss rate {loss_rate})"
            )
        out.append(float(combine(list(node.state["records"].values()))))
    return out
