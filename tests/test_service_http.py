"""HTTP-layer tests for the planning service.

Fast by construction: every server here gets an injected runner
(echo / blocking / sleeping), so these tests exercise admission,
backpressure, dedup, failure states, graceful shutdown and the
introspection endpoints without ever running a real solve.
"""

import json
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.io import dumps_canonical
from repro.service import PlanningService, QueueFull, ServiceClient


def echo_runner(request):
    return {"echo": request["scenario_ids"], "sep": request["separation_factor"]}


def wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture()
def service():
    with PlanningService(port=0, dispatchers=2, runner=echo_runner) as svc:
        yield svc


@pytest.fixture()
def client(service):
    return ServiceClient(port=service.port)


class TestSubmitPollFetch:
    def test_roundtrip(self, client):
        submitted = client.submit([1], separation_factor=12.0)
        assert submitted["state"] in ("queued", "running", "done")
        status = client.wait(submitted["job_id"], timeout=10.0)
        assert status["state"] == "done"
        assert status["queue_wait_s"] >= 0.0
        document = client.result(submitted["job_id"])
        assert document == {"echo": [1], "sep": 12.0}

    def test_result_bytes_are_canonical(self, client):
        submitted = client.submit([2], separation_factor=15.0)
        client.wait(submitted["job_id"], timeout=10.0)
        raw = client.result_bytes(submitted["job_id"])
        assert raw == dumps_canonical({"echo": [2], "sep": 15.0})

    def test_duplicate_submission_same_job_id(self, client):
        first = client.submit([1], separation_factor=33.0)
        second = client.submit([1], separation_factor=33.0)
        assert first["job_id"] == second["job_id"]
        assert second["deduplicated"]
        metrics = client.metrics()
        assert metrics["service.jobs.deduplicated"]["value"] >= 1

    def test_jobs_listing(self, client):
        submitted = client.submit([1], separation_factor=18.0)
        client.wait(submitted["job_id"], timeout=10.0)
        listing = client.jobs()
        assert listing["counts"]["done"] >= 1
        assert any(j["job_id"] == submitted["job_id"] for j in listing["jobs"])

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError, match="404"):
            client.status("deadbeef")
        with pytest.raises(ServiceError, match="404"):
            client.result("deadbeef")

    def test_malformed_body_400(self, service):
        client = ServiceClient(port=service.port)
        status, _, data = client._request("POST", "/v1/plan", None)
        assert status == 400
        status, _, _ = client._request("POST", "/v1/plan", {"scenario_ids": [99]})
        assert status == 400

    def test_unknown_route_404_and_wrong_method_405(self, client):
        status, _, _ = client._request("GET", "/nope")
        assert status == 404
        status, headers, _ = client._request("GET", "/v1/plan")
        assert status == 405
        assert headers.get("allow") == "POST"

    def test_result_not_ready_202(self):
        gate = threading.Event()

        def blocking_runner(request):
            gate.wait(20.0)
            return {}

        svc = PlanningService(port=0, dispatchers=1, runner=blocking_runner)
        with svc:
            client = ServiceClient(port=svc.port)
            first = client.submit([1], separation_factor=10.0)
            assert wait_for(
                lambda: client.status(first["job_id"])["state"] == "running"
            )
            queued = client.submit([1], separation_factor=11.0)
            for job_id in (first["job_id"], queued["job_id"]):
                status, _, data = client._request(
                    "GET", f"/v1/jobs/{job_id}/result"
                )
                assert status == 202
                assert json.loads(data)["state"] in ("queued", "running")
            gate.set()
            client.wait(first["job_id"], timeout=10.0)


class TestBackpressure:
    def test_full_queue_429_with_retry_after(self):
        gate = threading.Event()

        def blocking_runner(request):
            gate.wait(20.0)
            return {"ok": True}

        svc = PlanningService(
            port=0, dispatchers=1, capacity=1, runner=blocking_runner
        )
        with svc:
            client = ServiceClient(port=svc.port)
            first = client.submit([1], separation_factor=10.0)
            # Wait until the only dispatcher is busy running the first job.
            assert wait_for(
                lambda: client.status(first["job_id"])["state"] == "running"
            )
            client.submit([1], separation_factor=11.0)  # fills the queue
            with pytest.raises(QueueFull) as excinfo:
                client.submit([1], separation_factor=12.0)
            assert excinfo.value.retry_after_s is not None
            assert excinfo.value.retry_after_s >= 1
            # Raw response carries the header and a JSON error body.
            status, headers, data = client._request(
                "POST", "/v1/plan",
                {"scenario_ids": [1], "separation_factor": 13.0},
            )
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert "queue is full" in json.loads(data)["error"]
            gate.set()
            client.wait(first["job_id"], timeout=10.0)

    def test_metrics_count_rejections(self):
        gate = threading.Event()
        svc = PlanningService(
            port=0, dispatchers=1, capacity=1,
            runner=lambda request: gate.wait(20.0) and {} or {},
        )
        with svc:
            client = ServiceClient(port=svc.port)
            first = client.submit([1], separation_factor=10.0)
            assert wait_for(
                lambda: client.status(first["job_id"])["state"] == "running"
            )
            client.submit([1], separation_factor=11.0)
            with pytest.raises(QueueFull):
                client.submit([1], separation_factor=12.0)
            assert client.metrics()["service.jobs.rejected"]["value"] >= 1
            gate.set()


class TestFailurePaths:
    def test_job_timeout_fails_with_execution_error(self):
        def slow_runner(request):
            time.sleep(1.5)
            return {}

        svc = PlanningService(
            port=0, dispatchers=1, runner=slow_runner,
            job_timeout_s=0.1, retries=0,
        )
        with svc:
            client = ServiceClient(port=svc.port)
            submitted = client.submit([1])
            status = client.wait(submitted["job_id"], timeout=10.0)
            assert status["state"] == "failed"
            assert "ExecutionError" in status["error"]
            with pytest.raises(ServiceError, match="500"):
                client.result(submitted["job_id"])

    def test_runner_exception_fails_job(self):
        def broken_runner(request):
            raise ValueError("solver exploded")

        svc = PlanningService(
            port=0, dispatchers=1, runner=broken_runner, retries=0
        )
        with svc:
            client = ServiceClient(port=svc.port)
            submitted = client.submit([1])
            status = client.wait(submitted["job_id"], timeout=10.0)
            assert status["state"] == "failed"
            assert "solver exploded" in status["error"]

    def test_failed_job_resubmission_retries(self):
        calls = []

        def flaky_runner(request):
            calls.append(1)
            if len(calls) == 1:
                raise ValueError("transient")
            return {"ok": True}

        svc = PlanningService(
            port=0, dispatchers=1, runner=flaky_runner, retries=0
        )
        with svc:
            client = ServiceClient(port=svc.port)
            submitted = client.submit([1])
            status = client.wait(submitted["job_id"], timeout=10.0)
            assert status["state"] == "failed"
            again = client.submit([1])
            assert again["job_id"] == submitted["job_id"]
            assert not again["deduplicated"]  # revived, not coalesced
            status = client.wait(submitted["job_id"], timeout=10.0)
            assert status["state"] == "done"

    def test_cancel_queued_job(self):
        gate = threading.Event()

        def blocking_runner(request):
            gate.wait(20.0)
            return {}

        svc = PlanningService(port=0, dispatchers=1, runner=blocking_runner)
        with svc:
            client = ServiceClient(port=svc.port)
            first = client.submit([1], separation_factor=10.0)
            assert wait_for(
                lambda: client.status(first["job_id"])["state"] == "running"
            )
            second = client.submit([1], separation_factor=11.0)
            cancelled = client.cancel(second["job_id"])
            assert cancelled["state"] == "cancelled"
            status, _, _ = client._request(
                "GET", f"/v1/jobs/{second['job_id']}/result"
            )
            assert status == 410
            # Running jobs cannot be cancelled.
            with pytest.raises(ServiceError, match="409"):
                client.cancel(first["job_id"])
            gate.set()


class TestGracefulShutdown:
    def test_drain_rejects_new_and_finishes_running(self):
        gate = threading.Event()

        def blocking_runner(request):
            gate.wait(20.0)
            return {"done": True}

        svc = PlanningService(port=0, dispatchers=1, runner=blocking_runner)
        svc.start()
        client = ServiceClient(port=svc.port)
        running = client.submit([1], separation_factor=10.0)
        assert wait_for(
            lambda: client.status(running["job_id"])["state"] == "running"
        )
        queued = client.submit([1], separation_factor=11.0)

        svc.drain()
        health = client.healthz()
        assert health["status"] == "draining"
        assert health["http_status"] == 503
        status, _, data = client._request(
            "POST", "/v1/plan", {"scenario_ids": [1], "separation_factor": 12.0}
        )
        assert status == 503
        assert "draining" in json.loads(data)["error"]

        gate.set()
        svc.stop(drain=True)
        # Both the running job and the queued backlog were drained.
        assert svc.queue.get(running["job_id"]).state == "done"
        assert svc.queue.get(queued["job_id"]).state == "done"

    def test_stop_without_drain_cancels_backlog(self):
        gate = threading.Event()

        def blocking_runner(request):
            gate.wait(20.0)
            return {"done": True}

        svc = PlanningService(port=0, dispatchers=1, runner=blocking_runner)
        svc.start()
        client = ServiceClient(port=svc.port)
        running = client.submit([1], separation_factor=10.0)
        assert wait_for(
            lambda: client.status(running["job_id"])["state"] == "running"
        )
        queued = client.submit([1], separation_factor=11.0)
        gate.set()
        svc.stop(drain=False)
        assert svc.queue.get(running["job_id"]).state == "done"
        assert svc.queue.get(queued["job_id"]).state == "cancelled"

    def test_client_error_when_server_gone(self):
        svc = PlanningService(port=0, dispatchers=1, runner=echo_runner)
        svc.start()
        port = svc.port
        svc.stop()
        with pytest.raises(ServiceError, match="cannot reach"):
            ServiceClient(port=port, timeout=1.0).healthz()


class TestIntrospection:
    def test_healthz_ok(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["http_status"] == 200
        assert health["dispatchers"] == 2
        assert set(health["jobs"]) == {
            "queued", "running", "done", "failed", "cancelled"
        }

    def test_metrics_snapshot(self, client):
        submitted = client.submit([1], separation_factor=21.0)
        client.wait(submitted["job_id"], timeout=10.0)
        metrics = client.metrics()
        assert metrics["service.jobs.solved"]["value"] >= 1
        assert metrics["service.http.plan.latency_s"]["count"] >= 1
        assert metrics["service.job_duration_s"]["kind"] == "histogram"
        assert metrics["service.queue.depth"]["kind"] == "gauge"

    def test_tracez_span_tree(self, client):
        submitted = client.submit([1], separation_factor=22.0)
        client.wait(submitted["job_id"], timeout=10.0)
        trace = client.tracez()
        names = {record["name"] for record in trace["spans"]}
        # The per-request span tree promised by the service.
        assert {
            "service.request",
            "service.admission",
            "service.job",
            "service.queue_wait",
            "service.solve",
            "service.serialize",
        } <= names
        job_spans = [r for r in trace["spans"] if r["name"] == "service.job"]
        assert any(
            record["attributes"].get("job_id") == submitted["job_id"]
            for record in job_spans
        )

    def test_per_endpoint_latency_histograms(self, client):
        client.healthz()
        client.tracez()
        client.metrics()  # its own latency lands after the snapshot
        metrics = client.metrics()
        for label in ("healthz", "tracez", "metrics"):
            assert metrics[f"service.http.{label}.latency_s"]["count"] >= 1
