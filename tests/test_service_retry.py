"""Tests for ServiceClient retry/backoff on transient failures."""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.errors import ServiceError
from repro.obs import Metrics, activate_metrics
from repro.service import ServiceClient
from repro.service.jobs import QueueFull


class ScriptedHandler(BaseHTTPRequestHandler):
    """Answers from a per-server script of (status, headers, body)."""

    def _serve(self):
        script = self.server.script
        status, headers, body = (
            script.pop(0) if script else (200, {}, {"ok": True})
        )
        self.server.hits += 1
        headers = dict(headers)
        # "X-Truncate-To: N" simulates a mid-download disconnect: the
        # full Content-Length is declared but only N body bytes are
        # written before the connection drops.
        truncate = headers.pop("X-Truncate-To", None)
        payload = json.dumps(body).encode()
        self.send_response(status)
        for key, value in headers.items():
            self.send_header(key, value)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        if truncate is not None:
            self.wfile.write(payload[: int(truncate)])
            self.wfile.flush()
            self.connection.close()
        else:
            self.wfile.write(payload)

    do_GET = _serve
    do_POST = _serve

    def log_message(self, *args):  # silence test output
        pass


@pytest.fixture
def scripted_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), ScriptedHandler)
    server.script = []
    server.hits = 0
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()


def client_for(server, **kwargs):
    kwargs.setdefault("backoff_s", 0.001)
    return ServiceClient("127.0.0.1", server.server_address[1], **kwargs)


class TestTransientRetries:
    def test_503_then_success(self, scripted_server):
        scripted_server.script = [
            (503, {}, {"error": "draining"}),
            (503, {}, {"error": "draining"}),
            (200, {}, {"jobs": []}),
        ]
        metrics = Metrics()
        with activate_metrics(metrics):
            doc = client_for(scripted_server, retries=3).jobs()
        assert doc == {"jobs": []}
        assert scripted_server.hits == 3
        assert metrics.snapshot()["service.client_retries"]["value"] == 2

    def test_429_honors_retry_after(self, scripted_server):
        scripted_server.script = [
            (429, {"Retry-After": "0.001"}, {"error": "queue full"}),
            (202, {}, {"job_id": "j1", "state": "queued"}),
        ]
        doc = client_for(scripted_server, retries=1).submit_request(
            {"scenario_ids": [1]}
        )
        assert doc["job_id"] == "j1"
        assert scripted_server.hits == 2

    def test_budget_exhaustion_surfaces_the_answer(self, scripted_server):
        scripted_server.script = [
            (429, {"Retry-After": "0.001"}, {"error": "queue full"}),
            (429, {"Retry-After": "0.001"}, {"error": "queue full"}),
        ]
        with pytest.raises(QueueFull) as err:
            client_for(scripted_server, retries=1).submit_request({})
        assert err.value.retry_after_s == pytest.approx(0.001)
        assert scripted_server.hits == 2

    def test_zero_retries_preserves_strict_behaviour(self, scripted_server):
        scripted_server.script = [(503, {}, {"error": "draining"})]
        with pytest.raises(ServiceError):
            client_for(scripted_server).jobs()
        assert scripted_server.hits == 1

    def test_non_retryable_status_is_immediate(self, scripted_server):
        scripted_server.script = [(404, {}, {"error": "no such job"})]
        with pytest.raises(ServiceError, match="404"):
            client_for(scripted_server, retries=5).status("nope")
        assert scripted_server.hits == 1


class TestMidDownloadDisconnect:
    """A connection that dies during the result body must be retried.

    ``http.client`` surfaces a truncated body as ``IncompleteRead``,
    which is an ``HTTPException`` rather than an ``OSError`` - the
    regression here is that the retry loop used to let it escape raw.
    """

    def test_truncated_body_retries_with_jitter_schedule(
        self, scripted_server
    ):
        full = {"runs": {"1": {"ok": True}}, "format_version": 1}
        scripted_server.script = [
            (200, {"X-Truncate-To": "3"}, full),
            (200, {}, full),
        ]
        metrics = Metrics()
        with activate_metrics(metrics):
            payload = client_for(scripted_server, retries=2).result_bytes(
                "j1"
            )
        assert json.loads(payload) == full
        assert scripted_server.hits == 2
        assert metrics.snapshot()["service.client_retries"]["value"] == 1

    def test_truncated_body_without_budget_surfaces_service_error(
        self, scripted_server
    ):
        scripted_server.script = [
            (200, {"X-Truncate-To": "3"}, {"runs": {}}),
        ]
        with pytest.raises(ServiceError, match="cannot reach"):
            client_for(scripted_server).result_bytes("j1")
        assert scripted_server.hits == 1

    def test_connection_dropped_right_after_headers_retries(
        self, scripted_server
    ):
        scripted_server.script = [
            (200, {"X-Truncate-To": "0"}, {"jobs": []}),
            (200, {}, {"jobs": []}),
        ]
        doc = client_for(scripted_server, retries=1).jobs()
        assert doc == {"jobs": []}
        assert scripted_server.hits == 2


class TestConnectionRefused:
    def test_retries_then_raises(self):
        # Port 1 on localhost refuses connections.
        client = ServiceClient(
            "127.0.0.1", 1, timeout=0.5, retries=2, backoff_s=0.001
        )
        metrics = Metrics()
        with activate_metrics(metrics):
            with pytest.raises(ServiceError, match="cannot reach"):
                client.jobs()
        assert metrics.snapshot()["service.client_retries"]["value"] == 2

    def test_negative_budget_rejected(self):
        with pytest.raises(ServiceError):
            ServiceClient(retries=-1)


class TestHealthzNeverRetries:
    def test_healthz_sees_raw_503(self, scripted_server):
        scripted_server.script = [
            (503, {}, {"state": "draining"}),
            (200, {}, {"state": "ok"}),
        ]
        doc = client_for(scripted_server, retries=5).healthz()
        assert doc["http_status"] == 503
        assert doc["state"] == "draining"
        assert scripted_server.hits == 1


class TestBackoffShape:
    def test_backoff_is_bounded_and_seeded(self):
        client = ServiceClient(
            retries=5, backoff_s=0.5, backoff_max_s=2.0, retry_seed=1
        )
        sleeps = []
        client_sleep = lambda s: sleeps.append(s)  # noqa: E731
        import repro.service.client as mod

        original_sleep = mod.time.sleep
        mod.time.sleep = client_sleep
        try:
            for attempt in range(6):
                client._backoff(attempt)
        finally:
            mod.time.sleep = original_sleep
        # Exponential then clipped at backoff_max_s, jitter in [0.5, 1).
        assert all(s <= 2.0 for s in sleeps)
        assert sleeps[0] >= 0.25  # 0.5 * jitter >= 0.5*0.5
        assert max(sleeps[3:]) >= 1.0  # capped region still sleeps

        again = ServiceClient(
            retries=5, backoff_s=0.5, backoff_max_s=2.0, retry_seed=1
        )
        sleeps2 = []
        mod.time.sleep = lambda s: sleeps2.append(s)
        try:
            for attempt in range(6):
                again._backoff(attempt)
        finally:
            mod.time.sleep = original_sleep
        assert sleeps == sleeps2

    def test_retry_after_is_clipped(self):
        client = ServiceClient(retries=1, backoff_max_s=0.01)
        import repro.service.client as mod

        sleeps = []
        original_sleep = mod.time.sleep
        mod.time.sleep = lambda s: sleeps.append(s)
        try:
            client._backoff(0, retry_after=60.0)
        finally:
            mod.time.sleep = original_sleep
        assert sleeps[0] <= 0.01
