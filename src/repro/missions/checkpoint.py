"""Per-epoch mission checkpoints: resume without losing byte-identity.

A mission document is a pure function of ``(spec, config, faults)`` -
including the per-epoch ``cache_hits``/``cache_misses`` counters, which
makes naive resume-with-a-warm-cache *wrong*: a re-run epoch that finds
entries on disk would record hits where the uninterrupted run recorded
misses.  The checkpoint therefore commits two things atomically in one
``state.json`` rename:

- the mission state after the last completed epoch (epoch records,
  surviving robot ids, exact positions - JSON floats round-trip through
  ``repr`` bit-exactly - accumulated totals), and
- the *cache manifest*: the set of disk-cache keys stored by completed
  epochs.

The private mission cache reads through a :class:`_ManifestStore` that
refuses to serve any entry not in the manifest, so entries written by a
half-finished epoch are invisible after a crash: the re-run misses,
recomputes, and overwrites the same content-addressed file.  Whatever
instant the process dies, the resumed document is byte-identical to an
uninterrupted run (the one caveat is LRU pressure: a mission whose
working set exceeds ``cache_capacity`` could see a disk hit where the
uninterrupted run's memory tier had already evicted - mission working
sets are one or two disk maps, far below any sane capacity).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from shutil import rmtree
from typing import Any

from repro.exec.cache import ContentCache, DiskStore
from repro.io import (
    JOURNAL_FORMAT_VERSION,
    SUPPORTED_JOURNAL_VERSIONS,
    canonical_digest,
    dumps_canonical,
)
from repro.obs import get_metrics

__all__ = ["MissionCheckpoint", "checkpoint_key"]

_STATE_FILE = "state.json"
_CACHE_DIR = "cache"


def checkpoint_key(
    spec: dict[str, Any], config: dict[str, Any], faults: dict[str, Any] | None
) -> str:
    """Content address of a mission's identity.

    Stored inside every checkpoint so a directory reused for a
    *different* mission (or a stale checkpoint after a spec change)
    reads as "no checkpoint" instead of resuming the wrong run.
    """
    return canonical_digest({"spec": spec, "config": config, "faults": faults})


class _ManifestStore(DiskStore):
    """A DiskStore that serves only manifest-committed entries.

    ``allowed`` starts as the committed manifest and grows with every
    ``put`` in this run; :meth:`MissionCheckpoint.save` persists the
    grown set, which is the commit point that makes this run's entries
    visible to a future resume.
    """

    def __init__(self, directory: str | Path, allowed: set[str]) -> None:
        self.allowed = set(allowed)
        super().__init__(directory, fsync=True)

    def get(self, key: str) -> Any | None:
        if key not in self.allowed:
            return None
        return super().get(key)

    def put(self, key: str, value: Any) -> None:
        super().put(key, value)
        self.allowed.add(key)


class MissionCheckpoint:
    """Durable per-epoch snapshot of one mission under one directory.

    The service keys the directory by job id (itself the content
    address of the mission request), so one checkpoint can never be
    offered to a different mission - and ``key`` double-checks anyway.
    """

    def __init__(self, directory: str | Path, key: str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.key = str(key)
        self._store: _ManifestStore | None = None

    # -- mission state --------------------------------------------------

    def load(self) -> dict[str, Any] | None:
        """The last committed state, or None when there is nothing usable.

        Corrupt JSON, an unsupported version, and a key mismatch all
        read as "no checkpoint": the mission simply restarts from epoch
        zero, which is always correct (just slower).
        """
        path = self.directory / _STATE_FILE
        try:
            state = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(state, dict):
            return None
        if state.get("journal_version") not in SUPPORTED_JOURNAL_VERSIONS:
            get_metrics().counter("mission.checkpoint.version_rejected").inc()
            return None
        if state.get("key") != self.key:
            get_metrics().counter("mission.checkpoint.key_mismatch").inc()
            return None
        return state

    def save(self, state: dict[str, Any]) -> None:
        """Atomically commit mission state + the grown cache manifest.

        Written to a temp file, fsynced, then renamed over
        ``state.json`` - a crash at any instant leaves either the old
        or the new checkpoint, never a torn one.
        """
        doc = dict(state)
        doc["journal_version"] = JOURNAL_FORMAT_VERSION
        doc["key"] = self.key
        doc["cache_keys"] = (
            sorted(self._store.allowed) if self._store is not None else []
        )
        path = self.directory / _STATE_FILE
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(dumps_canonical(doc))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        get_metrics().counter("mission.checkpoint.saved").inc()

    # -- the private mission cache --------------------------------------

    def cache(self, capacity: int) -> ContentCache:
        """The mission's private cache, disk-backed under this checkpoint.

        Entries from committed epochs (per the loaded manifest) are
        served; anything else on disk is invisible until a later
        :meth:`save` commits it.
        """
        state = self.load()
        manifest = set(state.get("cache_keys", [])) if state else set()
        self._store = _ManifestStore(self.directory / _CACHE_DIR, manifest)
        return ContentCache(capacity=capacity, disk=self._store)

    # -- lifecycle ------------------------------------------------------

    def clear(self) -> None:
        """Remove the checkpoint entirely (the mission completed)."""
        rmtree(self.directory, ignore_errors=True)
