"""Crash-recovery chaos harness: prove the service survives ``kill -9``.

The journal + checkpoint layer makes two falsifiable promises:

1. **Zero lost acknowledged jobs** - any job a client saw ``done``
   before the crash is still ``done``, with byte-identical result
   bytes, after a restart on the same ``--journal-dir``.
2. **Byte-identical mission documents** - a mission killed mid-flight
   resumes from its last durable epoch checkpoint, and its final
   document is byte-for-byte the document an *uninterrupted* run
   produces (computed in-process here as the oracle).

This module boots ``python -m repro serve --journal-dir ...`` as a
subprocess, loads it with plan jobs plus a streaming mission, delivers
``SIGKILL`` at a seeded instant - after the ``kill_epoch``-th ``epoch``
SSE event, which the checkpoint commit order guarantees is durable -
then restarts the server on the same journal and asserts both promises.
The ``SIGTERM`` flavour exercises the graceful path instead: the drain
must announce itself on the SSE stream, the in-flight mission must
checkpoint-and-release at its epoch boundary (an ``interrupted``
event), the process must exit 0, and the restarted server must still
finish the mission byte-identically.

Used by ``scripts/crash_smoke.py`` (the CI gate) and the crash-recovery
pytest e2e tests.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Any

from repro.errors import ServiceError
from repro.io import canonical_digest, dumps_canonical
from repro.service import ServiceClient

__all__ = [
    "CrashRecConfig",
    "boot_server",
    "crashrec_passed",
    "expected_mission_bytes",
    "render_crashrec",
    "run_crashrec",
]

_BANNER = "repro service listening on "


@dataclass(frozen=True)
class CrashRecConfig:
    """One seeded crash-recovery case (CI-sized defaults).

    ``kill_epoch`` is the seeded kill instant: the signal is sent the
    moment the client has streamed that many ``epoch`` events, so the
    checkpoint for every observed epoch is durable by construction
    (checkpoints commit before their epoch event is published).
    """

    seed: int = 0
    family: str = "corridor"
    motion: str = "drift"
    epochs: int = 3
    kill_epoch: int = 1
    plan_jobs: int = 2
    robot_count: int = 16
    foi_target_points: int = 100
    grid_target: int = 300
    lloyd_max_iterations: int = 8
    resolution: int = 4
    service_workers: int = 1
    dispatchers: int = 2
    timeout_s: float = 180.0

    def __post_init__(self) -> None:
        if not (0 < self.kill_epoch <= self.epochs):
            raise ServiceError(
                f"kill_epoch must lie in [1, epochs], got {self.kill_epoch}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "family": self.family,
            "motion": self.motion,
            "epochs": self.epochs,
            "kill_epoch": self.kill_epoch,
            "plan_jobs": self.plan_jobs,
            "robot_count": self.robot_count,
            "foi_target_points": self.foi_target_points,
            "grid_target": self.grid_target,
            "lloyd_max_iterations": self.lloyd_max_iterations,
            "resolution": self.resolution,
            "service_workers": self.service_workers,
        }

    def mission_spec(self) -> dict[str, Any]:
        return {
            "family": self.family,
            "seed": self.seed,
            "epochs": self.epochs,
            "motion": self.motion,
        }

    def mission_config(self) -> dict[str, Any]:
        return {
            "robot_count": self.robot_count,
            "foi_target_points": self.foi_target_points,
            "grid_target": self.grid_target,
            "lloyd_max_iterations": self.lloyd_max_iterations,
            "resolution": self.resolution,
        }

    def plan_request(self, index: int) -> dict[str, Any]:
        """The ``index``-th plan body (distinct content addresses)."""
        return {
            "scenario_ids": [1],
            "separation_factor": 10.0 + 2.0 * index,
            "foi_target_points": self.foi_target_points,
            "lloyd_grid_target": self.grid_target,
            "resolution": self.resolution,
        }


def expected_mission_bytes(config: CrashRecConfig) -> bytes:
    """The oracle: canonical bytes of an *uninterrupted* mission run."""
    from repro.missions import run_mission

    document = run_mission(config.mission_spec(), config.mission_config())
    return dumps_canonical(document)


def boot_server(journal_dir: str, config: CrashRecConfig) -> subprocess.Popen:
    """Start ``repro serve --journal-dir`` and wait for its banner.

    Returns the process with ``.port`` (the bound ephemeral port) and
    ``.recovery_banner`` (the journal replay line, ``""`` on a cold
    journal directory) attached.
    """
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--workers", str(config.dispatchers),
            "--service-workers", str(config.service_workers),
            "--journal-dir", journal_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    recovery_banner = ""
    deadline = time.monotonic() + 60.0
    while True:
        if time.monotonic() > deadline:
            proc.kill()
            raise ServiceError("server did not announce its port in 60s")
        line = proc.stdout.readline()
        if not line:
            proc.wait()
            raise ServiceError(
                f"server exited {proc.returncode} before binding"
            )
        line = line.strip()
        if line.startswith("journal at "):
            recovery_banner = line
            continue
        if line.startswith(_BANNER):
            proc.port = int(line.rsplit(":", 1)[1])
            proc.recovery_banner = recovery_banner
            return proc


def _stream_until_kill(
    client: ServiceClient, proc: subprocess.Popen, job_id: str, config: CrashRecConfig
) -> list[dict[str, Any]]:
    """Follow the mission SSE stream; SIGKILL at the seeded instant.

    Returns the events seen before the connection died.  The kill fires
    the moment the ``kill_epoch``-th ``epoch`` event arrives - durable
    checkpoint territory by the commit-order contract.
    """
    seen: list[dict[str, Any]] = []
    epochs_streamed = 0
    try:
        for event in client.iter_events(job_id, timeout=config.timeout_s):
            seen.append(event)
            if event.get("kind") == "epoch":
                epochs_streamed += 1
                if epochs_streamed >= config.kill_epoch:
                    proc.kill()  # SIGKILL: no handlers, no flushes
                    break
    except ServiceError:
        pass  # the socket died with the server; expected
    return seen


def _graceful_shutdown(proc: subprocess.Popen, timeout: float = 60.0) -> int:
    proc.send_signal(signal.SIGINT)
    try:
        proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        raise ServiceError("server did not shut down on SIGINT")
    return proc.returncode


def run_crashrec(
    config: CrashRecConfig,
    journal_dir: str,
    sig: str = "SIGKILL",
    baseline: bytes | None = None,
) -> dict[str, Any]:
    """One crash-recovery cycle; returns the summary document.

    ``sig="SIGKILL"``: boot, load (plans + mission), kill -9 at the
    seeded epoch, restart on the same journal, assert-and-report.
    ``sig="SIGTERM"``: graceful-drain flavour - the mission checkpoints
    and releases at its epoch boundary and the process exits 0 before
    the restart finishes the job.

    ``journal_dir`` must be fresh (or hold only this harness's state);
    ``baseline`` lets callers amortise the in-process oracle run across
    cases with identical mission parameters.
    """
    if sig not in ("SIGKILL", "SIGTERM"):
        raise ServiceError(f"unsupported crash signal {sig!r}")
    if baseline is None:
        baseline = expected_mission_bytes(config)

    # Phase 1: boot and load.
    proc = boot_server(journal_dir, config)
    client = ServiceClient(port=proc.port, timeout=config.timeout_s)
    acked: dict[str, bytes] = {}
    for index in range(config.plan_jobs):
        admitted = client.submit_request(config.plan_request(index))
        job_id = admitted["job_id"]
        client.wait(job_id, timeout=config.timeout_s)
        acked[job_id] = client.result_bytes(job_id)
    mission = client.submit_mission(
        config.mission_spec(), config.mission_config()
    )
    mission_id = mission["job_id"]

    # Phase 2: the seeded crash.
    exit_code: int | None = None
    drain_seen = False
    interrupted_seen = False
    if sig == "SIGKILL":
        pre_kill_events = _stream_until_kill(client, proc, mission_id, config)
        proc.wait(timeout=30.0)
        exit_code = proc.returncode
    else:
        pre_kill_events = []
        for event in client.iter_events(mission_id, timeout=config.timeout_s):
            pre_kill_events.append(event)
            if event.get("kind") == "epoch" and exit_code is None:
                proc.send_signal(signal.SIGTERM)
                exit_code = -1  # marker: signal sent, waiting for exit
            if event.get("kind") == "draining":
                drain_seen = True
            if event.get("kind") == "interrupted":
                interrupted_seen = True
            if event.get("kind") == "end":
                break
        proc.wait(timeout=config.timeout_s)
        exit_code = proc.returncode
    epochs_before = sum(
        1 for e in pre_kill_events if e.get("kind") == "epoch"
    )

    # Phase 3: restart on the same journal and let recovery finish.
    t_restart = time.monotonic()
    proc2 = boot_server(journal_dir, config)
    restart_banner_s = time.monotonic() - t_restart
    client2 = ServiceClient(port=proc2.port, timeout=config.timeout_s)
    recovery = (client2.healthz().get("recovery") or {})
    resumed_events = list(
        client2.iter_events(mission_id, timeout=config.timeout_s)
    )
    client2.wait(mission_id, timeout=config.timeout_s)
    mission_bytes = client2.result_bytes(mission_id)
    mission_status = client2.status(mission_id)

    # Phase 4: the promises.
    lost_acked = []
    for job_id, payload in acked.items():
        status = client2.status(job_id)
        survived = (
            status.get("state") == "done"
            and client2.result_bytes(job_id) == payload
        )
        if not survived:
            lost_acked.append(job_id)
    resumed_from = next(
        (
            int(e.get("epoch", 0))
            for e in resumed_events
            if e.get("kind") == "resumed"
        ),
        None,
    )
    final_exit = _graceful_shutdown(proc2)

    summary = {
        "format_version": 1,
        "config": config.to_dict(),
        "signal": sig,
        "canonical": {
            "zero_lost_acked": not lost_acked,
            "lost_acked": sorted(lost_acked),
            "acked_jobs": len(acked),
            "mission_byte_identical": mission_bytes == baseline,
            "mission_digest": canonical_digest(json.loads(mission_bytes)),
            "mission_provenance": mission_status.get("provenance"),
            "epochs_streamed_before_crash": epochs_before,
            "resumed_from_epoch": resumed_from,
        },
        "timing": {
            "crash_exit_code": exit_code,
            "restart_exit_code": final_exit,
            "restart_banner_s": round(restart_banner_s, 3),
            "recovery": recovery,
            "drain_announced": drain_seen,
            "interrupted_event": interrupted_seen,
        },
    }
    return summary


def render_crashrec(summary: dict[str, Any]) -> str:
    """Human-readable one-case report (the smoke script's output)."""
    canonical = summary["canonical"]
    timing = summary["timing"]
    recovery = timing.get("recovery") or {}
    checks = [
        ("zero lost acknowledged jobs", canonical["zero_lost_acked"]),
        ("mission document byte-identical", canonical["mission_byte_identical"]),
        ("clean final shutdown", timing["restart_exit_code"] == 0),
    ]
    if summary["signal"] == "SIGTERM":
        checks.extend([
            ("graceful exit 0 on SIGTERM", timing["crash_exit_code"] == 0),
            ("drain announced on SSE", timing["drain_announced"]),
            ("mission checkpoint-released", timing["interrupted_event"]),
        ])
    lines = [
        f"crashrec [{summary['signal']}] seed={summary['config']['seed']} "
        f"kill_epoch={summary['config']['kill_epoch']}: "
        f"{canonical['acked_jobs']} acked jobs, "
        f"{canonical['epochs_streamed_before_crash']} epochs streamed "
        f"before the crash, resumed from "
        f"{canonical['resumed_from_epoch']}, provenance "
        f"{canonical['mission_provenance']}",
        f"  journal replay: {recovery.get('journal_records', '?')} records "
        f"in {recovery.get('replay_s', 0.0):.3f}s "
        f"({recovery.get('jobs_restored', 0)} restored, "
        f"{recovery.get('jobs_retried', 0)} retried)",
    ]
    lines.extend(
        f"  [{'ok' if ok else 'FAIL'}] {name}" for name, ok in checks
    )
    return "\n".join(lines)


def crashrec_passed(summary: dict[str, Any]) -> bool:
    """The case's overall verdict."""
    canonical = summary["canonical"]
    timing = summary["timing"]
    verdict = (
        canonical["zero_lost_acked"]
        and canonical["mission_byte_identical"]
        and timing["restart_exit_code"] == 0
    )
    if summary["signal"] == "SIGTERM":
        verdict = verdict and (
            timing["crash_exit_code"] == 0
            and timing["drain_announced"]
            and timing["interrupted_event"]
        )
    return verdict
