"""Planning as a service: boot the HTTP service, submit, fetch, verify.

Starts an in-process `repro.service.PlanningService` (the same object
`python -m repro serve` runs), submits a scenario through the blocking
client, polls until it is done, and checks two of the service's
contracts:

* the plan document fetched over HTTP is byte-identical to running the
  same request directly through `repro.experiments.run_scenarios`, and
* resubmitting an equivalent request (scenario ids reordered, methods
  permuted) coalesces onto the same job id without a second solve.

Run:  python examples/serve_and_submit.py
"""

from __future__ import annotations

from repro.experiments import get_scenario, run_scenarios
from repro.io import dumps_canonical, plan_document
from repro.service import PlanningService, ServiceClient

KNOBS = dict(foi_target_points=200, lloyd_grid_target=600, resolution=12)
METHODS = ["ours (a)", "Hungarian"]


def main() -> None:
    with PlanningService(port=0, dispatchers=2) as service:
        client = ServiceClient(port=service.port, timeout=60.0)
        health = client.healthz()
        print(f"service on port {service.port}: {health['status']}")

        submitted = client.submit(
            [1], separation_factor=12.0, methods=METHODS, **KNOBS
        )
        print(f"submitted job {submitted['job_id']} ({submitted['state']})")
        status = client.wait(submitted["job_id"], timeout=600.0)
        print(
            f"job finished: {status['state']} "
            f"(queue wait {status['queue_wait_s']:.3f}s, "
            f"solve {status['run_s']:.1f}s)"
        )
        served = client.result_bytes(submitted["job_id"])

        document = client.result(submitted["job_id"])
        for sid, run in sorted(document["runs"].items()):
            for method, e in sorted(run["evaluations"].items()):
                print(
                    f"  scenario {sid} {method:12s} "
                    f"D={e['total_distance'] / 1000:.1f} km "
                    f"L={e['stable_link_ratio']:.3f} "
                    f"C={'Y' if e['globally_connected'] else 'N'}"
                )

        # Contract 1: served bytes == direct harness run, canonically
        # serialised.  The service adds nothing and loses nothing.
        direct = run_scenarios(
            [get_scenario(1)],
            separation_factor=12.0,
            methods=tuple(METHODS),
            workers=1,
            **KNOBS,
        )
        assert served == dumps_canonical(plan_document(direct))
        print("byte-identity vs direct run: OK")

        # Contract 2: an equivalent request (methods permuted) is
        # deduplicated onto the finished job - no second solve.
        again = client.submit(
            [1], separation_factor=12.0, methods=list(reversed(METHODS)),
            **KNOBS,
        )
        assert again["job_id"] == submitted["job_id"]
        assert again["deduplicated"]
        metrics = client.metrics()
        print(
            f"dedup: OK (solved={metrics['service.jobs.solved']['value']}, "
            f"deduplicated={metrics['service.jobs.deduplicated']['value']})"
        )


if __name__ == "__main__":
    main()
