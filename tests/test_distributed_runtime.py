"""Tests for the synchronous message-passing runtime."""

import pytest

from repro.distributed import Message, Node, SyncNetwork
from repro.errors import ProtocolError


class EchoNode(Node):
    """Sends one greeting to every neighbour, records what it hears."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.state["heard"] = []

    def on_start(self, api):
        api.broadcast("hello", self.node_id)

    def on_round(self, api, inbox):
        for msg in inbox:
            self.state["heard"].append((msg.sender, msg.payload))
        self.halt()


class ChattyNode(Node):
    """Never halts, always talks - used to test the round guard."""

    def on_start(self, api):
        api.broadcast("spam")

    def on_round(self, api, inbox):
        api.broadcast("spam")


class TestRuntimeBasics:
    def test_delivery_to_neighbors_only(self):
        nodes = [EchoNode(i) for i in range(3)]
        net = SyncNetwork(nodes, [[1], [0, 2], [1]])
        net.run()
        assert nodes[0].state["heard"] == [(1, 1)]
        assert sorted(nodes[1].state["heard"]) == [(0, 0), (2, 2)]

    def test_non_neighbor_send_rejected(self):
        class BadNode(Node):
            def on_start(self, api):
                api.send(2, "x")

            def on_round(self, api, inbox):
                self.halt()

        nodes = [BadNode(0), Node(1), Node(2)]
        net = SyncNetwork(nodes, [[1], [0], []])
        with pytest.raises(ProtocolError):
            net.run()

    def test_node_id_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            SyncNetwork([Node(5)], [[]])

    def test_topology_size_mismatch(self):
        with pytest.raises(ProtocolError):
            SyncNetwork([Node(0)], [[], []])

    def test_round_guard_raises(self):
        nodes = [ChattyNode(0), ChattyNode(1)]
        net = SyncNetwork(nodes, [[1], [0]])
        with pytest.raises(ProtocolError):
            net.run(max_rounds=10)

    def test_quiescence_terminates(self):
        nodes = [EchoNode(i) for i in range(2)]
        net = SyncNetwork(nodes, [[1], [0]])
        rounds = net.run()
        assert rounds <= 3
        assert net.delivered_messages == 2

    def test_message_dataclass(self):
        msg = Message(sender=0, receiver=1, kind="k", payload=42)
        assert msg.payload == 42


class TestDynamicTopology:
    def test_link_must_exist_at_delivery(self):
        """A message sent in round k is dropped if the edge is gone in
        round k+1 - modelling robots moving out of range mid-protocol."""

        class Sender(Node):
            def on_start(self, api):
                api.broadcast("hi")

            def on_round(self, api, inbox):
                self.halt()

        class Receiver(Node):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.state["got"] = 0

            def on_round(self, api, inbox):
                self.state["got"] += len(inbox)
                self.halt()

        def topology(round_index):
            if round_index == 0:
                return [[1], [0]]
            return [[], []]  # link vanishes before delivery

        nodes = [Sender(0), Receiver(1)]
        net = SyncNetwork(nodes, topology)
        net.run()
        assert nodes[1].state["got"] == 0
