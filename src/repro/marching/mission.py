"""Multi-FoI missions: the paper's motivating scenario as an API.

"We consider a group of ANRs that are instructed to explore a number
of FoIs.  After they complete a task at current FoI, they move to the
next one."  :class:`MissionPlanner` chains marching transitions across
a sequence of target FoIs, carrying the swarm state (and each FoI's
holes) from leg to leg and aggregating the paper's metrics over the
whole mission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.coverage.density import DensityFunction
from repro.errors import PlanningError
from repro.foi.region import FieldOfInterest
from repro.marching.planner import MarchingConfig, MarchingPlanner
from repro.marching.result import MarchingResult
from repro.metrics.connectivity import connectivity_report
from repro.metrics.stable_links import stable_link_ratio
from repro.robots.swarm import Swarm

__all__ = ["LegReport", "MissionReport", "MissionPlanner"]


@dataclass(frozen=True)
class LegReport:
    """Metrics of one mission leg.

    Attributes
    ----------
    index : int
        Leg number (1-based).
    target_name : str
    total_distance : float
    stable_link_ratio : float
    globally_connected : bool
    escort_count : int
    result : MarchingResult
    """

    index: int
    target_name: str
    total_distance: float
    stable_link_ratio: float
    globally_connected: bool
    escort_count: int
    result: MarchingResult


@dataclass(frozen=True)
class MissionReport:
    """Aggregated outcome of a whole mission.

    Attributes
    ----------
    legs : tuple of LegReport
    final_swarm : Swarm
        The swarm deployed on the last FoI.
    """

    legs: tuple[LegReport, ...]
    final_swarm: Swarm

    @property
    def total_distance(self) -> float:
        """Fleet-wide distance summed over all legs."""
        return sum(leg.total_distance for leg in self.legs)

    @property
    def all_connected(self) -> bool:
        """Whether Definition-2 connectivity held on every leg."""
        return all(leg.globally_connected for leg in self.legs)

    @property
    def worst_stable_link_ratio(self) -> float:
        return min(leg.stable_link_ratio for leg in self.legs)


class MissionPlanner:
    """Plans a swarm's tour through a sequence of Fields of Interest.

    Parameters
    ----------
    config : MarchingConfig, optional
        Per-leg planner settings.
    metric_resolution : int
        Sampling resolution of the per-leg metrics.
    """

    def __init__(
        self, config: MarchingConfig | None = None, metric_resolution: int = 32
    ) -> None:
        self.config = config or MarchingConfig()
        self.metric_resolution = int(metric_resolution)

    def run(
        self,
        swarm: Swarm,
        targets: Sequence[FieldOfInterest],
        source_foi: FieldOfInterest | None = None,
        densities: Sequence[DensityFunction | None] | None = None,
    ) -> MissionReport:
        """Plan and evaluate every leg of the mission.

        Parameters
        ----------
        swarm : Swarm
            Deployed on the starting FoI.
        targets : sequence of FieldOfInterest
            Visited in order; at least one.
        source_foi : FieldOfInterest, optional
            The starting FoI (its holes shape the first leg's detours).
        densities : optional sequence aligned with ``targets``
            Per-leg density functions (None entries = uniform).

        Raises
        ------
        PlanningError
            If ``targets`` is empty or a leg's density list is
            misaligned, or any leg fails to plan.
        """
        if not targets:
            raise PlanningError("a mission needs at least one target FoI")
        if densities is not None and len(densities) != len(targets):
            raise PlanningError("densities must align with targets")
        planner = MarchingPlanner(self.config)
        legs: list[LegReport] = []
        current_swarm = swarm
        current_foi = source_foi
        for idx, target in enumerate(targets, start=1):
            density = densities[idx - 1] if densities is not None else None
            result = planner.plan(
                current_swarm, target, density=density, source_foi=current_foi
            )
            report = connectivity_report(
                result.trajectory,
                current_swarm.radio.comm_range,
                result.boundary_anchors,
                self.metric_resolution,
            )
            legs.append(
                LegReport(
                    index=idx,
                    target_name=target.name,
                    total_distance=result.total_distance,
                    stable_link_ratio=stable_link_ratio(
                        result.links, result.trajectory, self.metric_resolution
                    ),
                    globally_connected=report.connected,
                    escort_count=result.repair.escort_count,
                    result=result,
                )
            )
            current_swarm = current_swarm.with_positions(result.final_positions)
            current_foi = target
        return MissionReport(legs=tuple(legs), final_swarm=current_swarm)
