"""Tests for mid-transition failure recovery."""

import numpy as np
import pytest

from repro.coverage import LloydConfig
from repro.errors import PlanningError
from repro.foi import FieldOfInterest, ellipse_polygon
from repro.marching import (
    FailureEvent,
    MarchingConfig,
    MarchingPlanner,
    replan_after_failure,
)
from repro.metrics import connectivity_report
from repro.robots import RadioSpec, Swarm

FAST = MarchingConfig(
    foi_target_points=200, lloyd=LloydConfig(grid_target=700, max_iterations=20)
)


@pytest.fixture(scope="module")
def mission():
    radio = RadioSpec.from_comm_range(80.0)
    m1 = FieldOfInterest(
        ellipse_polygon(1.0, 1.0, samples=36).scaled_to_area(140_000.0), name="m1"
    )
    swarm = Swarm.deploy_lattice(m1, 49, radio)
    m2 = FieldOfInterest(
        ellipse_polygon(1.2, 0.9, samples=36).scaled_to_area(130_000.0), name="m2"
    ).translated((1300.0, 150.0))
    result = MarchingPlanner(FAST).plan(swarm, m2)
    return swarm, m2, result


class TestFailureEvent:
    def test_duplicates_rejected(self):
        with pytest.raises(PlanningError):
            FailureEvent(time=0.5, failed=(1, 1))


class TestReplan:
    def test_recovery_mid_march(self, mission):
        swarm, m2, original = mission
        event = FailureEvent(time=0.4, failed=(3, 17))
        outcome = replan_after_failure(
            original, event, m2, swarm.radio.comm_range, config=FAST
        )
        assert outcome.survivors_connected
        assert len(outcome.survivor_ids) == swarm.size - 2
        assert 3 not in outcome.survivor_ids
        # The survivors' new plan starts exactly where they were.
        assert np.allclose(
            outcome.result.start_positions, outcome.positions_at_failure
        )
        # And delivers the full guarantee again.
        rep = connectivity_report(
            outcome.result.trajectory,
            swarm.radio.comm_range,
            outcome.result.boundary_anchors,
        )
        assert rep.connected
        assert m2.contains(outcome.result.final_positions).all()

    def test_failure_at_start(self, mission):
        swarm, m2, original = mission
        outcome = replan_after_failure(
            original, FailureEvent(time=0.0, failed=(0,)), m2,
            swarm.radio.comm_range, config=FAST,
        )
        assert len(outcome.survivor_ids) == swarm.size - 1

    def test_time_out_of_range(self, mission):
        swarm, m2, original = mission
        with pytest.raises(PlanningError):
            replan_after_failure(
                original, FailureEvent(time=5.0, failed=(0,)), m2,
                swarm.radio.comm_range,
            )

    def test_bad_robot_id(self, mission):
        swarm, m2, original = mission
        with pytest.raises(PlanningError):
            replan_after_failure(
                original, FailureEvent(time=0.5, failed=(999,)), m2,
                swarm.radio.comm_range,
            )

    def test_too_few_survivors(self, mission):
        swarm, m2, original = mission
        everyone = tuple(range(swarm.size - 2))
        with pytest.raises(PlanningError):
            replan_after_failure(
                original, FailureEvent(time=0.5, failed=everyone), m2,
                swarm.radio.comm_range,
            )

    def test_disconnection_detected(self, mission):
        """Killing a whole neighbourhood can split the survivors; the
        replanner must refuse rather than silently abandon a subgroup."""
        swarm, m2, original = mission
        # Fail every robot in a vertical band through the swarm's middle
        # at t=0 (still in M1, lattice structure known).
        xs = original.start_positions[:, 0]
        lo, hi = np.quantile(xs, [0.4, 0.6])
        band = tuple(int(i) for i in np.flatnonzero((xs >= lo) & (xs <= hi)))
        if len(band) >= swarm.size - 4:
            pytest.skip("band too wide for this lattice")
        try:
            outcome = replan_after_failure(
                original, FailureEvent(time=0.0, failed=band), m2,
                swarm.radio.comm_range, config=FAST,
            )
        except PlanningError as err:
            assert "disconnected" in str(err)
        else:
            # Geometry may keep survivors connected around the band;
            # then the recovery must simply succeed.
            assert outcome.survivors_connected
