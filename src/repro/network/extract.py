"""Triangulation extraction from a connectivity graph (paper Sec. III-A).

The paper applies the distributed algorithm of Zhou et al. [18] to turn
the swarm's connectivity graph into a planar triangulation ``T``.  We
provide two extractors with the same output contract:

* :func:`extract_triangulation` - the centralized oracle: the Delaunay
  triangulation of robot positions restricted to communication links.
  For lattice-like deployments with ``r_c >= lattice spacing`` this is
  exactly the triangular lattice.
* :func:`extract_triangulation_localized` - a distributed-style
  extractor in the spirit of [18]: every robot triangulates only its
  one-hop neighbourhood and an edge/triangle survives only if *all* its
  endpoints agree (the classic localized-Delaunay intersection rule).
  No robot ever uses information beyond its one-hop neighbours'
  positions.

Both return the mesh plus a vertex-to-robot index map, since robots
that end up in no triangle (stragglers outside the main component) must
be handled explicitly by the caller.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeshError
from repro.geometry.vec import as_points
from repro.mesh.delaunay import delaunay_with_max_edge
from repro.mesh.repairs import remove_pinches
from repro.mesh.trimesh import TriMesh
from repro.network.udg import UnitDiskGraph
from repro.obs import span

__all__ = [
    "extract_triangulation",
    "extract_triangulation_localized",
    "edge_shared_neighbor_counts",
]


def extract_triangulation(positions, comm_range: float) -> tuple[TriMesh, np.ndarray]:
    """Delaunay-restricted-to-links triangulation (centralized oracle).

    Returns
    -------
    (TriMesh, (k,) int ndarray)
        The triangulation and, per mesh vertex, the robot index.

    The result is guaranteed manifold: pinched configurations (two
    fans meeting at one robot, which irregular mid-march swarms
    produce) are repaired by dropping minority fans, whose robots the
    planner then escorts like any straggler.

    Raises
    ------
    MeshError
        If no triangle can be formed (swarm too sparse for ``comm_range``).
    """
    with span("network.extract_triangulation", points=len(positions)) as sp_:
        mesh, vmap = delaunay_with_max_edge(positions, comm_range)
        repaired, repair_map = remove_pinches(mesh)
        sp_.set_attributes(
            vertices=repaired.vertex_count, triangles=len(repaired.triangles)
        )
    return repaired, vmap[repair_map]


def edge_shared_neighbor_counts(graph: UnitDiskGraph) -> dict[tuple[int, int], int]:
    """For every communication link, the number of common neighbours.

    This is the edge weight of Zhou et al.'s extraction algorithm: a
    link supported by exactly one or two shared neighbours bounds one
    or two candidate triangles, while heavily-shared links cut across
    many and are pruned first.
    """
    counts: dict[tuple[int, int], int] = {}
    adj = [set(a) for a in graph.adjacency]
    for i, j in graph.edges:
        i, j = int(i), int(j)
        counts[(i, j)] = len(adj[i] & adj[j])
    return counts


def _local_delaunay_triangles(
    center: int, members: np.ndarray, positions: np.ndarray
) -> set[tuple[int, int, int]]:
    """Triangles incident to ``center`` in the Delaunay of its neighbourhood."""
    from scipy.spatial import Delaunay, QhullError  # local import: scipy optional here

    if len(members) < 3:
        return set()
    pts = positions[members]
    try:
        tri = Delaunay(pts)
    except QhullError:
        return set()
    out: set[tuple[int, int, int]] = set()
    for simplex in tri.simplices:
        global_ids = tuple(int(members[s]) for s in simplex)
        if center in global_ids:
            out.add(tuple(sorted(global_ids)))
    return out


def extract_triangulation_localized(
    positions, comm_range: float
) -> tuple[TriMesh, np.ndarray]:
    """One-hop localized-Delaunay extraction (distributed-style).

    Every robot ``v`` computes the Delaunay triangulation of
    ``{v} U N(v)`` from positions learned in a single neighbourhood
    broadcast, and proposes the incident triangles whose three edges
    are communication links.  A triangle is accepted only if all three
    corner robots propose it; this mutual-agreement rule needs one more
    message exchange and removes the inconsistent crossing triangles,
    yielding a planar triangulation for dense unit-disk graphs.

    Returns
    -------
    (TriMesh, (k,) int ndarray)
        Same contract as :func:`extract_triangulation`.
    """
    pts = as_points(positions)
    graph = UnitDiskGraph(pts, comm_range)
    proposals: dict[tuple[int, int, int], int] = {}
    for v in range(graph.node_count):
        members = np.array([v] + graph.neighbors(v), dtype=int)
        for tri in _local_delaunay_triangles(v, members, pts):
            a, b, c = tri
            if (
                graph.has_edge(a, b)
                and graph.has_edge(b, c)
                and graph.has_edge(a, c)
            ):
                proposals[tri] = proposals.get(tri, 0) + 1
    accepted = [tri for tri, votes in proposals.items() if votes == 3]
    if not accepted:
        raise MeshError("localized extraction found no agreed triangle")
    mesh = TriMesh(pts, np.array(accepted, dtype=int))
    component, comp_map = mesh.largest_component()
    repaired, repair_map = remove_pinches(component)
    return repaired, comp_map[repair_map]
