"""Hypothesis strategies over the zoo (test-support; needs hypothesis).

Property tests draw validated zoo geometry directly::

    from repro.experiments.zoo.strategies import st_zoo_case

    @given(case=st_zoo_case())
    def test_pipeline_invariant(case):
        doc = run_zoo_case(case)
        assert doc["outcome"] == "pass"

Importing this module requires ``hypothesis`` (a test dependency); the
rest of the zoo package stays importable without it.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.experiments.zoo.campaign import ZooCase
from repro.experiments.zoo.families import FAMILIES, build_foi, draw_params

__all__ = ["st_foi_family", "st_zoo_seed", "st_zoo_case", "st_zoo_foi"]


def st_foi_family(families=FAMILIES):
    """Strategy over zoo family names."""
    return st.sampled_from(tuple(families))


def st_zoo_seed(max_seed: int = 10_000):
    """Strategy over zoo seeds (shrinks toward 0 - the pinned cases)."""
    return st.integers(min_value=0, max_value=max_seed)


@st.composite
def st_zoo_case(draw, families=FAMILIES, max_seed: int = 10_000) -> ZooCase:
    """A replayable campaign cell: ``(family, seed)`` with drawn params."""
    family = draw(st_foi_family(families))
    seed = draw(st_zoo_seed(max_seed))
    return ZooCase(family=family, seed=seed, params=draw_params(family, seed))


@st.composite
def st_zoo_foi(draw, families=FAMILIES, max_seed: int = 10_000):
    """A validated unit-scale zoo FoI (for geometry-level properties)."""
    family = draw(st_foi_family(families))
    seed = draw(st_zoo_seed(max_seed))
    foi, _ = build_foi(family, seed)
    return foi
