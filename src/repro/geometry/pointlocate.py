"""Spatial index for point-in-triangle location queries.

The induced harmonic map must locate, for every robot, the grid
triangle of the target FoI's disk embedding that contains the robot's
(rotated) disk position.  A uniform bucket grid over the triangle
bounding boxes turns each query into a handful of barycentric tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.barycentric import barycentric_coords_many
from repro.geometry.vec import as_point, as_points

__all__ = ["TriangleLocator"]


class TriangleLocator:
    """Uniform-grid index over a set of triangles.

    Parameters
    ----------
    points : (n, 2) array-like
        Vertex coordinates.
    triangles : (m, 3) int array-like
        Vertex indices of each triangle.
    resolution : int
        Number of buckets per axis (default scales with triangle count).
    """

    def __init__(self, points, triangles, resolution: int | None = None) -> None:
        self.points = as_points(points)
        tris = np.asarray(triangles, dtype=int)
        if tris.size == 0:
            raise GeometryError("TriangleLocator needs at least one triangle")
        if tris.ndim != 2 or tris.shape[1] != 3:
            raise GeometryError(f"triangles must have shape (m, 3), got {tris.shape}")
        if tris.min() < 0 or tris.max() >= len(self.points):
            raise GeometryError("triangle indices out of range")
        self.triangles = tris
        self._ta = self.points[tris[:, 0]]
        self._tb = self.points[tris[:, 1]]
        self._tc = self.points[tris[:, 2]]
        self._centroids = (self._ta + self._tb + self._tc) / 3.0

        if resolution is None:
            resolution = max(4, int(np.sqrt(len(tris))))
        self._res = resolution
        xs = np.stack([self._ta[:, 0], self._tb[:, 0], self._tc[:, 0]])
        ys = np.stack([self._ta[:, 1], self._tb[:, 1], self._tc[:, 1]])
        self._xmin = float(xs.min())
        self._ymin = float(ys.min())
        xmax, ymax = float(xs.max()), float(ys.max())
        self._dx = max((xmax - self._xmin) / resolution, 1e-12)
        self._dy = max((ymax - self._ymin) / resolution, 1e-12)

        buckets: dict[tuple[int, int], list[int]] = {}
        lo_i = np.clip(((xs.min(axis=0) - self._xmin) / self._dx).astype(int), 0, resolution - 1)
        hi_i = np.clip(((xs.max(axis=0) - self._xmin) / self._dx).astype(int), 0, resolution - 1)
        lo_j = np.clip(((ys.min(axis=0) - self._ymin) / self._dy).astype(int), 0, resolution - 1)
        hi_j = np.clip(((ys.max(axis=0) - self._ymin) / self._dy).astype(int), 0, resolution - 1)
        for t in range(len(tris)):
            for i in range(lo_i[t], hi_i[t] + 1):
                for j in range(lo_j[t], hi_j[t] + 1):
                    buckets.setdefault((i, j), []).append(t)
        self._buckets = {k: np.asarray(v, dtype=int) for k, v in buckets.items()}

    def _bucket_of(self, p: np.ndarray) -> tuple[int, int]:
        i = int(np.clip((p[0] - self._xmin) / self._dx, 0, self._res - 1))
        j = int(np.clip((p[1] - self._ymin) / self._dy, 0, self._res - 1))
        return i, j

    def locate(self, point, tol: float = 1e-9) -> tuple[int, np.ndarray] | None:
        """Triangle containing ``point`` and its barycentric coordinates.

        Returns
        -------
        (triangle_index, (3,) barycentric array) or ``None`` if the point
        lies in no triangle (outside the mesh, or in a hole).
        """
        p = as_point(point)
        cand = self._buckets.get(self._bucket_of(p))
        if cand is None or len(cand) == 0:
            return None
        bary = barycentric_coords_many(p, self._ta[cand], self._tb[cand], self._tc[cand])
        ok = np.all(bary >= -tol, axis=1) & ~np.any(np.isnan(bary), axis=1)
        hits = np.flatnonzero(ok)
        if len(hits) == 0:
            return None
        # Prefer the most interior hit for points on shared edges.
        best = hits[np.argmax(bary[hits].min(axis=1))]
        return int(cand[best]), bary[best]

    def locate_nearest(self, point) -> tuple[int, np.ndarray]:
        """Like :meth:`locate` but never fails.

        If the point lies in no triangle, the triangle with the nearest
        centroid is chosen and the barycentric coordinates are clamped
        to the simplex (renormalised to sum to one), yielding the
        closest representable point.  This implements the paper's rule
        that a robot mapped into a hole "simply chooses the nearest grid
        point" - clamping selects the nearest point of the nearest
        triangle.
        """
        hit = self.locate(point)
        if hit is not None:
            return hit
        p = as_point(point)
        d = np.hypot(self._centroids[:, 0] - p[0], self._centroids[:, 1] - p[1])
        t = int(np.argmin(d))
        bary = barycentric_coords_many(
            p, self._ta[t : t + 1], self._tb[t : t + 1], self._tc[t : t + 1]
        )[0]
        if np.any(np.isnan(bary)):
            bary = np.array([1.0, 0.0, 0.0])
        bary = np.clip(bary, 0.0, None)
        s = bary.sum()
        bary = bary / s if s > 0 else np.array([1.0, 0.0, 0.0])
        return t, bary
