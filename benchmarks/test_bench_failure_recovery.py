"""E13 - robustness: failure injection and replanning (ours).

Sweeps the number of simultaneous robot failures injected mid-march on
scenario 1 and measures the recovery: survivors connected, replanned
transition keeps the Definition-2 guarantee, and the marginal cost of
recovery stays bounded.  Backs the paper's reliability motivation with
a measured experiment.
"""

import numpy as np

from repro.coverage import LloydConfig
from repro.experiments import format_table, get_scenario
from repro.marching import (
    FailureEvent,
    MarchingConfig,
    MarchingPlanner,
    replan_after_failure,
)
from repro.metrics import connectivity_report, stable_link_ratio
from repro.robots import RadioSpec, Swarm

CFG = MarchingConfig(
    foi_target_points=320, lloyd=LloydConfig(grid_target=1400, max_iterations=40)
)
FAILURE_COUNTS = (1, 4, 8, 16)


def _run():
    spec = get_scenario(1)
    radio = RadioSpec.from_comm_range(spec.comm_range)
    m1, m2 = spec.build(separation_factor=20.0)
    swarm = Swarm.deploy_lattice(m1, spec.robot_count, radio)
    original = MarchingPlanner(CFG).plan(swarm, m2)
    rng = np.random.default_rng(42)
    rows = []
    for k in FAILURE_COUNTS:
        failed = tuple(int(i) for i in rng.choice(swarm.size, size=k, replace=False))
        outcome = replan_after_failure(
            original, FailureEvent(time=0.5, failed=failed), m2,
            spec.comm_range, config=CFG, require_connected=False,
        )
        new = outcome.result
        rep = connectivity_report(
            new.trajectory, spec.comm_range, new.boundary_anchors
        )
        rows.append(
            (
                k,
                outcome.survivors_connected,
                rep.connected,
                stable_link_ratio(new.links, new.trajectory),
                new.total_distance,
            )
        )
    return rows


def test_failure_recovery(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\nE13 - mid-march failure injection (scenario 1, t = 0.5):")
    print(format_table(
        ["failures", "survivors connected", "recovery C", "recovery L", "recovery D"],
        [
            [k, "Y" if sc else "N", "Y" if c else "N", f"{L:.3f}", f"{d / 1000:.1f} km"]
            for k, sc, c, L, d in rows
        ],
    ))
    for k, survivors_connected, connected, L, _d in rows:
        # The guarantee chain: C=1 before failure -> survivors connected
        # -> recovery plan again has C=1.
        assert survivors_connected, f"{k} failures split the survivors"
        assert connected, f"recovery after {k} failures lost connectivity"
        # L is measured against the *mid-march* link set, which is much
        # denser than a lattice (straight-line motion under a rotated
        # map compresses the formation mid-flight), so the attainable
        # ratio is bounded by roughly final/initial links (~0.3 here);
        # we assert the recovery approaches that bound.
        assert L > 0.25
