"""Distributed boundary-loop parameterization (paper Sec. III-B).

"A boundary vertex with the smallest ID initiates a message with a
counter that records how many hops the message has travelled along the
boundary.  ...  The message will come back to the starting vertex as
the boundary vertices form a closed loop.  The starting vertex notifies
other boundary vertices the size of the boundary.  Based on the
recorded hop number and the size of the boundary vertices, each
boundary vertex then computes a position along the boundary of a unit
disk."

Implemented as an honest message-passing protocol on the
:class:`~repro.distributed.runtime.SyncNetwork`: a node knows only its
ID, whether it is a boundary vertex, and its boundary neighbours.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError
from repro.distributed.runtime import Message, Node, NodeApi, SyncNetwork

__all__ = ["BoundaryLoopNode", "run_boundary_loop_protocol"]


class BoundaryLoopNode(Node):
    """Participant in the boundary hop-counting protocol.

    Parameters
    ----------
    node_id : int
    boundary_neighbors : tuple[int, int] or ()
        The node's two neighbours along the boundary loop (empty for
        interior vertices, which merely idle).
    """

    def __init__(self, node_id: int, boundary_neighbors: tuple[int, ...]) -> None:
        super().__init__(node_id)
        if boundary_neighbors and len(boundary_neighbors) != 2:
            raise ProtocolError("a boundary vertex has exactly two loop neighbours")
        self.boundary_neighbors = boundary_neighbors
        self.state["hop"] = None  # my hop number from the initiator
        self.state["loop_size"] = None
        self.state["angle"] = None
        self.state["is_initiator"] = False

    # ------------------------------------------------------------------

    @property
    def is_boundary(self) -> bool:
        return bool(self.boundary_neighbors)

    def on_start(self, api: NodeApi) -> None:
        if not self.is_boundary:
            self.halt()
            return
        # Initiator election: a boundary vertex whose ID is smaller than
        # both loop neighbours' IDs starts a token.  (IDs are unique, so
        # exactly one vertex per loop qualifies for the global minimum;
        # local minima that are not global get suppressed when a token
        # from a smaller ID passes through them.)
        if self.node_id < min(self.boundary_neighbors):
            self.state["is_initiator"] = True
            self.state["hop"] = 0
            self.state["token_origin"] = self.node_id
            successor = min(self.boundary_neighbors)
            api.send(successor, "token", {"origin": self.node_id, "hop": 1})

    def on_round(self, api: NodeApi, inbox) -> None:
        for msg in inbox:
            if msg.kind == "token":
                self._handle_token(api, msg)
            elif msg.kind == "size":
                self._handle_size(api, msg)

    # ------------------------------------------------------------------

    def _handle_token(self, api: NodeApi, msg: Message) -> None:
        origin = msg.payload["origin"]
        hop = msg.payload["hop"]
        if origin == self.node_id:
            # The token returned: hop now equals the loop size.
            size = hop
            self.state["loop_size"] = size
            self._compute_angle()
            successor = self._other_neighbor(msg.sender)
            api.send(successor, "size", {"origin": origin, "size": size, "ttl": size - 1})
            self.halt()
            return
        current = self.state.get("token_origin")
        if current is not None and current <= origin:
            return  # already carrying a token from a smaller or equal ID
        self.state["token_origin"] = origin
        self.state["hop"] = hop
        successor = self._other_neighbor(msg.sender)
        api.send(successor, "token", {"origin": origin, "hop": hop + 1})

    def _handle_size(self, api: NodeApi, msg: Message) -> None:
        if self.state["loop_size"] is None:
            self.state["loop_size"] = msg.payload["size"]
            self._compute_angle()
            ttl = msg.payload["ttl"]
            if ttl > 1:
                successor = self._other_neighbor(msg.sender)
                api.send(
                    successor,
                    "size",
                    {"origin": msg.payload["origin"], "size": msg.payload["size"], "ttl": ttl - 1},
                )
        self.halt()

    def _other_neighbor(self, sender: int) -> int:
        a, b = self.boundary_neighbors
        return b if sender == a else a

    def _compute_angle(self) -> None:
        size = self.state["loop_size"]
        hop = self.state["hop"]
        if size and hop is not None:
            self.state["angle"] = 2.0 * np.pi * (hop % size) / size


def run_boundary_loop_protocol(
    loop: list[int], total_nodes: int, adjacency
) -> dict[int, float]:
    """Run the protocol over a known boundary loop and return angles.

    Parameters
    ----------
    loop : list of int
        Boundary vertex IDs in loop order (as extracted from the mesh;
        each node is only told its two loop neighbours).
    total_nodes : int
        Total node count (interior nodes idle).
    adjacency : sequence of sequences
        Communication topology (must contain the loop edges).

    Returns
    -------
    dict node_id -> angle
        One entry per boundary vertex; uniform spacing by hop count,
        starting at the smallest ID - bitwise identical to the
        centralized ``boundary_parameterization(mode="uniform")``.
    """
    loop_neighbors: dict[int, tuple[int, ...]] = {}
    m = len(loop)
    for k, v in enumerate(loop):
        loop_neighbors[v] = (loop[(k - 1) % m], loop[(k + 1) % m])
    nodes = [
        BoundaryLoopNode(i, loop_neighbors.get(i, ()))
        for i in range(total_nodes)
    ]
    net = SyncNetwork(nodes, adjacency)
    net.run(max_rounds=20 * max(m, 1) + 20)
    out: dict[int, float] = {}
    for v in loop:
        angle = nodes[v].state["angle"]
        if angle is None:
            raise ProtocolError(f"boundary vertex {v} never learned its angle")
        out[v] = float(angle)
    return out
