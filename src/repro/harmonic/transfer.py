"""The induced map between two disk embeddings (paper Eqn. 1).

Overlaying the unit-disk embeddings of the swarm triangulation ``T``
and of the target FoI's grid mesh (after rotating one of them) induces
a map ``T -> M2``: a robot's disk position falls inside some disk-space
grid triangle, and its geographic target is the barycentric combination
of that triangle's geographic corners.

Robots that land in a *filled hole* (a fan triangle owning a virtual
vertex) have no geographic image there; following Sec. III-D3 the
virtual corner's weight is dropped and the remaining (hole-boundary)
corners are re-normalised, which lands the robot on the hole boundary -
the continuous version of "choose the nearest grid point".
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.geometry.vec import as_points, rotate
from repro.harmonic.diskmap import DiskMap
from repro.obs import get_metrics

__all__ = ["InducedMap"]


class InducedMap:
    """Composable map from a source disk embedding into target geography.

    Parameters
    ----------
    target : DiskMap
        Disk embedding of the target FoI's grid mesh.  The geographic
        image uses the target's *source mesh* coordinates; virtual
        (hole) vertices are handled per Sec. III-D3.
    memoize : bool
        Remember :meth:`map_points` results per ``(points, rotation)``
        (default True).  The rotation search probes the same point set
        at a handful of angles and the planner re-reads the winning
        angle afterwards, so at least one probe per plan is a hit; hit
        and miss counts land in ``cache.induced_map.*`` metrics.
    """

    def __init__(self, target: DiskMap, memoize: bool = True) -> None:
        self.target = target
        filled = target.filled
        self._is_virtual = filled.is_virtual
        self._memo: dict[tuple[bytes, float], np.ndarray] | None = (
            {} if memoize else None
        )
        # Geographic coordinates per filled vertex; virtual vertices get
        # their hole-centroid position only as a fallback anchor.
        geo = np.zeros((filled.mesh.vertex_count, 2))
        geo[: filled.original_vertex_count] = target.source.vertices
        for v in filled.virtual_vertices:
            geo[v] = filled.mesh.vertices[v]
        self._geo = geo

    def map_point(self, disk_point) -> np.ndarray:
        """Geographic image of one disk-space point."""
        tri_idx, bary = self.target.locator.locate_nearest(disk_point)
        corners = self.target.filled.mesh.triangles[tri_idx]
        weights = np.asarray(bary, dtype=float).copy()
        virtual_mask = self._is_virtual[corners]
        if virtual_mask.any():
            weights[virtual_mask] = 0.0
            s = weights.sum()
            if s <= 1e-12:
                # Landed (numerically) on the virtual vertex itself: fall
                # back to the nearest real corner by disk distance.
                real = corners[~virtual_mask]
                if len(real) == 0:
                    raise MappingError("triangle with no real corner")
                dp = self.target.disk_positions[real] - np.asarray(disk_point)
                nearest = real[int(np.argmin(np.hypot(dp[:, 0], dp[:, 1])))]
                return self._geo[nearest].copy()
            weights = weights / s
        return (weights[:, None] * self._geo[corners]).sum(axis=0)

    def map_points(self, disk_points, rotation: float = 0.0) -> np.ndarray:
        """Geographic images of many disk points, optionally pre-rotated.

        Parameters
        ----------
        disk_points : (n, 2) array-like
            Source disk positions (e.g. a swarm's ``robot_disk_positions``).
        rotation : float
            CCW angle applied to the points before lookup - the
            modified harmonic map's rotation parameter.
        """
        pts = as_points(disk_points)
        if self._memo is None:
            return self._map_points_impl(pts, rotation)
        key = (np.ascontiguousarray(pts).tobytes(), float(rotation))
        cached = self._memo.get(key)
        if cached is not None:
            get_metrics().counter("cache.induced_map.hits").inc()
            return cached.copy()
        get_metrics().counter("cache.induced_map.misses").inc()
        result = self._map_points_impl(pts, rotation)
        self._memo[key] = result.copy()
        return result

    def _map_points_impl(self, pts: np.ndarray, rotation: float) -> np.ndarray:
        if rotation != 0.0:
            pts = rotate(pts, rotation)
        if len(pts) == 0:
            return np.zeros((0, 2))
        # Batched point location plus vectorised barycentric transfer;
        # every arithmetic step mirrors :meth:`map_point` element-wise,
        # so the rows are bitwise-identical to the per-point loop.
        tri_idx, bary = self.target.locator.locate_nearest_many(pts)
        corners = self.target.filled.mesh.triangles[tri_idx]
        weights = np.asarray(bary, dtype=float).copy()
        virtual = self._is_virtual[corners]
        has_virtual = virtual.any(axis=1)
        degenerate = np.zeros(len(pts), dtype=bool)
        if has_virtual.any():
            weights[virtual] = 0.0
            sums = weights.sum(axis=1)
            degenerate = has_virtual & (sums <= 1e-12)
            renorm = has_virtual & ~degenerate
            weights[renorm] = weights[renorm] / sums[renorm, None]
        result = (weights[:, :, None] * self._geo[corners]).sum(axis=1)
        for i in np.flatnonzero(degenerate):
            # Landed (numerically) on a virtual vertex: defer to the
            # scalar nearest-real-corner fallback for this rare row.
            result[i] = self.map_point(pts[i])
        return result
