"""Stretch/distortion analysis of maps between robot configurations.

The harmonic map is "least stretched" among maps with the same boundary
condition; stretched edges are exactly where communication links break
(Sec. III-D1: "such a largely stretched edge means a broken
communication link").  This module measures per-edge stretch so
experiments can show *where* and *why* a transition loses links.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MappingError
from repro.geometry.vec import as_points

__all__ = ["StretchReport", "edge_stretch", "stretch_report"]


def edge_stretch(edges, source_positions, image_positions) -> np.ndarray:
    """Per-edge length ratio ``|image| / |source|``.

    Parameters
    ----------
    edges : (m, 2) int array
        Vertex-index pairs.
    source_positions, image_positions : (n, 2) arrays
        Vertex coordinates before and after the map.

    Returns
    -------
    (m,) ndarray of ratios (``inf`` for degenerate source edges).
    """
    e = np.asarray(edges, dtype=int).reshape(-1, 2)
    src = as_points(source_positions)
    img = as_points(image_positions)
    if len(src) != len(img):
        raise MappingError("source/image vertex counts differ")
    d_src = src[e[:, 0]] - src[e[:, 1]]
    d_img = img[e[:, 0]] - img[e[:, 1]]
    len_src = np.hypot(d_src[:, 0], d_src[:, 1])
    len_img = np.hypot(d_img[:, 0], d_img[:, 1])
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(len_src > 0, len_img / np.where(len_src > 0, len_src, 1.0), np.inf)
    return ratio


@dataclass(frozen=True)
class StretchReport:
    """Distribution summary of per-edge stretch ratios.

    Attributes
    ----------
    ratios : (m,) ndarray
    max_stretch, mean_stretch, median_stretch : float
    stretched_fraction : float
        Fraction of edges with ratio above ``threshold``.
    threshold : float
    """

    ratios: np.ndarray
    max_stretch: float
    mean_stretch: float
    median_stretch: float
    stretched_fraction: float
    threshold: float

    def breaking_edges(self, source_lengths, comm_range: float) -> np.ndarray:
        """Mask of edges whose *image* length exceeds the range."""
        lengths = np.asarray(source_lengths, dtype=float)
        return self.ratios * lengths > comm_range


def stretch_report(
    edges, source_positions, image_positions, threshold: float = 1.5
) -> StretchReport:
    """Summarise the stretch of a map over a mesh's edges."""
    ratios = edge_stretch(edges, source_positions, image_positions)
    finite = ratios[np.isfinite(ratios)]
    if len(finite) == 0:
        raise MappingError("no finite stretch ratios (all edges degenerate?)")
    return StretchReport(
        ratios=ratios,
        max_stretch=float(finite.max()),
        mean_stretch=float(finite.mean()),
        median_stretch=float(np.median(finite)),
        stretched_fraction=float((finite > threshold).mean()),
        threshold=threshold,
    )
