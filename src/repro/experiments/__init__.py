"""Scenario registry, evaluation harness and table rendering."""

from repro.experiments.harness import (
    DEFAULT_METHODS,
    ScenarioRun,
    SweepPoint,
    SweepResult,
    TransitionEvaluation,
    evaluate_trajectory,
    run_scenario,
    run_scenarios,
    sweep_many,
    sweep_separations,
)
from repro.experiments.chaos import (
    ChaosCase,
    ChaosConfig,
    chaos_sweep,
    render_chaos,
    run_chaos_case,
)
from repro.experiments.crashrec import (
    CrashRecConfig,
    crashrec_passed,
    render_crashrec,
    run_crashrec,
)
from repro.experiments.figures import write_all_sweep_figures, write_sweep_figures
from repro.experiments.loadgen import (
    LoadgenConfig,
    build_schedule,
    render_loadgen,
    run_loadgen,
    run_loadgen_fleet,
)
from repro.experiments.generator import RandomScenario, random_foi, random_scenario
from repro.experiments.missions import (
    mission_campaign,
    missions_passed,
    render_missions,
    run_mission_cell,
)
from repro.experiments.report import build_report, write_report
from repro.experiments.lemmas import (
    Lemma1Example,
    Lemma2Example,
    lemma1_example,
    lemma2_example,
)
from repro.experiments.scaling import (
    format_scaling_table,
    scaling_curve,
    synthetic_swarm_positions,
)
from repro.experiments.scenarios import COMM_RANGE, ROBOT_COUNT, SCENARIOS, ScenarioSpec, get_scenario
from repro.experiments.zoo import (
    FAMILIES as ZOO_FAMILIES,
    ZooCase,
    ZooConfig,
    ZooParams,
    render_zoo,
    run_zoo_case,
    zoo_campaign,
)
from repro.experiments.trace import TransitionTrace, record_trace, render_trace_chart
from repro.experiments.tables import format_table, render_sweep, render_table1

__all__ = [
    "COMM_RANGE",
    "ChaosCase",
    "ChaosConfig",
    "DEFAULT_METHODS",
    "chaos_sweep",
    "render_chaos",
    "run_chaos_case",
    "CrashRecConfig",
    "Lemma1Example",
    "Lemma2Example",
    "LoadgenConfig",
    "ROBOT_COUNT",
    "RandomScenario",
    "SCENARIOS",
    "random_foi",
    "random_scenario",
    "record_trace",
    "render_trace_chart",
    "ScenarioRun",
    "ZOO_FAMILIES",
    "ZooCase",
    "ZooConfig",
    "ZooParams",
    "render_zoo",
    "run_zoo_case",
    "zoo_campaign",
    "ScenarioSpec",
    "SweepPoint",
    "SweepResult",
    "TransitionEvaluation",
    "TransitionTrace",
    "build_report",
    "build_schedule",
    "crashrec_passed",
    "evaluate_trajectory",
    "format_scaling_table",
    "format_table",
    "get_scenario",
    "lemma1_example",
    "lemma2_example",
    "mission_campaign",
    "missions_passed",
    "render_crashrec",
    "render_loadgen",
    "render_missions",
    "run_crashrec",
    "run_mission_cell",
    "render_sweep",
    "render_table1",
    "run_loadgen",
    "run_loadgen_fleet",
    "run_scenario",
    "run_scenarios",
    "scaling_curve",
    "sweep_many",
    "sweep_separations",
    "synthetic_swarm_positions",
    "write_all_sweep_figures",
    "write_report",
    "write_sweep_figures",
]
