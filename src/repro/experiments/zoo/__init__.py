"""The scenario zoo: procedural FoI families + invariant campaigns.

See :mod:`repro.experiments.zoo.families` for the shape generators,
:mod:`repro.experiments.zoo.validate` for structural validation, and
:mod:`repro.experiments.zoo.campaign` for the whole-pipeline invariant
harness behind ``python -m repro zoo``.  Hypothesis strategies live in
:mod:`repro.experiments.zoo.strategies` (imported lazily - hypothesis
is a test dependency).
"""

from repro.experiments.zoo.campaign import (
    INVARIANTS,
    ZooCase,
    ZooConfig,
    ZooScenario,
    build_zoo_scenario,
    case_bytes,
    render_zoo,
    replay_counterexample,
    run_zoo_case,
    shrink_case,
    summary_bytes,
    zoo_campaign,
)
from repro.experiments.zoo.families import (
    FAMILIES,
    ZooParams,
    build_foi,
    draw_params,
    family_rng,
    mild_params,
)
from repro.experiments.zoo.validate import (
    ValidationReport,
    assert_deployable,
    hole_clearance,
    shrink_hole_to_clearance,
    validate_foi,
)

__all__ = [
    "FAMILIES",
    "INVARIANTS",
    "ValidationReport",
    "ZooCase",
    "ZooConfig",
    "ZooParams",
    "ZooScenario",
    "assert_deployable",
    "build_foi",
    "build_zoo_scenario",
    "case_bytes",
    "draw_params",
    "family_rng",
    "hole_clearance",
    "mild_params",
    "render_zoo",
    "replay_counterexample",
    "run_zoo_case",
    "shrink_case",
    "shrink_hole_to_clearance",
    "summary_bytes",
    "validate_foi",
    "zoo_campaign",
]
