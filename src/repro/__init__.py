"""repro: a reproduction of "Optimal Marching of Autonomous Networked Robots".

Ban, Jin, Wu - ICDCS 2016.  A swarm of networked mobile robots covering
a Field of Interest (FoI) must relocate to a new FoI - possibly far
away, concave, and holed - while (1) keeping every robot multi-hop
connected to the network at all times, (2) preserving as many of its
initial communication links as possible, and (3) not travelling much
further than the distance-optimal assignment.

The package layers:

* ``repro.geometry``  - planar geometry kernel
* ``repro.foi``       - FoI models, scenario shapes, hole detours
* ``repro.mesh``      - triangle meshes, Delaunay builders, hole filling
* ``repro.harmonic``  - harmonic disk embeddings, induced maps, rotation search
* ``repro.network``   - unit-disk graphs, links, triangulation extraction
* ``repro.distributed`` - synchronous message-passing runtime + protocols
* ``repro.robots``    - robots, swarms, timed motion
* ``repro.coverage``  - bounded Voronoi / Lloyd / densities
* ``repro.marching``  - the paper's planner (methods (a) and (b))
* ``repro.baselines`` - Hungarian, direct translation, greedy
* ``repro.metrics``   - D, L, C (Definitions 1-2)
* ``repro.exec``      - parallel map engine + content-addressed caching
* ``repro.experiments`` - the 7 scenarios and the sweep harness
* ``repro.service``   - planning-as-a-service HTTP layer (jobs, health, metrics)
* ``repro.viz``       - dependency-free SVG figures

Quickstart::

    from repro import MarchingPlanner, RadioSpec, Swarm
    from repro.foi import m1_base, m2_scenario1

    radio = RadioSpec.from_comm_range(80.0)
    swarm = Swarm.deploy_lattice(m1_base(), 144, radio)
    target = m2_scenario1().translated((2000.0, 0.0))
    result = MarchingPlanner().plan(swarm, target)
    print(result.total_distance, result.repair.escort_count)
"""

from repro.errors import (
    CoverageError,
    ExecutionError,
    GeometryError,
    MappingError,
    MeshError,
    PlanningError,
    ProtocolError,
    ReproError,
    ScenarioError,
    ServiceError,
)
from repro.foi import FieldOfInterest
from repro.marching import (
    DistributedMarchingPlanner,
    FailureEvent,
    MarchingConfig,
    MarchingPlanner,
    MarchingResult,
    replan_after_failure,
    run_pipeline,
)
from repro.metrics import (
    connectivity_report,
    global_connectivity,
    stable_link_ratio,
    total_moving_distance,
)
from repro.robots import RadioSpec, Robot, Swarm

__version__ = "1.0.0"

__all__ = [
    "CoverageError",
    "DistributedMarchingPlanner",
    "ExecutionError",
    "FailureEvent",
    "FieldOfInterest",
    "GeometryError",
    "MappingError",
    "MarchingConfig",
    "MarchingPlanner",
    "MarchingResult",
    "MeshError",
    "PlanningError",
    "ProtocolError",
    "RadioSpec",
    "ReproError",
    "Robot",
    "ScenarioError",
    "ServiceError",
    "Swarm",
    "__version__",
    "connectivity_report",
    "global_connectivity",
    "replan_after_failure",
    "run_pipeline",
    "stable_link_ratio",
    "total_moving_distance",
]
