"""Per-epoch mission checkpointing: resume must stay byte-identical.

The durability contract for long missions: an interrupt at any epoch
boundary leaves a committed ``state.json`` + cache manifest, and a
later run against the same directory resumes from the last completed
epoch yet produces a final document byte-identical to an uninterrupted
run - including the per-epoch ``cache_hits``/``cache_misses`` counters,
which is exactly what the manifest-gated disk store exists to protect.
"""

import json

import pytest

from repro.errors import MissionInterrupted
from repro.io import dumps_canonical
from repro.missions import MissionConfig, MissionSpec, run_mission
from repro.missions.checkpoint import MissionCheckpoint, checkpoint_key

FAST = MissionConfig(
    robot_count=16,
    foi_target_points=100,
    grid_target=300,
    lloyd_max_iterations=6,
    resolution=4,
)

SPEC = MissionSpec(family="corridor", seed=0, epochs=3, motion="drift")


@pytest.fixture(scope="module")
def baseline():
    return dumps_canonical(run_mission(SPEC, FAST))


class TestCheckpointKey:
    def test_deterministic(self):
        spec, config = SPEC.to_dict(), FAST.to_dict()
        assert checkpoint_key(spec, config, None) == checkpoint_key(
            spec, config, None
        )

    def test_sensitive_to_every_input(self):
        spec, config = SPEC.to_dict(), FAST.to_dict()
        base = checkpoint_key(spec, config, None)
        other_spec = dict(spec, seed=1)
        other_config = dict(config, resolution=8)
        assert checkpoint_key(other_spec, config, None) != base
        assert checkpoint_key(spec, other_config, None) != base
        assert checkpoint_key(spec, config, {"crash": []}) != base


class TestStateFile:
    def test_save_load_round_trip(self, tmp_path):
        cp = MissionCheckpoint(tmp_path / "cp", key="k1")
        cp.save({"epochs": [{"epoch": 0}], "totals": {"hits": 1}})
        state = cp.load()
        assert state["epochs"] == [{"epoch": 0}]
        assert state["totals"] == {"hits": 1}
        assert state["key"] == "k1"
        assert state["cache_keys"] == []

    def test_missing_reads_as_none(self, tmp_path):
        assert MissionCheckpoint(tmp_path / "cp", key="k1").load() is None

    def test_corrupt_json_reads_as_none(self, tmp_path):
        cp = MissionCheckpoint(tmp_path / "cp", key="k1")
        cp.save({"epochs": []})
        (cp.directory / "state.json").write_bytes(b'{"epochs": [')
        assert cp.load() is None

    def test_key_mismatch_reads_as_none(self, tmp_path):
        cp = MissionCheckpoint(tmp_path / "cp", key="k1")
        cp.save({"epochs": []})
        other = MissionCheckpoint(tmp_path / "cp", key="k2")
        assert other.load() is None

    def test_unsupported_version_reads_as_none(self, tmp_path):
        cp = MissionCheckpoint(tmp_path / "cp", key="k1")
        cp.save({"epochs": []})
        path = cp.directory / "state.json"
        doc = json.loads(path.read_text())
        doc["journal_version"] = 99
        path.write_bytes(dumps_canonical(doc))
        assert cp.load() is None

    def test_clear_removes_everything(self, tmp_path):
        cp = MissionCheckpoint(tmp_path / "cp", key="k1")
        cp.save({"epochs": []})
        cp.clear()
        assert not cp.directory.exists()
        assert MissionCheckpoint(tmp_path / "cp", key="k1").load() is None


class TestManifestGatedCache:
    def test_uncommitted_entries_invisible_after_reopen(self, tmp_path):
        cp = MissionCheckpoint(tmp_path / "cp", key="k1")
        cache = cp.cache(capacity=8)
        cache.put("maps", "alpha", {"v": 1})
        # No save(): the entry is on disk but never committed.
        reopened = MissionCheckpoint(tmp_path / "cp", key="k1")
        cache2 = reopened.cache(capacity=8)
        assert cache2.get("maps", "alpha") is None

    def test_committed_entries_survive_reopen(self, tmp_path):
        cp = MissionCheckpoint(tmp_path / "cp", key="k1")
        cache = cp.cache(capacity=8)
        cache.put("maps", "alpha", {"v": 1})
        cp.save({"epochs": []})  # commit point: manifest persisted
        reopened = MissionCheckpoint(tmp_path / "cp", key="k1")
        cache2 = reopened.cache(capacity=8)
        assert cache2.get("maps", "alpha") == {"v": 1}

    def test_same_run_reads_its_own_writes(self, tmp_path):
        cp = MissionCheckpoint(tmp_path / "cp", key="k1")
        cache = cp.cache(capacity=8)
        cache.put("maps", "alpha", {"v": 1})
        assert cache.get("maps", "alpha") == {"v": 1}


class TestInterruptResume:
    @pytest.mark.parametrize("stop_epoch", [1, 2])
    def test_resume_is_byte_identical(self, tmp_path, baseline, stop_epoch):
        cp_dir = str(tmp_path / "cp")
        events = []

        with pytest.raises(MissionInterrupted) as exc:
            run_mission(
                SPEC,
                FAST,
                progress=lambda kind, data: events.append(kind),
                checkpoint_dir=cp_dir,
                interrupt=lambda: events.count("epoch") >= stop_epoch,
            )
        assert exc.value.epochs_completed == stop_epoch
        # Every announced epoch was checkpointed first (commit order).
        assert events.count("checkpoint") == events.count("epoch")

        resumed_events = []
        document = run_mission(
            SPEC,
            FAST,
            progress=lambda kind, data: resumed_events.append((kind, data)),
            checkpoint_dir=cp_dir,
        )
        assert dumps_canonical(document) == baseline
        kinds = [kind for kind, _ in resumed_events]
        assert kinds[0] == "resumed"
        assert dict(resumed_events[0][1])["epoch"] == stop_epoch
        assert kinds.count("epoch") == SPEC.epochs - stop_epoch

    def test_completed_mission_clears_checkpoint(self, tmp_path):
        cp_dir = tmp_path / "cp"
        document = run_mission(SPEC, FAST, checkpoint_dir=str(cp_dir))
        assert document["kind"] == "mission"
        assert not cp_dir.exists()

    def test_checkpointed_run_matches_plain_run(self, tmp_path, baseline):
        document = run_mission(
            SPEC, FAST, checkpoint_dir=str(tmp_path / "cp")
        )
        assert dumps_canonical(document) == baseline

    def test_interrupt_before_first_epoch(self, tmp_path, baseline):
        cp_dir = str(tmp_path / "cp")
        with pytest.raises(MissionInterrupted) as exc:
            run_mission(
                SPEC, FAST, checkpoint_dir=cp_dir, interrupt=lambda: True
            )
        assert exc.value.epochs_completed == 0
        document = run_mission(SPEC, FAST, checkpoint_dir=cp_dir)
        assert dumps_canonical(document) == baseline
