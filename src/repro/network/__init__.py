"""Networking substrate: unit-disk graphs, links, extraction, graph utils."""

from repro.network.extract import (
    edge_shared_neighbor_counts,
    extract_triangulation,
    extract_triangulation_localized,
)
from repro.network.graphs import (
    UnionFind,
    adjacency_from_edges,
    bfs_hops,
    connected_components,
)
from repro.network.links import LinkTable, count_surviving_links, links_alive
from repro.network.udg import UnitDiskGraph, udg_edges

__all__ = [
    "LinkTable",
    "UnionFind",
    "UnitDiskGraph",
    "adjacency_from_edges",
    "bfs_hops",
    "connected_components",
    "count_surviving_links",
    "edge_shared_neighbor_counts",
    "extract_triangulation",
    "extract_triangulation_localized",
    "links_alive",
    "udg_edges",
]
