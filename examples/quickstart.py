"""Quickstart: march a swarm from one Field of Interest to another.

Deploys 100 robots in a triangular lattice on the paper's M1, plans the
transition to the scenario-1 target FoI with the modified-harmonic-map
planner, and reports the paper's three metrics (total moving distance
``D``, stable link ratio ``L``, global connectivity ``C``) against the
Hungarian lower bound.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import MarchingConfig, MarchingPlanner, RadioSpec, Swarm
from repro.baselines import hungarian_plan
from repro.coverage import optimal_coverage_positions
from repro.foi import m1_base, m2_scenario1
from repro.metrics import connectivity_report, stable_link_ratio


def main() -> None:
    radio = RadioSpec.from_comm_range(80.0)
    m1 = m1_base()
    swarm = Swarm.deploy_lattice(m1, 100, radio)
    print(f"Deployed {swarm.size} robots on {m1.name}")
    print(f"  connected: {swarm.is_connected()}, "
          f"links: {len(swarm.communication_graph().edges)}")

    # Place the target FoI 20 communication ranges away.
    m2 = m2_scenario1()
    m2 = m2.translated(m1.centroid + np.array([20 * 80.0, 0.0]) - m2.centroid)

    planner = MarchingPlanner(MarchingConfig(method="a"))
    result = planner.plan(swarm, m2)

    L = stable_link_ratio(result.links, result.trajectory)
    C = connectivity_report(
        result.trajectory, radio.comm_range, result.boundary_anchors
    )
    print(f"\nOur method (a) [rotation {np.degrees(result.rotation_angle):.1f} deg, "
          f"{result.repair.escort_count} escorts, {result.lloyd_iterations} Lloyd steps]")
    print(f"  total moving distance D = {result.total_distance / 1000:.1f} km")
    print(f"  stable link ratio     L = {L:.3f}")
    print(f"  global connectivity   C = {C.as_flag}")

    # Compare with the distance-optimal Hungarian baseline.
    q = optimal_coverage_positions(m2, swarm.size, radio.comm_range)
    baseline = hungarian_plan(swarm.positions, q)
    L_h = stable_link_ratio(result.links, baseline.trajectory)
    print(f"\nHungarian baseline (minimum possible D)")
    print(f"  total moving distance D = {baseline.total_distance / 1000:.1f} km "
          f"(ours is {result.total_distance / baseline.total_distance:.3f}x)")
    print(f"  stable link ratio     L = {L_h:.3f} "
          f"(ours preserves {L / max(L_h, 1e-9):.1f}x more links)")


if __name__ == "__main__":
    main()
