"""Benchmark: parallel fan-out speedup and disk-map cache reuse.

Times the scenario-1 separation sweep three ways - serial with a cold
cache, parallel over four worker processes, and serial again with the
warm cache - and records the wall-clock ratios plus the disk-map cache
hit rate as :mod:`repro.obs` gauges.  The parallel speedup is reported,
not asserted against a floor: it is bounded by the CPU count of the
host (on a single-core container the honest number is ~1.0x), whereas
the cache hit rate and the determinism of the payload are properties of
the code and are asserted.
"""

import json
import time

import pytest

from _shared import RUN_KWARGS, SEPARATIONS
from repro.exec import ContentCache, activate_cache
from repro.experiments import get_scenario, sweep_separations
from repro.obs import Metrics, activate_metrics


def _payload(sweep) -> bytes:
    doc = [
        {
            "sep": p.separation_factor,
            "distance_ratio": p.distance_ratio,
            "stable_link_ratio": p.stable_link_ratio,
            "connected": p.connected,
        }
        for p in sweep.points
    ]
    return json.dumps(doc, sort_keys=True).encode()


def _timed_sweep(spec, cache, workers):
    metrics = Metrics()
    with activate_metrics(metrics), activate_cache(cache):
        start = time.perf_counter()
        sweep = sweep_separations(
            spec, separation_factors=SEPARATIONS, workers=workers,
            **RUN_KWARGS,
        )
        elapsed = time.perf_counter() - start
    return sweep, elapsed, metrics


def test_parallel_speedup_and_cache_hit_rate():
    spec = get_scenario(1)

    cold_cache = ContentCache()
    serial_sweep, t_serial, serial_metrics = _timed_sweep(spec, cold_cache, 1)
    parallel_sweep, t_parallel, _ = _timed_sweep(spec, ContentCache(), 4)
    warm_sweep, t_warm, warm_metrics = _timed_sweep(spec, cold_cache, 1)

    hits = serial_metrics.counter("cache.harmonic.diskmap.hits").value
    misses = serial_metrics.counter("cache.harmonic.diskmap.misses").value
    hit_rate = hits / (hits + misses)
    warm_hits = warm_metrics.counter("cache.harmonic.diskmap.hits").value
    warm_misses = warm_metrics.counter("cache.harmonic.diskmap.misses").value
    warm_rate = warm_hits / (warm_hits + warm_misses)

    report = Metrics()
    report.gauge("bench.exec.serial_s").set(t_serial)
    report.gauge("bench.exec.parallel_s").set(t_parallel)
    report.gauge("bench.exec.warm_s").set(t_warm)
    report.gauge("bench.exec.parallel_speedup").set(t_serial / t_parallel)
    report.gauge("bench.exec.cache_speedup").set(t_serial / t_warm)
    report.gauge("bench.exec.cache_hit_rate").set(hit_rate)
    report.gauge("bench.exec.warm_cache_hit_rate").set(warm_rate)

    print()
    print("parallel execution / caching benchmark (scenario 1 sweep):")
    for name, payload in report.snapshot().items():
        print(f"  {name:34s} {payload['value']:.3f}")

    # Determinism: all three paths produce byte-identical payloads.
    assert _payload(serial_sweep) == _payload(parallel_sweep)
    assert _payload(serial_sweep) == _payload(warm_sweep)
    # The sweep reuses the M2 disk map across separations even cold...
    assert hit_rate > 0.0
    # ...and the warm cache never recomputes it at all.
    assert warm_misses == 0
    assert warm_rate == pytest.approx(1.0)
    # Wall-clock sanity (the true parallel ratio is host-dependent).
    assert t_serial > 0 and t_parallel > 0 and t_warm > 0
    assert t_warm <= t_serial * 1.2
