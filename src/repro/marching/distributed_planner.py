"""A marching planner that runs the paper's *distributed* stages.

:class:`~repro.marching.planner.MarchingPlanner` computes every stage
centrally (fast, and convenient as an oracle).  This variant executes
the stages the paper describes as message-passing algorithms through
the :mod:`repro.distributed` runtime:

===========================  =========================================
stage                        execution here
===========================  =========================================
triangulation extraction     localized one-hop Delaunay agreement
                             (:func:`extract_triangulation_localized`)
boundary parameterization    boundary-loop token protocol
                             (hop counting, Sec. III-B)
harmonic interior solve      the sparse solver - proven sweep-for-sweep
                             equivalent to the averaging protocol by
                             the test suite; running tens of thousands
                             of Jacobi message rounds per plan would
                             only burn time, not add fidelity
rotation-angle search        per-robot local scores flooded to a
                             global one (Sec. III-B / III-D2)
isolation detection          boundary-flood subgroup protocol
                             (Sec. III-D1), escorts as in the paper
Lloyd adjustment             local two-range-neighbour iteration (the
                             grid discretisation, connectivity-safe)
===========================  =========================================

The test suite asserts this planner reproduces the centralized
planner's rotation angle and targets.
"""

from __future__ import annotations

import numpy as np

from repro.coverage.density import DensityFunction
from repro.coverage.lloyd import run_lloyd
from repro.distributed.protocols.boundary_loop import run_boundary_loop_protocol
from repro.distributed.protocols.rotation_search import DistributedRotationSearch
from repro.distributed.protocols.subgroup import run_subgroup_detection
from repro.errors import PlanningError
from repro.foi.region import FieldOfInterest
from repro.harmonic.boundary import circle_positions
from repro.harmonic.diskmap import DiskMap, compute_disk_map
from repro.harmonic.solvers import solve_linear
from repro.harmonic.transfer import InducedMap
from repro.marching.planner import MarchingConfig, MarchingPlanner
from repro.marching.result import MarchingResult, RepairInfo
from repro.mesh.delaunay import triangulate_foi
from repro.mesh.holes import fill_holes
from repro.network.extract import extract_triangulation_localized
from repro.network.graphs import adjacency_from_edges
from repro.network.links import LinkTable, links_alive
from repro.robots.swarm import Swarm
from repro.robots.transition import detoured_transition, stepwise_trajectory

__all__ = ["DistributedMarchingPlanner"]


class DistributedMarchingPlanner:
    """Plans a transition using the distributed protocol stages.

    Parameters
    ----------
    config : MarchingConfig, optional
        Same knobs as the centralized planner; ``boundary_mode`` is
        ignored (the token protocol realises the paper's uniform
        hop-count spacing).
    """

    def __init__(self, config: MarchingConfig | None = None) -> None:
        self.config = config or MarchingConfig()

    def plan(
        self,
        swarm: Swarm,
        target_foi: FieldOfInterest,
        density: DensityFunction | None = None,
        source_foi: FieldOfInterest | None = None,
    ) -> MarchingResult:
        """Plan ``swarm``'s transition with the distributed stages."""
        cfg = self.config
        p = swarm.positions
        comm_range = swarm.radio.comm_range
        graph = swarm.communication_graph()
        if not graph.is_connected():
            raise PlanningError("the swarm must start connected")
        links = LinkTable.from_graph(graph)

        # Stage 1 (distributed): localized-Delaunay extraction.
        t_mesh, vmap = extract_triangulation_localized(p, comm_range)
        in_t = np.zeros(len(p), dtype=bool)
        in_t[vmap] = True
        anchors = tuple(int(vmap[v]) for v in t_mesh.outer_boundary_loop)

        # Stage 2a (distributed): boundary parameterization by token.
        dm_t = self._disk_map_via_protocol(t_mesh)

        # Stage 2b: target FoI embedding (each robot computes this alone
        # from the shared map data, Sec. III-B).
        foi_mesh = triangulate_foi(target_foi, target_points=cfg.foi_target_points)
        dm_m2 = compute_disk_map(foi_mesh.mesh, boundary_mode="chord")
        induced = InducedMap(dm_m2)

        # Stage 2c (distributed): rotation search by local scores + floods.
        t_links = MarchingPlanner._links_among(links.links, in_t, vmap)
        search = DistributedRotationSearch(
            induced,
            dm_t.robot_disk_positions,
            p[vmap],
            t_links,
            comm_range,
            [t_mesh.adjacency[v] for v in range(t_mesh.vertex_count)],
        )
        result, targets_t = search.run(
            depth=cfg.search_depth,
            initial_samples=cfg.initial_samples,
            maximize=cfg.method == "a",
        )

        q = np.zeros_like(p)
        q[vmap] = targets_t
        for i in np.flatnonzero(~in_t):
            ref = MarchingPlanner._nearest_in_t(i, p, in_t)
            q[i] = p[i] + (q[ref] - p[ref])
        inside = target_foi.contains(q)
        for i in np.flatnonzero(~inside):
            q[i] = target_foi.project_inside(q[i])

        # Stage 3 (distributed): subgroup detection + parallel escorts.
        q, repair_info = self._repair_via_protocol(
            p, q, links, anchors, comm_range
        )

        # Stages 4-5: march with detours, then Lloyd adjustment.
        march_total = float(np.hypot(*(q - p).T).sum())
        lloyd = run_lloyd(
            q, target_foi, comm_range=comm_range, density=density, config=cfg.lloyd
        )
        t_split = MarchingPlanner._time_split(
            march_total, lloyd.total_movement, cfg.transition_time
        )
        trajectory = detoured_transition(
            p, q, target_foi, 0.0, t_split, source_foi=source_foi
        ).then(
            stepwise_trajectory(lloyd.snapshots, t_split, cfg.transition_time)
        )

        return MarchingResult(
            method=f"ours ({cfg.method}, distributed)",
            start_positions=p.copy(),
            march_targets=q,
            final_positions=lloyd.positions,
            trajectory=trajectory,
            links=links,
            boundary_anchors=anchors,
            rotation_angle=result.angle,
            rotation_evaluations=result.evaluations,
            repair=repair_info,
            lloyd_iterations=lloyd.iterations,
            artifacts={"flood_rounds": search.flood_rounds},
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _disk_map_via_protocol(t_mesh) -> DiskMap:
        """Disk embedding whose boundary comes from the token protocol."""
        filled = fill_holes(t_mesh)
        loop = filled.mesh.outer_boundary_loop
        angle_by_vertex = run_boundary_loop_protocol(
            loop, filled.mesh.vertex_count, filled.mesh.adjacency
        )
        loop_arr = np.asarray(loop, dtype=int)
        bpos = circle_positions([angle_by_vertex[v] for v in loop])
        positions = solve_linear(filled.mesh, loop_arr, bpos)
        return DiskMap(
            source=t_mesh,
            filled=filled,
            disk_positions=positions,
            boundary_mode="uniform-protocol",
            solver="linear",
            iterations=0,
        )

    @staticmethod
    def _repair_via_protocol(
        p: np.ndarray,
        q: np.ndarray,
        links: LinkTable,
        anchors,
        comm_range: float,
        max_rounds: int = 10,
    ) -> tuple[np.ndarray, RepairInfo]:
        """Sec. III-D1 with the subgroup-detection *protocol* in the loop."""
        q = q.copy()
        n = len(p)
        escorted: dict[int, int] = {}
        isolated_before = -1
        full_adj = adjacency_from_edges(n, links.links)
        for round_idx in range(1, max_rounds + 1):
            alive = links_alive(links.links, q, comm_range) & links_alive(
                links.links, p, comm_range
            )
            preserved_adj = adjacency_from_edges(n, links.links[alive])
            isolated, hops = run_subgroup_detection(anchors, preserved_adj)
            if round_idx == 1:
                isolated_before = len(isolated)
            if not isolated:
                return q, RepairInfo(
                    escorted=tuple(sorted(escorted)),
                    references=dict(escorted),
                    rounds=round_idx,
                    isolated_before=isolated_before,
                )
            iso_set = set(isolated)
            # Group isolated robots over preserved links.
            sub_adj = [
                [w for w in preserved_adj[v] if w in iso_set] if v in iso_set else []
                for v in range(n)
            ]
            from repro.network.graphs import connected_components

            comps = [c for c in connected_components(sub_adj) if set(c) <= iso_set]
            progressed = False
            for comp in comps:
                best = None
                pair = None
                for v in comp:
                    for w in full_adj[v]:
                        if hops[w] is None:
                            continue
                        d = float(np.hypot(*(p[v] - p[w])))
                        key = (hops[w], d)
                        if best is None or key < best:
                            best, pair = key, (v, w)
                if pair is None:
                    continue
                _, ref = pair
                disp = q[ref] - p[ref]
                for member in comp:
                    q[member] = p[member] + disp
                    escorted[member] = ref
                progressed = True
            if not progressed:
                raise PlanningError("distributed repair stalled")
        raise PlanningError("distributed repair did not converge")
