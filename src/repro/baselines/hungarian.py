"""Minimum-cost bipartite matching (Kuhn-Munkres / Jonker-Volgenant).

The paper's distance-optimal comparator "directly applies Hungarian
algorithm to find the moving path of the group of mobile robots from M1
to the optimal coverage positions in M2, which should achieve the
minimum total moving distance among all possible methods" (Sec. IV).

This is a from-scratch O(n^3) shortest-augmenting-path implementation
with dual potentials (the modern formulation of Kuhn's 1955 method,
refs. [23]-[25] of the paper).  ``scipy.optimize.linear_sum_assignment``
is used only in the test suite as an independent oracle.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlanningError
from repro.geometry.vec import as_points, pairwise_distances

__all__ = ["solve_assignment", "min_cost_matching", "matching_cost"]


def solve_assignment(cost_matrix) -> np.ndarray:
    """Minimum-cost perfect matching of a square cost matrix.

    Parameters
    ----------
    cost_matrix : (n, n) array-like
        Finite costs; ``cost[i, j]`` is the cost of assigning row ``i``
        to column ``j``.

    Returns
    -------
    (n,) int ndarray
        ``col_of_row``: the column matched to each row.

    Raises
    ------
    PlanningError
        On non-square or non-finite input.
    """
    cost = np.asarray(cost_matrix, dtype=float)
    if cost.ndim != 2 or cost.shape[0] != cost.shape[1]:
        raise PlanningError(f"cost matrix must be square, got {cost.shape}")
    if not np.all(np.isfinite(cost)):
        raise PlanningError("cost matrix must be finite")
    n = cost.shape[0]
    if n == 0:
        return np.zeros(0, dtype=int)

    # 1-indexed arrays with a dummy column 0, following the classic
    # shortest-augmenting-path formulation.
    u = np.zeros(n + 1)
    v = np.zeros(n + 1)
    row_of_col = np.zeros(n + 1, dtype=int)  # 0 means unmatched
    way = np.zeros(n + 1, dtype=int)

    for i in range(1, n + 1):
        row_of_col[0] = i
        j0 = 0
        minv = np.full(n + 1, np.inf)
        used = np.zeros(n + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = row_of_col[j0]
            # Relax all unused columns through column j0's matched row.
            free = ~used
            free[0] = False
            cols = np.flatnonzero(free)
            cur = cost[i0 - 1, cols - 1] - u[i0] - v[cols]
            better = cur < minv[cols]
            if better.any():
                upd = cols[better]
                minv[upd] = cur[better]
                way[upd] = j0
            j1 = cols[int(np.argmin(minv[cols]))]
            delta = minv[j1]
            # Shift potentials so the chosen column becomes tight.
            u[row_of_col[used]] += delta
            v[used] -= delta
            minv[free] -= delta
            j0 = int(j1)
            if row_of_col[j0] == 0:
                break
        # Augment along the alternating path back to the dummy column.
        while j0 != 0:
            j1 = int(way[j0])
            row_of_col[j0] = row_of_col[j1]
            j0 = j1

    col_of_row = np.zeros(n, dtype=int)
    for j in range(1, n + 1):
        col_of_row[row_of_col[j] - 1] = j - 1
    return col_of_row


def min_cost_matching(starts, targets) -> np.ndarray:
    """Distance-minimising assignment of robots to target positions.

    Returns ``assignment`` such that robot ``i`` goes to
    ``targets[assignment[i]]`` and the total Euclidean distance is
    minimum (the minimum-cost bipartite matching of Definition 5).
    """
    p = as_points(starts)
    q = as_points(targets)
    if len(p) != len(q):
        raise PlanningError("starts and targets must have equal size")
    return solve_assignment(pairwise_distances(p, q))


def matching_cost(starts, targets, assignment) -> float:
    """Total Euclidean cost of an assignment."""
    p = as_points(starts)
    q = as_points(targets)[np.asarray(assignment, dtype=int)]
    d = q - p
    return float(np.hypot(d[:, 0], d[:, 1]).sum())
