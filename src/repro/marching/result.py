"""Result types for the marching planner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.network.links import LinkTable
from repro.robots.motion import SwarmTrajectory

__all__ = ["MarchingResult", "RepairInfo"]


@dataclass(frozen=True)
class RepairInfo:
    """What the global-connectivity repair did (Sec. III-D1).

    Attributes
    ----------
    escorted : tuple[int, ...]
        Robot indices whose targets were replaced by parallel-escort
        moves.
    references : dict[int, int]
        ``escorted robot -> reference robot`` whose displacement it
        copies.
    rounds : int
        Repair iterations until no robot was isolated.
    isolated_before : int
        Robots without a path to the boundary before repair.
    """

    escorted: tuple[int, ...]
    references: dict[int, int]
    rounds: int
    isolated_before: int

    @property
    def escort_count(self) -> int:
        return len(self.escorted)


@dataclass(frozen=True)
class MarchingResult:
    """Complete output of one marching plan.

    Attributes
    ----------
    method : str
        "ours (a)" or "ours (b)".
    start_positions : (n, 2) ndarray
    march_targets : (n, 2) ndarray
        Positions after the harmonic-map march (before Lloyd).
    final_positions : (n, 2) ndarray
        Optimal coverage positions after the Lloyd adjustment.
    trajectory : SwarmTrajectory
        Full timed plan (march phase chained with adjustment phase).
    links : LinkTable
        The M1 link population (denominator of ``L``).
    boundary_anchors : tuple[int, ...]
        Robot indices forming the network boundary (Definition 2's
        anchor set).
    rotation_angle : float
        The selected disk rotation (radians).
    rotation_evaluations : int
        Objective calls spent by the angle search.
    repair : RepairInfo
    lloyd_iterations : int
    artifacts : dict
        Optional stage artifacts (meshes, disk maps) kept when
        ``keep_artifacts=True`` is passed to the planner.
    """

    method: str
    start_positions: np.ndarray
    march_targets: np.ndarray
    final_positions: np.ndarray
    trajectory: SwarmTrajectory
    links: LinkTable
    boundary_anchors: tuple[int, ...]
    rotation_angle: float
    rotation_evaluations: int
    repair: RepairInfo
    lloyd_iterations: int
    artifacts: dict[str, Any] = field(default_factory=dict)

    @property
    def robot_count(self) -> int:
        return len(self.start_positions)

    @property
    def total_distance(self) -> float:
        """The paper's ``D``, including the adjustment cost."""
        return self.trajectory.total_distance()
