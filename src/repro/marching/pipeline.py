"""Stage-by-stage pipeline runner (reproduces Fig. 2's panels).

Thin wrapper over :class:`~repro.marching.planner.MarchingPlanner` that
always keeps artifacts and exposes each panel of the paper's pipeline
figure as data: the M1 connectivity graph, the extracted triangulation,
its disk embedding, the target FoI mesh, the post-march deployment and
the final coverage deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.coverage.density import DensityFunction
from repro.foi.region import FieldOfInterest
from repro.harmonic.diskmap import DiskMap
from repro.marching.planner import MarchingConfig, MarchingPlanner
from repro.marching.result import MarchingResult
from repro.mesh.delaunay import FoiMesh
from repro.mesh.trimesh import TriMesh
from repro.network.links import links_alive
from repro.network.udg import UnitDiskGraph
from repro.obs import span
from repro.robots.swarm import Swarm

__all__ = ["PipelineStages", "run_pipeline"]


@dataclass(frozen=True)
class PipelineStages:
    """All intermediate artifacts of one marching run (Fig. 2 (a)-(f)).

    Attributes
    ----------
    m1_graph : UnitDiskGraph
        Panel (a): connectivity graph in M1.
    t_mesh : TriMesh
        Panel (b): triangulation ``T`` extracted from the graph.
    t_vertex_map : ndarray
        Robot index per ``T`` vertex.
    disk_map_t : DiskMap
        Panel (c): harmonic map of ``T`` to the unit disk.
    foi_mesh : FoiMesh
        Panel (d): gridded target FoI.
    disk_map_m2 : DiskMap
        Disk embedding of the target FoI mesh.
    result : MarchingResult
        Panels (e) and (f) come from ``result.march_targets`` and
        ``result.final_positions``.
    """

    m1_graph: UnitDiskGraph
    t_mesh: TriMesh
    t_vertex_map: np.ndarray
    disk_map_t: DiskMap
    foi_mesh: FoiMesh
    disk_map_m2: DiskMap
    result: MarchingResult

    def preserved_link_mask(self) -> np.ndarray:
        """Which M1 links survive to the final deployment.

        Fig. 2 draws preserved links blue and new links red; this gives
        the blue set over the initial link table.
        """
        links = self.result.links
        return links_alive(
            links.links, self.result.final_positions, links.comm_range
        ) & links_alive(links.links, self.result.start_positions, links.comm_range)

    def new_links(self) -> np.ndarray:
        """Links present in the final deployment but not in M1 (the red set)."""
        final_graph = UnitDiskGraph(
            self.result.final_positions, self.result.links.comm_range
        )
        initial = {tuple(e) for e in self.result.links.links.tolist()}
        return np.array(
            [e for e in final_graph.edges.tolist() if tuple(e) not in initial],
            dtype=int,
        ).reshape(-1, 2)


def run_pipeline(
    swarm: Swarm,
    target_foi: FieldOfInterest,
    config: MarchingConfig | None = None,
    density: DensityFunction | None = None,
) -> PipelineStages:
    """Run the full marching pipeline and keep every stage artifact."""
    cfg = replace(config or MarchingConfig(), keep_artifacts=True)
    with span(
        "pipeline.run", robots=swarm.size, method=cfg.method
    ) as sp_:
        result = MarchingPlanner(cfg).plan(swarm, target_foi, density=density)
        sp_.set_attributes(
            rotation_angle=result.rotation_angle,
            total_distance=result.total_distance,
        )
    art = result.artifacts
    return PipelineStages(
        m1_graph=swarm.communication_graph(),
        t_mesh=art["t_mesh"],
        t_vertex_map=art["t_vertex_map"],
        disk_map_t=art["disk_map_t"],
        foi_mesh=art["foi_mesh"],
        disk_map_m2=art["disk_map_m2"],
        result=result,
    )
