"""Tests for cascading (multi-event) replan_after_failure."""

import dataclasses

import numpy as np
import pytest

from repro.coverage import LloydConfig
from repro.errors import PlanningError
from repro.foi import FieldOfInterest, ellipse_polygon
from repro.marching import (
    CascadeOutcome,
    FailureEvent,
    MarchingConfig,
    MarchingPlanner,
    replan_after_failure,
    validate_failure_sequence,
)
from repro.marching.replan import _remap_event_time
from repro.metrics import connectivity_report
from repro.robots import RadioSpec, Swarm
from repro.robots.motion import SwarmTrajectory, TimedPath

FAST = MarchingConfig(
    foi_target_points=150,
    lloyd=LloydConfig(grid_target=500, max_iterations=8),
)


@pytest.fixture(scope="module")
def mission():
    radio = RadioSpec.from_comm_range(80.0)
    m1 = FieldOfInterest(
        ellipse_polygon(1.0, 1.0, samples=30).scaled_to_area(100_000.0),
        name="m1",
    )
    swarm = Swarm.deploy_lattice(m1, 36, radio)
    m2 = FieldOfInterest(
        ellipse_polygon(1.1, 0.9, samples=30).scaled_to_area(95_000.0),
        name="m2",
    ).translated((1000.0, 100.0))
    result = MarchingPlanner(FAST).plan(swarm, m2)
    return swarm, m2, result


class TestValidation:
    def test_empty_sequence_rejected(self):
        with pytest.raises(PlanningError):
            validate_failure_sequence([], 0.0, 1.0)

    def test_unordered_times_rejected(self):
        events = [
            FailureEvent(time=0.6, failed=(1,)),
            FailureEvent(time=0.3, failed=(2,)),
        ]
        with pytest.raises(PlanningError):
            validate_failure_sequence(events, 0.0, 1.0)

    def test_equal_times_rejected(self):
        events = [
            FailureEvent(time=0.5, failed=(1,)),
            FailureEvent(time=0.5, failed=(2,)),
        ]
        with pytest.raises(PlanningError):
            validate_failure_sequence(events, 0.0, 1.0)

    def test_event_after_T_rejected(self):
        events = [FailureEvent(time=1.5, failed=(1,))]
        with pytest.raises(PlanningError):
            validate_failure_sequence(events, 0.0, 1.0)

    def test_double_death_rejected(self):
        events = [
            FailureEvent(time=0.3, failed=(1, 2)),
            FailureEvent(time=0.6, failed=(2,)),
        ]
        with pytest.raises(PlanningError):
            validate_failure_sequence(events, 0.0, 1.0)

    def test_valid_sequence_returned_as_tuple(self):
        events = [
            FailureEvent(time=0.3, failed=(1,)),
            FailureEvent(time=0.6, failed=(2,)),
        ]
        out = validate_failure_sequence(events, 0.0, 1.0)
        assert out == tuple(events)

    def test_replan_rejects_bad_sequences(self, mission):
        swarm, m2, original = mission
        with pytest.raises(PlanningError):
            replan_after_failure(
                original, [], m2, swarm.radio.comm_range, config=FAST
            )
        with pytest.raises(PlanningError):
            replan_after_failure(
                original,
                [FailureEvent(time=2.0, failed=(1,))],
                m2,
                swarm.radio.comm_range,
                config=FAST,
            )

    def test_replan_rejects_out_of_range_ids(self, mission):
        swarm, m2, original = mission
        with pytest.raises(PlanningError):
            replan_after_failure(
                original,
                [FailureEvent(time=0.4, failed=(999,))],
                m2,
                swarm.radio.comm_range,
                config=FAST,
            )


class TestCascade:
    def test_two_event_cascade(self, mission):
        swarm, m2, original = mission
        events = [
            FailureEvent(time=0.3, failed=(3,)),
            FailureEvent(time=0.7, failed=(10, 11)),
        ]
        outcome = replan_after_failure(
            original, events, m2, swarm.radio.comm_range, config=FAST
        )
        assert isinstance(outcome, CascadeOutcome)
        assert outcome.replan_count == 2
        assert len(outcome.survivor_ids) == swarm.size - 3
        for dead in (3, 10, 11):
            assert dead not in outcome.survivor_ids
        # The final plan delivers the full guarantee for the survivors.
        rep = connectivity_report(
            outcome.result.trajectory,
            swarm.radio.comm_range,
            outcome.result.boundary_anchors,
            8,
        )
        assert rep.connected
        assert m2.contains(outcome.result.final_positions).all()

    def test_single_event_list_matches_single_event(self, mission):
        swarm, m2, original = mission
        event = FailureEvent(time=0.4, failed=(5,))
        single = replan_after_failure(
            original, event, m2, swarm.radio.comm_range, config=FAST
        )
        cascade = replan_after_failure(
            original, [event], m2, swarm.radio.comm_range, config=FAST
        )
        assert isinstance(cascade, CascadeOutcome)
        assert cascade.replan_count == 1
        assert np.array_equal(
            np.sort(cascade.survivor_ids), np.sort(single.survivor_ids)
        )
        assert cascade.result.total_distance == pytest.approx(
            single.result.total_distance
        )

    def test_survivor_ids_map_back_to_original(self, mission):
        swarm, m2, original = mission
        events = [
            FailureEvent(time=0.2, failed=(0,)),
            FailureEvent(time=0.5, failed=(1,)),
            FailureEvent(time=0.8, failed=(2,)),
        ]
        outcome = replan_after_failure(
            original, events, m2, swarm.radio.comm_range, config=FAST
        )
        assert outcome.replan_count == 3
        expected = np.array(
            [i for i in range(swarm.size) if i not in (0, 1, 2)]
        )
        assert np.array_equal(np.sort(outcome.survivor_ids), expected)
        # Step chaining: each step starts where the previous plan stood.
        assert len(outcome.steps) == 3
        assert outcome.result is outcome.steps[-1].result


class TestEdgeWindows:
    """Failures at the very end of a plan and degenerate windows."""

    def test_remap_proportional_midpoint(self):
        assert _remap_event_time(0.5, 0.0, 1.0, 10.0, 20.0) == 15.0

    def test_remap_zero_length_window_maps_to_span_end(self):
        # The march is over: the event observes final positions, it
        # must not rewind the survivors to the fresh plan's start.
        assert _remap_event_time(0.7, 0.7, 0.7, 10.0, 20.0) == 20.0
        assert _remap_event_time(0.7, 0.9, 0.7, 10.0, 20.0) == 20.0

    def test_remap_clamps_float_roundoff(self):
        assert _remap_event_time(1.0 + 1e-12, 0.0, 1.0, 10.0, 20.0) == 20.0
        assert _remap_event_time(-1e-12, 0.0, 1.0, 10.0, 20.0) == 10.0

    def test_single_event_exactly_at_T(self, mission):
        swarm, m2, original = mission
        t_end = original.trajectory.t_end
        outcome = replan_after_failure(
            original,
            FailureEvent(time=t_end, failed=(7,)),
            m2,
            swarm.radio.comm_range,
            config=FAST,
        )
        # The survivors replan from the original plan's final positions.
        final = original.trajectory.positions_at(t_end)
        survivors = np.array([i for i in range(swarm.size) if i != 7])
        assert np.allclose(outcome.positions_at_failure, final[survivors])
        assert outcome.survivors_connected

    def test_cascade_event_exactly_at_T(self, mission):
        swarm, m2, original = mission
        t_end = original.trajectory.t_end
        events = [
            FailureEvent(time=0.5 * t_end, failed=(3,)),
            FailureEvent(time=t_end, failed=(4,)),
        ]
        outcome = replan_after_failure(
            original, events, m2, swarm.radio.comm_range, config=FAST
        )
        assert outcome.replan_count == 2
        # The second event lands exactly at the end of the first fresh
        # plan's span - never beyond it.
        first_plan = outcome.steps[0].result
        assert outcome.steps[1].event.time == first_plan.trajectory.t_end
        assert len(outcome.survivor_ids) == swarm.size - 2

    def test_cascade_on_zero_duration_trajectory(self, mission):
        swarm, m2, original = mission
        # A degenerate plan whose whole span is one instant: the
        # remaining window is zero-length from the start.
        frozen = dataclasses.replace(
            original,
            trajectory=SwarmTrajectory(
                [TimedPath.stationary(p, 0.0) for p in original.final_positions],
                0.0,
                0.0,
            ),
        )
        outcome = replan_after_failure(
            frozen,
            [FailureEvent(time=0.0, failed=(5,))],
            m2,
            swarm.radio.comm_range,
            config=FAST,
        )
        assert outcome.replan_count == 1
        step = outcome.steps[0]
        assert step.event.time == 0.0
        survivors = np.array([i for i in range(swarm.size) if i != 5])
        assert np.allclose(
            step.positions_at_failure, original.final_positions[survivors]
        )
