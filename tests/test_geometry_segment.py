"""Unit and property tests for segment predicates."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    on_segment,
    orientation,
    point_segment_distance,
    project_point_on_segment,
    segment_intersection_point,
    segments_intersect,
    segments_properly_cross,
)
from repro.geometry.segment import points_segments_distance

coord = st.floats(-100, 100, allow_nan=False, allow_infinity=False)
point = st.tuples(coord, coord)


class TestOrientation:
    def test_ccw(self):
        assert orientation([0, 0], [1, 0], [0, 1]) == 1

    def test_cw(self):
        assert orientation([0, 0], [0, 1], [1, 0]) == -1

    def test_collinear(self):
        assert orientation([0, 0], [1, 1], [2, 2]) == 0

    @given(point, point, point)
    def test_reversal_flips_sign(self, a, b, c):
        assert orientation(a, b, c) == -orientation(a, c, b)


class TestOnSegment:
    def test_midpoint(self):
        assert on_segment([0.5, 0.5], [0, 0], [1, 1])

    def test_endpoint(self):
        assert on_segment([0, 0], [0, 0], [1, 1])

    def test_off_segment_collinear(self):
        assert not on_segment([2, 2], [0, 0], [1, 1])

    def test_off_line(self):
        assert not on_segment([0.5, 0.6], [0, 0], [1, 1])


class TestSegmentsIntersect:
    def test_crossing(self):
        assert segments_intersect([0, 0], [1, 1], [0, 1], [1, 0])

    def test_disjoint(self):
        assert not segments_intersect([0, 0], [1, 0], [0, 1], [1, 1])

    def test_shared_endpoint(self):
        assert segments_intersect([0, 0], [1, 0], [1, 0], [1, 1])

    def test_collinear_overlap(self):
        assert segments_intersect([0, 0], [2, 0], [1, 0], [3, 0])

    def test_collinear_disjoint(self):
        assert not segments_intersect([0, 0], [1, 0], [2, 0], [3, 0])

    def test_t_junction(self):
        assert segments_intersect([0, 0], [2, 0], [1, 0], [1, 1])

    @given(point, point, point, point)
    def test_symmetric(self, a1, a2, b1, b2):
        assert segments_intersect(a1, a2, b1, b2) == segments_intersect(b1, b2, a1, a2)


class TestProperCross:
    def test_crossing_counts(self):
        assert segments_properly_cross([0, 0], [1, 1], [0, 1], [1, 0])

    def test_shared_endpoint_does_not_count(self):
        assert not segments_properly_cross([0, 0], [1, 0], [1, 0], [1, 1])

    def test_t_junction_does_not_count(self):
        assert not segments_properly_cross([0, 0], [2, 0], [1, 0], [1, 1])

    def test_collinear_overlap_does_not_count(self):
        assert not segments_properly_cross([0, 0], [2, 0], [1, 0], [3, 0])


class TestIntersectionPoint:
    def test_simple_cross(self):
        x = segment_intersection_point([0, 0], [2, 2], [0, 2], [2, 0])
        assert np.allclose(x, [1, 1])

    def test_disjoint_returns_none(self):
        assert segment_intersection_point([0, 0], [1, 0], [0, 1], [1, 1]) is None

    def test_parallel_non_collinear(self):
        assert segment_intersection_point([0, 0], [1, 0], [0, 1], [1, 1]) is None

    def test_collinear_overlap_returns_shared(self):
        x = segment_intersection_point([0, 0], [2, 0], [1, 0], [3, 0])
        assert x is not None and on_segment(x, [0, 0], [2, 0]) and on_segment(x, [1, 0], [3, 0])

    @given(point, point, point, point)
    def test_point_lies_on_both(self, a1, a2, b1, b2):
        x = segment_intersection_point(a1, a2, b1, b2)
        if x is not None:
            assert point_segment_distance(x, a1, a2) < 1e-5
            assert point_segment_distance(x, b1, b2) < 1e-5


class TestProjection:
    def test_interior(self):
        q = project_point_on_segment([1, 1], [0, 0], [2, 0])
        assert np.allclose(q, [1, 0])

    def test_clamps_to_endpoints(self):
        assert np.allclose(project_point_on_segment([-5, 3], [0, 0], [2, 0]), [0, 0])
        assert np.allclose(project_point_on_segment([9, 3], [0, 0], [2, 0]), [2, 0])

    def test_degenerate_segment(self):
        assert np.allclose(project_point_on_segment([5, 5], [1, 1], [1, 1]), [1, 1])

    @given(point, point, point)
    def test_projection_is_closest(self, p, a, b):
        q = project_point_on_segment(p, a, b)
        d = point_segment_distance(p, a, b)
        # No sampled point of the segment is meaningfully closer.
        for t in (0.0, 0.25, 0.5, 0.75, 1.0):
            s = (1 - t) * np.asarray(a, float) + t * np.asarray(b, float)
            assert d <= np.hypot(*(np.asarray(p, float) - s)) + 1e-7


class TestVectorisedDistance:
    def test_matches_scalar(self, rng):
        pts = rng.uniform(-10, 10, (20, 2))
        a = rng.uniform(-10, 10, (7, 2))
        b = rng.uniform(-10, 10, (7, 2))
        mat = points_segments_distance(pts, a, b)
        assert mat.shape == (20, 7)
        for i in range(20):
            for j in range(7):
                assert mat[i, j] == pytest.approx(
                    point_segment_distance(pts[i], a[j], b[j]), abs=1e-9
                )

    def test_degenerate_segments(self):
        mat = points_segments_distance([[0.0, 0.0]], [[1.0, 1.0]], [[1.0, 1.0]])
        assert mat[0, 0] == pytest.approx(np.sqrt(2))
