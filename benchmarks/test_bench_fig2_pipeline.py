"""E10 - Fig. 2: the six-panel pipeline figure, regenerated end to end.

Runs the full pipeline on the paper's M1 -> flower-pond scenario and
writes the six SVG panels next to the benchmark output, asserting each
stage's structural invariant (the pipeline figure's implicit claims):
T is a triangulation of the full swarm, its disk map is a fold-free
embedding, and the final deployment covers the target FoI.
"""

from pathlib import Path

from repro.coverage import LloydConfig, coverage_fraction
from repro.experiments import get_scenario
from repro.marching import MarchingConfig, run_pipeline
from repro.obs import Tracer, activate
from repro.robots import RadioSpec, Swarm
from repro.viz import render_pipeline_figure

CFG = MarchingConfig(
    foi_target_points=320, lloyd=LloydConfig(grid_target=1400, max_iterations=50)
)
OUTPUT_DIR = Path(__file__).parent / "output" / "fig2"


def _run():
    spec = get_scenario(3)
    radio = RadioSpec.from_comm_range(spec.comm_range)
    m1, m2 = spec.build(separation_factor=15.0)
    swarm = Swarm.deploy_lattice(m1, spec.robot_count, radio)
    tracer = Tracer()
    with activate(tracer):
        stages = run_pipeline(swarm, m2, config=CFG)
    paths = render_pipeline_figure(stages, OUTPUT_DIR, spec.comm_range)
    return stages, paths, tracer


def test_fig2_pipeline(benchmark):
    stages, paths, tracer = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\nPipeline phase timings:")
    for name, row in tracer.phase_timings().items():
        if name.startswith(("pipeline.", "plan.")):
            print(f"  {name:30s} {row['total_s'] * 1000:9.2f} ms")
            benchmark.extra_info[name] = round(row["total_s"], 6)
    print(f"Fig. 2 panels written to {OUTPUT_DIR}:")
    for p in paths:
        print(f"  {p.name}")
    assert len(paths) == 6 and all(p.exists() for p in paths)

    # Panel invariants.
    assert stages.t_mesh.vertex_count == stages.m1_graph.node_count
    assert stages.t_mesh.is_topological_disk()
    assert stages.disk_map_t.is_embedding()
    assert stages.disk_map_m2.is_embedding()
    m2 = stages.foi_mesh.foi
    result = stages.result
    assert m2.contains(result.final_positions).all()
    # Blue links exist: the march preserves a meaningful link majority.
    assert stages.preserved_link_mask().mean() > 0.5
    # The final deployment actually covers the FoI (Kershner optimality
    # is about full coverage; the reproduced layout should approach it).
    radio = RadioSpec.from_comm_range(80.0)
    assert coverage_fraction(
        m2, result.final_positions, radio.sensing_range
    ) > 0.9
