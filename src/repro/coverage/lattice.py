"""Triangular-lattice deployments and canonical coverage positions.

The triangular lattice is the coverage-optimal pattern the paper (via
Kershner's theorem) assumes as both the starting deployment in M1 and
the end state in M2.  :func:`optimal_coverage_positions` computes the
canonical ``Q`` used by the baselines, which "have computed the optimal
coverage positions in M2 before the transition procedure": a lattice
seeding refined by (connectivity-unconstrained) Lloyd iterations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CoverageError
from repro.coverage.density import DensityFunction
from repro.coverage.lloyd import LloydConfig, run_lloyd
from repro.foi.region import FieldOfInterest
from repro.robots.swarm import Swarm, _triangular_lattice_points
from repro.robots.robot import RadioSpec

__all__ = ["lattice_positions", "optimal_coverage_positions"]


def lattice_positions(foi: FieldOfInterest, count: int, comm_range: float) -> np.ndarray:
    """``count`` triangular-lattice sites inside ``foi``.

    Thin wrapper over the swarm deployment used when only positions
    (not a full swarm) are needed.
    """
    radio = RadioSpec.from_comm_range(comm_range)
    return Swarm.deploy_lattice(foi, count, radio).positions


def optimal_coverage_positions(
    foi: FieldOfInterest,
    count: int,
    comm_range: float,
    density: DensityFunction | None = None,
    grid_target: int = 2500,
    max_iterations: int = 80,
) -> np.ndarray:
    """Canonical optimal-coverage positions ``Q`` in a FoI.

    A centroidal Voronoi configuration computed by Lloyd refinement
    from deterministic pseudo-random seeding.  The seeding is
    intentionally *independent of any deployment* (in particular of the
    axis-aligned lattice generator used for M1 start states): the
    paper's comparison methods are merely "assumed to have computed the
    optimal coverage positions in M2", and an optimal configuration
    carries no memory of the swarm's previous orientation or lattice
    phase.  Seeding both from the same lattice generator would secretly
    hand the baselines a pre-aligned target and inflate their stable
    link ratios.

    Deterministic: the same FoI, count and density always produce the
    same ``Q`` (the seed derives from the count and the FoI's hole
    structure only).

    Raises
    ------
    CoverageError
        If ``count`` is not positive.
    """
    if count < 1:
        raise CoverageError("need at least one robot")
    rng = np.random.default_rng(7919 * count + 31 * len(foi.holes) + 1)
    seeds = foi.sample_free_points(count, rng)
    result = run_lloyd(
        seeds,
        foi,
        comm_range=comm_range,
        density=density,
        config=LloydConfig(
            grid_target=grid_target,
            max_iterations=max_iterations,
            connectivity_safe=False,
        ),
    )
    return result.positions
