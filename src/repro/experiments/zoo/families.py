"""Procedural FoI families: the scenario zoo's shape generators.

The paper states its guarantees for *arbitrary* fields of interest but
evaluates on seven fixed shapes.  This module generates unbounded
families of valid polygon-with-holes regions from a ``(family, seed)``
pair so campaigns and property tests can sweep geometry the authors
never drew: serpentine corridors, archipelagos of lobes joined by thin
necks, annuli and ring sectors, star-concave blobs, and rough-boundary
blobs - exactly the stress classes (thin corridors, near-disconnected
targets) the related coverage and pattern-formation literature names
as hard for harmonic maps.

Every family is a pure function of ``(family, seed, params)``: the
parameters are drawn from a seed-derived stream, and the build consumes
an independent stream, so a shrunk counterexample - same seed, milder
params - is still byte-reproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.errors import ScenarioError
from repro.foi.region import FieldOfInterest
from repro.foi.shapes import ellipse_polygon, flower_polygon, radial_blob
from repro.geometry.polygon import Polygon

__all__ = [
    "FAMILIES",
    "ZooParams",
    "build_foi",
    "draw_params",
    "family_rng",
]

#: The five shape families of the zoo, in canonical order.
FAMILIES = ("corridor", "archipelago", "annulus", "star", "rough")

# Stream tags: parameter draws and geometry jitter consume independent
# generators so explicit params (e.g. a shrunk counterexample) leave
# the build's randomness untouched.
_STREAM_PARAMS = 0
_STREAM_BUILD = 1


@dataclass(frozen=True)
class ZooParams:
    """The knobs shared by every family (JSON round-trippable).

    Attributes
    ----------
    lobes : int
        Family-specific multiplicity: corridor slits, archipelago
        lobes, star petals (unused by annulus/rough).
    hole_count : int
        Holes punched into the free region (families that support it).
    hole_area_fraction : float
        Total hole area as a fraction of the outer area.
    roughness : float
        Boundary perturbation amplitude in [0, 1].
    min_corridor_width : float
        Narrowest free passage the family guarantees, as a fraction of
        the shape's unit scale (corridor width, archipelago neck,
        annulus ring thickness).
    """

    lobes: int = 3
    hole_count: int = 0
    hole_area_fraction: float = 0.0
    roughness: float = 0.0
    min_corridor_width: float = 0.2

    def to_dict(self) -> dict[str, Any]:
        return {
            "lobes": int(self.lobes),
            "hole_count": int(self.hole_count),
            "hole_area_fraction": float(self.hole_area_fraction),
            "roughness": float(self.roughness),
            "min_corridor_width": float(self.min_corridor_width),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ZooParams":
        try:
            return cls(
                lobes=int(data["lobes"]),
                hole_count=int(data["hole_count"]),
                hole_area_fraction=float(data["hole_area_fraction"]),
                roughness=float(data["roughness"]),
                min_corridor_width=float(data["min_corridor_width"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ScenarioError(f"malformed zoo params: {exc}") from exc


def family_rng(family: str, seed: int, stream: int = _STREAM_BUILD) -> np.random.Generator:
    """The deterministic generator for one ``(family, seed, stream)``.

    Seeded through ``SeedSequence`` on plain integers (the family name
    enters as its CRC-32), so the stream is identical across processes
    and platforms - the property the campaign's byte-identity contract
    rests on.
    """
    if family not in FAMILIES:
        raise ScenarioError(
            f"unknown zoo family {family!r}; valid: {list(FAMILIES)}"
        )
    tag = zlib.crc32(family.encode("utf-8"))
    return np.random.default_rng([int(seed), tag, stream])


def draw_params(family: str, seed: int) -> ZooParams:
    """Draw a family's parameters from its seed-derived stream."""
    rng = family_rng(family, seed, _STREAM_PARAMS)
    if family == "corridor":
        width = float(rng.uniform(0.14, 0.22))
        return ZooParams(
            lobes=int(rng.integers(2, 4)),
            roughness=float(rng.uniform(0.0, 0.5)),
            min_corridor_width=width,
        )
    if family == "archipelago":
        return ZooParams(
            lobes=int(rng.integers(2, 5)),
            roughness=float(rng.uniform(0.0, 0.3)),
            min_corridor_width=float(rng.uniform(0.25, 0.45)),
        )
    if family == "annulus":
        thickness = float(rng.uniform(0.38, 0.52))
        holed = bool(rng.random() < 0.5)
        return ZooParams(
            lobes=1,
            hole_count=1 if holed else 0,
            hole_area_fraction=(1.0 - thickness) ** 2 if holed else 0.0,
            roughness=float(rng.uniform(0.0, 0.15)),
            min_corridor_width=thickness,
        )
    if family == "star":
        return ZooParams(
            lobes=int(rng.integers(4, 8)),
            hole_count=int(rng.integers(0, 2)),
            hole_area_fraction=float(rng.uniform(0.015, 0.04)),
            roughness=float(rng.uniform(0.25, 0.45)),
            min_corridor_width=0.3,
        )
    if family == "rough":
        return ZooParams(
            hole_count=int(rng.integers(0, 3)),
            hole_area_fraction=float(rng.uniform(0.02, 0.08)),
            roughness=float(rng.uniform(0.05, 0.25)),
            min_corridor_width=0.3,
        )
    raise ScenarioError(f"unknown zoo family {family!r}")  # pragma: no cover


def _validated_params(family: str, params: ZooParams) -> ZooParams:
    """Clamp params into the family's safe envelope; reject nonsense."""
    if params.lobes < 1:
        raise ScenarioError(f"{family}: lobes must be >= 1, got {params.lobes}")
    if params.hole_count < 0 or params.hole_area_fraction < 0:
        raise ScenarioError(f"{family}: hole parameters must be non-negative")
    if not 0.0 <= params.roughness <= 1.0:
        raise ScenarioError(
            f"{family}: roughness must be in [0, 1], got {params.roughness}"
        )
    if params.min_corridor_width <= 0:
        raise ScenarioError(
            f"{family}: min_corridor_width must be positive, "
            f"got {params.min_corridor_width}"
        )
    return params


# ----------------------------------------------------------------------
# Family builders (unit scale; callers use FieldOfInterest.scaled_to_area)
# ----------------------------------------------------------------------


def _corridor(params: ZooParams, rng: np.random.Generator) -> FieldOfInterest:
    """A serpentine comb: a square with alternating slits cut in.

    The free space is a single winding corridor; its narrowest passage
    (over each slit tip and between adjacent slits) is at least
    ``min_corridor_width``.
    """
    w = params.min_corridor_width
    # Slit count capped so the corridor between adjacent slits keeps
    # width >= w: slit pitch 1/(k+1), slit width 0.4 * pitch.
    k = min(params.lobes, max(2, int(0.6 / w) - 1))
    pitch = 1.0 / (k + 1)
    s = 0.4 * pitch
    jitter = params.roughness * 0.08
    centers = []
    depths = []
    for j in range(k):
        centers.append((j + 1) * pitch + float(rng.uniform(-1, 1)) * jitter * pitch)
        depths.append(1.0 - w * (1.0 + float(rng.uniform(0.0, 1.0)) * jitter))
    pts: list[tuple[float, float]] = [(0.0, 0.0)]
    for j in range(k):  # bottom edge, left to right; even slits cut upward
        if j % 2 == 0:
            x0, x1 = centers[j] - s / 2.0, centers[j] + s / 2.0
            pts += [(x0, 0.0), (x0, depths[j]), (x1, depths[j]), (x1, 0.0)]
    pts += [(1.0, 0.0), (1.0, 1.0)]
    for j in reversed(range(k)):  # top edge, right to left; odd slits cut down
        if j % 2 == 1:
            x0, x1 = centers[j] + s / 2.0, centers[j] - s / 2.0
            d = 1.0 - depths[j]
            pts += [(x0, 1.0), (x0, d), (x1, d), (x1, 1.0)]
    pts += [(0.0, 1.0)]
    return FieldOfInterest(Polygon(pts), name="zoo-corridor")


def _archipelago(params: ZooParams, rng: np.random.Generator) -> FieldOfInterest:
    """Lobes along a spine joined by thin necks (a caterpillar profile).

    Built as ``{(x, y): |y| <= f(x)}`` where ``f`` is the max of one
    semi-elliptic bump per lobe and a constant neck half-width, so the
    polygon is x-monotone and simple by construction.
    """
    n_lobes = max(2, params.lobes)
    half_pitch = 0.5 / n_lobes
    centers = (np.arange(n_lobes) + 0.5) / n_lobes
    heights = half_pitch * (0.85 + 0.3 * rng.uniform(0.0, 1.0, n_lobes))
    neck_half = params.min_corridor_width * float(heights.mean())
    xs = np.linspace(0.0, 1.0, 24 * n_lobes)
    f = np.full_like(xs, neck_half)
    for c, h in zip(centers, heights):
        u = (xs - c) / half_pitch
        bump = h * np.sqrt(np.clip(1.0 - u * u, 0.0, None))
        f = np.maximum(f, bump)
    if params.roughness > 0:
        noise = rng.normal(0.0, 1.0, len(xs))
        # Smooth the noise so the boundary stays locally sane.
        kernel = np.ones(5) / 5.0
        noise = np.convolve(noise, kernel, mode="same")
        f = f * (1.0 + 0.1 * params.roughness * noise)
        f = np.maximum(f, 0.8 * neck_half)
    top = np.column_stack([xs, f])
    bottom = np.column_stack([xs[::-1], -f[::-1]])
    return FieldOfInterest(Polygon(np.vstack([top, bottom])), name="zoo-archipelago")


def _annulus(params: ZooParams, rng: np.random.Generator) -> FieldOfInterest:
    """A ring of thickness ``min_corridor_width``.

    With ``hole_count == 1`` it is a true annulus (disk with a
    concentric hole - the harmonic map must fill the hole with a
    virtual vertex); otherwise a ring sector opened by a gap, which is
    a topological disk the map must unroll.
    """
    t = min(max(params.min_corridor_width, 0.2), 0.8)
    inner = 1.0 - t
    wobble = 1.0 + params.roughness * 0.2 * float(rng.uniform(-1.0, 1.0))
    if params.hole_count >= 1:
        outer = ellipse_polygon(1.0, wobble, samples=72)
        hole = ellipse_polygon(inner, inner * wobble, samples=48)
        return FieldOfInterest(outer, [hole], name="zoo-annulus")
    gap = float(rng.uniform(0.7, 1.3))
    half_gap = gap / 2.0
    theta = np.linspace(half_gap, 2.0 * np.pi - half_gap, 72)
    outer_arc = np.column_stack([np.cos(theta), wobble * np.sin(theta)])
    inner_arc = np.column_stack(
        [inner * np.cos(theta[::-1]), inner * wobble * np.sin(theta[::-1])]
    )
    return FieldOfInterest(
        Polygon(np.vstack([outer_arc, inner_arc])), name="zoo-ring-sector"
    )


def _star(params: ZooParams, rng: np.random.Generator) -> FieldOfInterest:
    """A star-concave blob: deep petals, optionally a central hole."""
    depth = min(max(params.roughness, 0.1), 0.5)
    phase = float(rng.uniform(0.0, 2.0 * np.pi))
    theta = np.linspace(0.0, 2.0 * np.pi, 96, endpoint=False)
    r = 1.0 + depth * np.cos(params.lobes * theta + phase)
    outer = Polygon(np.column_stack([r * np.cos(theta), r * np.sin(theta)]))
    holes = []
    if params.hole_count >= 1:
        # Keep the hole well inside the star's inner radius (1 - depth).
        r_hole = min(
            np.sqrt(max(params.hole_area_fraction, 1e-4) * np.pi) / np.pi ** 0.5,
            0.45 * (1.0 - depth),
        )
        holes.append(ellipse_polygon(r_hole, r_hole, samples=24))
    return FieldOfInterest(outer, holes, name="zoo-star")


def _rough(params: ZooParams, rng: np.random.Generator) -> FieldOfInterest:
    """A blob with a high-frequency rough boundary and scattered holes."""
    harmonics: dict[int, tuple[float, float]] = {}
    for k in range(2, 11):
        amp = params.roughness / max(k - 1, 1)
        harmonics[k] = (
            float(rng.uniform(-amp, amp)),
            float(rng.uniform(-amp, amp)),
        )
    outer = radial_blob(harmonics, samples=128)
    holes: list[Polygon] = []

    def overlaps(a: Polygon, b: Polygon) -> bool:
        return bool(np.any(a.contains(b.vertices))) or bool(
            np.any(b.contains(a.vertices))
        )

    if params.hole_count > 0:
        per_hole = params.hole_area_fraction / params.hole_count
        size = float(np.sqrt(per_hole))  # radius ~ sqrt(fraction) of unit blob
        slots = rng.permutation(4)[: params.hole_count]
        for slot in slots:
            angle = slot * np.pi / 2.0 + float(rng.uniform(-0.3, 0.3))
            rr = float(rng.uniform(0.15, 0.3))
            center = (rr * np.cos(angle), rr * np.sin(angle))
            if rng.random() < 0.5:
                hole = ellipse_polygon(
                    size, size * float(rng.uniform(0.7, 1.3)),
                    samples=20, center=center,
                )
            else:
                hole = flower_polygon(
                    petals=int(rng.integers(3, 7)),
                    base_radius=size,
                    petal_depth=float(rng.uniform(0.2, 0.4)),
                    samples=32,
                    center=center,
                )
            # Deterministic de-overlap: a hole that intersects an
            # already-kept one is dropped, never silently merged.
            if not any(overlaps(hole, kept) for kept in holes):
                holes.append(hole)
    return FieldOfInterest(outer, holes, name="zoo-rough")


_BUILDERS = {
    "corridor": _corridor,
    "archipelago": _archipelago,
    "annulus": _annulus,
    "star": _star,
    "rough": _rough,
}


def build_foi(
    family: str,
    seed: int,
    params: ZooParams | None = None,
    validate: bool = True,
) -> tuple[FieldOfInterest, ZooParams]:
    """Build one zoo FoI at unit scale; returns ``(foi, params)``.

    ``params`` defaults to :func:`draw_params`; passing explicit params
    (a shrunk counterexample) reuses the same build stream, so the
    result is a pure function of ``(family, seed, params)``.

    Raises
    ------
    ScenarioError
        On an unknown family, out-of-envelope params, or (with
        ``validate=True``) a generated region that fails validation.
    """
    if params is None:
        params = draw_params(family, seed)
    params = _validated_params(family, params)
    rng = family_rng(family, seed, _STREAM_BUILD)
    foi = _BUILDERS[family](params, rng)
    foi = FieldOfInterest(
        foi.outer, foi.holes, name=f"zoo-{family}[{seed}]"
    )
    if validate:
        from repro.experiments.zoo.validate import validate_foi

        report = validate_foi(foi)
        if not report.ok:
            raise ScenarioError(
                f"zoo {family} seed {seed}: generated region failed "
                f"validation ({report.failures})"
            )
    return foi, params


def mild_params(family: str, params: ZooParams) -> list[ZooParams]:
    """Candidate one-step param reductions, mildest-first (for shrinking)."""
    candidates: list[ZooParams] = []
    if params.hole_count > 0:
        candidates.append(
            replace(params, hole_count=params.hole_count - 1)
        )
    if params.roughness > 0.05:
        candidates.append(replace(params, roughness=params.roughness / 2.0))
    if params.lobes > 2:
        candidates.append(replace(params, lobes=params.lobes - 1))
    if params.min_corridor_width < 0.45:
        candidates.append(
            replace(
                params,
                min_corridor_width=min(params.min_corridor_width * 1.4, 0.5),
            )
        )
    return candidates
