"""Common result type for baseline transition planners."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.robots.motion import SwarmTrajectory

__all__ = ["BaselinePlan"]


@dataclass(frozen=True)
class BaselinePlan:
    """A baseline's complete answer to a marching problem.

    Attributes
    ----------
    name : str
        Method label as used in the paper's plots.
    assignment : (n,) int ndarray
        ``targets[assignment[i]]`` is robot ``i``'s final position.
    final_positions : (n, 2) ndarray
        Per-robot final positions (already permuted by assignment).
    trajectory : SwarmTrajectory
        The full timed motion plan.
    """

    name: str
    assignment: np.ndarray
    final_positions: np.ndarray
    trajectory: SwarmTrajectory

    @property
    def total_distance(self) -> float:
        return self.trajectory.total_distance()
