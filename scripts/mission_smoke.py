#!/usr/bin/env python
"""CI smoke test for the streaming mission campaign.

Runs ``python -m repro mission`` twice (once serial, once with two
workers) on a fixed-seed drifting mission, through a real process
boundary, and asserts the mission contract:

1. both invocations exit 0 with C = 1 at every sampled instant,
2. the two canonical summary files are byte-identical (same
   ``(spec, config)`` => same campaign bytes, regardless of worker
   count or process),
3. the drifting target produced at least one translation-canonical
   disk-map cache hit (the replan reused the cold solve), and
4. an unknown motion is rejected loudly with a non-zero exit.

Run:  PYTHONPATH=src python scripts/mission_smoke.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

MATRIX = [
    "--families", "corridor",
    "--motions", "drift",
    "--seeds", "1",
    "--epochs", "3",
]


def run_mission(extra: list[str]) -> subprocess.CompletedProcess:
    cmd = [sys.executable, "-m", "repro", "mission", *extra]
    print(f"$ {' '.join(cmd)}")
    proc = subprocess.run(cmd, text=True, capture_output=True)
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    return proc


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        serial = Path(tmp) / "serial.json"
        parallel = Path(tmp) / "parallel.json"
        proc = run_mission([*MATRIX, "--workers", "1", "--output", str(serial)])
        assert proc.returncode == 0, f"serial run exit {proc.returncode}"
        proc = run_mission(
            [*MATRIX, "--workers", "2", "--output", str(parallel)]
        )
        assert proc.returncode == 0, f"parallel run exit {proc.returncode}"

        a, b = serial.read_bytes(), parallel.read_bytes()
        assert a == b, "mission summaries differ between worker counts"
        print(f"byte-identical summaries: {len(a)} bytes")

        summary = json.loads(a)
        agg = summary["summary"]
        assert agg["connected_all"], agg
        assert agg["passed"] == agg["cells"] > 0, agg
        assert agg["errors"] == 0, agg
        assert agg["cache_hits_total"] >= 1, (
            "drifting target never hit the disk-map cache", agg
        )
        for cell in summary["cells"]:
            assert cell["outcome"] == "pass", cell
            assert cell["c_violations"] == 0, cell
            assert cell["mission_sha256"], cell
        print(
            f"C = 1 everywhere; {agg['cache_hits_total']} cache hits over "
            f"{agg['replans_total']} replans"
        )

        # A bad motion must fail loudly, not degrade silently.
        proc = run_mission(["--motions", "teleport"])
        assert proc.returncode != 0, "unknown motion not rejected"
        assert "unknown mission motion" in proc.stderr, proc.stderr
        print("unknown motion rejected: OK")
    print("mission smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
