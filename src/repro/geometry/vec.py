"""Low-level vector helpers shared by the geometry kernel.

All geometry in this library lives in the plane.  Points are represented
as numpy arrays of shape ``(2,)`` and point sets as arrays of shape
``(n, 2)`` with ``float64`` dtype.  The helpers here normalise inputs to
that convention and provide the handful of numeric primitives (cross
products, distances, rotations) that the higher level modules build on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError

__all__ = [
    "as_point",
    "as_points",
    "cross2",
    "dot2",
    "norm",
    "normalize",
    "distance",
    "pairwise_distances",
    "rotate",
    "rotation_matrix",
    "perpendicular",
    "lerp",
    "polyline_length",
    "angle_of",
]


def as_point(p) -> np.ndarray:
    """Coerce ``p`` to a ``float64`` array of shape ``(2,)``.

    Raises
    ------
    GeometryError
        If ``p`` cannot be interpreted as a single 2-D point.
    """
    arr = np.asarray(p, dtype=float)
    if arr.shape != (2,):
        raise GeometryError(f"expected a 2-D point, got array of shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise GeometryError(f"point contains non-finite coordinates: {arr}")
    return arr


def as_points(pts) -> np.ndarray:
    """Coerce ``pts`` to a ``float64`` array of shape ``(n, 2)``.

    An empty input yields an array of shape ``(0, 2)`` so downstream
    vectorised code works uniformly.
    """
    arr = np.asarray(pts, dtype=float)
    if arr.size == 0:
        return arr.reshape(0, 2)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GeometryError(f"expected an (n, 2) point array, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise GeometryError("point array contains non-finite coordinates")
    return arr


def cross2(a, b) -> float:
    """Scalar 2-D cross product ``a.x * b.y - a.y * b.x``."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return float(a[..., 0] * b[..., 1] - a[..., 1] * b[..., 0])


def dot2(a, b) -> float:
    """Dot product of two 2-D vectors as a Python float."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return float(a[..., 0] * b[..., 0] + a[..., 1] * b[..., 1])


def norm(v) -> float:
    """Euclidean norm of a 2-D vector."""
    v = np.asarray(v, dtype=float)
    return float(np.hypot(v[..., 0], v[..., 1]))


def normalize(v) -> np.ndarray:
    """Return ``v`` scaled to unit length.

    Raises
    ------
    GeometryError
        If ``v`` is (numerically) the zero vector.
    """
    v = as_point(v)
    n = norm(v)
    if n < 1e-300:
        raise GeometryError("cannot normalize the zero vector")
    return v / n


def distance(a, b) -> float:
    """Euclidean distance between two points."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return float(np.hypot(a[0] - b[0], a[1] - b[1]))


def pairwise_distances(pts_a, pts_b=None) -> np.ndarray:
    """Dense matrix of Euclidean distances between two point sets.

    Parameters
    ----------
    pts_a : (n, 2) array-like
    pts_b : (m, 2) array-like, optional
        Defaults to ``pts_a`` (self-distances).

    Returns
    -------
    (n, m) ndarray
    """
    a = as_points(pts_a)
    b = a if pts_b is None else as_points(pts_b)
    diff = a[:, None, :] - b[None, :, :]
    return np.hypot(diff[..., 0], diff[..., 1])


def rotation_matrix(theta: float) -> np.ndarray:
    """2x2 counter-clockwise rotation matrix for angle ``theta`` (radians)."""
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[c, -s], [s, c]])


def rotate(pts, theta: float, center=(0.0, 0.0)) -> np.ndarray:
    """Rotate points counter-clockwise by ``theta`` radians about ``center``.

    Accepts a single point or an ``(n, 2)`` array and preserves the shape.
    """
    arr = np.asarray(pts, dtype=float)
    single = arr.ndim == 1
    pts2 = as_points(arr[None, :] if single else arr)
    c = as_point(center)
    rotated = (pts2 - c) @ rotation_matrix(theta).T + c
    return rotated[0] if single else rotated


def perpendicular(v) -> np.ndarray:
    """The vector ``v`` rotated by +90 degrees."""
    v = as_point(v)
    return np.array([-v[1], v[0]])


def lerp(a, b, t: float) -> np.ndarray:
    """Linear interpolation ``(1 - t) * a + t * b``."""
    a = as_point(a)
    b = as_point(b)
    return (1.0 - t) * a + t * b


def polyline_length(pts) -> float:
    """Total length of the open polyline through ``pts`` in order."""
    arr = as_points(pts)
    if len(arr) < 2:
        return 0.0
    seg = np.diff(arr, axis=0)
    return float(np.hypot(seg[:, 0], seg[:, 1]).sum())


def angle_of(v) -> float:
    """Angle of vector ``v`` in ``[0, 2*pi)``."""
    v = as_point(v)
    ang = float(np.arctan2(v[1], v[0]))
    return ang + 2.0 * np.pi if ang < 0 else ang
