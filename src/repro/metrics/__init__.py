"""Evaluation metrics: moving distance D, stable link ratio L, connectivity C."""

from repro.metrics.connectivity import (
    ConnectivityReport,
    connectivity_report,
    global_connectivity,
)
from repro.metrics.energy import (
    EnergyModel,
    LinkChurnReport,
    link_churn,
    transition_energy,
)
from repro.metrics.distance import (
    DistanceReport,
    distance_report,
    straight_line_lower_bound,
    total_moving_distance,
)
from repro.metrics.recovery import RecoveryMetrics
from repro.metrics.stable_links import (
    StableLinkReport,
    stable_link_ratio,
    stable_link_report,
)

__all__ = [
    "ConnectivityReport",
    "DistanceReport",
    "EnergyModel",
    "LinkChurnReport",
    "RecoveryMetrics",
    "StableLinkReport",
    "link_churn",
    "transition_energy",
    "connectivity_report",
    "distance_report",
    "global_connectivity",
    "stable_link_ratio",
    "stable_link_report",
    "straight_line_lower_bound",
    "total_moving_distance",
]
