"""Pinned hard instances from the scenario zoo.

Each case was found by hand-sweeping the zoo outside the default draw
envelopes and is pinned as a fixed ``(family, seed, params)`` triple so
the whole pipeline keeps handling it.  The triples are exactly what
``python -m repro zoo --replay`` consumes, so any of them can be
re-examined from the command line.
"""

import numpy as np
import pytest

from repro.experiments.zoo import (
    ZooCase,
    ZooConfig,
    ZooParams,
    build_foi,
    case_bytes,
    hole_clearance,
    run_zoo_case,
)

FAST = ZooConfig(
    robot_count=25, foi_target_points=120, grid_target=400, shrink=False
)

# Narrower than the corridor family ever draws (envelope floor 0.14).
THIN_CORRIDOR = ZooCase(
    "corridor",
    seed=3,
    params=ZooParams(lobes=3, roughness=0.4, min_corridor_width=0.12),
)

# Hole eats 36% of the disk - the thinnest ring the planner must thread.
FAT_HOLE_ANNULUS = ZooCase(
    "annulus",
    seed=2,
    params=ZooParams(
        lobes=1,
        hole_count=1,
        hole_area_fraction=0.36,
        roughness=0.1,
        min_corridor_width=0.4,
    ),
)

# Two large holes pushed toward a rough boundary; the tighter one sits
# ~0.04 (unit scale) from the outer wall - nearly tangent.
NEAR_TANGENT_ROUGH = ZooCase(
    "rough",
    seed=11,
    params=ZooParams(lobes=3, hole_count=2, hole_area_fraction=0.1, roughness=0.25),
)


class TestPinnedHardInstances:
    def test_thin_corridor_passes(self):
        assert THIN_CORRIDOR.params.min_corridor_width < 0.14
        doc = run_zoo_case(THIN_CORRIDOR, FAST)
        assert doc["outcome"] == "pass", doc

    def test_high_hole_fraction_annulus_passes(self):
        foi, _ = build_foi(
            FAT_HOLE_ANNULUS.family,
            FAT_HOLE_ANNULUS.seed,
            params=FAT_HOLE_ANNULUS.params,
        )
        hole_area = sum(h.area for h in foi.holes)
        assert hole_area / foi.outer.area >= 0.3
        doc = run_zoo_case(FAT_HOLE_ANNULUS, FAST)
        assert doc["outcome"] == "pass", doc

    def test_near_tangent_hole_geometry(self):
        foi, _ = build_foi(
            NEAR_TANGENT_ROUGH.family,
            NEAR_TANGENT_ROUGH.seed,
            params=NEAR_TANGENT_ROUGH.params,
        )
        tightest = min(hole_clearance(foi.outer, h) for h in foi.holes)
        assert 0.0 < tightest < 0.05

    def test_near_tangent_hole_passes_at_adequate_sampling(self):
        # At 120 boundary points the sliver between hole and wall pinches
        # the triangulation; 200 resolves it.  Pin the passing config.
        fine = ZooConfig(
            robot_count=25, foi_target_points=200, grid_target=400, shrink=False
        )
        doc = run_zoo_case(NEAR_TANGENT_ROUGH, fine)
        assert doc["outcome"] == "pass", doc

    def test_coarse_sampling_fails_gracefully_and_deterministically(self):
        # The same case under the coarse config must never raise: the
        # campaign records a per-method error document, and the document
        # bytes are replay-stable.
        a = run_zoo_case(NEAR_TANGENT_ROUGH, FAST)
        b = run_zoo_case(NEAR_TANGENT_ROUGH, FAST)
        assert case_bytes(a) == case_bytes(b)
        if a["outcome"] == "error":
            for method_doc in a["methods"].values():
                assert method_doc["stage"] == "plan"
                assert "pinched" in method_doc["error"]


class TestPinnedReplayTriples:
    @pytest.mark.parametrize(
        "case", [THIN_CORRIDOR, FAT_HOLE_ANNULUS, NEAR_TANGENT_ROUGH]
    )
    def test_params_round_trip(self, case):
        assert ZooParams.from_dict(case.params.to_dict()) == case.params

    @pytest.mark.parametrize(
        "case", [THIN_CORRIDOR, FAT_HOLE_ANNULUS, NEAR_TANGENT_ROUGH]
    )
    def test_geometry_reproducible_from_triple(self, case):
        a, _ = build_foi(case.family, case.seed, params=case.params)
        b, _ = build_foi(case.family, case.seed, params=case.params)
        assert np.array_equal(a.outer.vertices, b.outer.vertices)
        assert len(a.holes) == len(b.holes)
        for x, y in zip(a.holes, b.holes):
            assert np.array_equal(x.vertices, y.vertices)
