"""The paper's distributed protocols running as real message passing.

Sec. III describes everything as distributed algorithms; this example
executes three of them on the synchronous message-passing runtime over
an actual swarm triangulation and cross-checks each against the
centralized computation used elsewhere in the library:

1. boundary-loop hop counting -> unit-circle angles (Sec. III-B),
2. Jacobi averaging -> the harmonic disk embedding (Sec. III-B),
3. boundary flooding -> isolated-subgroup detection (Sec. III-D1).

Run:  python examples/distributed_protocols.py
"""

from __future__ import annotations

import numpy as np

from repro import RadioSpec, Swarm
from repro.distributed import (
    run_boundary_loop_protocol,
    run_distributed_harmonic,
    run_subgroup_detection,
)
from repro.foi import m1_base
from repro.harmonic import boundary_parameterization, circle_positions, solve_linear
from repro.network import adjacency_from_edges, bfs_hops, extract_triangulation


def main() -> None:
    radio = RadioSpec.from_comm_range(80.0)
    swarm = Swarm.deploy_lattice(m1_base(), 64, radio)
    mesh, vmap = extract_triangulation(swarm.positions, radio.comm_range)
    print(f"Swarm of {swarm.size}; triangulation T has {len(mesh.edges)} edges, "
          f"{len(mesh.outer_boundary_loop)} boundary robots")

    # -- Protocol 1: boundary loop hop counting ------------------------
    loop = mesh.outer_boundary_loop
    angles = run_boundary_loop_protocol(loop, mesh.vertex_count, mesh.adjacency)
    c_loop, c_angles = boundary_parameterization(mesh, mode="uniform")
    central = dict(zip(c_loop.tolist(), c_angles.tolist()))
    mismatch = max(
        min(abs(angles[v] - central[v]), abs((-angles[v]) % (2 * np.pi) - central[v]))
        for v in angles
    )
    print(f"\n[boundary loop] {len(angles)} circle angles assigned; "
          f"max deviation from centralized: {mismatch:.2e} rad")

    # -- Protocol 2: distributed harmonic averaging --------------------
    bpos = circle_positions(c_angles)
    pinned = {int(v): bpos[k] for k, v in enumerate(c_loop)}
    distributed = run_distributed_harmonic(mesh.adjacency, pinned, rounds=600)
    exact = solve_linear(mesh, c_loop, bpos)
    err = float(np.abs(distributed - exact).max())
    print(f"[harmonic map ] 600 averaging rounds; max error vs direct "
          f"solver: {err:.2e}")

    # -- Protocol 3: isolated-subgroup detection -----------------------
    # Break all links of three interior robots to fake a torn plan.
    torn = [int(v) for v in mesh.interior_vertices[:3]]
    adjacency = [
        [] if v in torn else [w for w in mesh.adjacency[v] if w not in torn]
        for v in range(mesh.vertex_count)
    ]
    isolated, hops = run_subgroup_detection(loop, adjacency)
    oracle = bfs_hops(adjacency, loop)
    oracle_isolated = [i for i in range(mesh.vertex_count) if oracle[i] < 0]
    print(f"[subgroups    ] torn robots {torn} -> protocol found isolated "
          f"{isolated} (oracle: {oracle_isolated})")
    assert isolated == oracle_isolated


if __name__ == "__main__":
    main()
