"""Tests for the baselines: Hungarian (vs scipy oracle), direct, greedy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linear_sum_assignment

from repro.baselines import (
    direct_translation_plan,
    greedy_matching,
    greedy_plan,
    hungarian_plan,
    matching_cost,
    min_cost_matching,
    solve_assignment,
)
from repro.errors import PlanningError
from repro.foi import FieldOfInterest


class TestSolveAssignment:
    def test_identity_when_diagonal_cheap(self):
        cost = np.full((4, 4), 10.0)
        np.fill_diagonal(cost, 1.0)
        assert solve_assignment(cost).tolist() == [0, 1, 2, 3]

    def test_empty(self):
        assert len(solve_assignment(np.zeros((0, 0)))) == 0

    def test_single(self):
        assert solve_assignment([[3.0]]).tolist() == [0]

    def test_rejects_nonsquare(self):
        with pytest.raises(PlanningError):
            solve_assignment(np.zeros((2, 3)))

    def test_rejects_nonfinite(self):
        with pytest.raises(PlanningError):
            solve_assignment([[np.inf]])

    def test_negative_costs_supported(self):
        cost = np.array([[-5.0, 0.0], [0.0, -5.0]])
        assert solve_assignment(cost).tolist() == [0, 1]

    @given(st.integers(1, 12), st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_matches_scipy(self, n, seed):
        rng = np.random.default_rng(seed)
        cost = rng.uniform(-10, 10, (n, n))
        mine = solve_assignment(cost)
        assert sorted(mine.tolist()) == list(range(n))
        rows, cols = linear_sum_assignment(cost)
        assert cost[np.arange(n), mine].sum() == pytest.approx(
            cost[rows, cols].sum(), abs=1e-9
        )

    def test_degenerate_ties(self):
        # All-equal costs: any permutation is optimal; result must be one.
        out = solve_assignment(np.ones((5, 5)))
        assert sorted(out.tolist()) == list(range(5))


class TestMinCostMatching:
    def test_obvious_pairs(self):
        p = np.array([[0.0, 0.0], [10.0, 0.0]])
        q = np.array([[10.0, 1.0], [0.0, 1.0]])
        a = min_cost_matching(p, q)
        assert a.tolist() == [1, 0]

    def test_cost_function(self):
        p = np.array([[0.0, 0.0]])
        q = np.array([[3.0, 4.0]])
        assert matching_cost(p, q, [0]) == pytest.approx(5.0)

    def test_size_mismatch(self):
        with pytest.raises(PlanningError):
            min_cost_matching([[0, 0]], [[1, 1], [2, 2]])

    @given(st.integers(2, 10), st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_beats_or_ties_greedy(self, n, seed):
        rng = np.random.default_rng(seed)
        p = rng.uniform(0, 100, (n, 2))
        q = rng.uniform(0, 100, (n, 2))
        optimal = matching_cost(p, q, min_cost_matching(p, q))
        greedy = matching_cost(p, q, greedy_matching(p, q))
        assert optimal <= greedy + 1e-9


class TestGreedyMatching:
    def test_is_permutation(self, rng):
        p = rng.uniform(0, 10, (8, 2))
        q = rng.uniform(0, 10, (8, 2))
        a = greedy_matching(p, q)
        assert sorted(a.tolist()) == list(range(8))

    def test_size_mismatch(self):
        with pytest.raises(PlanningError):
            greedy_matching([[0, 0]], [[1, 1], [2, 2]])


class TestPlans:
    def _setup(self):
        m1 = FieldOfInterest([(0, 0), (10, 0), (10, 10), (0, 10)], name="m1")
        m2 = m1.translated([100.0, 0.0])
        starts = np.array([[2.0, 2.0], [8.0, 2.0], [5.0, 8.0]])
        targets = starts + [100.0, 0.0]
        return m1, m2, starts, targets

    def test_hungarian_plan_straight(self):
        _, _, starts, targets = self._setup()
        plan = hungarian_plan(starts, targets)
        assert plan.name == "Hungarian"
        assert plan.total_distance == pytest.approx(300.0)
        assert np.allclose(plan.trajectory.end_positions, plan.final_positions)

    def test_direct_translation_two_phases(self):
        m1, m2, starts, targets = self._setup()
        plan = direct_translation_plan(starts, targets, m1, m2)
        # Pure translation scenario: adjustment cost ~0.
        assert plan.total_distance == pytest.approx(300.0, rel=1e-6)
        assert np.allclose(plan.trajectory.end_positions, targets)

    def test_direct_translation_rigid_phase_preserves_shape(self):
        m1, m2, starts, targets = self._setup()
        plan = direct_translation_plan(starts, targets, m1, m2)
        early = plan.trajectory.positions_at(0.3)
        rel0 = starts - starts[0]
        rel = early - early[0]
        assert np.allclose(rel, rel0, atol=1e-6)

    def test_greedy_plan(self):
        _, _, starts, targets = self._setup()
        plan = greedy_plan(starts, targets)
        assert plan.total_distance >= 300.0 - 1e-9

    def test_assignment_applied(self):
        _, _, starts, _ = self._setup()
        targets = starts[::-1] + [100.0, 0.0]
        plan = hungarian_plan(starts, targets)
        assert np.allclose(
            plan.final_positions, targets[plan.assignment]
        )
