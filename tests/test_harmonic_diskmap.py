"""Tests for disk embeddings (Tutte validity, holes, rotation)."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.harmonic import compute_disk_map
from repro.mesh import orientation_signs, triangulate_foi


class TestDiskMapPlain:
    def test_is_embedding(self, square_foi_mesh):
        dm = compute_disk_map(square_foi_mesh.mesh)
        assert dm.is_embedding()

    def test_boundary_on_unit_circle(self, square_foi_mesh):
        dm = compute_disk_map(square_foi_mesh.mesh)
        loop = dm.filled.mesh.outer_boundary_loop
        r = np.hypot(*dm.disk_positions[loop].T)
        assert np.allclose(r, 1.0)

    def test_interior_strictly_inside(self, square_foi_mesh):
        dm = compute_disk_map(square_foi_mesh.mesh)
        interior = dm.filled.mesh.interior_vertices
        r = np.hypot(*dm.disk_positions[interior].T)
        assert r.max() < 1.0

    def test_max_radius(self, square_foi_mesh):
        dm = compute_disk_map(square_foi_mesh.mesh)
        assert dm.max_radius() == pytest.approx(1.0)

    def test_unique_positions(self, square_foi_mesh):
        dm = compute_disk_map(square_foi_mesh.mesh)
        rounded = np.round(dm.disk_positions, 9)
        assert len(np.unique(rounded, axis=0)) == len(rounded)

    def test_solver_choice_equivalent(self, square_foi_mesh):
        lin = compute_disk_map(square_foi_mesh.mesh, solver="linear")
        it = compute_disk_map(square_foi_mesh.mesh, solver="iterative", tol=1e-9)
        assert it.iterations > 0
        assert np.allclose(lin.disk_positions, it.disk_positions, atol=1e-6)

    def test_unknown_solver(self, square_foi_mesh):
        with pytest.raises(MappingError):
            compute_disk_map(square_foi_mesh.mesh, solver="quantum")


class TestDiskMapWithHoles:
    def test_holed_mesh_embeds(self, holed_foi_mesh):
        dm = compute_disk_map(holed_foi_mesh.mesh)
        assert dm.is_embedding()
        assert len(dm.filled.virtual_vertices) == 1

    def test_robot_positions_strip_virtual(self, holed_foi_mesh):
        dm = compute_disk_map(holed_foi_mesh.mesh)
        assert len(dm.robot_disk_positions) == holed_foi_mesh.mesh.vertex_count

    def test_virtual_vertex_interior(self, holed_foi_mesh):
        dm = compute_disk_map(holed_foi_mesh.mesh)
        v = dm.filled.virtual_vertices[0]
        assert np.hypot(*dm.disk_positions[v]) < 1.0


class TestRotation:
    def test_rotation_preserves_radii(self, square_foi_mesh):
        dm = compute_disk_map(square_foi_mesh.mesh)
        rotated = dm.rotated_positions(1.234)
        assert np.allclose(
            np.hypot(*rotated.T), np.hypot(*dm.disk_positions.T)
        )

    def test_zero_rotation_identity(self, square_foi_mesh):
        dm = compute_disk_map(square_foi_mesh.mesh)
        assert np.allclose(dm.rotated_positions(0.0), dm.disk_positions)

    def test_rotation_keeps_embedding(self, square_foi_mesh):
        dm = compute_disk_map(square_foi_mesh.mesh)
        rotated_mesh = dm.filled.mesh.with_vertices(dm.rotated_positions(2.2))
        assert np.all(orientation_signs(rotated_mesh) > 0)


class TestScenarioMeshes:
    def test_concave_scenario_embeds(self):
        from repro.foi import m2_scenario3

        fm = triangulate_foi(m2_scenario3(), target_points=350)
        dm = compute_disk_map(fm.mesh)
        assert dm.is_embedding()

    def test_multi_hole_scenario_embeds(self):
        from repro.foi import m2_scenario5

        fm = triangulate_foi(m2_scenario5(), target_points=350)
        dm = compute_disk_map(fm.mesh)
        assert dm.is_embedding()
        assert len(dm.filled.virtual_vertices) == len(fm.foi.holes)
