"""Tests for exact Voronoi cells (partition + nearest-site properties)."""

import numpy as np
import pytest

from repro.errors import CoverageError
from repro.coverage import (
    cell_area,
    cell_centroid,
    clipped_voronoi_cells,
    voronoi_cell,
    voronoi_cells,
)
from repro.geometry import Polygon

WINDOW = [(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]


class TestVoronoiCells:
    def test_single_site_gets_window(self):
        cells = voronoi_cells([[5.0, 5.0]], WINDOW)
        assert cell_area(cells[0]) == pytest.approx(100.0)

    def test_two_sites_split(self):
        cells = voronoi_cells([[2.0, 5.0], [8.0, 5.0]], WINDOW)
        assert cell_area(cells[0]) == pytest.approx(50.0)
        assert cell_area(cells[1]) == pytest.approx(50.0)

    def test_partition_of_window(self, rng):
        sites = rng.uniform(0.5, 9.5, (12, 2))
        cells = voronoi_cells(sites, WINDOW)
        assert sum(cell_area(c) for c in cells) == pytest.approx(100.0, rel=1e-6)

    def test_site_inside_own_cell(self, rng):
        sites = rng.uniform(0.5, 9.5, (10, 2))
        cells = voronoi_cells(sites, WINDOW)
        for site, cell in zip(sites, cells):
            assert Polygon(cell).contains(site)

    def test_cell_points_nearest_to_site(self, rng):
        sites = rng.uniform(0.5, 9.5, (8, 2))
        cells = voronoi_cells(sites, WINDOW)
        for i, cell in enumerate(cells):
            c = cell_centroid(cell)
            d = np.hypot(*(sites - c).T)
            assert np.argmin(d) == i

    def test_index_out_of_range(self):
        with pytest.raises(CoverageError):
            voronoi_cell([[1.0, 1.0]], 5, WINDOW)

    def test_empty_sites_rejected(self):
        with pytest.raises(CoverageError):
            voronoi_cells(np.zeros((0, 2)), WINDOW)


class TestClippedVoronoi:
    def test_convex_region_partition(self, rng):
        region = Polygon([(0, 0), (8, 0), (10, 6), (4, 10), (0, 6)])
        assert region.is_convex
        sites = rng.uniform(1, 6, (9, 2))
        sites = sites[region.contains(sites)]
        cells = clipped_voronoi_cells(sites, region)
        assert sum(cell_area(c) for c in cells) == pytest.approx(
            region.area, rel=1e-6
        )

    def test_concave_region_rejected(self, concave_polygon):
        with pytest.raises(CoverageError):
            clipped_voronoi_cells([[0.5, 0.5]], concave_polygon)

    def test_far_site_empty_cell(self):
        region = Polygon(WINDOW)
        cells = clipped_voronoi_cells([[5.0, 5.0], [500.0, 500.0]], region)
        assert cell_area(cells[0]) == pytest.approx(100.0, rel=1e-6)
        assert cell_area(cells[1]) == pytest.approx(0.0, abs=1e-6)

    def test_degenerate_centroid_raises(self):
        with pytest.raises(CoverageError):
            cell_centroid(np.zeros((0, 2)))
