"""Tests for the triangle locator spatial index."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import TriangleLocator, from_barycentric
from repro.mesh import delaunay_mesh


@pytest.fixture(scope="module")
def grid_mesh():
    xs, ys = np.meshgrid(np.linspace(0, 1, 6), np.linspace(0, 1, 6))
    pts = np.column_stack([xs.ravel(), ys.ravel()])
    return delaunay_mesh(pts)


@pytest.fixture(scope="module")
def locator(grid_mesh):
    return TriangleLocator(grid_mesh.vertices, grid_mesh.triangles)


class TestConstruction:
    def test_requires_triangles(self):
        with pytest.raises(GeometryError):
            TriangleLocator([[0, 0], [1, 0], [0, 1]], np.zeros((0, 3), dtype=int))

    def test_rejects_bad_indices(self):
        with pytest.raises(GeometryError):
            TriangleLocator([[0, 0], [1, 0], [0, 1]], [[0, 1, 5]])

    def test_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            TriangleLocator([[0, 0], [1, 0], [0, 1]], [[0, 1]])


class TestLocate:
    def test_interior_points_found(self, grid_mesh, locator, rng):
        for _ in range(50):
            p = rng.uniform(0.05, 0.95, 2)
            hit = locator.locate(p)
            assert hit is not None
            tri_idx, bary = hit
            corners = grid_mesh.triangles[tri_idx]
            back = from_barycentric(
                bary,
                grid_mesh.vertices[corners[0]],
                grid_mesh.vertices[corners[1]],
                grid_mesh.vertices[corners[2]],
            )
            assert np.allclose(back, p, atol=1e-9)
            assert np.all(bary >= -1e-9)

    def test_outside_returns_none(self, locator):
        assert locator.locate([5.0, 5.0]) is None
        assert locator.locate([-1.0, 0.5]) is None

    def test_vertex_location(self, grid_mesh, locator):
        hit = locator.locate(grid_mesh.vertices[7])
        assert hit is not None

    def test_shared_edge_point(self, locator):
        # A point on an interior edge must still be located exactly once.
        hit = locator.locate([0.2, 0.2])
        assert hit is not None


class TestLocateNearest:
    def test_inside_same_as_locate(self, locator):
        p = [0.31, 0.47]
        assert locator.locate_nearest(p)[0] == locator.locate(p)[0]

    def test_outside_clamps_to_simplex(self, grid_mesh, locator):
        tri_idx, bary = locator.locate_nearest([10.0, 10.0])
        assert 0 <= tri_idx < grid_mesh.triangle_count
        assert bary.sum() == pytest.approx(1.0)
        assert np.all(bary >= 0)

    def test_far_point_maps_near_boundary(self, grid_mesh, locator):
        tri_idx, bary = locator.locate_nearest([2.0, 0.5])
        corners = grid_mesh.triangles[tri_idx]
        point = (bary[:, None] * grid_mesh.vertices[corners]).sum(axis=0)
        # The clamped image stays inside the unit square mesh.
        assert -1e-6 <= point[0] <= 1 + 1e-6
        assert -1e-6 <= point[1] <= 1 + 1e-6
