"""Integration tests for the marching planner (the paper's pipeline)."""

import numpy as np
import pytest

from repro.coverage import LloydConfig
from repro.errors import PlanningError
from repro.foi import FieldOfInterest, ellipse_polygon, m2_scenario3
from repro.marching import MarchingConfig, MarchingPlanner
from repro.metrics import connectivity_report, stable_link_ratio
from repro.robots import RadioSpec, Swarm

FAST = MarchingConfig(
    foi_target_points=250, lloyd=LloydConfig(grid_target=900, max_iterations=30)
)


@pytest.fixture(scope="module")
def planner_setup():
    radio = RadioSpec.from_comm_range(80.0)
    m1 = FieldOfInterest(
        ellipse_polygon(1.1, 0.9, samples=48).scaled_to_area(200_000.0), name="m1"
    )
    swarm = Swarm.deploy_lattice(m1, 64, radio)
    m2 = FieldOfInterest(
        ellipse_polygon(0.8, 1.2, samples=48).scaled_to_area(180_000.0), name="m2"
    ).translated((1500.0, 100.0))
    return swarm, m2


class TestPlanBasics:
    def test_result_structure(self, planner_setup):
        swarm, m2 = planner_setup
        result = MarchingPlanner(FAST).plan(swarm, m2)
        n = swarm.size
        assert result.start_positions.shape == (n, 2)
        assert result.march_targets.shape == (n, 2)
        assert result.final_positions.shape == (n, 2)
        assert result.method == "ours (a)"
        assert 0 <= result.rotation_angle < 2 * np.pi
        assert result.rotation_evaluations > 0
        assert len(result.boundary_anchors) >= 3

    def test_final_positions_inside_target(self, planner_setup):
        swarm, m2 = planner_setup
        result = MarchingPlanner(FAST).plan(swarm, m2)
        assert m2.contains(result.final_positions).all()

    def test_trajectory_consistent(self, planner_setup):
        swarm, m2 = planner_setup
        result = MarchingPlanner(FAST).plan(swarm, m2)
        assert np.allclose(result.trajectory.start_positions, swarm.positions)
        assert np.allclose(
            result.trajectory.end_positions, result.final_positions, atol=1e-6
        )

    def test_global_connectivity_guaranteed(self, planner_setup):
        swarm, m2 = planner_setup
        result = MarchingPlanner(FAST).plan(swarm, m2)
        rep = connectivity_report(
            result.trajectory, swarm.radio.comm_range, result.boundary_anchors
        )
        assert rep.connected

    def test_high_stable_link_ratio(self, planner_setup):
        swarm, m2 = planner_setup
        result = MarchingPlanner(FAST).plan(swarm, m2)
        assert stable_link_ratio(result.links, result.trajectory) > 0.7

    def test_distance_not_absurd(self, planner_setup):
        swarm, m2 = planner_setup
        result = MarchingPlanner(FAST).plan(swarm, m2)
        # Lower bound: everyone travels at least most of the separation.
        lower = swarm.size * 1000.0
        assert lower < result.total_distance < 4.0 * swarm.size * 1500.0


class TestMethodB:
    def test_method_b_shorter_or_equal_distance(self, planner_setup):
        swarm, m2 = planner_setup
        res_a = MarchingPlanner(FAST).plan(swarm, m2)
        cfg_b = MarchingConfig(
            method="b",
            foi_target_points=250,
            lloyd=LloydConfig(grid_target=900, max_iterations=30),
        )
        res_b = MarchingPlanner(cfg_b).plan(swarm, m2)
        # Method (b) optimises D; allow a small tolerance since the
        # adjustment phase differs.
        assert res_b.total_distance <= res_a.total_distance * 1.05
        assert res_b.method == "ours (b)"


class TestHoledTarget:
    def test_plan_into_flower_pond(self, radio):
        from repro.foi import m1_base

        swarm = Swarm.deploy_lattice(m1_base(), 64, radio)
        m2 = m2_scenario3().translated((2500.0, 0.0))
        result = MarchingPlanner(FAST).plan(swarm, m2)
        assert m2.contains(result.final_positions).all()
        rep = connectivity_report(
            result.trajectory, radio.comm_range, result.boundary_anchors
        )
        assert rep.connected

    def test_no_robot_parked_in_hole(self, radio):
        from repro.foi import m1_base

        swarm = Swarm.deploy_lattice(m1_base(), 64, radio)
        m2 = m2_scenario3().translated((2500.0, 0.0))
        result = MarchingPlanner(FAST).plan(swarm, m2)
        hole = m2.holes[0]
        assert not hole.contains(result.final_positions, include_boundary=False).any()


class TestConfigValidation:
    def test_bad_method(self):
        with pytest.raises(PlanningError):
            MarchingConfig(method="c")

    def test_bad_depth(self):
        with pytest.raises(PlanningError):
            MarchingConfig(search_depth=-1)

    def test_bad_time(self):
        with pytest.raises(PlanningError):
            MarchingConfig(transition_time=0.0)

    def test_disconnected_swarm_rejected(self, radio):
        positions = np.array([[0.0, 0.0], [10_000.0, 0.0], [0.0, 10_000.0], [1.0, 1.0]])
        swarm = Swarm(positions, radio)
        m2 = FieldOfInterest([(0, 0), (100, 0), (100, 100), (0, 100)])
        with pytest.raises(PlanningError):
            MarchingPlanner(FAST).plan(swarm, m2)


class TestArtifacts:
    def test_artifacts_kept_on_request(self, planner_setup):
        swarm, m2 = planner_setup
        cfg = MarchingConfig(
            foi_target_points=250,
            lloyd=LloydConfig(grid_target=900, max_iterations=30),
            keep_artifacts=True,
        )
        result = MarchingPlanner(cfg).plan(swarm, m2)
        assert {"t_mesh", "disk_map_t", "foi_mesh", "disk_map_m2"} <= set(
            result.artifacts
        )

    def test_artifacts_empty_by_default(self, planner_setup):
        swarm, m2 = planner_setup
        result = MarchingPlanner(FAST).plan(swarm, m2)
        assert result.artifacts == {}
