"""Failure recovery: peers replan when robots die mid-march.

The paper motivates ANR systems as "more reliable since the failure of
an individual robot can be recovered by its peers", and requires global
connectivity during transitions precisely so the survivors can
coordinate a new plan.  This example kills three robots 40% of the way
through a transition, verifies the survivors are still one connected
network (the Definition-2 guarantee at work), replans their march, and
saves both plans as JSON for postprocessing.

Run:  python examples/failure_recovery.py
"""

from __future__ import annotations

import numpy as np

from repro import MarchingConfig, MarchingPlanner, RadioSpec, Swarm
from repro.foi import m1_base, m2_scenario1
from repro.io import save_result
from repro.marching import FailureEvent, replan_after_failure
from repro.metrics import connectivity_report, stable_link_ratio


def main() -> None:
    radio = RadioSpec.from_comm_range(80.0)
    m1 = m1_base()
    swarm = Swarm.deploy_lattice(m1, 100, radio)
    m2 = m2_scenario1()
    m2 = m2.translated(m1.centroid + np.array([2000.0, 0.0]) - m2.centroid)

    planner_cfg = MarchingConfig(method="a")
    original = MarchingPlanner(planner_cfg).plan(swarm, m2)
    print(f"Original plan: {swarm.size} robots, "
          f"D = {original.total_distance / 1000:.1f} km, "
          f"L = {stable_link_ratio(original.links, original.trajectory):.3f}")

    # Disaster strikes at t = 0.4: three robots die.
    event = FailureEvent(time=0.4, failed=(12, 47, 80))
    outcome = replan_after_failure(
        original, event, m2, radio.comm_range, config=planner_cfg
    )
    print(f"\nAt t = {event.time}: robots {event.failed} failed.")
    print(f"  survivors: {len(outcome.survivor_ids)} "
          f"(connected: {outcome.survivors_connected})")

    new = outcome.result
    C = connectivity_report(new.trajectory, radio.comm_range, new.boundary_anchors)
    print(f"  recovery plan: D = {new.total_distance / 1000:.1f} km, "
          f"L = {stable_link_ratio(new.links, new.trajectory):.3f}, "
          f"C = {C.as_flag}")
    assert C.connected

    for name, result in (("original", original), ("recovery", new)):
        path = save_result(result, f"examples/output/{name}_plan.json")
        print(f"  saved {path}")


if __name__ == "__main__":
    main()
