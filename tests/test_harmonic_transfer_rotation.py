"""Tests for the induced map (Eqn. 1) and the rotation-angle search."""

import numpy as np
import pytest

from repro.harmonic import (
    InducedMap,
    compute_disk_map,
    exhaustive_angle_search,
    hierarchical_angle_search,
)
from repro.mesh import triangulate_foi


@pytest.fixture(scope="module")
def square_induced(square_foi_mesh=None):
    from repro.foi import FieldOfInterest
    from repro.geometry import Polygon
    from repro.mesh import triangulate_foi as tf

    foi = FieldOfInterest(Polygon([(0, 0), (100, 0), (100, 100), (0, 100)]))
    fm = tf(foi, target_points=200)
    return fm, compute_disk_map(fm.mesh)


class TestInducedMap:
    def test_images_inside_target(self, square_induced, rng):
        fm, dm = square_induced
        induced = InducedMap(dm)
        disk_pts = rng.uniform(-0.6, 0.6, (40, 2))
        images = induced.map_points(disk_pts)
        assert fm.foi.contains(images).mean() > 0.95

    def test_grid_vertex_roundtrip(self, square_induced):
        # A mesh vertex's own disk position maps back to (nearly) itself.
        fm, dm = square_induced
        induced = InducedMap(dm)
        take = fm.mesh.interior_vertices[:20]
        images = induced.map_points(dm.disk_positions[take])
        assert np.allclose(images, fm.mesh.vertices[take], atol=1e-6)

    def test_rotation_changes_images(self, square_induced):
        fm, dm = square_induced
        induced = InducedMap(dm)
        pts = np.array([[0.3, 0.1], [-0.2, 0.4]])
        a = induced.map_points(pts, rotation=0.0)
        b = induced.map_points(pts, rotation=np.pi / 2)
        assert not np.allclose(a, b)

    def test_continuity_under_small_motion(self, square_induced):
        fm, dm = square_induced
        induced = InducedMap(dm)
        base = np.array([0.25, -0.15])
        img0 = induced.map_point(base)
        img1 = induced.map_point(base + [1e-4, 0.0])
        # Barycentric interpolation is Lipschitz on the mesh scale.
        assert np.hypot(*(img1 - img0)) < 1.0

    def test_point_outside_disk_clamps(self, square_induced):
        fm, dm = square_induced
        induced = InducedMap(dm)
        img = induced.map_point([2.0, 0.0])
        xmin, ymin, xmax, ymax = fm.foi.bounds
        assert xmin - 1e-6 <= img[0] <= xmax + 1e-6
        assert ymin - 1e-6 <= img[1] <= ymax + 1e-6


class TestInducedMapHoles:
    def test_hole_landing_goes_to_hole_boundary(self, holed_foi_mesh):
        dm = compute_disk_map(holed_foi_mesh.mesh)
        induced = InducedMap(dm)
        # The virtual vertex's disk position is the centre of the filled
        # hole; mapping it must land on (or very near) the hole boundary.
        v = dm.filled.virtual_vertices[0]
        img = induced.map_point(dm.disk_positions[v])
        hole = holed_foi_mesh.foi.holes[0]
        assert hole.boundary_distance(img) < 3.0  # within a grid cell

    def test_images_avoid_deep_hole_interior(self, holed_foi_mesh, rng):
        dm = compute_disk_map(holed_foi_mesh.mesh)
        induced = InducedMap(dm)
        pts = rng.uniform(-0.9, 0.9, (150, 2))
        pts = pts[np.hypot(*pts.T) < 0.95]
        images = induced.map_points(pts)
        hole = holed_foi_mesh.foi.holes[0]
        # Images inside the hole may only hug its boundary chords.
        inside_hole = [
            p for p in images if hole.contains(p, include_boundary=False)
        ]
        for p in inside_hole:
            assert hole.boundary_distance(p) < 2.5


def parabola(angle: float) -> float:
    """Smooth objective with a unique max at 2.0 rad on the circle."""
    return float(np.cos(angle - 2.0))


class TestAngleSearch:
    def test_hierarchical_finds_peak(self):
        res = hierarchical_angle_search(parabola, depth=8, initial_samples=8)
        assert res.angle == pytest.approx(2.0, abs=0.1)

    def test_paper_depth_4_close(self):
        res = hierarchical_angle_search(parabola, depth=4, initial_samples=4)
        assert parabola(res.angle) > 0.9  # near-optimal, as the paper claims

    def test_minimize_mode(self):
        res = hierarchical_angle_search(parabola, depth=8, maximize=False,
                                        initial_samples=8)
        target = (2.0 + np.pi) % (2 * np.pi)
        assert np.cos(res.angle - 2.0) < -0.9
        assert res.angle == pytest.approx(target, abs=0.2)

    def test_evaluation_budget(self):
        # Seeds + two probes per level + the final bracket's centre.
        res = hierarchical_angle_search(parabola, depth=4, initial_samples=4)
        assert res.evaluations == 4 + 2 * 4 + 1

    @pytest.mark.parametrize("depth,samples", [(0, 4), (2, 4), (4, 8), (6, 3)])
    def test_evaluation_budget_formula(self, depth, samples):
        res = hierarchical_angle_search(
            parabola, depth=depth, initial_samples=samples
        )
        assert res.evaluations == samples + 2 * depth + 1

    def test_final_bracket_centre_is_scored(self):
        # Regression: the search must evaluate the centre of the final
        # interval it narrowed to, not just the quarter-point probes.
        calls = []

        def tracked(a):
            calls.append(a)
            return parabola(a)

        res = hierarchical_angle_search(tracked, depth=3, initial_samples=4)
        assert len(calls) == res.evaluations
        # The last evaluation is the final bracket's centre, and the
        # returned score is the max over every angle actually scored.
        assert res.score == pytest.approx(max(parabola(a) for a in calls))

    def test_exhaustive_oracle(self):
        res = exhaustive_angle_search(parabola, samples=720)
        assert res.angle == pytest.approx(2.0, abs=0.01)
        assert res.evaluations == 720

    def test_hierarchical_never_worse_than_seeds(self):
        calls = []

        def tracked(a):
            calls.append(a)
            return parabola(a)

        res = hierarchical_angle_search(tracked, depth=4, initial_samples=4)
        assert res.score >= max(parabola(a) for a in calls[:4]) - 1e-12

    def test_depth_zero_returns_best_seed(self):
        # Depth 0 still probes the seed bracket's centre once.
        res = hierarchical_angle_search(parabola, depth=0, initial_samples=4)
        assert res.evaluations == 4 + 1

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            hierarchical_angle_search(parabola, depth=-1)

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            exhaustive_angle_search(parabola, samples=0)
