"""Swarm-size scaling curves: wall-clock and peak allocation per stage.

The paper evaluates 100-400 robots; the pipeline itself is meant to
scale far beyond that.  This module measures each swarm-size-sensitive
stage - unit-disk-graph construction, CSR adjacency, connectivity,
trajectory sampling, stable-link accounting, the harmonic solve (cold
and factorization-warm) and batch point location - on synthetic swarms
of growing size, recording wall-clock seconds and peak allocation
(:mod:`tracemalloc`, which numpy's allocator reports to).

``python -m repro report --scaling`` appends the resulting curves to
the reproduction report; ``benchmarks/test_bench_perf_scaling.py`` and
``scripts/scaling_smoke.py`` assert budgets on them.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "DEFAULT_SIZES",
    "scaling_curve",
    "format_scaling_table",
    "stage_lookup",
    "synthetic_swarm_positions",
]

DEFAULT_SIZES = (100, 1_000, 10_000)

# Mean UDG degree the synthetic deployments aim for - dense enough to
# be connected-ish and exercise real neighbor lists, sparse enough that
# edge counts grow linearly with the swarm.
_TARGET_MEAN_DEGREE = 10.0

# Sample instants per trajectory when measuring swarm sampling and
# stable-link accounting.
_SAMPLE_TIMES = 33


def synthetic_swarm_positions(
    n: int, comm_range: float = 80.0, seed: int = 0
) -> np.ndarray:
    """Uniform random swarm over a square of constant expected density.

    The square's area grows linearly with ``n`` so the expected UDG
    degree stays near ``10`` at every size - the scaling axis is swarm
    size, not density.
    """
    rng = np.random.default_rng(seed)
    area = max(n, 1) * np.pi * comm_range**2 / _TARGET_MEAN_DEGREE
    side = float(np.sqrt(area))
    return rng.uniform(0.0, side, size=(n, 2))


def _measure(fn: Callable[[], object]) -> tuple[object, float, int]:
    """Run ``fn`` returning ``(result, seconds, peak_bytes)``.

    Peak allocation comes from :mod:`tracemalloc`, so the timing
    includes tracing overhead; curves are for *relative* growth across
    sizes, which tracing inflates uniformly.
    """
    tracemalloc.start()
    try:
        t0 = time.perf_counter()
        result = fn()
        seconds = time.perf_counter() - t0
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return result, seconds, peak


def _curve_for_size(
    n: int, comm_range: float, seed: int, verify_max_n: int
) -> list[dict]:
    from repro.geometry import TriangleLocator
    from repro.harmonic import clear_factorization_cache, solve_linear
    from repro.harmonic.boundary import boundary_parameterization, circle_positions
    from repro.mesh.delaunay import delaunay_mesh
    from repro.network import LinkTable, UnitDiskGraph, udg_edges
    from repro.network.udg import _udg_edges_bruteforce
    from repro.robots.motion import SwarmTrajectory, TimedPath

    pts = synthetic_swarm_positions(n, comm_range, seed)
    rows: list[dict] = []

    def record(stage: str, fn: Callable[[], object], **detail) -> object:
        result, seconds, peak = _measure(fn)
        rows.append(
            {"stage": stage, "n": n, "seconds": seconds, "peak_bytes": peak,
             **detail}
        )
        return result

    edges = record("network.udg_edges", lambda: udg_edges(pts, comm_range))
    if n <= verify_max_n:
        oracle = _udg_edges_bruteforce(pts, comm_range)
        if not np.array_equal(edges, oracle):
            raise AssertionError(
                f"spatial-hash UDG deviates from brute force at n={n}"
            )

    graph = UnitDiskGraph(pts, comm_range)
    record("network.adjacency", lambda: graph.adjacency, edges=len(edges))
    record("network.components", lambda: graph.components)

    # Straight constant-speed march of the whole swarm, sampled on a
    # uniform grid - the motion model the metrics consume.
    goal = pts + np.array([comm_range, 0.0])
    paths = [
        TimedPath(np.vstack([p, q]), [0.0, 10.0]) for p, q in zip(pts, goal)
    ]
    traj = SwarmTrajectory(paths, 0.0, 10.0)
    times = np.linspace(0.0, 10.0, _SAMPLE_TIMES)
    table = record(
        "robots.sampling",
        lambda: traj.positions_over(times),
        samples=_SAMPLE_TIMES,
    )

    links = LinkTable.from_graph(graph)
    record(
        "metrics.stable_links",
        lambda: links.stable_mask_over(table),
        links=links.link_count,
    )

    mesh = record("mesh.delaunay", lambda: delaunay_mesh(pts))
    loop, angles = boundary_parameterization(mesh)
    bpos = circle_positions(angles)
    clear_factorization_cache()
    record(
        "harmonic.solve_cold",
        lambda: solve_linear(mesh, loop, bpos),
        interior=int(mesh.vertex_count - len(loop)),
    )
    record("harmonic.solve_warm", lambda: solve_linear(mesh, loop, bpos))
    clear_factorization_cache()

    locator = record(
        "geometry.locator_build",
        lambda: TriangleLocator(mesh.vertices, mesh.triangles),
        triangles=int(mesh.triangle_count),
    )
    record("geometry.locate_batch", lambda: locator.locate_nearest_many(pts))
    return rows


def scaling_curve(
    sizes: Sequence[int] = DEFAULT_SIZES,
    comm_range: float = 80.0,
    seed: int = 0,
    verify_max_n: int = 1_000,
) -> dict:
    """Measure every stage at every swarm size.

    Parameters
    ----------
    sizes : sequence of int
        Swarm sizes, ascending.
    comm_range : float
        Communication range (deployment density tracks it).
    seed : int
        Seed for the synthetic deployments.
    verify_max_n : int
        Up to this size the spatial-hash edge set is checked against
        the brute-force oracle (an :class:`AssertionError` on any
        deviation); beyond it the oracle is too slow to run routinely.

    Returns
    -------
    dict
        ``{"sizes", "comm_range", "seed", "rows"}`` where ``rows`` is a
        flat list of per-(stage, n) measurements with ``seconds`` and
        ``peak_bytes``.
    """
    rows: list[dict] = []
    for n in sizes:
        rows.extend(_curve_for_size(int(n), comm_range, seed, verify_max_n))
    return {
        "sizes": [int(n) for n in sizes],
        "comm_range": float(comm_range),
        "seed": int(seed),
        "rows": rows,
    }


def stage_lookup(curve: dict) -> dict[tuple[str, int], dict]:
    """Index a curve's rows by ``(stage, n)``."""
    return {(r["stage"], r["n"]): r for r in curve["rows"]}


def format_scaling_table(curve: dict) -> str:
    """Render a curve as a stage x size markdown table.

    Each cell reads ``seconds / peak-MB``; stages appear in pipeline
    order, sizes ascending.
    """
    sizes = curve["sizes"]
    by_key = stage_lookup(curve)
    stages: list[str] = []
    for r in curve["rows"]:
        if r["stage"] not in stages:
            stages.append(r["stage"])
    headers = ["stage"] + [f"n={n}" for n in sizes]
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for stage in stages:
        cells: list[str] = [stage]
        for n in sizes:
            r = by_key.get((stage, n))
            if r is None:
                cells.append("-")
            else:
                cells.append(
                    f"{r['seconds']:.3f} s / {r['peak_bytes'] / 1e6:.1f} MB"
                )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)
