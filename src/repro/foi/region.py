"""Fields of Interest: polygon regions with optional holes.

A :class:`FieldOfInterest` (FoI) is the region a swarm is asked to
cover: an outer simple polygon minus zero or more disjoint hole
polygons ("obstacles or landscape features that forbid mobile robot
placement", Sec. III-D3 of the paper).  The class provides containment,
area, boundary queries, and nearest-free-point projection - the
operations the marching pipeline and the Lloyd adjustment need.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.polygon import Polygon
from repro.geometry.segment import project_point_on_segment
from repro.geometry.vec import as_point, as_points

__all__ = ["FieldOfInterest"]


class FieldOfInterest:
    """A planar region bounded by an outer polygon minus hole polygons.

    Parameters
    ----------
    outer : Polygon or (n, 2) array-like
        Outer boundary.
    holes : iterable of Polygon or array-like, optional
        Hole boundaries.  Each hole must lie strictly inside the outer
        polygon and holes must not contain one another.
    name : str
        Human-readable label used by experiments and figures.
    """

    def __init__(self, outer, holes: Iterable = (), name: str = "foi") -> None:
        self.outer = outer if isinstance(outer, Polygon) else Polygon(outer)
        self.holes: tuple[Polygon, ...] = tuple(
            h if isinstance(h, Polygon) else Polygon(h) for h in holes
        )
        self.name = str(name)
        for i, hole in enumerate(self.holes):
            if not bool(np.all(self.outer.contains(hole.vertices))):
                raise GeometryError(f"hole {i} is not contained in the outer boundary")
        for i in range(len(self.holes)):
            for j in range(i + 1, len(self.holes)):
                if bool(
                    np.any(self.holes[i].contains(self.holes[j].vertices))
                ) and bool(np.any(self.holes[j].contains(self.holes[i].vertices))):
                    raise GeometryError(f"holes {i} and {j} overlap")

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FieldOfInterest(name={self.name!r}, area={self.area:.0f}, "
            f"holes={len(self.holes)})"
        )

    @cached_property
    def area(self) -> float:
        """Free area: outer area minus total hole area."""
        return self.outer.area - sum(h.area for h in self.holes)

    @property
    def has_holes(self) -> bool:
        return len(self.holes) > 0

    @cached_property
    def centroid(self) -> np.ndarray:
        """Area centroid of the free region (holes subtracted)."""
        num = self.outer.centroid * self.outer.area
        for h in self.holes:
            num = num - h.centroid * h.area
        return num / self.area

    @property
    def bounds(self) -> tuple[float, float, float, float]:
        """Axis-aligned bounding box of the outer boundary."""
        return self.outer.bounds

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def contains(self, points) -> np.ndarray:
        """Whether points lie in the free region (inside outer, outside holes)."""
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        p = as_points(pts[None, :] if single else pts)
        inside = self.outer.contains(p, include_boundary=True)
        for hole in self.holes:
            inside &= ~hole.contains(p, include_boundary=False)
        return bool(inside[0]) if single else inside

    def hole_containing(self, point) -> int | None:
        """Index of the hole containing ``point``, or ``None``."""
        for i, hole in enumerate(self.holes):
            if bool(hole.contains(point, include_boundary=False)):
                return i
        return None

    def boundary_distances(self, points) -> np.ndarray:
        """Distances from many points to the nearest boundary, vectorised."""
        pts = as_points(points)
        d = self.outer.boundary_distances(pts)
        for hole in self.holes:
            d = np.minimum(d, hole.boundary_distances(pts))
        return d

    def boundary_distance(self, point) -> float:
        """Distance from ``point`` to the nearest boundary (outer or hole)."""
        return float(self.boundary_distances(as_point(point)[None, :])[0])

    def hole_distances(self, points) -> np.ndarray:
        """Distances to the nearest hole boundary (``inf`` without holes)."""
        pts = as_points(points)
        if not self.holes:
            return np.full(len(pts), np.inf)
        d = self.holes[0].boundary_distances(pts)
        for hole in self.holes[1:]:
            d = np.minimum(d, hole.boundary_distances(pts))
        return d

    def hole_distance(self, point) -> float:
        """Distance to the nearest hole boundary; ``inf`` if there are none."""
        return float(self.hole_distances(as_point(point)[None, :])[0])

    # ------------------------------------------------------------------
    # Projection / sampling
    # ------------------------------------------------------------------

    def project_inside(self, point) -> np.ndarray:
        """Nearest point of the free region to ``point``.

        Points already in the free region are returned unchanged.
        Points in a hole are pushed to the nearest point of that hole's
        boundary (the paper's "choose the nearest grid point along the
        hole boundary" rule, in continuous form); points outside the
        outer polygon are pulled to its boundary.
        """
        p = as_point(point)
        if bool(self.contains(p)):
            return p.copy()
        hole_idx = self.hole_containing(p)
        poly = self.holes[hole_idx] if hole_idx is not None else self.outer
        best, best_d = None, float("inf")
        v = poly.vertices
        n = len(v)
        for i in range(n):
            q = project_point_on_segment(p, v[i], v[(i + 1) % n])
            d = float(np.hypot(p[0] - q[0], p[1] - q[1]))
            if d < best_d:
                best, best_d = q, d
        assert best is not None
        # Nudge off the boundary toward the free side so containment holds.
        direction = self.centroid - best if hole_idx is None else best - poly.centroid
        nrm = float(np.hypot(direction[0], direction[1]))
        if nrm > 1e-12:
            candidate = best + direction / nrm * 1e-6 * max(1.0, np.sqrt(self.area))
            if bool(self.contains(candidate)):
                return candidate
        return best

    def grid_points(self, spacing: float) -> np.ndarray:
        """Square-grid points inside the free region at pitch ``spacing``."""
        if spacing <= 0:
            raise GeometryError("grid spacing must be positive")
        pts = self.outer.grid_points(spacing)
        if len(pts) == 0:
            return pts
        mask = np.ones(len(pts), dtype=bool)
        for hole in self.holes:
            mask &= ~hole.contains(pts, include_boundary=True)
        return pts[mask]

    def sample_free_points(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``n`` uniform random points of the free region (rejection sampling)."""
        xmin, ymin, xmax, ymax = self.bounds
        out: list[np.ndarray] = []
        attempts = 0
        while len(out) < n:
            attempts += 1
            if attempts > 1000 * max(n, 10):
                raise GeometryError("rejection sampling failed; region too thin?")
            batch = rng.uniform([xmin, ymin], [xmax, ymax], size=(max(n, 64), 2))
            good = batch[self.contains(batch)]
            out.extend(good[: n - len(out)])
        return np.array(out[:n])

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------

    def translated(self, offset) -> "FieldOfInterest":
        """A copy of the FoI shifted by ``offset``."""
        off = np.asarray(offset, dtype=float)
        return FieldOfInterest(
            self.outer.translated(off),
            [h.translated(off) for h in self.holes],
            name=self.name,
        )

    def scaled_to_area(self, target_area: float) -> "FieldOfInterest":
        """A copy uniformly scaled so the *free* area equals ``target_area``."""
        if target_area <= 0:
            raise GeometryError("target area must be positive")
        factor = float(np.sqrt(target_area / self.area))
        c = self.outer.centroid
        return FieldOfInterest(
            self.outer.scaled(factor, about=c),
            [h.scaled(factor, about=c) for h in self.holes],
            name=self.name,
        )

    def boundary_polylines(self) -> Sequence[np.ndarray]:
        """All boundary loops (outer first, then holes) as vertex arrays."""
        return [self.outer.vertices] + [h.vertices for h in self.holes]
