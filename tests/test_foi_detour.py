"""Tests for hole-avoiding detour paths (Sec. III-D3)."""

import numpy as np
import pytest

from repro.foi import (
    FieldOfInterest,
    detour_path,
    ellipse_polygon,
    flower_polygon,
    m2_scenario3,
    path_blocked_by_hole,
)
from repro.geometry import Polygon, polyline_length

OUTER = Polygon([(0, 0), (20, 0), (20, 20), (0, 20)])


@pytest.fixture(scope="module")
def round_hole_foi():
    return FieldOfInterest(OUTER, [ellipse_polygon(3.0, 3.0, samples=24, center=(10, 10))])


@pytest.fixture(scope="module")
def two_hole_foi():
    return FieldOfInterest(
        OUTER,
        [
            ellipse_polygon(2.0, 2.0, samples=20, center=(6, 10)),
            ellipse_polygon(2.0, 2.0, samples=20, center=(14, 10)),
        ],
    )


class TestBlockedPredicate:
    def test_clear_path(self, round_hole_foi):
        assert path_blocked_by_hole(round_hole_foi, [1, 1], [3, 1]) is None

    def test_blocked_through_center(self, round_hole_foi):
        assert path_blocked_by_hole(round_hole_foi, [2, 10], [18, 10]) == 0

    def test_grazing_tangent_not_blocked(self, round_hole_foi):
        # Passes above the hole (hole spans y in [7, 13]).
        assert path_blocked_by_hole(round_hole_foi, [2, 14], [18, 14]) is None

    def test_first_hole_reported(self, two_hole_foi):
        assert path_blocked_by_hole(two_hole_foi, [1, 10], [19, 10]) == 0
        assert path_blocked_by_hole(two_hole_foi, [19, 10], [1, 10]) == 1


class TestDetourPath:
    def test_straight_when_clear(self, round_hole_foi):
        path = detour_path(round_hole_foi, [1, 1], [19, 1])
        assert len(path) == 2

    def test_detour_avoids_hole(self, round_hole_foi):
        path = detour_path(round_hole_foi, [2, 10], [18, 10])
        assert len(path) > 2
        # Every segment of the result is clear of holes.
        for a, b in zip(path, path[1:]):
            assert path_blocked_by_hole(round_hole_foi, a, b) is None

    def test_endpoints_preserved(self, round_hole_foi):
        path = detour_path(round_hole_foi, [2, 10], [18, 10])
        assert np.allclose(path[0], [2, 10])
        assert np.allclose(path[-1], [18, 10])

    def test_detour_longer_than_straight_but_bounded(self, round_hole_foi):
        path = detour_path(round_hole_foi, [2, 10], [18, 10])
        straight = 16.0
        length = polyline_length(path)
        assert length > straight
        # Walking half the hole circumference adds at most ~pi*r.
        assert length < straight + np.pi * 3.5

    def test_shorter_arc_chosen(self, round_hole_foi):
        # Start slightly above centre: the upper arc is shorter.
        path = detour_path(round_hole_foi, [2.0, 10.8], [18.0, 10.8])
        assert max(p[1] for p in path) > 10.8  # went over the top
        assert min(p[1] for p in path) > 7.5  # never dove under the hole

    def test_two_holes_both_avoided(self, two_hole_foi):
        path = detour_path(two_hole_foi, [1, 10], [19, 10])
        for a, b in zip(path, path[1:]):
            assert path_blocked_by_hole(two_hole_foi, a, b) is None

    def test_concave_flower_hole(self):
        foi = m2_scenario3()
        hole = foi.holes[0]
        c = hole.centroid
        span = 3.0 * np.sqrt(hole.area)
        p = foi.project_inside(c + [-span, 0.0])
        q = foi.project_inside(c + [span, 0.0])
        path = detour_path(foi, p, q)
        for a, b in zip(path, path[1:]):
            assert path_blocked_by_hole(foi, a, b) is None
