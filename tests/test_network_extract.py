"""Tests for triangulation extraction from connectivity graphs."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.network import (
    UnitDiskGraph,
    edge_shared_neighbor_counts,
    extract_triangulation,
    extract_triangulation_localized,
)
from repro.geometry import segments_properly_cross


def lattice_positions(rows=5, cols=6, spacing=1.0):
    pts = []
    for r in range(rows):
        offset = 0.0 if r % 2 == 0 else spacing / 2
        for c in range(cols):
            pts.append((c * spacing + offset, r * spacing * np.sqrt(3) / 2))
    return np.array(pts)


class TestCentralizedExtraction:
    def test_lattice_full_coverage(self):
        pts = lattice_positions()
        mesh, vmap = extract_triangulation(pts, comm_range=1.1)
        assert len(vmap) == len(pts)
        assert mesh.is_topological_disk()

    def test_edges_within_range(self):
        pts = lattice_positions()
        mesh, _ = extract_triangulation(pts, comm_range=1.1)
        assert mesh.edge_lengths().max() <= 1.1

    def test_planarity(self):
        pts = lattice_positions()
        mesh, _ = extract_triangulation(pts, comm_range=1.1)
        edges = mesh.edges
        v = mesh.vertices
        for i in range(len(edges)):
            for j in range(i + 1, len(edges)):
                a, b = edges[i]
                c, d = edges[j]
                assert not segments_properly_cross(v[a], v[b], v[c], v[d])

    def test_swarm_deployment(self, m1_small_swarm):
        mesh, vmap = extract_triangulation(
            m1_small_swarm.positions, m1_small_swarm.radio.comm_range
        )
        assert len(vmap) == m1_small_swarm.size
        assert len(mesh.boundary_loops) == 1

    def test_sparse_raises(self):
        pts = np.array([[0, 0], [10, 0], [0, 10], [10, 10]], dtype=float)
        with pytest.raises(MeshError):
            extract_triangulation(pts, comm_range=1.0)


class TestLocalizedExtraction:
    def test_matches_centralized_on_lattice(self):
        pts = lattice_positions()
        central, _ = extract_triangulation(pts, comm_range=1.1)
        local, _ = extract_triangulation_localized(pts, comm_range=1.1)
        central_tris = {tuple(sorted(t)) for t in central.triangles.tolist()}
        local_tris = {tuple(sorted(t)) for t in local.triangles.tolist()}
        assert local_tris == central_tris

    def test_matches_on_swarm(self, m1_small_swarm):
        pts = m1_small_swarm.positions
        rc = m1_small_swarm.radio.comm_range
        central, _ = extract_triangulation(pts, rc)
        local, _ = extract_triangulation_localized(pts, rc)
        central_tris = {tuple(sorted(t)) for t in central.triangles.tolist()}
        local_tris = {tuple(sorted(t)) for t in local.triangles.tolist()}
        # The localized rule is conservative: never invents triangles.
        assert local_tris <= central_tris
        # And keeps the overwhelming majority on dense deployments.
        assert len(local_tris) >= 0.9 * len(central_tris)

    def test_edges_are_links(self):
        pts = lattice_positions()
        mesh, _ = extract_triangulation_localized(pts, comm_range=1.1)
        assert mesh.edge_lengths().max() <= 1.1


class TestEdgeWeights:
    def test_lattice_interior_edges_two_triangles(self):
        pts = lattice_positions()
        graph = UnitDiskGraph(pts, 1.1)
        counts = edge_shared_neighbor_counts(graph)
        assert set(counts.values()) <= {1, 2}
        assert max(counts.values()) == 2

    def test_counts_cover_all_links(self):
        pts = lattice_positions()
        graph = UnitDiskGraph(pts, 1.1)
        counts = edge_shared_neighbor_counts(graph)
        assert len(counts) == len(graph.edges)
