"""A1 - ablation: rotation-search depth vs the exhaustive optimum.

The paper fixes the interval-halving depth to 4 and claims "the
computed rotation angle has been very close to the optimal one with the
search depth value".  This ablation sweeps depths 0-8 on a real
scenario objective (stable-link count vs rotation angle) and reports
each depth's achieved fraction of the exhaustive optimum.
"""

import numpy as np

from repro.experiments import format_table, get_scenario
from repro.harmonic import (
    InducedMap,
    compute_disk_map,
    exhaustive_angle_search,
    hierarchical_angle_search,
)
from repro.mesh import triangulate_foi
from repro.network import LinkTable, extract_triangulation
from repro.network.links import links_alive
from repro.robots import RadioSpec, Swarm

DEPTHS = (0, 1, 2, 3, 4, 6, 8)


def _objective_for_scenario():
    spec = get_scenario(3)
    radio = RadioSpec.from_comm_range(spec.comm_range)
    m1, m2 = spec.build(separation_factor=20.0)
    swarm = Swarm.deploy_lattice(m1, spec.robot_count, radio)
    links = LinkTable.from_graph(swarm.communication_graph())
    t_mesh, vmap = extract_triangulation(swarm.positions, spec.comm_range)
    dm_t = compute_disk_map(t_mesh)
    dm_m2 = compute_disk_map(triangulate_foi(m2, target_points=320).mesh)
    induced = InducedMap(dm_m2)
    disk = dm_t.robot_disk_positions

    robot_to_t = -np.ones(swarm.size, dtype=int)
    robot_to_t[vmap] = np.arange(len(vmap))
    both = (robot_to_t[links.links[:, 0]] >= 0) & (robot_to_t[links.links[:, 1]] >= 0)
    t_links = np.column_stack(
        [robot_to_t[links.links[both, 0]], robot_to_t[links.links[both, 1]]]
    )

    def objective(angle: float) -> float:
        targets = induced.map_points(disk, rotation=angle)
        return float(links_alive(t_links, targets, spec.comm_range).sum())

    return objective, len(t_links)


def test_ablation_search_depth(benchmark):
    objective, total_links = benchmark.pedantic(
        _objective_for_scenario, rounds=1, iterations=1
    )
    oracle = exhaustive_angle_search(objective, samples=180)
    rows = []
    reached = {}
    for depth in DEPTHS:
        res = hierarchical_angle_search(objective, depth=depth, initial_samples=4)
        frac = res.score / oracle.score if oracle.score else 1.0
        reached[depth] = frac
        rows.append(
            [depth, res.evaluations, f"{res.score:.0f}", f"{frac:.3f}"]
        )
    print(f"\nAblation A1 - rotation-search depth (exhaustive optimum: "
          f"{oracle.score:.0f}/{total_links} links):")
    print(format_table(["depth", "evals", "stable links", "frac of optimum"], rows))
    # The paper's depth-4 claim: very close to optimal.
    assert reached[4] >= 0.95
    # Depth is monotone in budget on this objective (weakly).
    assert reached[8] >= reached[0] - 1e-9
