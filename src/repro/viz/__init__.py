"""Dependency-free SVG visualisation of swarms, meshes and pipelines."""

from repro.viz.animate import animate_transition
from repro.viz.chart import METHOD_COLORS, LineChart
from repro.viz.render import (
    render_deployment,
    render_disk_map,
    render_mesh,
    render_pipeline_figure,
)
from repro.viz.svg import SvgCanvas

__all__ = [
    "LineChart",
    "METHOD_COLORS",
    "SvgCanvas",
    "animate_transition",
    "render_deployment",
    "render_disk_map",
    "render_mesh",
    "render_pipeline_figure",
]
