"""E3 - Fig. 4: scenario 3 (non-hole -> the concave flower-pond FoI).

The target is Fig. 2(d): a blob with a strongly concave flower-shaped
pond.  Fig. 4 compares total moving distance (a) and stable link ratio
(b) for all four methods.
"""

from _shared import assert_paper_shape, get_sweep, print_sweep


def test_fig4_scenario3(benchmark):
    sweep = benchmark.pedantic(get_sweep, args=(3,), rounds=1, iterations=1)
    print_sweep(sweep)
    assert_paper_shape(sweep)
    # Even with the concave hole, ours preserves a solid majority of links.
    assert min(sweep.series("stable_link_ratio", "ours (a)")) > 0.6
