"""Simple polygons: area, centroid, containment, sampling.

A :class:`Polygon` is a simple (non self-intersecting) closed polygon
stored as an ``(n, 2)`` vertex array without a repeated closing vertex.
Vertices are normalised to counter-clockwise (CCW) order on
construction, so signed quantities downstream can assume a positive
orientation.  Polygons are immutable value objects.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable

import numpy as np

from repro.errors import GeometryError
from repro.geometry.segment import points_segments_distance, segments_properly_cross
from repro.geometry.vec import as_points

__all__ = ["Polygon", "signed_area", "polygon_centroid"]


def signed_area(vertices) -> float:
    """Signed area of the closed polygon through ``vertices``.

    Positive for counter-clockwise orientation (shoelace formula).
    """
    v = as_points(vertices)
    if len(v) < 3:
        return 0.0
    x, y = v[:, 0], v[:, 1]
    xn, yn = np.roll(x, -1), np.roll(y, -1)
    return 0.5 * float(np.sum(x * yn - xn * y))


def polygon_centroid(vertices) -> np.ndarray:
    """Area centroid of the closed polygon through ``vertices``.

    Falls back to the vertex mean for degenerate (zero-area) input.
    """
    v = as_points(vertices)
    if len(v) == 0:
        raise GeometryError("centroid of empty polygon")
    a = signed_area(v)
    if abs(a) < 1e-12:
        return v.mean(axis=0)
    x, y = v[:, 0], v[:, 1]
    xn, yn = np.roll(x, -1), np.roll(y, -1)
    cross = x * yn - xn * y
    cx = float(np.sum((x + xn) * cross)) / (6.0 * a)
    cy = float(np.sum((y + yn) * cross)) / (6.0 * a)
    return np.array([cx, cy])


class Polygon:
    """An immutable simple polygon with CCW vertex order.

    Parameters
    ----------
    vertices : (n, 2) array-like
        Polygon boundary in order (either orientation); at least 3
        non-collinear vertices.  Consecutive duplicate vertices are
        dropped.

    Raises
    ------
    GeometryError
        If fewer than 3 distinct vertices remain or the area is zero.
    """

    __slots__ = ("_vertices", "__dict__")

    def __init__(self, vertices: Iterable) -> None:
        v = as_points(vertices)
        if len(v) >= 2:
            keep = np.ones(len(v), dtype=bool)
            for i in range(len(v)):
                if np.allclose(v[i], v[(i + 1) % len(v)], atol=1e-12):
                    keep[i] = False
            v = v[keep]
        if len(v) < 3:
            raise GeometryError("a polygon needs at least 3 distinct vertices")
        a = signed_area(v)
        if abs(a) < 1e-12:
            raise GeometryError("polygon has (numerically) zero area")
        if a < 0:
            v = v[::-1].copy()
        self._vertices = v
        self._vertices.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def vertices(self) -> np.ndarray:
        """Read-only ``(n, 2)`` CCW vertex array."""
        return self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Polygon(n={len(self)}, area={self.area:.3f})"

    @cached_property
    def area(self) -> float:
        """Enclosed area (always positive)."""
        return signed_area(self._vertices)

    @cached_property
    def centroid(self) -> np.ndarray:
        """Area centroid."""
        return polygon_centroid(self._vertices)

    @cached_property
    def perimeter(self) -> float:
        """Total boundary length."""
        v = self._vertices
        seg = np.roll(v, -1, axis=0) - v
        return float(np.hypot(seg[:, 0], seg[:, 1]).sum())

    @cached_property
    def bounds(self) -> tuple[float, float, float, float]:
        """Axis-aligned bounding box ``(xmin, ymin, xmax, ymax)``."""
        v = self._vertices
        return (
            float(v[:, 0].min()),
            float(v[:, 1].min()),
            float(v[:, 0].max()),
            float(v[:, 1].max()),
        )

    def edges(self) -> np.ndarray:
        """Edge array of shape ``(n, 2, 2)``: ``edges[i] = (v_i, v_{i+1})``."""
        v = self._vertices
        return np.stack([v, np.roll(v, -1, axis=0)], axis=1)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def contains(self, points, include_boundary: bool = True) -> np.ndarray:
        """Vectorised point-in-polygon test (even-odd / ray crossing).

        Parameters
        ----------
        points : (m, 2) or (2,) array-like
        include_boundary : bool
            Whether points within a small tolerance of the boundary
            count as inside.

        Returns
        -------
        ndarray of bool (or scalar bool for a single point)
        """
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        p = as_points(pts[None, :] if single else pts)
        v = self._vertices
        x, y = p[:, 0], p[:, 1]
        inside = np.zeros(len(p), dtype=bool)
        n = len(v)
        j = n - 1
        for i in range(n):
            xi, yi = v[i]
            xj, yj = v[j]
            crosses = (yi > y) != (yj > y)
            with np.errstate(divide="ignore", invalid="ignore"):
                x_int = (xj - xi) * (y - yi) / (yj - yi) + xi
            inside ^= crosses & (x < x_int)
            j = i
        if include_boundary:
            tol = 1e-9 * max(1.0, self.perimeter)
            inside |= self.boundary_distances(p) <= tol
        return bool(inside[0]) if single else inside

    def boundary_distances(self, points) -> np.ndarray:
        """Distances from many points to the polygon boundary, vectorised."""
        p = as_points(points)
        if len(p) == 0:
            return np.zeros(0)
        v = self._vertices
        return points_segments_distance(p, v, np.roll(v, -1, axis=0)).min(axis=1)

    def boundary_distance(self, point) -> float:
        """Distance from ``point`` to the polygon boundary (always >= 0)."""
        return float(self.boundary_distances(np.asarray(point, dtype=float)[None, :])[0])

    @cached_property
    def is_convex(self) -> bool:
        """Whether the polygon is convex (CCW turning at every vertex)."""
        v = self._vertices
        n = len(v)
        for i in range(n):
            a, b, c = v[i], v[(i + 1) % n], v[(i + 2) % n]
            cr = (b[0] - a[0]) * (c[1] - b[1]) - (b[1] - a[1]) * (c[0] - b[0])
            if cr < -1e-9 * max(1.0, self.perimeter) ** 2:
                return False
        return True

    def is_simple(self) -> bool:
        """Whether no two non-adjacent edges properly cross.

        Quadratic check; intended for validation and tests, not hot paths.
        """
        v = self._vertices
        n = len(v)
        for i in range(n):
            a1, a2 = v[i], v[(i + 1) % n]
            for j in range(i + 1, n):
                if j == i or (j + 1) % n == i or (i + 1) % n == j:
                    continue
                b1, b2 = v[j], v[(j + 1) % n]
                if segments_properly_cross(a1, a2, b1, b2):
                    return False
        return True

    # ------------------------------------------------------------------
    # Transforms and sampling
    # ------------------------------------------------------------------

    def translated(self, offset) -> "Polygon":
        """A copy shifted by ``offset``."""
        off = np.asarray(offset, dtype=float)
        return Polygon(self._vertices + off)

    def scaled(self, factor: float, about=None) -> "Polygon":
        """A copy scaled by ``factor`` about ``about`` (default: centroid)."""
        if factor <= 0:
            raise GeometryError("scale factor must be positive")
        c = self.centroid if about is None else np.asarray(about, dtype=float)
        return Polygon(c + factor * (self._vertices - c))

    def scaled_to_area(self, target_area: float) -> "Polygon":
        """A copy uniformly scaled so its area equals ``target_area``."""
        if target_area <= 0:
            raise GeometryError("target area must be positive")
        return self.scaled(float(np.sqrt(target_area / self.area)))

    def rotated(self, theta: float, about=None) -> "Polygon":
        """A copy rotated CCW by ``theta`` radians about ``about``."""
        from repro.geometry.vec import rotate

        c = self.centroid if about is None else np.asarray(about, dtype=float)
        return Polygon(rotate(self._vertices, theta, center=c))

    def sample_boundary(self, n: int) -> np.ndarray:
        """``n`` points spaced uniformly by arc length along the boundary."""
        if n < 1:
            raise GeometryError("need at least one boundary sample")
        v = self._vertices
        closed = np.vstack([v, v[:1]])
        seg = np.diff(closed, axis=0)
        seg_len = np.hypot(seg[:, 0], seg[:, 1])
        cum = np.concatenate([[0.0], np.cumsum(seg_len)])
        total = cum[-1]
        targets = np.linspace(0.0, total, n, endpoint=False)
        idx = np.searchsorted(cum, targets, side="right") - 1
        idx = np.clip(idx, 0, len(seg_len) - 1)
        frac = (targets - cum[idx]) / np.where(seg_len[idx] > 0, seg_len[idx], 1.0)
        return closed[idx] + frac[:, None] * seg[idx]

    def grid_points(self, spacing: float, include_boundary_margin: float = 0.0) -> np.ndarray:
        """Square-grid points strictly inside the polygon.

        Parameters
        ----------
        spacing : float
            Grid pitch in the polygon's units.
        include_boundary_margin : float
            If positive, only keep points at least this far from the
            boundary (useful to avoid sliver triangles later).
        """
        if spacing <= 0:
            raise GeometryError("grid spacing must be positive")
        xmin, ymin, xmax, ymax = self.bounds
        xs = np.arange(xmin + spacing / 2.0, xmax, spacing)
        ys = np.arange(ymin + spacing / 2.0, ymax, spacing)
        if len(xs) == 0 or len(ys) == 0:
            return np.zeros((0, 2))
        gx, gy = np.meshgrid(xs, ys)
        pts = np.column_stack([gx.ravel(), gy.ravel()])
        mask = self.contains(pts, include_boundary=False)
        pts = pts[mask]
        if include_boundary_margin > 0 and len(pts):
            pts = pts[self.boundary_distances(pts) >= include_boundary_margin]
        return pts
