"""Mission specifications: what a streaming mission is made of.

A *mission* is a seeded sequence of target FoIs executed as one
long-running job: the swarm marches toward the current target, the
target drifts or deforms at epoch boundaries, and the planner replans
incrementally.  Everything downstream (the target sequence, every
plan, the canonical mission document) is a pure function of the
``(MissionSpec, MissionConfig, FaultSchedule)`` triple, which is what
lets the service dedup missions by content address and byte-compare
runs across worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.coverage import LloydConfig
from repro.errors import MissionError
from repro.experiments.zoo.families import FAMILIES
from repro.marching.planner import MarchingConfig

__all__ = ["MOTIONS", "MissionConfig", "MissionSpec"]

#: Target-motion kinds a mission can request.
#:
#: * ``"drift"`` - the target translates rigidly each epoch (the shape
#:   is unchanged, so the translation-canonical disk-map cache turns
#:   every replan's harmonic solve into a cache hit);
#: * ``"deform"`` - the target is redrawn from the zoo family each
#:   epoch (same area, same centroid - a genuine re-solve);
#: * ``"drift+deform"`` - drifts every epoch and additionally redraws
#:   the shape on even epochs.
MOTIONS = ("drift", "deform", "drift+deform")


@dataclass(frozen=True)
class MissionSpec:
    """One mission: a seeded target-motion scenario.

    Attributes
    ----------
    family : str
        Zoo family the base target is drawn from.
    seed : int
        Seed for the base scenario and every motion draw.
    epochs : int
        Number of mission legs; each leg replans against the epoch's
        target.  Epoch 0 marches toward the base zoo target.
    motion : str
        One of :data:`MOTIONS`.
    drift_step : float
        Per-epoch target translation, in communication ranges.
    name : str
        Optional label carried into documents and reports.
    """

    family: str = "corridor"
    seed: int = 0
    epochs: int = 3
    motion: str = "drift"
    drift_step: float = 0.5
    name: str = ""

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise MissionError(
                f"unknown mission family {self.family!r}; "
                f"valid: {list(FAMILIES)}"
            )
        if self.motion not in MOTIONS:
            raise MissionError(
                f"unknown mission motion {self.motion!r}; "
                f"valid: {list(MOTIONS)}"
            )
        if self.epochs < 1:
            raise MissionError("a mission needs at least one epoch")
        if self.drift_step <= 0.0:
            raise MissionError("drift_step must be positive")

    def to_dict(self) -> dict[str, Any]:
        return {
            "family": self.family,
            "seed": int(self.seed),
            "epochs": int(self.epochs),
            "motion": self.motion,
            "drift_step": float(self.drift_step),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MissionSpec":
        known = {f for f in cls.__dataclass_fields__}
        extra = set(data) - known
        if extra:
            raise MissionError(
                f"unknown mission spec fields: {sorted(extra)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class MissionConfig:
    """Size/resolution knobs of a mission run (CI-sized defaults).

    Attributes
    ----------
    robot_count, separation_factor, comm_range : as in the zoo config;
        the smaller defaults keep a multi-epoch mission CI-sized.
    foi_target_points, grid_target, lloyd_max_iterations : int
        Planner resolution knobs.
    resolution : int
        Metric sampling resolution per leg (connectivity, ``L``).
    method : str
        Planner method for every leg (``"a"`` or ``"b"``).
    advance_fraction : float
        Fraction of each leg's plan the swarm executes before the next
        epoch's target update arrives (the final leg always runs to
        completion).  Must lie in ``(0, 1]``.
    cache_capacity : int
        Entry budget of the mission's private in-memory cache.
    """

    robot_count: int = 25
    separation_factor: float = 3.0
    comm_range: float = 80.0
    foi_target_points: int = 120
    grid_target: int = 400
    lloyd_max_iterations: int = 12
    resolution: int = 6
    method: str = "a"
    advance_fraction: float = 0.5
    cache_capacity: int = 64

    def __post_init__(self) -> None:
        if self.method not in ("a", "b"):
            raise MissionError(
                f"unknown marching method {self.method!r}; valid: a, b"
            )
        if not (0.0 < self.advance_fraction <= 1.0):
            raise MissionError("advance_fraction must lie in (0, 1]")
        for fld in (
            "robot_count", "separation_factor", "comm_range",
            "foi_target_points", "grid_target", "lloyd_max_iterations",
            "resolution", "cache_capacity",
        ):
            if getattr(self, fld) <= 0:
                raise MissionError(f"{fld} must be positive")

    def marching_config(self) -> MarchingConfig:
        return MarchingConfig(
            method=self.method,
            foi_target_points=self.foi_target_points,
            lloyd=LloydConfig(
                grid_target=self.grid_target,
                max_iterations=self.lloyd_max_iterations,
            ),
            use_cache=True,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "robot_count": int(self.robot_count),
            "separation_factor": float(self.separation_factor),
            "comm_range": float(self.comm_range),
            "foi_target_points": int(self.foi_target_points),
            "grid_target": int(self.grid_target),
            "lloyd_max_iterations": int(self.lloyd_max_iterations),
            "resolution": int(self.resolution),
            "method": self.method,
            "advance_fraction": float(self.advance_fraction),
            "cache_capacity": int(self.cache_capacity),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MissionConfig":
        known = {f for f in cls.__dataclass_fields__}
        extra = set(data) - known
        if extra:
            raise MissionError(
                f"unknown mission config fields: {sorted(extra)}"
            )
        return cls(**data)
