"""Failure-path tests for the SSE job-progress streaming endpoint.

The streaming contract: every stream - happy, replayed, disconnected,
throttled or cut down by shutdown - must terminate cleanly, detach
itself from the service's stream registry (``/healthz`` shows zero
``active_streams``), and leave behind a ``service.events`` tracer span
recording its outcome.  No orphaned asyncio tasks, ever.
"""

import socket
import threading
import time

import pytest

from repro.service import PlanningService, ServiceClient


def make_gate_runner(gate):
    """Runner that blocks until the test releases the gate."""

    def runner(request):
        gate.wait(timeout=30.0)
        return {"echo": request["scenario_ids"], "format_version": 1}

    return runner


@pytest.fixture
def gate():
    return threading.Event()


@pytest.fixture
def service(gate):
    svc = PlanningService(
        port=0,
        dispatchers=1,
        capacity=8,
        service_workers=2,
        runner=make_gate_runner(gate),
    )
    svc.events_poll_s = 0.01
    svc.events_keepalive_s = 0.05
    with svc:
        yield svc
    gate.set()  # never leave a dispatcher blocked after a failed test


@pytest.fixture
def client(service):
    return ServiceClient(port=service.port, timeout=15.0)


def wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def events_spans(service):
    return [
        r for r in service.tracer.get_trace() if r.name == "service.events"
    ]


def raw_stream_socket(service, job_id):
    """A raw socket with the SSE request sent and headers consumed."""
    sock = socket.create_connection(("127.0.0.1", service.port), timeout=10.0)
    sock.sendall(
        f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n"
        f"Host: localhost\r\nConnection: close\r\n\r\n".encode()
    )
    buffered = b""
    while b"\r\n\r\n" not in buffered:
        chunk = sock.recv(4096)
        assert chunk, "server closed before sending headers"
        buffered += chunk
    head, _, rest = buffered.partition(b"\r\n\r\n")
    assert b"200 OK" in head.split(b"\r\n", 1)[0]
    assert b"text/event-stream" in head
    return sock, rest


class TestHappyPath:
    def test_full_lifecycle_stream(self, service, client, gate):
        submitted = client.submit([1], separation_factor=5.0)
        gate.set()
        events = list(client.iter_events(submitted["job_id"]))
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "queued"
        assert "claimed" in kinds
        assert kinds.count("phase") == 2  # solve + serialize
        assert kinds[-2:] == ["done", "end"]
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        claimed = next(e for e in events if e["kind"] == "claimed")
        assert claimed["shard"] == submitted["shard"]
        assert claimed["queue_wait_s"] >= 0.0
        solve = next(e for e in events if e.get("phase") == "solve")
        assert solve["duration_s"] > 0.0

    def test_finished_job_replays_full_history(self, service, client, gate):
        gate.set()
        submitted = client.submit([2], separation_factor=5.0)
        client.wait(submitted["job_id"], timeout=15.0)
        events = list(client.iter_events(submitted["job_id"]))
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "queued"
        assert kinds[-2:] == ["done", "end"]

    def test_unknown_job_is_404(self, service, client):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="404"):
            list(client.iter_events("no-such-job"))

    def test_plan_path_alias(self, service, client, gate):
        gate.set()
        submitted = client.submit([3], separation_factor=5.0)
        client.wait(submitted["job_id"], timeout=15.0)
        sock = socket.create_connection(
            ("127.0.0.1", service.port), timeout=10.0
        )
        sock.sendall(
            f"GET /v1/plan/{submitted['job_id']}/events HTTP/1.1\r\n\r\n"
            .encode()
        )
        data = b""
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            data += chunk
        sock.close()
        assert b"event: end" in data

    def test_stream_completion_leaves_no_registered_task(
        self, service, client, gate
    ):
        gate.set()
        submitted = client.submit([4], separation_factor=5.0)
        list(client.iter_events(submitted["job_id"]))
        assert wait_for(lambda: not service._streams)
        assert client.healthz()["active_streams"] == 0
        spans = events_spans(service)
        assert spans and spans[-1].attributes["outcome"] == "complete"


class TestClientDisconnectMidStream:
    def test_disconnect_detected_and_stream_detached(
        self, service, client, gate
    ):
        submitted = client.submit([1], separation_factor=6.0)
        job_id = submitted["job_id"]
        sock, _ = raw_stream_socket(service, job_id)
        assert wait_for(lambda: len(service._streams) == 1)
        assert client.healthz()["active_streams"] == 1
        # Hard close while the job is still running: the server only
        # has keepalives to notice with.
        sock.setsockopt(
            socket.SOL_SOCKET,
            socket.SO_LINGER,
            __import__("struct").pack("ii", 1, 0),  # RST on close
        )
        sock.close()
        assert wait_for(lambda: not service._streams)
        assert client.healthz()["active_streams"] == 0
        spans = events_spans(service)
        assert spans
        assert spans[-1].attributes["outcome"] == "disconnect"
        assert spans[-1].attributes["job_id"] == job_id
        gate.set()
        client.wait(job_id, timeout=15.0)  # the job itself is unharmed

    def test_keepalives_flow_while_job_is_idle(self, service, client, gate):
        submitted = client.submit([2], separation_factor=6.0)
        sock, buffered = raw_stream_socket(service, submitted["job_id"])
        deadline = time.monotonic() + 5.0
        while (
            buffered.count(b": keepalive") < 2
            and time.monotonic() < deadline
        ):
            buffered += sock.recv(4096)
        sock.close()
        assert buffered.count(b": keepalive") >= 2
        gate.set()


class TestSlowConsumer:
    def test_unread_backlog_times_out_and_detaches(
        self, service, client, gate
    ):
        service.events_drain_timeout_s = 0.2
        submitted = client.submit([3], separation_factor=6.0)
        job_id = submitted["job_id"]
        sock, _ = raw_stream_socket(service, job_id)
        assert wait_for(lambda: len(service._streams) == 1)
        # Flood the stream while the consumer reads nothing: once the
        # kernel buffers fill, the server's drain deadline must fire.
        queue = service._shard_for(job_id).queue
        blob = "x" * 8192
        for _ in range(2048):
            if not service._streams:
                break
            queue.publish(job_id, "progress", blob=blob)
            time.sleep(0.0005)
        assert wait_for(lambda: not service._streams)
        spans = events_spans(service)
        assert spans
        assert spans[-1].attributes["outcome"] == "slow_consumer"
        sock.close()
        gate.set()
        client.wait(job_id, timeout=15.0)  # the job itself is unharmed


class TestDrainAndShutdownMidStream:
    def test_drain_announcement_then_clean_end(self, service, client, gate):
        submitted = client.submit([4], separation_factor=6.0)
        job_id = submitted["job_id"]
        collected = []
        done = threading.Event()

        def consume():
            for event in client.iter_events(job_id):
                collected.append(event)
            done.set()

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        assert wait_for(lambda: len(service._streams) == 1)
        service.drain()
        assert wait_for(
            lambda: any(e["kind"] == "draining" for e in collected)
        )
        gate.set()
        assert done.wait(timeout=15.0)
        kinds = [e["kind"] for e in collected]
        assert kinds[-2:] == ["done", "end"]
        assert wait_for(lambda: not service._streams)

    def test_shutdown_cancels_attached_stream_no_orphans(self, gate):
        """stop() while a consumer is attached to a never-finishing job
        must cancel the stream task and record a shutdown outcome."""
        svc = PlanningService(
            port=0,
            dispatchers=1,
            capacity=8,
            service_workers=1,
            runner=make_gate_runner(gate),
        )
        svc.events_poll_s = 0.01
        svc.start()
        try:
            client = ServiceClient(port=svc.port, timeout=15.0)
            submitted = client.submit([5], separation_factor=6.0)
            sock, _ = raw_stream_socket(svc, submitted["job_id"])
            assert wait_for(lambda: len(svc._streams) == 1)
            # Dispatcher is wedged in the runner; a short join timeout
            # lets stop() proceed to the asyncio shutdown, which must
            # cancel the attached stream.
            svc.stop(drain=False, timeout=0.2)
            assert svc._streams == set()
            spans = events_spans(svc)
            assert spans
            assert spans[-1].attributes["outcome"] in (
                "shutdown",
                "complete",  # the cancel raced a cancelled-job end frame
            )
            sock.close()
        finally:
            gate.set()
            svc.stop()
