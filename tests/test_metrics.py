"""Tests for the paper's three metrics: D, L, C."""

import numpy as np
import pytest

from repro.metrics import (
    connectivity_report,
    distance_report,
    global_connectivity,
    stable_link_ratio,
    stable_link_report,
    straight_line_lower_bound,
    total_moving_distance,
)
from repro.network import LinkTable
from repro.robots import straight_transition, SwarmTrajectory, TimedPath


def chain_positions(n=4, spacing=1.0):
    return np.column_stack([np.arange(n) * spacing, np.zeros(n)])


class TestDistance:
    def test_total_matches_paths(self):
        traj = straight_transition([[0, 0], [0, 1]], [[3, 4], [0, 1]])
        assert total_moving_distance(traj) == pytest.approx(5.0)

    def test_report_fields(self):
        traj = straight_transition([[0, 0], [0, 0]], [[3, 4], [6, 8]])
        rep = distance_report(traj)
        assert rep.total == pytest.approx(15.0)
        assert rep.mean == pytest.approx(7.5)
        assert rep.max == pytest.approx(10.0)

    def test_ratio(self):
        traj = straight_transition([[0, 0]], [[3, 4]])
        assert distance_report(traj).ratio_to(10.0) == pytest.approx(0.5)

    def test_ratio_bad_baseline(self):
        traj = straight_transition([[0, 0]], [[3, 4]])
        with pytest.raises(ValueError):
            distance_report(traj).ratio_to(0.0)

    def test_lower_bound_tight_for_straight(self):
        p = [[0, 0], [5, 5]]
        q = [[1, 1], [9, 9]]
        traj = straight_transition(p, q)
        assert straight_line_lower_bound(p, q) == pytest.approx(
            total_moving_distance(traj)
        )


class TestStableLinks:
    def test_all_stable_when_static(self):
        pos = chain_positions()
        links = LinkTable.from_positions(pos, 1.5)
        traj = straight_transition(pos, pos)
        assert stable_link_ratio(links, traj) == 1.0

    def test_breaking_one_link(self):
        pos = chain_positions(3)
        links = LinkTable.from_positions(pos, 1.5)  # links (0,1), (1,2)
        target = pos.copy()
        target[2] += [10.0, 0.0]
        traj = straight_transition(pos, target)
        rep = stable_link_report(links, traj)
        assert rep.initial_links == 2
        assert rep.stable_links == 1
        assert rep.ratio == pytest.approx(0.5)
        assert rep.broken_mask.sum() == 1

    def test_transient_break_detected(self):
        """A link broken mid-flight but restored at the end still counts
        broken (Definition 1 requires connectivity for ALL t)."""
        pos = np.array([[0.0, 0.0], [1.0, 0.0]])
        links = LinkTable.from_positions(pos, 1.5)
        # Robot 1 loops far away and comes back via a two-leg path.
        paths = [
            TimedPath.constant_speed([[0, 0], [0, 0]], 0.0, 1.0),
            TimedPath.constant_speed([[1, 0], [50, 0], [1, 0]], 0.0, 1.0),
        ]
        traj = SwarmTrajectory(paths, 0.0, 1.0)
        assert stable_link_ratio(links, traj) == 0.0

    def test_no_links_is_ratio_one(self):
        pos = np.array([[0.0, 0.0], [100.0, 0.0]])
        links = LinkTable.from_positions(pos, 1.0)
        traj = straight_transition(pos, pos)
        assert stable_link_ratio(links, traj) == 1.0


class TestStableLinkSamplingExactness:
    """Definition 1 quantifies over ALL t: the evaluator must not miss
    breaks that fall between uniform grid samples."""

    def test_detour_break_between_grid_samples(self):
        # Robot 1 detours out to distance 52 at t=0.4, which falls
        # strictly between the resolution-32 grid samples 12/31 and
        # 13/31 (where d <= 50.5).  The detour's waypoint time must be
        # merged into the evaluation times for the break to be seen.
        pos = np.array([[0.0, 0.0], [5.0, 0.0]])
        links = LinkTable.from_positions(pos, 51.0)
        paths = [
            TimedPath.stationary([0.0, 0.0], 0.0),
            TimedPath([[5, 0], [52, 0], [5, 0]], [0.0, 0.4, 1.0]),
        ]
        traj = SwarmTrajectory(paths, 0.0, 1.0)
        rep = stable_link_report(links, traj, resolution=32)
        assert rep.initial_links == 1
        assert rep.stable_links == 0
        assert rep.ratio == 0.0

    def test_pre_jump_break_detected(self):
        # Robot 1 climbs continuously to distance 50 at t -> 0.5-, then
        # jumps back to 14 instantaneously (duplicated waypoint time).
        # Right-continuous sampling sees at most d ~ 48.55 on the grid
        # and d = 14 at t = 0.5 itself, so only the left-sided limit at
        # the jump reveals the break at comm range 49.
        pos = np.array([[0.0, 0.0], [5.0, 0.0]])
        links = LinkTable.from_positions(pos, 49.0)
        paths = [
            TimedPath.stationary([0.0, 0.0], 0.0),
            TimedPath(
                [[5, 0], [50, 0], [14, 0], [5, 0]],
                [0.0, 0.5, 0.5, 1.0],
            ),
        ]
        traj = SwarmTrajectory(paths, 0.0, 1.0)
        rep = stable_link_report(links, traj, resolution=32)
        assert rep.stable_links == 0
        assert rep.ratio == 0.0

    def test_left_and_right_limits(self):
        path = TimedPath([[0, 0], [10, 0], [2, 0]], [0.0, 0.5, 0.5])
        assert np.allclose(
            path.positions_at_many([0.5], side="left")[0], [10, 0]
        )
        assert np.allclose(
            path.positions_at_many([0.5], side="right")[0], [2, 0]
        )
        # Continuous instants agree on both sides.
        assert np.allclose(
            path.positions_at_many([0.25, 0.75], side="left"),
            path.positions_at_many([0.25, 0.75], side="right"),
        )

    def test_discontinuity_times(self):
        cont = TimedPath.constant_speed([[0, 0], [1, 0]], 0.0, 1.0)
        assert len(cont.discontinuity_times()) == 0
        # A duplicated time with identical positions is not a jump.
        still = TimedPath([[0, 0], [5, 0], [5, 0], [9, 0]], [0, 0.5, 0.5, 1])
        assert len(still.discontinuity_times()) == 0
        jump = TimedPath([[0, 0], [5, 0], [7, 0]], [0, 0.5, 0.5])
        assert np.allclose(jump.discontinuity_times(), [0.5])
        traj = SwarmTrajectory(
            [TimedPath.stationary([0, 0], 0.0), jump], 0.0, 0.5
        )
        assert np.allclose(traj.discontinuity_times(), [0.5])


class TestConnectivity:
    def test_static_chain_connected(self):
        pos = chain_positions()
        traj = straight_transition(pos, pos)
        assert global_connectivity(traj, 1.5)

    def test_splitting_detected(self):
        pos = chain_positions(4)
        target = pos.copy()
        target[2:] += [50.0, 0.0]
        traj = straight_transition(pos, target)
        rep = connectivity_report(traj, 1.5)
        assert not rep.connected
        assert rep.first_failure_time is not None
        assert rep.max_isolated >= 1
        assert rep.as_flag == "N"

    def test_boundary_anchor_semantics(self):
        pos = chain_positions(4)
        traj = straight_transition(pos, pos)
        # Anchored at node 0: all reachable.
        assert global_connectivity(traj, 1.5, boundary_anchors=[0])

    def test_isolated_from_anchor(self):
        pos = chain_positions(4)
        target = pos.copy()
        target[3] += [50.0, 0.0]
        traj = straight_transition(pos, target)
        rep = connectivity_report(traj, 1.5, boundary_anchors=[0])
        assert not rep.connected
        assert rep.max_isolated == 1

    def test_failure_time_ordering(self):
        pos = chain_positions(2)
        target = pos.copy()
        target[1] += [10.0, 0.0]
        traj = straight_transition(pos, target)
        rep = connectivity_report(traj, 1.5, resolution=64)
        # Breaks once separation exceeds 1.5 (t ~ 0.05 of the way).
        assert rep.first_failure_time == pytest.approx(0.06, abs=0.05)

    def test_samples_counted(self):
        pos = chain_positions(2)
        traj = straight_transition(pos, pos)
        rep = connectivity_report(traj, 1.5, resolution=16)
        assert rep.samples >= 16
