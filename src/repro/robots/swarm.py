"""Swarm state: a group of identical robots with vectorised accessors.

The :class:`Swarm` is the unit the marching pipeline operates on.  It
keeps the robot list plus a positions matrix in robot-ID order, and it
knows how to deploy itself on a FoI in the coverage-optimal triangular
lattice pattern (the assumed starting state of every scenario).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.foi.region import FieldOfInterest
from repro.geometry.vec import as_points
from repro.network.udg import UnitDiskGraph
from repro.robots.robot import RadioSpec, Robot

__all__ = ["Swarm"]


class Swarm:
    """A group of identical mobile robots.

    Parameters
    ----------
    positions : (n, 2) array-like
        Robot positions; robot ``i`` gets ID ``i``.
    radio : RadioSpec
        Shared radio specification.
    """

    def __init__(self, positions, radio: RadioSpec) -> None:
        pts = as_points(positions)
        if len(pts) == 0:
            raise GeometryError("a swarm needs at least one robot")
        self.radio = radio
        self._positions = pts.copy()
        self._positions.setflags(write=False)

    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._positions)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Swarm(n={self.size}, r_c={self.radio.comm_range})"

    @property
    def positions(self) -> np.ndarray:
        """Read-only ``(n, 2)`` positions in robot-ID order."""
        return self._positions

    def robots(self) -> list[Robot]:
        """Materialised robot objects (ID order)."""
        return [
            Robot(robot_id=i, position=p, radio=self.radio)
            for i, p in enumerate(self._positions)
        ]

    def with_positions(self, new_positions) -> "Swarm":
        """A swarm with the same radios at new positions (same count)."""
        pts = as_points(new_positions)
        if len(pts) != self.size:
            raise GeometryError(
                f"expected {self.size} positions, got {len(pts)}"
            )
        return Swarm(pts, self.radio)

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------

    def communication_graph(self) -> UnitDiskGraph:
        """Unit-disk graph snapshot at the current positions."""
        return UnitDiskGraph(self._positions, self.radio.comm_range)

    def is_connected(self) -> bool:
        return self.communication_graph().is_connected()

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    @classmethod
    def deploy_lattice(
        cls,
        foi: FieldOfInterest,
        count: int,
        radio: RadioSpec,
    ) -> "Swarm":
        """Deploy ``count`` robots on ``foi`` in a triangular lattice.

        The lattice spacing is chosen so that exactly ``count`` lattice
        sites fall inside the free region (binary search over the
        pitch); this reproduces the scenarios' starting condition of an
        optimal-coverage deployment (network of equilateral triangles).

        Raises
        ------
        GeometryError
            If the spacing needed to fit ``count`` robots exceeds the
            communication range (the swarm would start disconnected).
        """
        if count < 1:
            raise GeometryError("need at least one robot")
        lo = np.sqrt(foi.area / count) * 0.3
        hi = np.sqrt(foi.area / count) * 3.0

        def sites(spacing: float) -> np.ndarray:
            return _triangular_lattice_points(foi, spacing)

        # Larger spacing -> fewer sites.  Binary search for the spacing
        # whose site count first reaches `count`.
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            n = len(sites(mid))
            if n >= count:
                lo = mid
            else:
                hi = mid
        spacing = lo
        pts = sites(spacing)
        if len(pts) < count:
            raise GeometryError(
                f"could not fit {count} lattice sites in {foi.name}"
            )
        if spacing > radio.comm_range:
            raise GeometryError(
                f"lattice spacing {spacing:.1f} exceeds comm range "
                f"{radio.comm_range}; swarm would start disconnected"
            )
        # Keep the `count` sites closest to the centroid so the
        # deployment stays compact and connected.
        c = foi.centroid
        d = np.hypot(pts[:, 0] - c[0], pts[:, 1] - c[1])
        order = np.argsort(d, kind="stable")[:count]
        return cls(pts[np.sort(order)], radio)

    def total_displacement_to(self, targets) -> float:
        """Sum of straight-line distances from current positions to targets."""
        t = as_points(targets)
        if len(t) != self.size:
            raise GeometryError("target count mismatch")
        d = t - self._positions
        return float(np.hypot(d[:, 0], d[:, 1]).sum())


def _triangular_lattice_points(foi: FieldOfInterest, spacing: float) -> np.ndarray:
    """All triangular-lattice sites with pitch ``spacing`` inside ``foi``."""
    xmin, ymin, xmax, ymax = foi.bounds
    row_h = spacing * np.sqrt(3.0) / 2.0
    rows = []
    y = ymin + row_h / 2.0
    row_idx = 0
    while y < ymax:
        offset = 0.0 if row_idx % 2 == 0 else spacing / 2.0
        xs = np.arange(xmin + offset + spacing / 2.0, xmax, spacing)
        if len(xs):
            rows.append(np.column_stack([xs, np.full(len(xs), y)]))
        y += row_h
        row_idx += 1
    if not rows:
        return np.zeros((0, 2))
    pts = np.vstack(rows)
    return pts[foi.contains(pts)]
