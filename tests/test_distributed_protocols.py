"""Equivalence tests: distributed protocols vs centralized oracles."""

import numpy as np
import pytest

from repro.distributed import (
    flood_aggregate,
    run_boundary_loop_protocol,
    run_distributed_harmonic,
    run_subgroup_detection,
)
from repro.errors import ProtocolError
from repro.harmonic import boundary_parameterization, circle_positions
from repro.harmonic.solvers import solve_iterative
from repro.mesh import delaunay_mesh
from repro.network import adjacency_from_edges, bfs_hops


@pytest.fixture(scope="module")
def ring_mesh():
    rings = [np.zeros((1, 2))]
    for r, n in ((1.0, 6), (2.0, 12)):
        theta = np.linspace(0, 2 * np.pi, n, endpoint=False)
        rings.append(np.column_stack([r * np.cos(theta), r * np.sin(theta)]))
    return delaunay_mesh(np.vstack(rings))


class TestBoundaryLoopProtocol:
    def test_angles_match_centralized_uniform(self, ring_mesh):
        loop = ring_mesh.outer_boundary_loop
        adjacency = ring_mesh.adjacency
        angles = run_boundary_loop_protocol(loop, ring_mesh.vertex_count, adjacency)
        # Centralized oracle.
        c_loop, c_angles = boundary_parameterization(ring_mesh, mode="uniform")
        central = dict(zip(c_loop.tolist(), c_angles.tolist()))
        assert set(angles) == set(central)
        # The distributed run may traverse the loop in either direction;
        # angles agree directly or mirrored.
        direct = all(
            abs(angles[v] - central[v]) < 1e-9 for v in angles
        )
        mirrored = all(
            abs(((-angles[v]) % (2 * np.pi)) - central[v]) < 1e-9 for v in angles
        )
        assert direct or mirrored

    def test_initiator_is_min_id(self, ring_mesh):
        loop = ring_mesh.outer_boundary_loop
        angles = run_boundary_loop_protocol(loop, ring_mesh.vertex_count,
                                            ring_mesh.adjacency)
        assert angles[min(loop)] == pytest.approx(0.0)

    def test_all_boundary_vertices_assigned(self, ring_mesh):
        loop = ring_mesh.outer_boundary_loop
        angles = run_boundary_loop_protocol(loop, ring_mesh.vertex_count,
                                            ring_mesh.adjacency)
        assert len(angles) == len(loop)
        assert len({round(a, 9) for a in angles.values()}) == len(loop)


class TestFloodAggregate:
    def test_sum_on_line(self):
        adj = adjacency_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        out = flood_aggregate([1.0, 2.0, 3.0, 4.0], adj)
        assert out == [10.0, 10.0, 10.0, 10.0]

    def test_max_combiner(self):
        adj = adjacency_from_edges(3, [(0, 1), (1, 2)])
        out = flood_aggregate([5.0, -1.0, 7.0], adj, combine=max)
        assert out == [7.0, 7.0, 7.0]

    def test_single_node(self):
        out = flood_aggregate([42.0], [[]])
        assert out == [42.0]

    def test_disconnected_raises(self):
        adj = adjacency_from_edges(3, [(0, 1)])
        with pytest.raises(ProtocolError):
            flood_aggregate([1.0, 2.0, 3.0], adj)

    def test_matches_oracle_on_mesh(self, ring_mesh, rng):
        values = rng.uniform(0, 10, ring_mesh.vertex_count)
        out = flood_aggregate(values.tolist(), ring_mesh.adjacency)
        assert np.allclose(out, values.sum())


class TestSubgroupDetection:
    def test_matches_bfs_oracle(self, rng):
        n = 20
        edges = [(i, i + 1) for i in range(n - 1) if i != 9]  # cut at 9-10
        adj = adjacency_from_edges(n, edges)
        isolated, hops = run_subgroup_detection([0], adj)
        oracle = bfs_hops(adj, [0])
        assert isolated == [i for i in range(n) if oracle[i] < 0]
        for i in range(n):
            expected = None if oracle[i] < 0 else int(oracle[i])
            assert hops[i] == expected

    def test_multiple_boundary_sources(self):
        adj = adjacency_from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        isolated, hops = run_subgroup_detection([0, 4], adj)
        assert isolated == []
        assert hops == [0, 1, 2, 1, 0]

    def test_everyone_isolated_without_boundary_links(self):
        adj = adjacency_from_edges(4, [(1, 2), (2, 3)])
        isolated, hops = run_subgroup_detection([0], adj)
        assert isolated == [1, 2, 3]


class TestDistributedHarmonic:
    def test_matches_centralized_jacobi(self, ring_mesh):
        loop, angles = boundary_parameterization(ring_mesh, mode="uniform")
        bpos = circle_positions(angles)
        pinned = {int(v): bpos[k] for k, v in enumerate(loop)}
        rounds = 400
        distributed = run_distributed_harmonic(ring_mesh.adjacency, pinned, rounds)
        central, _ = solve_iterative(ring_mesh, loop, bpos, tol=1e-12,
                                     max_iterations=100_000)
        assert np.allclose(distributed, central, atol=1e-5)

    def test_boundary_never_moves(self, ring_mesh):
        loop, angles = boundary_parameterization(ring_mesh, mode="uniform")
        bpos = circle_positions(angles)
        pinned = {int(v): bpos[k] for k, v in enumerate(loop)}
        out = run_distributed_harmonic(ring_mesh.adjacency, pinned, 50)
        assert np.allclose(out[loop], bpos)

    def test_interior_converges_into_disk(self, ring_mesh):
        loop, angles = boundary_parameterization(ring_mesh, mode="uniform")
        bpos = circle_positions(angles)
        pinned = {int(v): bpos[k] for k, v in enumerate(loop)}
        out = run_distributed_harmonic(ring_mesh.adjacency, pinned, 300)
        r = np.hypot(out[:, 0], out[:, 1])
        assert r.max() <= 1.0 + 1e-9
