"""Consistent-hash router properties + routing-invariant dedup.

The fleet contract: sharding is an implementation detail that must be
invisible in results.  Any worker count and any submission order must
produce byte-identical plan documents, exactly one solve per unique
content address, and dedup counts equal to the single-queue service's.
The hypothesis test drives the *actual* routing + queue + bridge stack
(with a deterministic runner) across worker counts {1, 2, 4} and
random submission-order permutations.
"""

import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.io import dumps_canonical
from repro.obs import activate_metrics
from repro.service import PlanningService, ShardRouter, job_id_for
from repro.service.jobs import normalize_plan_request
from repro.service.sharding import ring_point


class TestRingPoint:
    def test_deterministic_across_calls(self):
        assert ring_point("abc") == ring_point("abc")

    def test_64_bit_range(self):
        for key in ("", "abc", "repro-shard:0:0", "x" * 100):
            assert 0 <= ring_point(key) < 2**64

    def test_distinct_keys_distinct_points(self):
        points = {ring_point(f"key-{i}") for i in range(1000)}
        assert len(points) == 1000


class TestShardRouter:
    def test_invalid_parameters(self):
        with pytest.raises(ServiceError):
            ShardRouter(0)
        with pytest.raises(ServiceError):
            ShardRouter(2, replicas=0)

    def test_single_shard_owns_everything(self):
        router = ShardRouter(1)
        assert all(
            router.shard_for(f"job-{i}") == 0 for i in range(100)
        )

    def test_deterministic_across_instances(self):
        a, b = ShardRouter(4), ShardRouter(4)
        keys = [f"job-{i}" for i in range(500)]
        assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]

    def test_returns_valid_indices(self):
        router = ShardRouter(3)
        owners = {router.shard_for(f"job-{i}") for i in range(2000)}
        assert owners == {0, 1, 2}

    def test_balance_within_factor_of_fair_share(self):
        shards = 4
        router = ShardRouter(shards)
        counts = [0] * shards
        n = 20_000
        for i in range(n):
            counts[router.shard_for(f"job-{i}")] += 1
        fair = n / shards
        for count in counts:
            assert 0.5 * fair <= count <= 1.6 * fair, counts

    def test_consistency_under_fleet_growth(self):
        """Growing N -> N+1 only moves keys won by the new shard."""
        before, after = ShardRouter(3), ShardRouter(4)
        moved = 0
        n = 5000
        for i in range(n):
            key = f"job-{i}"
            old, new = before.shard_for(key), after.shard_for(key)
            if old != new:
                moved += 1
                assert new == 3  # keys only ever move TO the new shard
        # A classic ring moves ~1/(N+1) of the keys; allow generous slop.
        assert moved <= 0.45 * n


def _normalized(scenario_id: int, separation: float) -> dict:
    request, _ = normalize_plan_request({
        "scenario_ids": [scenario_id],
        "separation_factor": separation,
        "methods": ["ours (a)"],
        "foi_target_points": 50,
        "lloyd_grid_target": 100,
        "resolution": 8,
    })
    return request


#: 4 unique requests, each submitted 4 times = the PR-3 e2e matrix.
_POOL = [
    _normalized(1, 5.0),
    _normalized(2, 5.0),
    _normalized(4, 10.0),
    _normalized(5, 10.0),
]
_SUBMISSIONS = [i for i in range(4) for _ in range(4)]


def _echo_runner(request):
    """Deterministic stand-in for the planner (pure function of input)."""
    return {"echo": request, "format_version": 1}


def _run_fleet(service_workers: int, order) -> tuple[dict, int, int]:
    """Submit the matrix in the given order; return (results, solved, dedup).

    Drives the real ShardRouter -> JobQueue -> ExecutorBridge stack
    (the HTTP thread is irrelevant to routing, so it stays down).
    """
    svc = PlanningService(
        port=0,
        service_workers=service_workers,
        dispatchers=2,
        runner=_echo_runner,
    )
    for shard in svc.shards:
        shard.bridge.start()
    try:
        job_ids = []
        # The HTTP layer submits under the service's metrics registry;
        # direct submission must activate it the same way for the
        # dedup counter to land there.
        with activate_metrics(svc.metrics):
            for index in order:
                request = _POOL[index]
                shard = svc._shard_for(job_id_for(request))
                job, _created = shard.queue.submit(request)
                job_ids.append(job.job_id)
        assert len(set(job_ids)) == len(_POOL)
        deadline = time.monotonic() + 30.0
        results = {}
        for job_id in set(job_ids):
            queue = svc._shard_for(job_id).queue
            while True:
                job = queue.get(job_id)
                if job is not None and job.terminal:
                    assert job.state == "done", job.error
                    results[job_id] = job.result
                    break
                if time.monotonic() > deadline:
                    raise AssertionError(f"job {job_id} never finished")
                time.sleep(0.005)
        snapshot = svc.metrics.snapshot()
        solved = snapshot["service.jobs.solved"]["value"]
        dedup = snapshot.get("service.jobs.deduplicated", {}).get("value", 0)
        return results, solved, dedup
    finally:
        for shard in svc.shards:
            shard.bridge.stop(drain=False, timeout=5.0)


class TestRoutingInvariantDedup:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(order=st.permutations(_SUBMISSIONS))
    def test_any_worker_count_any_order_same_bytes_one_solve_each(
        self, order
    ):
        reference = None
        for service_workers in (1, 2, 4):
            results, solved, dedup = _run_fleet(service_workers, order)
            assert solved == len(_POOL)
            assert dedup == len(_SUBMISSIONS) - len(_POOL)
            if reference is None:
                reference = results
            else:
                assert results == reference  # byte-identical documents

    def test_results_match_direct_runner_output(self):
        results, solved, _dedup = _run_fleet(2, _SUBMISSIONS)
        assert solved == len(_POOL)
        for request in _POOL:
            job_id = job_id_for(request)
            assert results[job_id] == dumps_canonical(_echo_runner(request))

    def test_concurrent_submitters_race_to_one_creator(self):
        """16 threads submitting 4 uniques on a 4-shard fleet: exactly
        one creator per unique, regardless of interleaving."""
        svc = PlanningService(
            port=0, service_workers=4, dispatchers=2, runner=_echo_runner
        )
        for shard in svc.shards:
            shard.bridge.start()
        try:
            created_flags = []
            lock = threading.Lock()

            def submit(index):
                request = _POOL[index]
                shard = svc._shard_for(job_id_for(request))
                _job, created = shard.queue.submit(request)
                with lock:
                    created_flags.append((index, created))

            threads = [
                threading.Thread(target=submit, args=(i,))
                for i in _SUBMISSIONS
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10.0)
            assert len(created_flags) == len(_SUBMISSIONS)
            for index in range(len(_POOL)):
                creators = [
                    created
                    for i, created in created_flags
                    if i == index and created
                ]
                assert len(creators) == 1
        finally:
            for shard in svc.shards:
                shard.bridge.stop(drain=False, timeout=5.0)
