"""Tests for Delaunay builders and FoI triangulation."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.foi import m2_scenario3, m2_scenario5
from repro.mesh import delaunay_mesh, delaunay_with_max_edge, triangulate_foi


class TestDelaunayMesh:
    def test_too_few_points(self):
        with pytest.raises(MeshError):
            delaunay_mesh([[0, 0], [1, 1]])

    def test_collinear_fails(self):
        with pytest.raises(MeshError):
            delaunay_mesh([[0, 0], [1, 0], [2, 0], [3, 0]])

    def test_grid_triangulation_covers_area(self, rng):
        pts = rng.uniform(0, 10, (60, 2))
        mesh = delaunay_mesh(pts)
        # Delaunay of a point set triangulates its convex hull.
        from scipy.spatial import ConvexHull

        assert mesh.triangle_areas().sum() == pytest.approx(
            ConvexHull(pts).volume, rel=1e-9
        )

    def test_all_points_used(self, rng):
        pts = rng.uniform(0, 10, (40, 2))
        mesh = delaunay_mesh(pts)
        assert set(np.unique(mesh.triangles)) == set(range(40))


class TestDelaunayMaxEdge:
    def test_long_edges_removed(self):
        # Two clusters far apart: no triangle may span the gap.
        left = np.array([[0, 0], [1, 0], [0.5, 1], [1.5, 1]])
        right = left + [100.0, 0.0]
        mesh, vmap = delaunay_with_max_edge(np.vstack([left, right]), max_edge=3.0)
        assert mesh.edge_lengths().max() <= 3.0
        # Only one cluster survives (largest component).
        assert mesh.vertex_count == 4

    def test_impossible_bound_raises(self):
        pts = np.array([[0, 0], [10, 0], [0, 10], [10, 10]])
        with pytest.raises(MeshError):
            delaunay_with_max_edge(pts, max_edge=1.0)

    def test_vertex_map_identity_when_nothing_dropped(self, rng):
        pts = rng.uniform(0, 5, (30, 2))
        mesh, vmap = delaunay_with_max_edge(pts, max_edge=100.0)
        assert np.array_equal(vmap, np.arange(30))
        assert np.allclose(mesh.vertices, pts)


class TestTriangulateFoi:
    def test_plain_foi(self, square_foi):
        fm = triangulate_foi(square_foi, target_points=200)
        assert fm.mesh.is_topological_disk()
        assert fm.mesh.triangle_areas().sum() == pytest.approx(
            square_foi.area, rel=0.05
        )

    def test_holed_foi_boundary_loops(self, holed_foi):
        fm = triangulate_foi(holed_foi, target_points=250)
        assert len(fm.mesh.boundary_loops) == 2
        assert fm.mesh.is_connected()

    def test_triangles_inside_free_region(self, holed_foi):
        fm = triangulate_foi(holed_foi, target_points=250)
        a = fm.mesh.vertices[fm.mesh.triangles[:, 0]]
        b = fm.mesh.vertices[fm.mesh.triangles[:, 1]]
        c = fm.mesh.vertices[fm.mesh.triangles[:, 2]]
        centroids = (a + b + c) / 3.0
        assert holed_foi.contains(centroids).all()

    def test_multi_hole_scenario(self):
        foi = m2_scenario5()
        fm = triangulate_foi(foi, target_points=450)
        assert len(fm.mesh.boundary_loops) == 1 + len(foi.holes)

    def test_concave_hole_scenario(self):
        foi = m2_scenario3()
        fm = triangulate_foi(foi, target_points=450)
        assert len(fm.mesh.boundary_loops) == 2
        assert fm.mesh.triangle_areas().sum() == pytest.approx(foi.area, rel=0.08)

    def test_vertex_map_consistent(self, square_foi):
        fm = triangulate_foi(square_foi, target_points=200)
        assert np.allclose(
            fm.mesh.vertices, fm.point_set.points[fm.vertex_map]
        )
