"""Robot, swarm, and motion models."""

from repro.robots.motion import SwarmTrajectory, TimedPath
from repro.robots.robot import SQRT3, RadioSpec, Robot
from repro.robots.swarm import Swarm
from repro.robots.transition import (
    DEFAULT_TRANSITION_TIME,
    detoured_transition,
    stepwise_trajectory,
    straight_transition,
)

__all__ = [
    "DEFAULT_TRANSITION_TIME",
    "RadioSpec",
    "Robot",
    "SQRT3",
    "Swarm",
    "SwarmTrajectory",
    "TimedPath",
    "detoured_transition",
    "stepwise_trajectory",
    "straight_transition",
]
