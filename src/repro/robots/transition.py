"""Building swarm trajectories for FoI transitions.

Helpers that turn per-robot start/target pairs into a synchronous
:class:`~repro.robots.motion.SwarmTrajectory`, inserting hole detours
where a straight path would cross forbidden terrain (Sec. III-D3) and
supporting the "parallel escort" paths used by the connectivity repair
of Sec. III-D1.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PlanningError
from repro.foi.detour import detour_path_holes, path_blocked_by_holes
from repro.foi.region import FieldOfInterest
from repro.geometry.vec import as_points
from repro.robots.motion import SwarmTrajectory, TimedPath

__all__ = [
    "straight_transition",
    "detoured_transition",
    "stepwise_trajectory",
]

DEFAULT_TRANSITION_TIME = 1.0


def straight_transition(
    starts, targets, t_start: float = 0.0, t_end: float = DEFAULT_TRANSITION_TIME
) -> SwarmTrajectory:
    """Straight-line synchronous transition (Eqn. 2 of the paper)."""
    p = as_points(starts)
    q = as_points(targets)
    if len(p) != len(q):
        raise PlanningError("start/target count mismatch")
    paths = [
        TimedPath.constant_speed(np.vstack([a, b]), t_start, t_end)
        for a, b in zip(p, q)
    ]
    return SwarmTrajectory(paths, t_start, t_end)


def detoured_transition(
    starts,
    targets,
    target_foi: FieldOfInterest | None = None,
    t_start: float = 0.0,
    t_end: float = DEFAULT_TRANSITION_TIME,
    source_foi: FieldOfInterest | None = None,
) -> SwarmTrajectory:
    """Synchronous transition with hole detours (Sec. III-D3).

    Robots whose straight path crosses a hole of the target FoI - or of
    the source FoI they are leaving, when given - follow the hole
    boundary per the paper's rule.

    Parameters
    ----------
    starts, targets : (n, 2) array-like
    target_foi : FieldOfInterest, optional
        When both FoIs are omitted or hole-free this degrades to
        :func:`straight_transition`.
    source_foi : FieldOfInterest, optional
        The FoI being left; its holes are avoided too (relevant for the
        hole-to-hole scenarios where robots start around obstacles).
    """
    p = as_points(starts)
    q = as_points(targets)
    if len(p) != len(q):
        raise PlanningError("start/target count mismatch")
    holes = []
    areas = []
    for foi in (target_foi, source_foi):
        if foi is not None and foi.has_holes:
            holes.extend(foi.holes)
            areas.append(foi.area)
    if not holes:
        return straight_transition(p, q, t_start, t_end)
    margin = 1e-3 * max(1.0, float(np.sqrt(max(areas))))
    paths = []
    for a, b in zip(p, q):
        if path_blocked_by_holes(holes, a, b) is None:
            waypoints = np.vstack([a, b])
        else:
            waypoints = detour_path_holes(holes, a, b, margin=margin)
        paths.append(TimedPath.constant_speed(waypoints, t_start, t_end))
    return SwarmTrajectory(paths, t_start, t_end)


def stepwise_trajectory(
    step_positions, t_start: float = 0.0, t_end: float = DEFAULT_TRANSITION_TIME
) -> SwarmTrajectory:
    """Trajectory through a sequence of synchronous swarm snapshots.

    Used for the Lloyd adjustment phase: every robot moves linearly
    from its position in step ``k`` to its position in step ``k + 1``,
    with all robots synchronised at the step boundaries.

    Parameters
    ----------
    step_positions : sequence of (n, 2) arrays
        At least one snapshot; all with the same robot count.
    """
    steps = [as_points(s) for s in step_positions]
    if not steps:
        raise PlanningError("need at least one snapshot")
    n = len(steps[0])
    if any(len(s) != n for s in steps):
        raise PlanningError("snapshots have inconsistent robot counts")
    if len(steps) == 1:
        times = [t_start]
    else:
        times = np.linspace(t_start, t_end, len(steps))
    paths = []
    for i in range(n):
        waypoints = np.array([s[i] for s in steps])
        if len(steps) == 1:
            paths.append(TimedPath(waypoints[:1], [t_start]))
        else:
            paths.append(TimedPath(waypoints, times))
    return SwarmTrajectory(paths, t_start, t_end)
