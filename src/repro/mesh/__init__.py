"""Triangle-mesh substrate: structure, Delaunay builders, quality, holes."""

from repro.mesh.delaunay import (
    FoiMesh,
    delaunay_mesh,
    delaunay_with_max_edge,
    triangulate_foi,
)
from repro.mesh.holes import FilledMesh, fill_holes
from repro.mesh.repairs import remove_pinches, vertex_fans
from repro.mesh.quality import (
    QualityReport,
    min_angle,
    orientation_signs,
    quality_report,
    triangle_angles,
)
from repro.mesh.trimesh import TriMesh, edges_of_triangles

__all__ = [
    "FilledMesh",
    "FoiMesh",
    "QualityReport",
    "TriMesh",
    "delaunay_mesh",
    "delaunay_with_max_edge",
    "edges_of_triangles",
    "fill_holes",
    "min_angle",
    "orientation_signs",
    "quality_report",
    "remove_pinches",
    "vertex_fans",
    "triangle_angles",
    "triangulate_foi",
]
