"""Tests for FieldOfInterest: containment, areas, projection, sampling."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.foi import FieldOfInterest, ellipse_polygon
from repro.geometry import Polygon

OUTER = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])


def small_hole(cx=5.0, cy=5.0, r=1.5):
    return ellipse_polygon(r, r, samples=16, center=(cx, cy))


class TestConstruction:
    def test_plain_region(self):
        foi = FieldOfInterest(OUTER, name="test")
        assert foi.area == pytest.approx(100.0)
        assert not foi.has_holes

    def test_hole_subtracts_area(self):
        hole = small_hole()
        foi = FieldOfInterest(OUTER, [hole])
        assert foi.area == pytest.approx(100.0 - hole.area)

    def test_hole_outside_rejected(self):
        with pytest.raises(GeometryError):
            FieldOfInterest(OUTER, [small_hole(cx=20.0)])

    def test_accepts_raw_vertex_arrays(self):
        foi = FieldOfInterest([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert foi.area == pytest.approx(16.0)


class TestContainment:
    def test_inside_free_region(self):
        foi = FieldOfInterest(OUTER, [small_hole()])
        assert foi.contains([1.0, 1.0])

    def test_inside_hole_excluded(self):
        foi = FieldOfInterest(OUTER, [small_hole()])
        assert not foi.contains([5.0, 5.0])

    def test_outside_outer(self):
        foi = FieldOfInterest(OUTER, [small_hole()])
        assert not foi.contains([20.0, 5.0])

    def test_vectorised(self):
        foi = FieldOfInterest(OUTER, [small_hole()])
        out = foi.contains([[1, 1], [5, 5], [20, 5]])
        assert out.tolist() == [True, False, False]

    def test_hole_containing(self):
        foi = FieldOfInterest(OUTER, [small_hole(3, 3, 1.0), small_hole(7, 7, 1.0)])
        assert foi.hole_containing([3.0, 3.0]) == 0
        assert foi.hole_containing([7.0, 7.0]) == 1
        assert foi.hole_containing([5.0, 5.0]) is None


class TestCentroid:
    def test_plain_centroid(self):
        foi = FieldOfInterest(OUTER)
        assert np.allclose(foi.centroid, [5.0, 5.0])

    def test_hole_shifts_centroid_away(self):
        foi = FieldOfInterest(OUTER, [small_hole(cx=8.0, cy=5.0)])
        assert foi.centroid[0] < 5.0  # mass removed on the right


class TestDistances:
    def test_boundary_distance_interior(self):
        foi = FieldOfInterest(OUTER)
        assert foi.boundary_distance([5.0, 5.0]) == pytest.approx(5.0)

    def test_hole_boundary_is_boundary(self):
        foi = FieldOfInterest(OUTER, [small_hole()])
        assert foi.boundary_distance([5.0, 7.0]) < 1.0

    def test_hole_distance_without_holes_is_inf(self):
        foi = FieldOfInterest(OUTER)
        assert foi.hole_distance([5.0, 5.0]) == np.inf

    def test_vectorised_matches_scalar(self, rng):
        foi = FieldOfInterest(OUTER, [small_hole()])
        pts = rng.uniform(0, 10, (15, 2))
        vec = foi.boundary_distances(pts)
        for p, d in zip(pts, vec):
            assert d == pytest.approx(foi.boundary_distance(p))


class TestProjection:
    def test_inside_point_unchanged(self):
        foi = FieldOfInterest(OUTER, [small_hole()])
        p = foi.project_inside([2.0, 2.0])
        assert np.allclose(p, [2.0, 2.0])

    def test_point_in_hole_pushed_out(self):
        foi = FieldOfInterest(OUTER, [small_hole()])
        p = foi.project_inside([5.0, 5.2])
        assert foi.contains(p)
        # Stays near the hole boundary, not teleported across the region.
        assert np.hypot(p[0] - 5.0, p[1] - 5.0) < 2.5

    def test_point_outside_outer_pulled_in(self):
        foi = FieldOfInterest(OUTER)
        p = foi.project_inside([15.0, 5.0])
        assert foi.contains(p)
        assert p[0] <= 10.0 + 1e-6


class TestSampling:
    def test_grid_points_exclude_holes(self):
        foi = FieldOfInterest(OUTER, [small_hole()])
        pts = foi.grid_points(0.5)
        assert len(pts) > 100
        assert foi.contains(pts).all()

    def test_random_sampling_inside(self, rng):
        foi = FieldOfInterest(OUTER, [small_hole()])
        pts = foi.sample_free_points(64, rng)
        assert pts.shape == (64, 2)
        assert foi.contains(pts).all()


class TestTransforms:
    def test_translation_moves_everything(self):
        foi = FieldOfInterest(OUTER, [small_hole()])
        moved = foi.translated([100.0, 0.0])
        assert moved.area == pytest.approx(foi.area)
        assert np.allclose(moved.centroid, foi.centroid + [100.0, 0.0])
        assert moved.contains([101.0, 1.0])

    def test_scaled_to_area_free_area(self):
        foi = FieldOfInterest(OUTER, [small_hole()])
        scaled = foi.scaled_to_area(500.0)
        assert scaled.area == pytest.approx(500.0)
        assert len(scaled.holes) == 1

    def test_boundary_polylines_count(self):
        foi = FieldOfInterest(OUTER, [small_hole(3, 3, 1.0), small_hole(7, 7, 1.0)])
        assert len(foi.boundary_polylines()) == 3
