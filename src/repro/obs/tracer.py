"""Nestable wall-time spans with attributes (the tracing half of obs).

A :class:`Tracer` records a tree of *spans*: named intervals of wall
time with arbitrary key/value attributes, opened and closed with a
context manager::

    tracer = Tracer()
    with activate(tracer):
        with span("harmonic.solve_linear", vertices=600) as sp:
            ...
            sp.set("nnz", nnz)

Instrumented library code never holds a tracer reference; it calls the
module-level :func:`span`, which routes to the *ambient* tracer held in
a :class:`contextvars.ContextVar`.  The default ambient tracer is a
:class:`NullTracer` whose ``span`` returns a shared no-op context
manager, so un-activated instrumentation costs one attribute lookup
and one call per span - negligible against the numerical work inside.

Span naming convention: dotted ``<layer>.<operation>`` names, e.g.
``plan.rotation_search``, ``harmonic.solve_linear``,
``distributed.flood_aggregate``.  The planner's Fig. 2 stages all live
under the ``plan.`` prefix so phase reports group naturally.
"""

from __future__ import annotations

import contextvars
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "SpanRecord",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "activate",
    "span",
]


@dataclass
class SpanRecord:
    """One finished (or still-open) span.

    Attributes
    ----------
    name : str
        Dotted span name.
    span_id : int
        Unique within the owning tracer, assigned in start order.
    parent_id : int or None
        ``span_id`` of the enclosing span, None at the root.
    depth : int
        Nesting depth (0 for root spans).
    t_start : float
        Seconds since the tracer's epoch (its construction instant).
    duration_s : float or None
        Wall-clock duration; None while the span is still open.
    attributes : dict
        Key/value pairs attached via :meth:`Span.set`.
    """

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    t_start: float
    duration_s: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (the JSONL sink's span payload)."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "t_start": self.t_start,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
        }


class Span:
    """Live handle to an open span; supports attaching attributes."""

    __slots__ = ("_record",)

    def __init__(self, record: SpanRecord) -> None:
        self._record = record

    @property
    def name(self) -> str:
        return self._record.name

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute (values should be JSON-serialisable)."""
        self._record.attributes[str(key)] = value
        return self

    def set_attributes(self, **attrs: Any) -> "Span":
        """Attach several attributes at once."""
        for k, v in attrs.items():
            self._record.attributes[k] = v
        return self


class _NullSpan:
    """No-op stand-in for :class:`Span` under the null tracer."""

    __slots__ = ()
    name = ""

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def set_attributes(self, **attrs: Any) -> "_NullSpan":
        return self


class _NullSpanContext:
    """Reusable no-op context manager; ``span()`` under NullTracer."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """Disabled tracer: every span is a shared no-op context manager."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def get_trace(self) -> list[SpanRecord]:
        return []

    def span_names(self) -> list[str]:
        return []

    def absorb_records(
        self, records: list[dict], task_index: int | None = None
    ) -> None:
        """Dropped - there is no trace to absorb into."""


NULL_TRACER = NullTracer()


class Tracer:
    """Records nested spans with wall time, call counts and attributes.

    Parameters
    ----------
    sink : object, optional
        Anything with an ``emit(record: dict)`` method (e.g.
        :class:`repro.obs.sink.JsonlSink`); each span is emitted when it
        closes.

    Notes
    -----
    The span stack lives in a :class:`contextvars.ContextVar`, so
    nesting is tracked correctly per thread / async task; the record
    list is guarded by a lock for concurrent writers.
    """

    enabled = True

    def __init__(self, sink: Any = None) -> None:
        self.sink = sink
        self._epoch = time.perf_counter()
        self._records: list[SpanRecord] = []
        self._counts: dict[str, int] = {}
        self._totals: dict[str, float] = {}
        self._next_id = 0
        self._lock = threading.Lock()
        self._stack: contextvars.ContextVar[tuple[SpanRecord, ...]] = (
            contextvars.ContextVar(f"repro_span_stack_{id(self)}", default=())
        )

    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; yields a :class:`Span` handle."""
        stack = self._stack.get()
        parent = stack[-1] if stack else None
        t0 = time.perf_counter()
        with self._lock:
            record = SpanRecord(
                name=str(name),
                span_id=self._next_id,
                parent_id=None if parent is None else parent.span_id,
                depth=len(stack),
                t_start=t0 - self._epoch,
                attributes=dict(attrs),
            )
            self._next_id += 1
            self._records.append(record)
        token = self._stack.set(stack + (record,))
        try:
            yield Span(record)
        finally:
            self._stack.reset(token)
            duration = time.perf_counter() - t0
            with self._lock:
                record.duration_s = duration
                self._counts[record.name] = self._counts.get(record.name, 0) + 1
                self._totals[record.name] = (
                    self._totals.get(record.name, 0.0) + duration
                )
            if self.sink is not None:
                self.sink.emit(record.to_dict())

    # ------------------------------------------------------------------

    def absorb_records(
        self, records: list[dict], task_index: int | None = None
    ) -> None:
        """Fold span dicts recorded by a *worker* tracer into this one.

        Used by :class:`repro.exec.ParallelMap` to merge per-task
        traces back into the parent: span ids are remapped to fresh
        local ids (parent links within the batch are preserved), names
        and durations feed :meth:`phase_timings` exactly like locally
        recorded spans, and each absorbed span is emitted to the sink.
        ``t_start`` stays relative to the *worker's* epoch; the
        ``task_index`` attribute identifies the originating task.

        Call once per task in task order - that keeps the merged trace
        deterministic regardless of worker scheduling.
        """
        absorbed: list[SpanRecord] = []
        with self._lock:
            id_map: dict[Any, int] = {}
            for rec in records:
                new_id = self._next_id
                self._next_id += 1
                id_map[rec.get("span_id")] = new_id
                attributes = dict(rec.get("attributes") or {})
                if task_index is not None:
                    attributes["task_index"] = task_index
                attributes.setdefault("origin", "exec.worker")
                record = SpanRecord(
                    name=str(rec.get("name", "")),
                    span_id=new_id,
                    parent_id=id_map.get(rec.get("parent_id")),
                    depth=int(rec.get("depth", 0)),
                    t_start=float(rec.get("t_start", 0.0)),
                    duration_s=rec.get("duration_s"),
                    attributes=attributes,
                )
                self._records.append(record)
                if record.duration_s is not None:
                    self._counts[record.name] = (
                        self._counts.get(record.name, 0) + 1
                    )
                    self._totals[record.name] = (
                        self._totals.get(record.name, 0.0) + record.duration_s
                    )
                absorbed.append(record)
        if self.sink is not None:
            for record in absorbed:
                self.sink.emit(record.to_dict())

    def get_trace(self) -> list[SpanRecord]:
        """All recorded spans, in start order."""
        with self._lock:
            return list(self._records)

    def span_names(self) -> list[str]:
        """Span names in start order (handy for order assertions)."""
        with self._lock:
            return [r.name for r in self._records]

    def call_count(self, name: str) -> int:
        """How many spans with ``name`` have *finished*."""
        with self._lock:
            return self._counts.get(name, 0)

    def phase_timings(self) -> dict[str, dict[str, float]]:
        """Aggregate finished spans by name.

        Returns
        -------
        dict
            ``{name: {"calls": int, "total_s": float, "mean_s": float}}``
            sorted by descending total time.
        """
        with self._lock:
            items = [
                (name, self._counts[name], self._totals.get(name, 0.0))
                for name in self._counts
            ]
        items.sort(key=lambda kv: -kv[2])
        return {
            name: {
                "calls": calls,
                "total_s": total,
                "mean_s": total / calls if calls else 0.0,
            }
            for name, calls, total in items
        }


# ----------------------------------------------------------------------
# Ambient tracer: instrumented code calls ``span(...)`` and whatever
# tracer is active receives it; the default is the no-op tracer.

_ACTIVE: contextvars.ContextVar[Tracer | NullTracer] = contextvars.ContextVar(
    "repro_active_tracer", default=NULL_TRACER
)


def get_tracer() -> Tracer | NullTracer:
    """The currently active (ambient) tracer."""
    return _ACTIVE.get()


def set_tracer(tracer: Tracer | NullTracer | None) -> None:
    """Install ``tracer`` as the ambient tracer (None restores no-op)."""
    _ACTIVE.set(tracer if tracer is not None else NULL_TRACER)


@contextmanager
def activate(tracer: Tracer | NullTracer | None) -> Iterator[Tracer | NullTracer]:
    """Scope ``tracer`` as the ambient tracer for a ``with`` block."""
    resolved = tracer if tracer is not None else NULL_TRACER
    token = _ACTIVE.set(resolved)
    try:
        yield resolved
    finally:
        _ACTIVE.reset(token)


def span(name: str, **attrs: Any):
    """Open a span on the ambient tracer (no-op when tracing is off)."""
    return _ACTIVE.get().span(name, **attrs)
