"""Mesh repairs: making extracted triangulations manifold.

A Delaunay-restricted-to-links triangulation of an irregular swarm
(e.g. robots strung out mid-march) can be *pinched*: two triangle fans
touching at a single vertex, giving that vertex four boundary edges.
Harmonic mapping needs a manifold disk, so the planner cleans such
meshes first: at every pinched vertex only the largest fan survives,
then the largest connected component is kept.  Dropped triangles only
ever remove stragglers, which the planner escorts (same treatment as
robots outside the triangulation entirely).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MeshError
from repro.mesh.trimesh import TriMesh

__all__ = ["remove_pinches", "vertex_fans"]

_MAX_PASSES = 50


def vertex_fans(mesh: TriMesh, vertex: int) -> list[list[int]]:
    """Groups of ``vertex``'s incident triangles connected via shared edges.

    Two incident triangles belong to the same fan when they share an
    edge that contains ``vertex``.  A manifold vertex has exactly one
    fan; a pinched vertex has several.
    """
    incident = mesh.vertex_triangles[vertex]
    if not incident:
        return []
    # Map: other-vertex -> triangles using edge (vertex, other).
    by_edge: dict[int, list[int]] = {}
    for t in incident:
        for u in mesh.triangles[t]:
            u = int(u)
            if u != vertex:
                by_edge.setdefault(u, []).append(t)
    # Union triangles sharing an edge at `vertex`.
    parent = {t: t for t in incident}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for tris in by_edge.values():
        for other in tris[1:]:
            ra, rb = find(tris[0]), find(other)
            if ra != rb:
                parent[rb] = ra
    fans: dict[int, list[int]] = {}
    for t in incident:
        fans.setdefault(find(t), []).append(t)
    return sorted(fans.values(), key=len, reverse=True)


def remove_pinches(mesh: TriMesh) -> tuple[TriMesh, np.ndarray]:
    """Drop minority fans at pinched vertices until the mesh is manifold.

    Returns
    -------
    (TriMesh, (k,) int ndarray)
        The repaired mesh (largest component) and, per vertex, the
        index of the originating vertex.

    Raises
    ------
    MeshError
        If repair degenerates to an empty mesh.
    """
    current = mesh
    vmap = np.arange(mesh.vertex_count)
    for _ in range(_MAX_PASSES):
        # Find pinched vertices: more than one incident fan.
        drop: set[int] = set()
        for v in range(current.vertex_count):
            fans = vertex_fans(current, v)
            if len(fans) > 1:
                for fan in fans[1:]:
                    drop.update(fan)
        if not drop:
            sub, sub_map = current.largest_component()
            return sub, vmap[sub_map]
        keep = [t for t in range(current.triangle_count) if t not in drop]
        if not keep:
            raise MeshError("pinch removal emptied the mesh")
        current, step_map = current.submesh(keep)
        vmap = vmap[step_map]
    raise MeshError("pinch removal did not converge")
