"""Coverage control: Voronoi cells, Lloyd adjustment, densities, lattices."""

from repro.coverage.density import (
    DensityFunction,
    gaussian_hotspot_density,
    hole_proximity_density,
    uniform_density,
    validate_density,
)
from repro.coverage.lattice import lattice_positions, optimal_coverage_positions
from repro.coverage.lloyd import LloydConfig, LloydResult, lloyd_iteration, run_lloyd
from repro.coverage.metrics import (
    coverage_fraction,
    density_concentration,
    kershner_bound,
    nearest_robot_distances,
)
from repro.coverage.voronoi import (
    cell_area,
    cell_centroid,
    clipped_voronoi_cells,
    voronoi_cell,
    voronoi_cells,
)

__all__ = [
    "DensityFunction",
    "LloydConfig",
    "LloydResult",
    "cell_area",
    "cell_centroid",
    "clipped_voronoi_cells",
    "coverage_fraction",
    "density_concentration",
    "gaussian_hotspot_density",
    "hole_proximity_density",
    "kershner_bound",
    "lattice_positions",
    "lloyd_iteration",
    "nearest_robot_distances",
    "optimal_coverage_positions",
    "run_lloyd",
    "uniform_density",
    "validate_density",
    "voronoi_cell",
    "voronoi_cells",
]
