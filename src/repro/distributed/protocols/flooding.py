"""Flooding-based aggregation (used by the rotation-angle search).

In Sec. III-B every robot computes its own stable-link count for a
candidate rotation angle and "floods the information to other mobile
robots" so all robots agree on the aggregate score.  This module
implements that pattern: each node contributes a value; after the
protocol, every node knows the sum (or min/max) over all contributions.

The implementation floods ``(origin, value)`` records with duplicate
suppression, which terminates within diameter-many rounds and delivers
every record to every node on a connected topology.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ProtocolError
from repro.distributed.runtime import Node, NodeApi, SyncNetwork
from repro.obs import span

__all__ = ["FloodSumNode", "flood_aggregate"]


class FloodSumNode(Node):
    """Node that floods its value and collects everyone else's.

    Parameters
    ----------
    node_id : int
    value : float
        This node's contribution to the aggregate.
    expected_count : int
        Total number of participants; the node halts once it holds a
        record from each.
    """

    def __init__(self, node_id: int, value: float, expected_count: int) -> None:
        super().__init__(node_id)
        self.state["records"] = {node_id: float(value)}
        self._expected = int(expected_count)

    def on_start(self, api: NodeApi) -> None:
        api.broadcast("record", (self.node_id, self.state["records"][self.node_id]))
        if self._expected == 1:
            self.halt()

    def on_round(self, api: NodeApi, inbox) -> None:
        records = self.state["records"]
        fresh = []
        for msg in inbox:
            origin, value = msg.payload
            if origin not in records:
                records[origin] = value
                fresh.append((origin, value))
        for rec in fresh:
            api.broadcast("record", rec)
        if len(records) >= self._expected:
            self.halt()

    @property
    def total(self) -> float:
        return float(sum(self.state["records"].values()))


def flood_aggregate(
    values,
    adjacency,
    combine: Callable[[list[float]], float] = sum,
    max_rounds: int | None = None,
) -> list[float]:
    """Every node floods its value; return each node's combined view.

    Parameters
    ----------
    values : sequence of float
        Per-node contributions.
    adjacency : sequence of sequences
        Connected communication topology.
    combine : callable
        Aggregation over the collected values (default: sum).
    max_rounds : int, optional
        Livelock guard; defaults to ``2 * n + 4`` rounds.

    Returns
    -------
    list of float
        ``combine`` over all contributions, from each node's own
        records (identical across nodes when the topology is
        connected).

    Raises
    ------
    ProtocolError
        If some node failed to collect all records (disconnected
        topology).
    """
    n = len(values)
    nodes = [FloodSumNode(i, float(values[i]), n) for i in range(n)]
    net = SyncNetwork(nodes, adjacency)
    with span("distributed.flood_aggregate", nodes=n) as sp_:
        rounds = net.run(max_rounds=max_rounds or (2 * n + 4))
        sp_.set_attributes(rounds=rounds, delivered=net.delivered_messages)
    out = []
    for node in nodes:
        if len(node.state["records"]) != n:
            raise ProtocolError(
                f"node {node.node_id} collected {len(node.state['records'])}/{n} "
                "records; topology disconnected?"
            )
        out.append(float(combine(list(node.state["records"].values()))))
    return out
