"""Tests for the SVG canvas and figure renderers."""

import numpy as np
import pytest

from repro.foi import FieldOfInterest, ellipse_polygon
from repro.network import LinkTable
from repro.viz import SvgCanvas, render_deployment, render_disk_map, render_mesh
from repro.mesh import delaunay_mesh


class TestSvgCanvas:
    def test_document_structure(self):
        canvas = SvgCanvas((0, 0, 10, 10), width=200)
        canvas.circle([5, 5])
        canvas.line([0, 0], [10, 10])
        canvas.polygon([[0, 0], [10, 0], [5, 10]])
        canvas.polyline([[0, 0], [5, 5], [10, 0]])
        canvas.text([1, 1], "hello <&>")
        doc = canvas.to_string()
        assert doc.startswith("<svg")
        assert doc.count("<circle") == 1
        assert doc.count("<line") == 1
        assert "&lt;" in doc and "&amp;" in doc

    def test_y_axis_flipped(self):
        canvas = SvgCanvas((0, 0, 10, 10), width=120, margin=10)
        _, y_low = canvas.to_screen([5, 0])
        _, y_high = canvas.to_screen([5, 10])
        assert y_high < y_low  # larger world-y is higher on screen

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            SvgCanvas((0, 0, 0, 10))

    def test_save(self, tmp_path):
        canvas = SvgCanvas((0, 0, 1, 1))
        out = canvas.save(tmp_path / "fig" / "test.svg")
        assert out.exists()
        assert out.read_text().startswith("<svg")


class TestRenderers:
    def test_render_deployment_link_colors(self, tmp_path):
        foi = FieldOfInterest([(0, 0), (10, 0), (10, 10), (0, 10)])
        pos = np.array([[2.0, 5.0], [5.0, 5.0], [8.0, 5.0]])
        links = LinkTable.from_positions(pos, 3.5)
        doc = render_deployment(
            foi, pos, 3.5, initial_links=links.links,
            path=tmp_path / "dep.svg",
        )
        assert "#1f77b4" in doc  # preserved links drawn blue
        assert (tmp_path / "dep.svg").exists()

    def test_render_deployment_new_links_red(self):
        foi = FieldOfInterest([(0, 0), (10, 0), (10, 10), (0, 10)])
        pos = np.array([[2.0, 5.0], [5.0, 5.0]])
        # No initial links at all: current link must be red.
        doc = render_deployment(
            foi, pos, 4.0, initial_links=np.zeros((0, 2), dtype=int)
        )
        assert "#d62728" in doc

    def test_render_mesh(self, rng):
        mesh = delaunay_mesh(rng.uniform(0, 10, (15, 2)))
        doc = render_mesh(mesh)
        assert doc.count("<line") == len(mesh.edges)
        assert doc.count("<circle") == mesh.vertex_count

    def test_render_disk_map(self, rng):
        mesh = delaunay_mesh(rng.uniform(-0.5, 0.5, (12, 2)))
        doc = render_disk_map(mesh.vertices, mesh.triangles)
        assert doc.count("<circle") == mesh.vertex_count


class TestPipelineFigure:
    def test_six_panels_written(self, tmp_path):
        from repro.coverage import LloydConfig
        from repro.foi import ellipse_polygon as ep
        from repro.marching import MarchingConfig, run_pipeline
        from repro.robots import RadioSpec, Swarm
        from repro.viz import render_pipeline_figure

        radio = RadioSpec.from_comm_range(80.0)
        m1 = FieldOfInterest(
            ep(1.0, 1.0, samples=32).scaled_to_area(100_000.0), name="m1"
        )
        swarm = Swarm.deploy_lattice(m1, 36, radio)
        m2 = FieldOfInterest(
            ep(1.2, 0.9, samples=32).scaled_to_area(90_000.0), name="m2"
        ).translated((900.0, 0.0))
        cfg = MarchingConfig(
            foi_target_points=180, lloyd=LloydConfig(grid_target=600, max_iterations=20)
        )
        stages = run_pipeline(swarm, m2, config=cfg)
        written = render_pipeline_figure(stages, tmp_path, radio.comm_range)
        assert len(written) == 6
        for path in written:
            assert path.exists()
            assert path.read_text().startswith("<svg")
