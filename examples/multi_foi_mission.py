"""A multi-FoI mission: the swarm explores several fields in sequence.

The paper's motivating scenario: "a group of ANRs that are instructed
to explore a number of FoIs.  After they complete a task at current
FoI, they move to the next one."  This example chains three transitions
- including one into a FoI with a concave flower-pond hole - and shows
that the swarm stays globally connected through the entire mission
while preserving most links on every leg.

Run:  python examples/multi_foi_mission.py
"""

from __future__ import annotations

import numpy as np

from repro import MarchingConfig, RadioSpec, Swarm
from repro.foi import m1_base, m2_scenario1, m2_scenario3, m2_scenario2
from repro.marching import MissionPlanner


def main() -> None:
    radio = RadioSpec.from_comm_range(80.0)
    start_foi = m1_base()
    swarm = Swarm.deploy_lattice(start_foi, 100, radio)

    # The mission: three target fields at increasing distances/bearings.
    origin = start_foi.centroid
    targets = [
        foi.translated(origin + offset - foi.centroid)
        for foi, offset in (
            (m2_scenario1(), np.array([1800.0, 0.0])),
            (m2_scenario3(), np.array([3400.0, 1200.0])),
            (m2_scenario2(), np.array([5200.0, 400.0])),
        )
    ]

    print(f"Mission start: {swarm.size} robots on {start_foi.name}\n")
    mission = MissionPlanner(MarchingConfig(method="a"))
    report = mission.run(swarm, targets, source_foi=start_foi)

    for leg in report.legs:
        print(f"Leg {leg.index}: -> {leg.target_name}")
        print(f"  D = {leg.total_distance / 1000:8.1f} km   "
              f"L = {leg.stable_link_ratio:.3f}   "
              f"C = {'Y' if leg.globally_connected else 'N'}   "
              f"escorts = {leg.escort_count}")

    print(f"\nMission complete. Fleet-wide distance: "
          f"{report.total_distance / 1000:.1f} km; every leg connected: "
          f"{report.all_connected}; swarm still connected: "
          f"{report.final_swarm.is_connected()}")


if __name__ == "__main__":
    main()
