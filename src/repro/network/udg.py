"""Unit-disk communication graphs.

Robots are "connected" exactly when their Euclidean distance is at most
the communication range ``r_c`` (disk model, Sec. II).  The
:class:`UnitDiskGraph` snapshot is the basis for neighbour queries,
link bookkeeping and connectivity checks throughout the library.

Edge construction uses a spatial hash (uniform cell grid with cell size
equal to the communication range): only points in the same or adjacent
cells can be within range, so candidate pairs - and therefore time and
memory - scale with the *output* size instead of ``n^2``.  The old
dense-distance-matrix construction survives as
:func:`_udg_edges_bruteforce`, the oracle the property tests compare
against; both return bitwise-identical edge arrays.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.errors import GeometryError
from repro.geometry.vec import as_points, pairwise_distances

__all__ = ["UnitDiskGraph", "udg_edges"]

_EMPTY_EDGES = np.zeros((0, 2), dtype=int)

# Cells are widened by this relative slack so that floating-point
# rounding in ``floor((x - xmin) / cell)`` can never place two points at
# distance <= comm_range more than one cell index apart.
_CELL_SLACK = 1e-9

# Pairs whose squared distance falls within this relative band around
# ``comm_range**2`` are re-tested with the oracle's exact
# ``hypot(dx, dy) <= comm_range`` predicate; everything else is decided
# on the squared distance alone (no sqrt).  The band is far wider than
# the few-ulp disagreement possible between the two predicates.
_BAND = 1e-9


def _udg_edges_bruteforce(positions, comm_range: float) -> np.ndarray:
    """Dense ``O(n^2)`` edge construction (test oracle).

    This is the original implementation: materialises the full pairwise
    distance matrix and masks the upper triangle.  Kept as the ground
    truth the spatial-hash path must match bitwise.
    """
    pts = as_points(positions)
    if comm_range <= 0:
        raise GeometryError("communication range must be positive")
    if len(pts) < 2:
        return _EMPTY_EDGES.copy()
    d = pairwise_distances(pts)
    iu, ju = np.triu_indices(len(pts), k=1)
    mask = d[iu, ju] <= comm_range
    return np.column_stack([iu[mask], ju[mask]]).astype(int)


def _expand_ragged(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat index array ``[s, s+1, .., s+c-1]`` per ``(s, c)`` row."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return np.repeat(starts, counts) + offsets


def _candidate_pairs(pts: np.ndarray, comm_range: float) -> tuple[np.ndarray, np.ndarray]:
    """Index pairs from the cell grid that could be within range.

    Bins points into cells of width ``comm_range`` (plus fp slack) and
    emits every pair sharing a cell plus every pair in half-plane
    neighbouring cells - offsets (0,1), (1,-1), (1,0), (1,1) - so each
    unordered pair appears exactly once.
    """
    n = len(pts)
    cell = comm_range * (1.0 + _CELL_SLACK)
    mins = pts.min(axis=0)
    fij = np.floor((pts - mins) / cell)
    if float(np.abs(fij).max(initial=0.0)) > 2**31:
        # Degenerate spread (range tiny vs extent): grid keys would
        # overflow; almost no pairs survive anyway, brute force is safe.
        iu, ju = np.triu_indices(n, k=1)
        return iu.astype(np.int64), ju.astype(np.int64)
    ci = fij[:, 0].astype(np.int64)
    cj = fij[:, 1].astype(np.int64)
    ny = int(cj.max()) + 1
    key = ci * ny + cj

    order = np.argsort(key, kind="stable")
    skey = key[order]
    uniq, ustart, ucount = np.unique(skey, return_index=True, return_counts=True)

    pair_i: list[np.ndarray] = []
    pair_j: list[np.ndarray] = []

    # Within-cell pairs: each sorted position pairs with every later
    # position of its own cell.
    pos = np.arange(n, dtype=np.int64)
    group_of_pos = np.repeat(np.arange(len(uniq), dtype=np.int64), ucount)
    group_end = (ustart + ucount)[group_of_pos]
    later = group_end - pos - 1
    if later.sum() > 0:
        pair_i.append(np.repeat(pos, later))
        pair_j.append(_expand_ragged(pos + 1, later))

    # Cross-cell pairs against the four half-plane neighbour cells.
    for di, dj in ((0, 1), (1, -1), (1, 0), (1, 1)):
        if dj == 1:
            valid = cj[order] + 1 < ny
        elif dj == -1:
            valid = cj[order] >= 1
        else:
            valid = np.ones(n, dtype=bool)
        if not valid.any():
            continue
        vpos = pos[valid]
        nkey = skey[valid] + di * ny + dj
        g = np.searchsorted(uniq, nkey)
        g_clip = np.minimum(g, len(uniq) - 1)
        found = uniq[g_clip] == nkey
        if not found.any():
            continue
        vpos = vpos[found]
        g = g_clip[found]
        counts = ucount[g]
        pair_i.append(np.repeat(vpos, counts))
        pair_j.append(_expand_ragged(ustart[g], counts))

    if not pair_i:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    i = order[np.concatenate(pair_i)]
    j = order[np.concatenate(pair_j)]
    return i, j


def udg_edges(positions, comm_range: float) -> np.ndarray:
    """All undirected links ``(i, j)`` with ``i < j`` within ``comm_range``.

    Returns an ``(m, 2)`` int array (empty when no pair is in range).
    Built through a spatial hash - ``O(n + candidates)`` time and
    memory - and bitwise-identical to :func:`_udg_edges_bruteforce`:
    candidate pairs are filtered on squared distance (no sqrt), with a
    narrow band around ``comm_range**2`` re-tested using the oracle's
    exact ``hypot`` predicate.
    """
    pts = as_points(positions)
    if comm_range <= 0:
        raise GeometryError("communication range must be positive")
    if len(pts) < 2:
        return _EMPTY_EDGES.copy()
    i, j = _candidate_pairs(pts, comm_range)
    if len(i) == 0:
        return _EMPTY_EDGES.copy()
    dx = pts[i, 0] - pts[j, 0]
    dy = pts[i, 1] - pts[j, 1]
    d2 = dx * dx + dy * dy
    r2 = comm_range * comm_range
    within = d2 <= r2 * (1.0 - _BAND)
    band = ~within & (d2 <= r2 * (1.0 + _BAND))
    if band.any():
        within[band] = np.hypot(dx[band], dy[band]) <= comm_range
    i = i[within]
    j = j[within]
    if len(i) == 0:
        return _EMPTY_EDGES.copy()
    a = np.minimum(i, j)
    b = np.maximum(i, j)
    order = np.lexsort((b, a))
    return np.column_stack([a[order], b[order]]).astype(int)


class UnitDiskGraph:
    """Snapshot of the swarm's communication graph at one instant.

    Parameters
    ----------
    positions : (n, 2) array-like
        Robot positions.
    comm_range : float
        Communication range ``r_c`` (same for all robots, Sec. II).
    """

    def __init__(self, positions, comm_range: float) -> None:
        self.positions = as_points(positions)
        if comm_range <= 0:
            raise GeometryError("communication range must be positive")
        self.comm_range = float(comm_range)

    @property
    def node_count(self) -> int:
        return len(self.positions)

    @cached_property
    def edges(self) -> np.ndarray:
        """Undirected links as an ``(m, 2)`` int array with ``i < j``."""
        return udg_edges(self.positions, self.comm_range)

    @cached_property
    def edge_set(self) -> frozenset[tuple[int, int]]:
        """The links as a frozenset of ``(i, j)`` tuples with ``i < j``."""
        return frozenset((int(i), int(j)) for i, j in self.edges)

    @cached_property
    def _csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Neighbour lists in CSR form: ``(indptr, indices)``.

        ``indices[indptr[v]:indptr[v + 1]]`` are node ``v``'s neighbours
        in ascending order.  Built from the doubled edge array with one
        lexsort - no per-edge Python loop.
        """
        n = self.node_count
        e = self.edges
        indptr = np.zeros(n + 1, dtype=np.int64)
        if len(e) == 0:
            return indptr, np.zeros(0, dtype=np.int64)
        src = np.concatenate([e[:, 0], e[:, 1]])
        dst = np.concatenate([e[:, 1], e[:, 0]])
        order = np.lexsort((dst, src))
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        return indptr, dst[order]

    @cached_property
    def adjacency(self) -> list[list[int]]:
        """Per-node sorted neighbour lists."""
        indptr, indices = self._csr
        return [
            indices[indptr[v]:indptr[v + 1]].tolist()
            for v in range(self.node_count)
        ]

    def neighbors(self, i: int) -> list[int]:
        """Nodes within communication range of node ``i``."""
        return self.adjacency[i]

    def degree(self, i: int) -> int:
        indptr, _ = self._csr
        return int(indptr[i + 1] - indptr[i])

    def has_edge(self, i: int, j: int) -> bool:
        a, b = (i, j) if i < j else (j, i)
        return (a, b) in self.edge_set

    def _frontier_neighbors(self, frontier: np.ndarray) -> np.ndarray:
        """Unique neighbours of all ``frontier`` nodes (one numpy pass)."""
        indptr, indices = self._csr
        counts = indptr[frontier + 1] - indptr[frontier]
        flat = indices[_expand_ragged(indptr[frontier], counts)]
        return np.unique(flat)

    @cached_property
    def components(self) -> list[list[int]]:
        """Connected components as sorted node lists, largest first."""
        n = self.node_count
        seen = np.zeros(n, dtype=bool)
        comps: list[list[int]] = []
        for start in range(n):
            if seen[start]:
                continue
            seen[start] = True
            frontier = np.array([start], dtype=np.int64)
            members = [frontier]
            while frontier.size:
                neigh = self._frontier_neighbors(frontier)
                new = neigh[~seen[neigh]]
                if new.size == 0:
                    break
                seen[new] = True
                members.append(new)
                frontier = new
            comps.append(np.sort(np.concatenate(members)).tolist())
        comps.sort(key=len, reverse=True)
        return comps

    def is_connected(self) -> bool:
        """Whether all nodes form a single component."""
        return self.node_count <= 1 or len(self.components) == 1

    def nodes_connected_to(self, anchors) -> np.ndarray:
        """Boolean mask of nodes with a path to any node in ``anchors``.

        This implements Definition 2's reachability test: a robot
        counts as globally connected when a multi-hop path to the
        network boundary (the anchor set) exists.
        """
        mask = np.zeros(self.node_count, dtype=bool)
        for a in (int(a) for a in anchors):
            if not 0 <= a < self.node_count:
                raise GeometryError(f"anchor {a} out of range")
            mask[a] = True
        frontier = np.flatnonzero(mask).astype(np.int64)
        while frontier.size:
            neigh = self._frontier_neighbors(frontier)
            new = neigh[~mask[neigh]]
            if new.size == 0:
                break
            mask[new] = True
            frontier = new
        return mask
