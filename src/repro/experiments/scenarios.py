"""The seven evaluation scenarios of Sec. IV.

Every scenario marches 144 robots with an 80 m communication range from
a current FoI ``M1`` to a target FoI ``M2`` placed a configurable
multiple of the communication range away (the paper sweeps 10x to 100x
in Fig. 3).  Scenarios 1-5 share the M1 of Fig. 2(a); scenarios 6 and 7
have hole-bearing M1s of their own (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ScenarioError
from repro.foi import (
    FieldOfInterest,
    m1_base,
    m1_scenario6,
    m1_scenario7,
    m2_scenario1,
    m2_scenario2,
    m2_scenario3,
    m2_scenario4,
    m2_scenario5,
    m2_scenario6,
    m2_scenario7,
)

__all__ = ["ScenarioSpec", "SCENARIOS", "get_scenario"]

ROBOT_COUNT = 144
COMM_RANGE = 80.0


@dataclass(frozen=True)
class ScenarioSpec:
    """One evaluation scenario.

    Attributes
    ----------
    scenario_id : int
        1-7, matching the paper's numbering.
    description : str
    m1_builder, m2_builder : callable() -> FieldOfInterest
        Shape constructors (canonical placement at the origin).
    robot_count : int
    comm_range : float
    """

    scenario_id: int
    description: str
    m1_builder: Callable[[], FieldOfInterest]
    m2_builder: Callable[[], FieldOfInterest]
    robot_count: int = ROBOT_COUNT
    comm_range: float = COMM_RANGE

    def build(self, separation_factor: float = 20.0) -> tuple[FieldOfInterest, FieldOfInterest]:
        """Instantiate (M1, M2) with the given centroid separation.

        Parameters
        ----------
        separation_factor : float
            Centroid-to-centroid distance in multiples of the
            communication range (the x-axis of Fig. 3's sweeps).
        """
        if separation_factor < 0:
            raise ScenarioError("separation factor must be non-negative")
        m1 = self.m1_builder()
        m2 = self.m2_builder()
        offset = (
            m1.centroid
            + np.array([separation_factor * self.comm_range, 0.0])
            - m2.centroid
        )
        return m1, m2.translated(offset)

    @property
    def has_holes(self) -> bool:
        return self.m1_builder().has_holes or self.m2_builder().has_holes


SCENARIOS: dict[int, ScenarioSpec] = {
    1: ScenarioSpec(1, "non-hole blob -> non-hole blob (Fig. 3a)", m1_base, m2_scenario1),
    2: ScenarioSpec(2, "non-hole blob -> slim FoI (Fig. 3b)", m1_base, m2_scenario2),
    3: ScenarioSpec(3, "non-hole -> concave flower pond (Fig. 4)", m1_base, m2_scenario3),
    4: ScenarioSpec(4, "non-hole -> big convex hole (Fig. 3c)", m1_base, m2_scenario4),
    5: ScenarioSpec(5, "non-hole -> multiple small holes (Fig. 3d)", m1_base, m2_scenario5),
    6: ScenarioSpec(6, "hole -> hole (Fig. 5a)", m1_scenario6, m2_scenario6),
    7: ScenarioSpec(7, "hole -> hole (Fig. 5b)", m1_scenario7, m2_scenario7),
}


def get_scenario(scenario_id: int) -> ScenarioSpec:
    """Look up a scenario by its paper number (1-7)."""
    try:
        return SCENARIOS[scenario_id]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {scenario_id}; valid ids are {sorted(SCENARIOS)}"
        ) from None
