"""Swarm-scale vectorization: bitwise equivalence and scaling guards.

Every vectorised fast path introduced for large swarms - the
spatial-hash unit-disk graph, CSR adjacency, factorization-reusing
harmonic solves, batch point location, batch induced-map transfer and
vectorised trajectory sampling - must produce *bitwise-identical*
results to the scalar/brute-force oracles it replaced; these tests pin
that contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanningError
from repro.experiments.scaling import (
    format_scaling_table,
    scaling_curve,
    stage_lookup,
    synthetic_swarm_positions,
)
from repro.geometry import TriangleLocator, barycentric_coords_paired
from repro.geometry.barycentric import barycentric_coords_many
from repro.harmonic import (
    clear_factorization_cache,
    compute_disk_map,
    solve_linear,
)
from repro.harmonic.boundary import boundary_parameterization, circle_positions
from repro.harmonic.transfer import InducedMap
from repro.mesh.delaunay import delaunay_mesh
from repro.network import UnitDiskGraph, udg_edges
from repro.network.udg import _udg_edges_bruteforce
from repro.obs import Metrics, activate_metrics
from repro.robots.motion import SwarmTrajectory, TimedPath

positions_strategy = st.lists(
    st.tuples(
        st.floats(-1e4, 1e4, allow_nan=False, width=32),
        st.floats(-1e4, 1e4, allow_nan=False, width=32),
    ),
    min_size=0,
    max_size=60,
)


class TestSpatialHashUdg:
    @given(pts=positions_strategy, r=st.floats(0.1, 500.0, allow_nan=False))
    @settings(max_examples=120, deadline=None)
    def test_matches_bruteforce(self, pts, r):
        arr = np.array(pts, dtype=float).reshape(-1, 2)
        assert np.array_equal(udg_edges(arr, r), _udg_edges_bruteforce(arr, r))

    @given(seed=st.integers(0, 2**16), n=st.integers(2, 200))
    @settings(max_examples=40, deadline=None)
    def test_matches_bruteforce_dense_random(self, seed, n):
        rng = np.random.default_rng(seed)
        scale = 10.0 ** float(rng.integers(-3, 4))
        pts = rng.uniform(-scale, scale, size=(n, 2))
        r = float(rng.uniform(0.05, 1.5)) * scale
        assert np.array_equal(udg_edges(pts, r), _udg_edges_bruteforce(pts, r))

    def test_points_exactly_at_comm_range(self):
        # The boundary predicate is inclusive; pairs at exactly r must
        # appear in both implementations even when the cell grid puts
        # them in non-adjacent-looking positions.
        r = 7.0
        pts = np.array([
            [0.0, 0.0], [r, 0.0], [0.0, r], [r, r],
            [2 * r, 0.0], [0.0, 2 * r],
        ])
        fast = udg_edges(pts, r)
        slow = _udg_edges_bruteforce(pts, r)
        assert np.array_equal(fast, slow)
        assert [0, 1] in fast.tolist()

    def test_empty_swarm(self):
        empty = np.zeros((0, 2))
        assert udg_edges(empty, 1.0).shape == (0, 2)
        assert np.array_equal(udg_edges(empty, 1.0), _udg_edges_bruteforce(empty, 1.0))

    def test_all_coincident(self):
        pts = np.ones((25, 2)) * 3.5
        fast = udg_edges(pts, 1.0)
        assert np.array_equal(fast, _udg_edges_bruteforce(pts, 1.0))
        assert len(fast) == 25 * 24 // 2

    def test_huge_coordinate_spread(self):
        # Forces the int-overflow fallback of the cell indexer.
        pts = np.array([[0.0, 0.0], [1e18, 1e18], [0.5, 0.5], [1.0, 0.0]])
        assert np.array_equal(udg_edges(pts, 1.2), _udg_edges_bruteforce(pts, 1.2))

    def test_10k_fast_and_identical_at_1k(self):
        pts = synthetic_swarm_positions(1_000, comm_range=80.0, seed=3)
        assert np.array_equal(
            udg_edges(pts, 80.0), _udg_edges_bruteforce(pts, 80.0)
        )


class TestCsrAdjacency:
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 120))
    @settings(max_examples=40, deadline=None)
    def test_adjacency_matches_edge_oracle(self, seed, n):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 10, size=(n, 2))
        g = UnitDiskGraph(pts, 2.0)
        oracle = [[] for _ in range(n)]
        for a, b in udg_edges(pts, 2.0):
            oracle[a].append(int(b))
            oracle[b].append(int(a))
        oracle = [sorted(row) for row in oracle]
        adj = g.adjacency
        assert isinstance(adj, list)
        assert all(isinstance(row, list) for row in adj)
        assert adj == oracle
        assert [g.degree(v) for v in range(n)] == [len(r) for r in oracle]

    def test_components_cover_and_sorted(self):
        rng = np.random.default_rng(5)
        pts = np.vstack([
            rng.uniform(0, 3, size=(30, 2)),
            rng.uniform(100, 103, size=(20, 2)),
        ])
        g = UnitDiskGraph(pts, 1.5)
        comps = g.components
        assert sorted(v for c in comps for v in c) == list(range(50))
        assert all(c == sorted(c) for c in comps)
        # Largest first.
        assert all(
            len(comps[i]) >= len(comps[i + 1]) for i in range(len(comps) - 1)
        )
        anchor = comps[0][0]
        mask = g.nodes_connected_to([anchor])
        assert np.flatnonzero(mask).tolist() == sorted(comps[0])


class TestFactorizationReuse:
    @pytest.fixture
    def mesh(self):
        rng = np.random.default_rng(9)
        return delaunay_mesh(rng.uniform(0, 100, size=(120, 2)))

    def test_warm_solve_byte_identical_to_cold_spsolve(self, mesh):
        loop, angles = boundary_parameterization(mesh)
        bpos = circle_positions(angles)
        clear_factorization_cache()
        oracle = solve_linear(mesh, loop, bpos, reuse_factorization=False)
        cold = solve_linear(mesh, loop, bpos)
        warm = solve_linear(mesh, loop, bpos)
        clear_factorization_cache()
        assert cold.tobytes() == oracle.tobytes()
        assert warm.tobytes() == oracle.tobytes()

    def test_cache_hit_and_miss_counters(self, mesh):
        loop, angles = boundary_parameterization(mesh)
        bpos = circle_positions(angles)
        clear_factorization_cache()
        m = Metrics()
        with activate_metrics(m):
            solve_linear(mesh, loop, bpos)
            solve_linear(mesh, loop, bpos)
        clear_factorization_cache()
        snap = m.snapshot()
        assert snap["cache.harmonic_factorization.misses"]["value"] == 1
        assert snap["cache.harmonic_factorization.hits"]["value"] == 1

    def test_disk_map_unchanged_by_reuse(self, square_foi_mesh):
        clear_factorization_cache()
        first = compute_disk_map(square_foi_mesh.mesh)
        second = compute_disk_map(square_foi_mesh.mesh)
        clear_factorization_cache()
        assert np.array_equal(first.disk_positions, second.disk_positions)


class TestBatchPointLocation:
    @pytest.fixture(scope="class")
    def locator(self):
        rng = np.random.default_rng(17)
        mesh = delaunay_mesh(rng.uniform(-5, 5, size=(80, 2)))
        return TriangleLocator(mesh.vertices, mesh.triangles)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_locate_many_matches_scalar(self, locator, seed):
        rng = np.random.default_rng(seed)
        q = rng.uniform(-7, 7, size=(int(rng.integers(1, 80)), 2))
        tri, bary = locator.locate_many(q)
        for i, p in enumerate(q):
            hit = locator.locate(p)
            if hit is None:
                assert tri[i] == -1
                assert np.all(np.isnan(bary[i]))
            else:
                assert tri[i] == hit[0]
                assert np.array_equal(bary[i], hit[1])

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_locate_nearest_many_matches_scalar(self, locator, seed):
        rng = np.random.default_rng(seed)
        q = rng.uniform(-9, 9, size=(int(rng.integers(1, 80)), 2))
        tri, bary = locator.locate_nearest_many(q)
        for i, p in enumerate(q):
            t, b = locator.locate_nearest(p)
            assert tri[i] == t
            assert np.array_equal(bary[i], b)

    def test_vertices_and_centroids_hit(self, locator):
        pts = np.vstack([locator.points[:12], locator._centroids[:12]])
        tri, bary = locator.locate_many(pts)
        assert np.all(tri >= 0)
        for i, p in enumerate(pts):
            hit = locator.locate(p)
            assert hit is not None and tri[i] == hit[0]
            assert np.array_equal(bary[i], hit[1])

    def test_empty_batch(self, locator):
        tri, bary = locator.locate_many(np.zeros((0, 2)))
        assert tri.shape == (0,) and bary.shape == (0, 3)
        tri, bary = locator.locate_nearest_many(np.zeros((0, 2)))
        assert tri.shape == (0,) and bary.shape == (0, 3)

    def test_paired_barycentric_matches_many(self):
        rng = np.random.default_rng(2)
        a = rng.uniform(-1, 1, size=(40, 2))
        b = a + rng.uniform(0.1, 1, size=(40, 2))
        c = a + np.array([[-1.0, 1.0]]) * rng.uniform(0.1, 1, size=(40, 2))
        p = rng.uniform(-1, 1, size=(40, 2))
        paired = barycentric_coords_paired(p, a, b, c)
        for k in range(40):
            row = barycentric_coords_many(
                p[k], a[k : k + 1], b[k : k + 1], c[k : k + 1]
            )[0]
            assert np.array_equal(paired[k], row)


class TestBatchInducedMap:
    def test_matches_scalar_map_point(self, holed_foi_mesh, rng):
        dm = compute_disk_map(holed_foi_mesh.mesh)
        induced = InducedMap(dm, memoize=False)
        pts = rng.uniform(-1.1, 1.1, size=(60, 2))
        virtual = dm.filled.virtual_vertices
        if len(virtual):
            pts = np.vstack([pts, dm.filled.mesh.vertices[virtual]])
        batch = induced.map_points(pts)
        scalar = np.array([induced.map_point(p) for p in pts])
        assert np.array_equal(batch, scalar)

    def test_rotation_matches_scalar(self, holed_foi_mesh, rng):
        from repro.geometry.vec import rotate

        dm = compute_disk_map(holed_foi_mesh.mesh)
        induced = InducedMap(dm, memoize=False)
        pts = rng.uniform(-0.9, 0.9, size=(30, 2))
        theta = 1.234
        batch = induced.map_points(pts, rotation=theta)
        scalar = np.array(
            [induced.map_point(p) for p in rotate(pts, theta)]
        )
        assert np.array_equal(batch, scalar)

    def test_empty_batch(self, square_foi_mesh):
        dm = compute_disk_map(square_foi_mesh.mesh)
        induced = InducedMap(dm, memoize=False)
        assert induced.map_points(np.zeros((0, 2))).shape == (0, 2)


class TestVectorizedTrajectorySampling:
    @pytest.fixture
    def mixed_trajectory(self):
        rng = np.random.default_rng(23)
        T = 10.0
        paths = [TimedPath.stationary(rng.uniform(0, 5, 2), 0.0)]
        for _ in range(6):
            paths.append(TimedPath(rng.uniform(0, 5, (2, 2)), [0.0, T]))
        t_jump = 4.0
        paths.append(TimedPath(rng.uniform(0, 5, (2, 2)), [t_jump, t_jump]))
        times = np.sort(rng.uniform(0, T, 4))
        paths.append(TimedPath(rng.uniform(0, 5, (4, 2)), times))
        return SwarmTrajectory(paths, 0.0, T)

    def test_positions_over_matches_per_path(self, mixed_trajectory):
        traj = mixed_trajectory
        ts = np.concatenate([
            np.linspace(-1, 11, 25),
            np.concatenate([p.times for p in traj.paths]),
        ])
        for side in ("right", "left"):
            got = traj.positions_over(ts, side=side)
            want = np.stack(
                [p.positions_at_many(ts, side=side) for p in traj.paths],
                axis=1,
            )
            assert np.array_equal(got, want)

    def test_positions_at_matches_per_path(self, mixed_trajectory):
        traj = mixed_trajectory
        for t in [-1.0, 0.0, 3.3, 4.0, 10.0, 12.0]:
            want = np.array([p.position_at(t) for p in traj.paths])
            assert np.array_equal(traj.positions_at(t), want)

    def test_critical_and_discontinuity_times(self, mixed_trajectory):
        traj = mixed_trajectory
        ts = {traj.t_start, traj.t_end}
        for p in traj.paths:
            ts.update(float(t) for t in p.times)
        arr = np.array(sorted(ts))
        want = arr[(arr >= traj.t_start - 1e-9) & (arr <= traj.t_end + 1e-9)]
        assert np.array_equal(traj.critical_times(), want)

        ds = sorted(
            {float(t) for p in traj.paths for t in p.discontinuity_times()}
        )
        assert traj.discontinuity_times().tolist() == ds

    def test_two_waypoint_jump_detected(self):
        # A duplicated-time two-waypoint path is a jump even though it
        # sits in the vectorised two-waypoint group's near-degenerate
        # corner.
        jump = TimedPath([[0.0, 0.0], [1.0, 0.0]], [2.0, 2.0])
        traj = SwarmTrajectory(
            [jump, TimedPath.stationary([5.0, 5.0], 0.0)], 0.0, 10.0
        )
        assert traj.discontinuity_times().tolist() == [2.0]

    def test_path_lengths_match(self, mixed_trajectory):
        traj = mixed_trajectory
        want = np.array([p.length for p in traj.paths])
        assert np.array_equal(traj.path_lengths(), want)

    def test_bad_side_rejected(self, mixed_trajectory):
        with pytest.raises(PlanningError, match="side must be"):
            mixed_trajectory.positions_over([0.0], side="up")


class TestScalingCurve:
    def test_synthetic_density_constant(self):
        r = 50.0
        small = synthetic_swarm_positions(100, r, seed=1)
        large = synthetic_swarm_positions(400, r, seed=1)
        assert small.shape == (100, 2)
        assert large.shape == (400, 2)
        # Area scales linearly with n -> side scales with sqrt(n).
        assert np.ptp(large[:, 0]) / np.ptp(small[:, 0]) == pytest.approx(
            2.0, rel=0.1
        )

    def test_curve_rows_complete(self):
        curve = scaling_curve(sizes=(50, 100), verify_max_n=100)
        by_key = stage_lookup(curve)
        stages = {r["stage"] for r in curve["rows"]}
        assert "network.udg_edges" in stages
        assert "harmonic.solve_warm" in stages
        assert "geometry.locate_batch" in stages
        for stage in stages:
            for n in (50, 100):
                row = by_key[(stage, n)]
                assert row["seconds"] >= 0.0
                assert row["peak_bytes"] > 0

    def test_table_renders_all_stages(self):
        curve = scaling_curve(sizes=(50,), verify_max_n=50)
        table = format_scaling_table(curve)
        assert "| n=50 |" in table
        for r in curve["rows"]:
            assert f"| {r['stage']} |" in table

    def test_report_scaling_section(self):
        from repro.experiments.report import build_report

        text = build_report(
            scenario_ids=[1], scaling=True, scaling_sizes=[50, 80]
        )
        assert "## Scaling curves" in text
        assert "| network.udg_edges |" in text
        assert "n=80" in text
