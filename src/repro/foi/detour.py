"""Hole-avoiding detour paths (Sec. III-D3 of the paper).

When a robot's straight-line moving path crosses a hole, the paper's
rule is: "when the mobile robot hits the boundary of the hole, the
robot goes along the boundary until it can follow its computed moving
path again."  :func:`detour_path` turns a straight segment into the
corresponding piecewise-linear path: enter the hole boundary at the
first intersection, walk the shorter boundary arc (slightly inflated so
the path stays in the free region), and leave at the last intersection.

The core functions operate on a plain list of hole polygons, so a
march can avoid the *union* of the source and target FoIs' holes
(robots leaving a hole-bearing M1 must dodge its obstacles just as they
dodge M2's); the ``FieldOfInterest`` wrappers keep the convenient
single-region interface.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GeometryError
from repro.foi.region import FieldOfInterest
from repro.geometry.polygon import Polygon
from repro.geometry.segment import segment_intersection_point
from repro.geometry.vec import as_point, polyline_length

__all__ = [
    "detour_path",
    "detour_path_holes",
    "path_blocked_by_hole",
    "path_blocked_by_holes",
]

_MAX_DETOURS = 32


def _segment_hole_hits(p, q, hole: Polygon) -> list[tuple[float, np.ndarray, int]]:
    """Intersections of segment ``[p, q]`` with the hole boundary.

    Returns a list of ``(t, point, edge_index)`` sorted by the segment
    parameter ``t``.
    """
    p = as_point(p)
    q = as_point(q)
    hits: list[tuple[float, np.ndarray, int]] = []
    v = hole.vertices
    n = len(v)
    seg = q - p
    seg_len2 = float(seg @ seg)
    if seg_len2 < 1e-24:
        return []
    for i in range(n):
        x = segment_intersection_point(p, q, v[i], v[(i + 1) % n])
        if x is not None:
            t = float((x - p) @ seg / seg_len2)
            hits.append((t, x, i))
    hits.sort(key=lambda h: h[0])
    # Merge hits that coincide (segment passing exactly through a vertex).
    merged: list[tuple[float, np.ndarray, int]] = []
    for h in hits:
        if merged and abs(h[0] - merged[-1][0]) < 1e-9:
            continue
        merged.append(h)
    return merged


def path_blocked_by_holes(holes: Sequence[Polygon], p, q) -> int | None:
    """Index of the first hole whose *interior* the segment ``[p, q]`` crosses.

    Grazing contact with a hole boundary does not count.  Returns
    ``None`` when the straight path is free.
    """
    p = as_point(p)
    q = as_point(q)
    first: tuple[float, int] | None = None
    for idx, hole in enumerate(holes):
        hits = _segment_hole_hits(p, q, hole)
        if len(hits) < 2:
            continue
        # Midpoint between consecutive crossings decides interior passage.
        for (t0, x0, _), (t1, x1, _) in zip(hits, hits[1:]):
            mid = (x0 + x1) / 2.0
            if bool(hole.contains(mid, include_boundary=False)):
                if first is None or t0 < first[0]:
                    first = (t0, idx)
                break
    return None if first is None else first[1]


def path_blocked_by_hole(foi: FieldOfInterest, p, q) -> int | None:
    """:func:`path_blocked_by_holes` over one FoI's hole list."""
    return path_blocked_by_holes(foi.holes, p, q)


def _inflate(hole: Polygon, margin: float) -> np.ndarray:
    """Hole boundary pushed outward from its centroid by ``margin``."""
    c = hole.centroid
    v = hole.vertices - c
    norms = np.hypot(v[:, 0], v[:, 1])
    norms = np.where(norms < 1e-12, 1.0, norms)
    return c + v * (1.0 + margin / norms)[:, None]


def detour_path_holes(
    holes: Sequence[Polygon], p, q, margin: float = 1.0
) -> np.ndarray:
    """Piecewise-linear path from ``p`` to ``q`` avoiding ``holes``.

    Parameters
    ----------
    holes : sequence of Polygon
        Forbidden regions (need not belong to one FoI).
    p, q : (2,) array-like
        Path endpoints; must lie outside every hole.
    margin : float
        Absolute boundary-walk inflation keeping the detour strictly
        outside the holes.

    Returns
    -------
    (k, 2) ndarray
        Waypoints including both endpoints.  ``k == 2`` when the
        straight segment is already free.

    Raises
    ------
    GeometryError
        If no free path is found within a bounded number of repairs
        (e.g. pathological hole layouts).
    """
    p = as_point(p)
    q = as_point(q)
    path = [p.copy(), q.copy()]
    for _ in range(_MAX_DETOURS):
        blocked_at = None
        for seg_idx in range(len(path) - 1):
            hole_idx = path_blocked_by_holes(holes, path[seg_idx], path[seg_idx + 1])
            if hole_idx is not None:
                blocked_at = (seg_idx, hole_idx)
                break
        if blocked_at is None:
            return np.array(path)
        seg_idx, hole_idx = blocked_at
        a, b = path[seg_idx], path[seg_idx + 1]
        hole = holes[hole_idx]
        hits = _segment_hole_hits(a, b, hole)
        if len(hits) < 2:
            raise GeometryError("inconsistent hole intersection while detouring")
        (_, enter, e_in), (_, leave, e_out) = hits[0], hits[-1]
        inflated = _inflate(hole, margin)
        n = len(inflated)
        # Walk vertices from the entry edge to the exit edge both ways
        # and keep the shorter boundary arc.
        fwd = [inflated[i % n] for i in range(e_in + 1, e_in + 1 + ((e_out - e_in) % n))]
        bwd = [inflated[i % n] for i in range(e_in, e_in - ((e_in - e_out) % n), -1)]
        cand_f = [enter] + fwd + [leave]
        cand_b = [enter] + bwd + [leave]
        arc = cand_f if polyline_length(cand_f) <= polyline_length(cand_b) else cand_b
        path[seg_idx + 1 : seg_idx + 1] = [np.asarray(w, dtype=float) for w in arc]
    raise GeometryError("detour did not converge; hole layout too complex")


def detour_path(foi: FieldOfInterest, p, q, margin_fraction: float = 1e-3) -> np.ndarray:
    """:func:`detour_path_holes` over one FoI, with area-relative margin."""
    margin = margin_fraction * max(1.0, float(np.sqrt(foi.area)))
    return detour_path_holes(foi.holes, p, q, margin=margin)
