"""E2 - Fig. 3(b) rows 4-5: scenario 2 (non-hole blob -> slim FoI).

The slim target differs strongly from M1 ("the boundary shapes ...
differ a lot"), which the paper notes increases the direct-translation
moving distance relative to scenario 1.
"""

import numpy as np

from _shared import assert_paper_shape, get_sweep, print_sweep


def test_fig3b_scenario2(benchmark):
    sweep = benchmark.pedantic(get_sweep, args=(2,), rounds=1, iterations=1)
    print_sweep(sweep)
    assert_paper_shape(sweep)


def test_fig3b_direct_translation_suffers_vs_scenario1(benchmark):
    """Paper: 'we can see an increased total moving distance for direct
    translation method in the second scenario' (shape mismatch makes the
    post-translation Hungarian adjustment long)."""

    def compare():
        s1 = get_sweep(1)
        s2 = get_sweep(2)
        # The short-separation point, where the adjustment dominates.
        return (
            s1.points[0].distance_ratio["direct translation"],
            s2.points[0].distance_ratio["direct translation"],
        )

    ratio_1, ratio_2 = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\ndirect translation D-ratio at 10x: scenario 1 {ratio_1:.3f} "
          f"vs scenario 2 {ratio_2:.3f}")
    assert ratio_2 > ratio_1
