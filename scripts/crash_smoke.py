#!/usr/bin/env python
"""CI crash smoke: kill -9 the service mid-mission and prove recovery.

Runs the :mod:`repro.experiments.crashrec` harness end to end against
``python -m repro serve --journal-dir``:

1. **SIGKILL at a seeded epoch** - boot a journal-backed server, land
   plan jobs (acknowledged ``done``), stream a mission, deliver
   ``SIGKILL`` the instant the seeded ``epoch`` event arrives, restart
   on the same journal, and assert (a) zero lost acknowledged jobs -
   every pre-crash ``done`` job is still ``done`` with byte-identical
   result bytes - and (b) the resumed mission's final document is
   byte-identical to an uninterrupted in-process oracle run.
2. **A second seeded instant** - same contract, kill at a later epoch,
   proving the checkpoint cursor advances.
3. **SIGTERM graceful drain** - the in-flight mission checkpoints and
   releases at its epoch boundary (``interrupted`` SSE event), the
   drain is announced on the stream, the process exits 0, and the
   restart still finishes byte-identically.

Run:  PYTHONPATH=src python scripts/crash_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
from dataclasses import replace

from repro.experiments.crashrec import (
    CrashRecConfig,
    crashrec_passed,
    expected_mission_bytes,
    render_crashrec,
    run_crashrec,
)

BASE = CrashRecConfig(
    seed=0,
    epochs=3,
    kill_epoch=1,
    plan_jobs=2,
    robot_count=16,
    foi_target_points=100,
    grid_target=300,
    lloyd_max_iterations=8,
    resolution=4,
)

# SIGTERM needs runway: the drain interrupt fires at the *next* epoch
# boundary after the signal, so leave several epochs outstanding.
TERM = replace(BASE, epochs=5, kill_epoch=1)


def run_case(label: str, config: CrashRecConfig, sig: str, baseline: bytes) -> None:
    with tempfile.TemporaryDirectory(prefix="repro-crash-smoke-") as journal:
        summary = run_crashrec(config, journal, sig=sig, baseline=baseline)
    print(f"--- case {label} ---")
    print(render_crashrec(summary))
    assert crashrec_passed(summary), summary
    canonical = summary["canonical"]
    assert canonical["zero_lost_acked"], canonical["lost_acked"]
    assert canonical["mission_byte_identical"]
    if sig == "SIGKILL":
        assert summary["timing"]["crash_exit_code"] == -9, summary["timing"]
        assert canonical["mission_provenance"] == "retried", canonical
        assert canonical["epochs_streamed_before_crash"] >= config.kill_epoch
    else:
        assert summary["timing"]["crash_exit_code"] == 0, summary["timing"]


def main() -> int:
    run_case(
        "SIGKILL @ epoch 1", BASE, "SIGKILL", expected_mission_bytes(BASE)
    )
    # Kill later in a longer mission: the checkpoint cursor must have
    # advanced past epoch 2, and >= 2 epochs of runway keep the kill
    # landing while the mission is still running (no completion race).
    later = replace(BASE, epochs=4, kill_epoch=2)
    run_case(
        "SIGKILL @ epoch 2", later, "SIGKILL", expected_mission_bytes(later)
    )
    run_case(
        "SIGTERM drain", TERM, "SIGTERM", expected_mission_bytes(TERM)
    )
    print("crash smoke: all cases recovered with zero lost acknowledged "
          "jobs and byte-identical mission documents")
    return 0


if __name__ == "__main__":
    sys.exit(main())
