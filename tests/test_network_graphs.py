"""Tests for union-find and BFS utilities (with networkx as oracle)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network import (
    UnionFind,
    adjacency_from_edges,
    bfs_hops,
    connected_components,
)

edge_list = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=40
)


class TestUnionFind:
    def test_initial_singletons(self):
        uf = UnionFind(5)
        assert uf.component_count == 5
        assert not uf.connected(0, 1)

    def test_union_connects(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert uf.component_count == 4

    def test_union_idempotent(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.component_count == 4

    def test_transitivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)

    def test_component_sizes(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(3, 4)
        assert uf.component_sizes() == [3, 2, 1]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @given(edge_list)
    @settings(max_examples=100)
    def test_matches_networkx_components(self, edges):
        n = 15
        uf = UnionFind(n)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        for u, v in edges:
            if u != v:
                uf.union(u, v)
                g.add_edge(u, v)
        assert uf.component_count == nx.number_connected_components(g)
        for u, v in [(0, 1), (3, 9), (14, 2)]:
            assert uf.connected(u, v) == (
                nx.has_path(g, u, v)
            )


class TestAdjacencyAndBfs:
    def test_adjacency_builds_sorted(self):
        adj = adjacency_from_edges(4, [(0, 2), (2, 1), (0, 1)])
        assert adj == [[1, 2], [0, 2], [0, 1], []]

    def test_self_loops_dropped(self):
        adj = adjacency_from_edges(3, [(1, 1), (0, 1)])
        assert adj == [[1], [0], []]

    def test_bfs_hops_line(self):
        adj = adjacency_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        hops = bfs_hops(adj, [0])
        assert hops.tolist() == [0, 1, 2, 3]

    def test_bfs_multi_source(self):
        adj = adjacency_from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        hops = bfs_hops(adj, [0, 4])
        assert hops.tolist() == [0, 1, 2, 1, 0]

    def test_bfs_unreachable(self):
        adj = adjacency_from_edges(3, [(0, 1)])
        hops = bfs_hops(adj, [0])
        assert hops[2] == -1

    @given(edge_list, st.integers(0, 14))
    @settings(max_examples=100)
    def test_bfs_matches_networkx(self, edges, source):
        n = 15
        adj = adjacency_from_edges(n, edges)
        hops = bfs_hops(adj, [source])
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from((u, v) for u, v in edges if u != v)
        lengths = nx.single_source_shortest_path_length(g, source)
        for v in range(n):
            expected = lengths.get(v, -1)
            assert hops[v] == expected

    def test_connected_components_order(self):
        adj = adjacency_from_edges(6, [(0, 1), (1, 2), (3, 4)])
        comps = connected_components(adj)
        assert comps[0] == [0, 1, 2]
        assert comps[1] == [3, 4]
        assert comps[2] == [5]
