"""Planner and per-stage wall-clock scaling with swarm size (ours).

Two benchmarks:

* ``test_perf_planner_scaling`` plans scenario-1-style transitions at
  49/100/169 robots and reports the end-to-end planning time, backing
  the complexity discussion at the paper's 144-robot scale.
* ``test_perf_stage_scaling_curve`` runs the per-stage scaling curve
  (:mod:`repro.experiments.scaling`) at 100 / 1 000 / 10 000 robots,
  prints the wall-clock / peak-RSS table that ``python -m repro report
  --scaling`` emits, and asserts the swarm-scale budgets: the
  spatial-hash unit-disk graph at 10 000 robots must finish under two
  seconds inside 100 MB and grow sub-quadratically.
"""

import time

from repro.coverage import LloydConfig
from repro.experiments import format_table
from repro.experiments.scaling import (
    format_scaling_table,
    scaling_curve,
    stage_lookup,
)
from repro.foi import m1_base, m2_scenario1
from repro.marching import MarchingConfig, MarchingPlanner
from repro.robots import RadioSpec, Swarm

CFG = MarchingConfig(
    foi_target_points=320, lloyd=LloydConfig(grid_target=1400, max_iterations=40)
)
# 49 robots would need a lattice pitch above the 80 m range on M1.
SIZES = (64, 100, 169)


def _run():
    radio = RadioSpec.from_comm_range(80.0)
    m1 = m1_base()
    m2 = m2_scenario1()
    m2 = m2.translated(m1.centroid - m2.centroid + [1600.0, 0.0])
    timings = []
    for n in SIZES:
        swarm = Swarm.deploy_lattice(m1, n, radio)
        t0 = time.perf_counter()
        result = MarchingPlanner(CFG).plan(swarm, m2)
        dt = time.perf_counter() - t0
        timings.append((n, dt, result.total_distance))
    return timings


def test_perf_planner_scaling(benchmark):
    timings = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\nPlanner scaling (scenario-1 shapes, 20x r_c separation):")
    print(format_table(
        ["robots", "plan time", "D"],
        [[n, f"{dt:.2f} s", f"{d / 1000:.0f} km"] for n, dt, d in timings],
    ))
    # Sanity: planning 169 robots stays within interactive budgets.
    assert timings[-1][1] < 60.0


SCALING_SIZES = (100, 1_000, 10_000)


def test_perf_stage_scaling_curve(benchmark):
    curve = benchmark.pedantic(
        lambda: scaling_curve(sizes=SCALING_SIZES), rounds=1, iterations=1
    )
    print("\nPer-stage scaling (uniform synthetic swarms, mean degree ~10):")
    print(format_scaling_table(curve))

    by_key = stage_lookup(curve)
    udg_10k = by_key[("network.udg_edges", 10_000)]
    assert udg_10k["seconds"] < 2.0, f"10k UDG took {udg_10k['seconds']:.2f}s"
    assert udg_10k["peak_bytes"] < 100e6, (
        f"10k UDG peaked at {udg_10k['peak_bytes'] / 1e6:.0f} MB"
    )
    # 100x more robots must cost far less than the 10_000x a quadratic
    # stage would; 300x leaves generous headroom over the ~linear ideal.
    udg_100 = by_key[("network.udg_edges", 100)]
    ratio = udg_10k["seconds"] / max(udg_100["seconds"], 1e-4)
    assert ratio < 300.0, f"UDG scaling ratio t(10k)/t(100) = {ratio:.0f}"
    # Factorization reuse must actually pay off at scale.
    cold = by_key[("harmonic.solve_cold", 10_000)]["seconds"]
    warm = by_key[("harmonic.solve_warm", 10_000)]["seconds"]
    assert warm < cold, f"warm solve ({warm:.3f}s) not faster than cold ({cold:.3f}s)"
