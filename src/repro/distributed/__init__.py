"""Synchronous message-passing runtime and the paper's protocols."""

from repro.distributed.protocols import (
    AveragingNode,
    BoundaryLoopNode,
    DistributedRotationSearch,
    FloodSumNode,
    ReliableFloodNode,
    SubgroupDetectionNode,
    distributed_rotation_search,
    flood_aggregate,
    reliable_flood_aggregate,
    run_boundary_loop_protocol,
    run_distributed_harmonic,
    run_subgroup_detection,
)
from repro.distributed.runtime import LinkFaults, Message, Node, NodeApi, SyncNetwork

__all__ = [
    "AveragingNode",
    "BoundaryLoopNode",
    "DistributedRotationSearch",
    "FloodSumNode",
    "LinkFaults",
    "Message",
    "Node",
    "NodeApi",
    "ReliableFloodNode",
    "SubgroupDetectionNode",
    "SyncNetwork",
    "distributed_rotation_search",
    "flood_aggregate",
    "reliable_flood_aggregate",
    "run_boundary_loop_protocol",
    "run_distributed_harmonic",
    "run_subgroup_detection",
]
