"""Tests for the multi-FoI mission planner."""

import numpy as np
import pytest

from repro.coverage import LloydConfig, gaussian_hotspot_density
from repro.errors import PlanningError
from repro.foi import FieldOfInterest, ellipse_polygon
from repro.marching import MarchingConfig, MissionPlanner
from repro.robots import RadioSpec, Swarm

FAST = MarchingConfig(
    foi_target_points=180, lloyd=LloydConfig(grid_target=600, max_iterations=15)
)


def blob(rx, ry, area, offset, name):
    return FieldOfInterest(
        ellipse_polygon(rx, ry, samples=32).scaled_to_area(area), name=name
    ).translated(offset)


@pytest.fixture(scope="module")
def mission_setup():
    radio = RadioSpec.from_comm_range(80.0)
    m1 = blob(1.0, 1.0, 100_000.0, (0.0, 0.0), "start")
    swarm = Swarm.deploy_lattice(m1, 36, radio)
    targets = [
        blob(1.2, 0.8, 90_000.0, (900.0, 0.0), "leg1"),
        blob(0.9, 1.1, 95_000.0, (1700.0, 300.0), "leg2"),
    ]
    return m1, swarm, targets


class TestMissionPlanner:
    def test_two_leg_mission(self, mission_setup):
        m1, swarm, targets = mission_setup
        report = MissionPlanner(FAST).run(swarm, targets, source_foi=m1)
        assert len(report.legs) == 2
        assert report.all_connected
        assert report.total_distance == pytest.approx(
            sum(leg.total_distance for leg in report.legs)
        )
        assert 0.0 < report.worst_stable_link_ratio <= 1.0
        # The final swarm sits on the last target.
        assert targets[-1].contains(report.final_swarm.positions).all()
        assert report.final_swarm.is_connected()

    def test_legs_chain_positions(self, mission_setup):
        m1, swarm, targets = mission_setup
        report = MissionPlanner(FAST).run(swarm, targets, source_foi=m1)
        leg1, leg2 = report.legs
        assert np.allclose(
            leg2.result.start_positions, leg1.result.final_positions
        )

    def test_per_leg_densities(self, mission_setup):
        m1, swarm, targets = mission_setup
        hot = gaussian_hotspot_density(targets[0].centroid, sigma=80.0, peak=6.0)
        report = MissionPlanner(FAST).run(
            swarm, targets, source_foi=m1, densities=[hot, None]
        )
        assert len(report.legs) == 2

    def test_empty_targets_rejected(self, mission_setup):
        _, swarm, _ = mission_setup
        with pytest.raises(PlanningError):
            MissionPlanner(FAST).run(swarm, [])

    def test_misaligned_densities_rejected(self, mission_setup):
        m1, swarm, targets = mission_setup
        with pytest.raises(PlanningError):
            MissionPlanner(FAST).run(swarm, targets, densities=[None])
