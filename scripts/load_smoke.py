#!/usr/bin/env python
"""CI load smoke: a seeded client burst against a 2-shard fleet.

Boots ``python -m repro serve --service-workers 2`` as a subprocess on
an ephemeral port, fires a fixed-seed 200-client open-loop burst at it
with :mod:`repro.experiments.loadgen`, and asserts the "heavy traffic"
claims the service makes:

1. dedup is *exact*: hits equal ``clients - uniques`` and exactly one
   job is created per unique content address,
2. zero 5xx responses anywhere in the burst,
3. p99 latency per endpoint stays under a (very generous) CI budget,
4. the canonical summary is byte-identical across two bursts against
   two freshly booted fleets - same seed, same bytes, and
5. SIGINT shuts each server down cleanly (exit code 0).

Run:  PYTHONPATH=src python scripts/load_smoke.py
"""

from __future__ import annotations

import signal
import subprocess
import sys

from repro.experiments.loadgen import (
    LoadgenConfig,
    loadgen_passed,
    render_loadgen,
    run_loadgen,
    summary_bytes,
)

CONFIG = LoadgenConfig(
    clients=200,
    duplicate_fraction=0.95,  # 10 unique plans, 190 dedup hits
    arrival_rate_hz=400.0,
    seed=0,
    stream_every=20,  # every 20th client consumes the SSE stream
    foi_target_points=120,
    lloyd_grid_target=300,
    resolution=10,
    timeout_s=600.0,
)
# Generous budgets: CI runners are slow and shared.  "plan"/"result"
# are single HTTP round-trips; "job" is end-to-end completion latency
# (queue wait behind the whole burst + solve), so it gets its own.
P99_BUDGET_MS = {"plan": 5_000.0, "result": 5_000.0, "job": 180_000.0}


def boot_fleet() -> subprocess.Popen:
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--service-workers", "2",
            "--workers", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    # The server announces its bound port on the first stdout line.
    banner = server.stdout.readline().strip()
    print(banner)
    server.port = int(banner.rsplit(":", 1)[1])
    return server


def shutdown(server: subprocess.Popen) -> None:
    server.send_signal(signal.SIGINT)
    try:
        server.wait(timeout=60.0)
    except subprocess.TimeoutExpired:
        server.kill()
        server.wait()
        raise AssertionError("server did not shut down on SIGINT")
    assert server.returncode == 0, f"server exited {server.returncode}"
    print(f"server exited {server.returncode}")


def run_burst(label: str) -> dict:
    server = boot_fleet()
    try:
        summary = run_loadgen(CONFIG, port=server.port)
    finally:
        shutdown(server)
    print(f"--- burst {label} ---")
    print(render_loadgen(summary))

    canonical = summary["canonical"]
    assert canonical["dedup_exact"], canonical
    assert canonical["dedup_hits"] == CONFIG.clients - canonical["uniques"]
    assert canonical["jobs_created"] == canonical["uniques"]
    assert canonical["zero_5xx"], summary["timing"]["errors"]
    assert canonical["retry_after_correct"]
    assert canonical["all_clients_completed"]
    assert canonical["results_byte_identical"]
    for endpoint, stats in summary["timing"]["endpoints"].items():
        assert stats["p99_ms"] <= P99_BUDGET_MS[endpoint], (endpoint, stats)
    assert loadgen_passed(summary)
    return summary


def main() -> int:
    first = run_burst("1/2")
    second = run_burst("2/2")
    assert summary_bytes(first) == summary_bytes(second), (
        "canonical summary differs across fresh fleets for the same seed"
    )
    print("canonical summary byte-identical across fresh fleets: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
