"""Tests for half-plane and convex-window clipping."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    Polygon,
    bounding_box_polygon,
    clip_convex,
    clip_halfplane,
    signed_area,
)

SQUARE = [(0.0, 0.0), (2.0, 0.0), (2.0, 2.0), (0.0, 2.0)]


class TestClipHalfplane:
    def test_cut_in_half(self):
        out = clip_halfplane(SQUARE, [1.0, 0.0], [1.0, 0.0])
        assert abs(signed_area(out)) == pytest.approx(2.0)
        assert np.all(out[:, 0] <= 1.0 + 1e-9)

    def test_keep_everything(self):
        out = clip_halfplane(SQUARE, [5.0, 0.0], [1.0, 0.0])
        assert abs(signed_area(out)) == pytest.approx(4.0)

    def test_remove_everything(self):
        out = clip_halfplane(SQUARE, [-1.0, 0.0], [1.0, 0.0])
        assert len(out) == 0

    def test_empty_input_stays_empty(self):
        out = clip_halfplane(np.zeros((0, 2)), [0, 0], [1, 0])
        assert len(out) == 0

    @given(st.floats(-3, 3), st.floats(0, 2 * np.pi))
    @settings(max_examples=100)
    def test_area_never_grows(self, offset, angle):
        normal = [np.cos(angle), np.sin(angle)]
        point = np.asarray(normal) * offset + [1.0, 1.0]
        out = clip_halfplane(SQUARE, point, normal)
        area = abs(signed_area(out)) if len(out) >= 3 else 0.0
        assert area <= 4.0 + 1e-9


class TestClipConvex:
    def test_identical_windows(self):
        out = clip_convex(SQUARE, SQUARE)
        assert abs(signed_area(out)) == pytest.approx(4.0)

    def test_quarter_overlap(self):
        window = [(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0)]
        out = clip_convex(SQUARE, window)
        assert abs(signed_area(out)) == pytest.approx(1.0)

    def test_disjoint(self):
        window = [(5.0, 5.0), (6.0, 5.0), (6.0, 6.0), (5.0, 6.0)]
        assert len(clip_convex(SQUARE, window)) == 0

    def test_window_too_small_raises(self):
        with pytest.raises(GeometryError):
            clip_convex(SQUARE, [(0, 0), (1, 1)])

    def test_triangle_square_intersection(self):
        # Hypotenuse x + y = 3 cuts the corner of the 2x2 square above it
        # (a right triangle with legs of length 1), leaving area 4 - 0.5.
        tri = [(0.0, 0.0), (3.0, 0.0), (0.0, 3.0)]
        out = clip_convex(tri, SQUARE)
        poly = Polygon(out)
        assert poly.area == pytest.approx(3.5)

    def test_result_inside_both(self, rng):
        subject = Polygon(rng.uniform(0, 4, (3, 2)))
        out = clip_convex(subject.vertices, SQUARE)
        if len(out) >= 3:
            result = Polygon(out)
            assert Polygon(SQUARE).contains(result.vertices).all()
            assert subject.contains(result.vertices).all()


class TestBoundingBox:
    def test_covers_points(self, rng):
        pts = rng.uniform(-5, 5, (30, 2))
        box = Polygon(bounding_box_polygon(pts, margin=0.1))
        assert box.contains(pts).all()

    def test_margin(self):
        box = bounding_box_polygon([[0, 0], [1, 1]], margin=1.0)
        assert box[:, 0].min() == pytest.approx(-1.0)
        assert box[:, 0].max() == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            bounding_box_polygon(np.zeros((0, 2)))
