"""Seeded target-motion generators layered on the scenario zoo.

:func:`mission_targets` turns a :class:`MissionSpec` into the base
marching scenario plus one target FoI per epoch.  Drift is a rigid
translation of the previous target - by construction the translated
region triangulates identically in the mesh layer's canonical frame,
so the replan's harmonic solve is a disk-map cache *hit*.  Deform
redraws the shape from the zoo family (area- and centroid-preserving),
which is a genuine re-solve and a cache *miss*.  Both draws come from
a dedicated seed stream, so the whole sequence is a pure function of
``(spec, config)``.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.zoo.campaign import ZooConfig, ZooScenario, build_zoo_scenario
from repro.experiments.zoo.families import build_foi, family_rng
from repro.foi.region import FieldOfInterest
from repro.missions.spec import MissionConfig, MissionSpec

__all__ = ["mission_targets"]

#: ``family_rng`` stream for target motion (0/1 draw params and build
#: the shape, 2 places the zoo scenario - motion gets its own stream).
_STREAM_MOTION = 7


def _zoo_config(config: MissionConfig) -> ZooConfig:
    method = "ours (a)" if config.method == "a" else "ours (b)"
    return ZooConfig(
        robot_count=config.robot_count,
        separation_factor=config.separation_factor,
        comm_range=config.comm_range,
        foi_target_points=config.foi_target_points,
        grid_target=config.grid_target,
        lloyd_max_iterations=config.lloyd_max_iterations,
        resolution=config.resolution,
        methods=(method,),
    )


def _drift_offset(rng: np.random.Generator, step: float) -> np.ndarray:
    bearing = float(rng.uniform(0.0, 2.0 * np.pi))
    return step * np.array([np.cos(bearing), np.sin(bearing)])


def _deformed(
    spec: MissionSpec, epoch: int, previous: FieldOfInterest
) -> FieldOfInterest:
    """Redraw the target shape, keeping area and centroid."""
    fresh, _ = build_foi(spec.family, spec.seed + 1000 * epoch)
    fresh = fresh.scaled_to_area(previous.area)
    shape = fresh.translated(previous.centroid - fresh.centroid)
    return FieldOfInterest(
        shape.outer, shape.holes,
        name=f"mission-{spec.family}[{spec.seed}]e{epoch}",
    )


def mission_targets(
    spec: MissionSpec, config: MissionConfig | None = None
) -> tuple[ZooScenario, tuple[FieldOfInterest, ...]]:
    """Build the base scenario and the per-epoch target sequence.

    Returns ``(scenario, targets)`` with ``len(targets) ==
    spec.epochs``; ``targets[0]`` is the base zoo target, and each
    later entry applies the spec's motion to its predecessor.
    """
    config = config or MissionConfig()
    scenario = build_zoo_scenario(spec.family, spec.seed, _zoo_config(config))
    rng = family_rng(spec.family, spec.seed, stream=_STREAM_MOTION)
    step = spec.drift_step * config.comm_range

    targets: list[FieldOfInterest] = [scenario.m2]
    for epoch in range(1, spec.epochs):
        current = targets[-1]
        if spec.motion in ("deform", "drift+deform") and (
            spec.motion == "deform" or epoch % 2 == 0
        ):
            current = _deformed(spec, epoch, current)
        if spec.motion in ("drift", "drift+deform"):
            current = current.translated(_drift_offset(rng, step))
        targets.append(current)
    return scenario, tuple(targets)
