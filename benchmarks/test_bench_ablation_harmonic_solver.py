"""A2 - ablation: iterative (distributed) vs sparse-linear harmonic solver.

The paper's robots average neighbour positions until quiescence; the
library defaults to the equivalent sparse linear solve.  This ablation
measures the accuracy gap and the speed ratio on the scenario-3 FoI
mesh, backing the "same fixed point" claim in the solver docs.
"""

import time

import numpy as np

from repro.experiments import format_table
from repro.foi import m2_scenario3
from repro.harmonic import boundary_parameterization, circle_positions
from repro.harmonic.solvers import harmonic_energy, solve_iterative, solve_linear
from repro.mesh import fill_holes, triangulate_foi


def _setup():
    mesh = fill_holes(triangulate_foi(m2_scenario3(), target_points=320).mesh).mesh
    loop, angles = boundary_parameterization(mesh)
    return mesh, loop, circle_positions(angles)


def test_ablation_harmonic_solver(benchmark):
    mesh, loop, bpos = benchmark.pedantic(_setup, rounds=1, iterations=1)

    t0 = time.perf_counter()
    linear = solve_linear(mesh, loop, bpos)
    t_linear = time.perf_counter() - t0

    t0 = time.perf_counter()
    iterative, sweeps = solve_iterative(mesh, loop, bpos, tol=1e-8)
    t_iterative = time.perf_counter() - t0

    max_err = float(np.abs(linear - iterative).max())
    rows = [
        ["linear (sparse)", f"{t_linear * 1e3:.1f} ms", "-",
         f"{harmonic_energy(mesh, linear):.6f}"],
        ["iterative (Jacobi)", f"{t_iterative * 1e3:.1f} ms", sweeps,
         f"{harmonic_energy(mesh, iterative):.6f}"],
    ]
    print(f"\nAblation A2 - harmonic solvers on {mesh.vertex_count} vertices "
          f"(max position gap {max_err:.2e}):")
    print(format_table(["solver", "time", "sweeps", "spring energy"], rows))

    # Same fixed point (up to the iteration tolerance)...
    assert max_err < 1e-4
    # ... and the energies agree to the same order.
    assert harmonic_energy(mesh, iterative) == (
        __import__("pytest").approx(harmonic_energy(mesh, linear), rel=1e-4)
    )
    # The direct solve is the fast path.
    assert t_linear < t_iterative
