"""Recovery metrics for fault-injected missions.

The paper's motivation for the global-connectivity invariant is
recoverability; :mod:`repro.faults` turns that into running code, and
this module scores what the recovery actually cost:

* **time to recover** - mission time spent not marching toward the
  target (escort-rejoin moves, holds for stuck robots, slowed windows,
  consensus rounds).
* **extra distance** - executed fleet distance minus the original
  plan's ``D`` (the paper's distance metric, extended over every
  recovery segment actually flown).
* **stable-link degradation** - the original plan's ``L`` minus the
  final surviving plan's ``L``.
* **replan count** - how many times the survivors had to cooperatively
  determine a new plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["RecoveryMetrics"]


@dataclass(frozen=True)
class RecoveryMetrics:
    """What recovering from a fault schedule cost.

    Attributes
    ----------
    replan_count : int
        Full marching replans forced by crash events.
    rejoin_count : int
        Escort-style rejoin moves needed because survivors were cut.
    consensus_rounds : int
        Message-passing rounds spent on recovery consensus, summed
        over every recovery.
    time_to_recover : float
        Mission time spent recovering instead of marching.
    baseline_distance : float
        The original (fault-free) plan's ``D``.
    executed_distance : float
        Fleet distance actually flown across every segment: partial
        legs up to each failure, rejoin moves, and the final plan.
    extra_distance : float
        ``executed_distance - baseline_distance``; negative values mean
        the dead robots' unflown share outweighed the recovery detours.
    baseline_stable_link_ratio : float
        ``L`` of the original plan.
    final_stable_link_ratio : float
        ``L`` of the last replanned leg (the original ``L`` when no
        replan happened).
    stable_link_degradation : float
        ``baseline - final`` (positive = the recovery flies a worse
        link regime).
    connected_all : bool
        Whether ``C = 1`` held at every sampled instant of every
        post-replan trajectory.
    lost_robots : int
        Robots that crashed over the schedule.
    survivor_count : int
        Robots alive at mission end.
    """

    replan_count: int
    rejoin_count: int
    consensus_rounds: int
    time_to_recover: float
    baseline_distance: float
    executed_distance: float
    extra_distance: float
    baseline_stable_link_ratio: float
    final_stable_link_ratio: float
    stable_link_degradation: float
    connected_all: bool
    lost_robots: int
    survivor_count: int

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (used by the chaos summary documents)."""
        return {
            "replan_count": self.replan_count,
            "rejoin_count": self.rejoin_count,
            "consensus_rounds": self.consensus_rounds,
            "time_to_recover": self.time_to_recover,
            "baseline_distance": self.baseline_distance,
            "executed_distance": self.executed_distance,
            "extra_distance": self.extra_distance,
            "baseline_stable_link_ratio": self.baseline_stable_link_ratio,
            "final_stable_link_ratio": self.final_stable_link_ratio,
            "stable_link_degradation": self.stable_link_degradation,
            "connected_all": self.connected_all,
            "lost_robots": self.lost_robots,
            "survivor_count": self.survivor_count,
        }
