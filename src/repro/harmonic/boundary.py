"""Boundary parameterization onto the unit circle (paper Sec. III-B).

The paper's distributed rule: the boundary vertex with the smallest ID
starts a token that walks the closed boundary loop counting hops; once
the loop size is known every boundary vertex places itself "uniformly
and sequentially" along the unit circle by its hop number.  That is the
``uniform`` mode below.  The ``chord`` mode spaces vertices
proportionally to boundary edge lengths instead, which lowers metric
distortion for unevenly sampled boundaries and is used for FoI grid
meshes (whose boundary sampling is already uniform, making the two
modes nearly identical there).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.mesh.trimesh import TriMesh

__all__ = ["circle_positions", "boundary_parameterization"]


def circle_positions(angles) -> np.ndarray:
    """Unit-circle points for an array of angles (radians)."""
    a = np.asarray(angles, dtype=float)
    return np.column_stack([np.cos(a), np.sin(a)])


def boundary_parameterization(
    mesh: TriMesh,
    mode: str = "chord",
    start_angle: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Assign unit-circle positions to the outer boundary loop.

    The loop is rotated to start at its smallest vertex ID (the paper's
    initiator election) and traversed CCW, so two meshes of the same
    region sampled identically get compatible parameterizations.

    Parameters
    ----------
    mesh : TriMesh
        Must have at least one boundary loop; only the outer loop is
        parameterized (holes are expected to be filled with virtual
        vertices before the harmonic solve).
    mode : {"uniform", "chord"}
        ``uniform``: equal angular spacing by hop count (the paper's
        distributed rule).  ``chord``: spacing proportional to boundary
        edge length.
    start_angle : float
        Angle (radians) given to the initiator vertex.

    Returns
    -------
    (loop, angles)
        ``loop`` - (b,) int array of boundary vertex indices in CCW
        order starting at the smallest ID; ``angles`` - (b,) float
        array of their circle angles.
    """
    loop = mesh.outer_boundary_loop
    if len(loop) < 3:
        raise MappingError("outer boundary loop has fewer than 3 vertices")
    start = int(np.argmin(loop))
    loop = loop[start:] + loop[:start]
    loop_arr = np.asarray(loop, dtype=int)

    if mode == "uniform":
        fractions = np.arange(len(loop_arr)) / len(loop_arr)
    elif mode == "chord":
        pts = mesh.vertices[loop_arr]
        nxt = np.roll(pts, -1, axis=0)
        seg = np.hypot(nxt[:, 0] - pts[:, 0], nxt[:, 1] - pts[:, 1])
        total = float(seg.sum())
        if total <= 0:
            raise MappingError("boundary loop has zero length")
        fractions = np.concatenate([[0.0], np.cumsum(seg[:-1]) / total])
    else:
        raise MappingError(f"unknown boundary parameterization mode {mode!r}")

    angles = start_angle + 2.0 * np.pi * fractions
    return loop_arr, angles
