"""E5 - Fig. 3(d) rows 4-5: scenario 5 (non-hole -> multiple small holes)."""

from _shared import assert_paper_shape, get_sweep, print_sweep


def test_fig3d_scenario5(benchmark):
    sweep = benchmark.pedantic(get_sweep, args=(5,), rounds=1, iterations=1)
    print_sweep(sweep)
    assert_paper_shape(sweep)
