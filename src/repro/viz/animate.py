"""Animated SVG rendering of a transition (SMIL, no dependencies).

Renders the swarm's march as a self-contained animated SVG: the FoIs
as outlines, each robot as a circle whose position is keyframed from
the sampled trajectory.  Open the file in any browser to watch the
transition; no JavaScript or external player required.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.foi.region import FieldOfInterest
from repro.robots.motion import SwarmTrajectory
from repro.viz.svg import SvgCanvas

__all__ = ["animate_transition"]


def animate_transition(
    trajectory: SwarmTrajectory,
    fois: list[FieldOfInterest],
    path,
    duration_seconds: float = 6.0,
    samples: int = 60,
    width: int = 800,
    robot_color: str = "#2a78d6",
) -> Path:
    """Write an animated SVG of a swarm trajectory.

    Parameters
    ----------
    trajectory : SwarmTrajectory
    fois : list of FieldOfInterest
        Regions drawn as static outlines (source and target).
    path : path-like
        Output file.
    duration_seconds : float
        Wall-clock length of one animation loop.
    samples : int
        Keyframes sampled uniformly over the transition.
    width : int
        Pixel width of the viewport.
    robot_color : str

    Returns
    -------
    Path of the written file.
    """
    if duration_seconds <= 0:
        raise ValueError("duration must be positive")
    if samples < 2:
        raise ValueError("need at least two keyframes")
    times = np.linspace(trajectory.t_start, trajectory.t_end, samples)
    table = trajectory.positions_over(times)  # (k, n, 2)

    # World bounds: all FoIs plus every sampled position.
    xs = [table[..., 0].min(), table[..., 0].max()]
    ys = [table[..., 1].min(), table[..., 1].max()]
    for foi in fois:
        xmin, ymin, xmax, ymax = foi.bounds
        xs.extend([xmin, xmax])
        ys.extend([ymin, ymax])
    pad_x = 0.03 * (max(xs) - min(xs))
    pad_y = 0.03 * (max(ys) - min(ys))
    canvas = SvgCanvas(
        (min(xs) - pad_x, min(ys) - pad_y, max(xs) + pad_x, max(ys) + pad_y),
        width=width,
    )
    for foi in fois:
        canvas.polygon(foi.outer.vertices, fill="#f4f4f0", stroke="#444")
        for hole in foi.holes:
            canvas.polygon(hole.vertices, fill="#cfd8dc", stroke="#666")

    # Hand-built animated circles (SvgCanvas emits static elements only).
    n = table.shape[1]
    animated: list[str] = []
    key_times = ";".join(
        f"{(t - times[0]) / max(times[-1] - times[0], 1e-12):.4f}" for t in times
    )
    for i in range(n):
        screen = [canvas.to_screen(table[k, i]) for k in range(samples)]
        cx0, cy0 = screen[0]
        cx_values = ";".join(f"{x:.1f}" for x, _ in screen)
        cy_values = ";".join(f"{y:.1f}" for _, y in screen)
        animated.append(
            f'<circle cx="{cx0:.1f}" cy="{cy0:.1f}" r="3" fill="{robot_color}">'
            f'<animate attributeName="cx" values="{cx_values}" '
            f'keyTimes="{key_times}" dur="{duration_seconds}s" '
            f'repeatCount="indefinite"/>'
            f'<animate attributeName="cy" values="{cy_values}" '
            f'keyTimes="{key_times}" dur="{duration_seconds}s" '
            f'repeatCount="indefinite"/>'
            f"</circle>"
        )

    doc = canvas.to_string()
    doc = doc.replace("</svg>", "\n".join(animated) + "\n</svg>")
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(doc)
    return out
