"""Unit tests for the write-ahead job journal and queue recovery.

The durability layer's contracts: every acknowledged transition is a
fsynced record that replays to the same folded state, torn tails are
skipped (never misread), compaction preserves the fold, result
payloads survive via digest-verified side files, and
``JobQueue.restore`` re-installs jobs with the provenance the
at-least-once contract promises (``recovered`` for safe restores,
``retried`` for mid-claim casualties).
"""

import json
import os

import pytest

from repro.errors import JournalError
from repro.io import (
    JOURNAL_FORMAT_VERSION,
    check_journal_version,
    dumps_canonical,
    journal_record,
)
from repro.service import JobQueue, JobJournal, replay_records
from repro.service.jobs import JobExpiredError, normalize_plan_request


def request(sep=20.0):
    normalized, _ = normalize_plan_request(
        {"scenario_ids": [1], "separation_factor": sep}
    )
    return normalized


@pytest.fixture
def journal(tmp_path):
    with JobJournal(tmp_path / "j", fsync=False) as j:
        yield j


class TestRecordFormat:
    def test_journal_record_is_versioned(self):
        record = journal_record("submitted", job_id="a")
        assert record["journal_version"] == JOURNAL_FORMAT_VERSION
        assert record["type"] == "submitted"
        assert record["job_id"] == "a"

    def test_version_check_rejects_future_versions(self):
        with pytest.raises(JournalError, match="version"):
            check_journal_version({"journal_version": 99, "type": "job"})

    def test_version_check_accepts_current(self):
        check_journal_version(journal_record("event"))


class TestAppendReplay:
    def test_round_trip(self, journal):
        journal.append("submitted", job_id="a", request=request(),
                       priority=1, provenance="new", submissions=1)
        journal.append("claimed", job_id="a")
        journal.append("done", job_id="a", digest=None)
        replay = journal.replay()
        assert replay.records == 3
        assert replay.torn == 0
        assert replay.jobs["a"]["state"] == "done"
        assert replay.jobs["a"]["priority"] == 1

    def test_fresh_segment_per_open(self, tmp_path):
        with JobJournal(tmp_path, fsync=False) as j:
            j.append("submitted", job_id="a", request=request())
        with JobJournal(tmp_path, fsync=False) as j:
            j.append("claimed", job_id="a")
            assert j.segment_count == 2
            assert j.replay().jobs["a"]["state"] == "running"

    def test_segment_rotation(self, tmp_path):
        with JobJournal(tmp_path, segment_max_bytes=64, fsync=False) as j:
            for index in range(5):
                j.append("event", job_id="a",
                         event={"seq": index, "kind": "phase"})
            assert j.segment_count > 1
            replay = j.replay()
            assert replay.records == 5

    def test_torn_tail_skipped_and_counted(self, tmp_path):
        with JobJournal(tmp_path, fsync=False) as j:
            j.append("submitted", job_id="a", request=request())
            j.append("claimed", job_id="a")
            [segment] = j._segment_paths()
        raw = segment.read_bytes()
        torn = raw + dumps_canonical(journal_record("done", job_id="a"))[:-7]
        segment.write_bytes(torn)
        with JobJournal(tmp_path, fsync=False) as j:
            replay = j.replay()
        assert replay.torn == 1
        assert replay.jobs["a"]["state"] == "running"  # done never landed

    def test_unterminated_but_canonical_tail_is_kept(self, tmp_path):
        with JobJournal(tmp_path, fsync=False) as j:
            j.append("submitted", job_id="a", request=request())
            [segment] = j._segment_paths()
        # Strip only the trailing newline: the record bytes round-trip
        # canonically, so replay must keep it.
        segment.write_bytes(segment.read_bytes()[:-1])
        with JobJournal(tmp_path, fsync=False) as j:
            replay = j.replay()
        assert replay.torn == 0
        assert "a" in replay.jobs

    def test_unsupported_version_raises(self, tmp_path):
        with JobJournal(tmp_path, fsync=False) as j:
            j.append("submitted", job_id="a", request=request())
            [segment] = j._segment_paths()
        record = json.loads(segment.read_text())
        record["journal_version"] = 99
        segment.write_bytes(dumps_canonical(record) + b"\n")
        with JobJournal(tmp_path, fsync=False) as j:
            with pytest.raises(JournalError, match="version"):
                j.replay()

    def test_compaction_folds_to_one_segment(self, tmp_path):
        with JobJournal(tmp_path, fsync=False) as j:
            j.append("submitted", job_id="a", request=request(), priority=2)
            j.append("claimed", job_id="a")
            j.append("failed", job_id="a", error="boom")
            j.append("evicted", job_id="b", at=123.0)
            j.compact(j.replay())
            assert j.segment_count == 1
            replay = j.replay()
        assert replay.records == 2  # one job snapshot + one eviction
        assert replay.jobs["a"]["state"] == "failed"
        assert replay.jobs["a"]["error"] == "boom"
        assert replay.evicted == {"b": 123.0}

    def test_append_after_close_raises(self, tmp_path):
        j = JobJournal(tmp_path, fsync=False)
        j.close()
        with pytest.raises(JournalError, match="closed"):
            j.append("event", job_id="a", event={})


class TestLockFile:
    def test_live_process_lock_refused(self, tmp_path):
        # Same-pid reopen steals its own lock, so a *different* live
        # writer has to be simulated: pid 1 is always alive.
        (tmp_path / "journal.lock").write_text("1\n")
        with pytest.raises(JournalError, match="locked by live"):
            JobJournal(tmp_path, fsync=False)

    def test_stale_lock_stolen(self, tmp_path):
        j = JobJournal(tmp_path, fsync=False)
        j.close()
        # Fake a dead writer: a pid that cannot exist.
        (tmp_path / "journal.lock").write_text("999999999\n")
        with JobJournal(tmp_path, fsync=False) as j2:
            assert (tmp_path / "journal.lock").read_text().strip() == str(
                os.getpid()
            )
            j2.append("event", job_id="a", event={})


class TestResultSideFiles:
    def test_digest_verified_round_trip(self, journal):
        digest = journal.put_result("a", b'{"x":1}')
        assert journal.get_result("a", digest) == b'{"x":1}'

    def test_mismatched_digest_returns_none(self, journal):
        journal.put_result("a", b'{"x":1}')
        assert journal.get_result("a", "0" * 64) is None

    def test_missing_payload_returns_none(self, journal):
        assert journal.get_result("missing", None) is None

    def test_drop_result(self, journal):
        digest = journal.put_result("a", b"data")
        journal.drop_result("a")
        assert journal.get_result("a", digest) is None


class TestFold:
    def test_released_parks_job(self):
        replay = replay_records(iter([
            journal_record("submitted", job_id="a", request=request()),
            journal_record("claimed", job_id="a"),
            journal_record("released", job_id="a"),
        ]))
        assert replay.jobs["a"]["state"] == "queued"
        assert replay.jobs["a"]["interrupted"] is True

    def test_resubmission_revives_and_resets_events(self):
        replay = replay_records(iter([
            journal_record("submitted", job_id="a", request=request()),
            journal_record("event", job_id="a",
                           event={"seq": 0, "kind": "queued"}),
            journal_record("cancelled", job_id="a"),
            journal_record("submitted", job_id="a", request=request(),
                           submissions=2),
        ]))
        assert replay.jobs["a"]["state"] == "queued"
        assert replay.jobs["a"]["events"] == []
        assert replay.jobs["a"]["submissions"] == 2

    def test_eviction_forgets_job_but_remembers_when(self):
        replay = replay_records(iter([
            journal_record("submitted", job_id="a", request=request()),
            journal_record("evicted", job_id="a", at=7.5),
        ]))
        assert "a" not in replay.jobs
        assert replay.evicted == {"a": 7.5}

    def test_transition_without_submission_ignored(self):
        replay = replay_records(iter([
            journal_record("claimed", job_id="ghost"),
        ]))
        assert replay.jobs == {}


class TestQueueJournalIntegration:
    def run_queue(self, tmp_path, script):
        with JobJournal(tmp_path, fsync=False) as journal:
            queue = JobQueue(capacity=8, journal=journal)
            script(queue, journal)
            return journal.replay()

    def test_submit_claim_complete_replays_done(self, tmp_path):
        def script(queue, journal):
            job, _ = queue.submit(request())
            claimed = queue.claim(timeout=1.0)
            queue.complete(claimed.job_id, b'{"plan":1}')

        replay = self.run_queue(tmp_path, script)
        [state] = replay.jobs.values()
        assert state["state"] == "done"
        assert state["digest"] is not None

    def test_restore_done_job_keeps_payload(self, tmp_path):
        with JobJournal(tmp_path, fsync=False) as journal:
            queue = JobQueue(capacity=8, journal=journal)
            job, _ = queue.submit(request())
            queue.claim(timeout=1.0)
            queue.complete(job.job_id, b'{"plan":1}')
        with JobJournal(tmp_path, fsync=False) as journal:
            queue = JobQueue(capacity=8, journal=journal)
            replay = journal.replay()
            stats = queue.restore(list(replay.jobs.values()), replay.evicted)
            restored = queue.get(job.job_id)
        assert stats == {"restored": 1, "requeued": 0, "retried": 0,
                         "completed": 1, "failed": 0, "cancelled": 0}
        assert restored.state == "done"
        assert restored.result == b'{"plan":1}'
        assert restored.provenance == "recovered"

    def test_restore_running_job_becomes_retried(self, tmp_path):
        with JobJournal(tmp_path, fsync=False) as journal:
            queue = JobQueue(capacity=8, journal=journal)
            job, _ = queue.submit(request())
            queue.claim(timeout=1.0)
            # kill -9 here: no further records.
        with JobJournal(tmp_path, fsync=False) as journal:
            queue = JobQueue(capacity=8, journal=journal)
            replay = journal.replay()
            stats = queue.restore(list(replay.jobs.values()), replay.evicted)
            restored = queue.get(job.job_id)
            reclaimed = queue.claim(timeout=1.0)
        assert stats["retried"] == 1
        assert restored.provenance == "retried"
        assert restored.events[-1]["kind"] == "retried"
        assert reclaimed.job_id == job.job_id  # claimable again

    def test_restore_done_with_torn_payload_requeues(self, tmp_path):
        with JobJournal(tmp_path, fsync=False) as journal:
            queue = JobQueue(capacity=8, journal=journal)
            job, _ = queue.submit(request())
            queue.claim(timeout=1.0)
            queue.complete(job.job_id, b'{"plan":1}')
        (tmp_path / "results" / f"{job.job_id}.json").write_bytes(b'{"pl')
        with JobJournal(tmp_path, fsync=False) as journal:
            queue = JobQueue(capacity=8, journal=journal)
            replay = journal.replay()
            stats = queue.restore(list(replay.jobs.values()), replay.evicted)
            restored = queue.get(job.job_id)
        assert stats["requeued"] == 1
        assert restored.state == "queued"
        assert restored.provenance == "recovered"

    def test_retried_provenance_survives_second_crash(self, tmp_path):
        with JobJournal(tmp_path, fsync=False) as journal:
            queue = JobQueue(capacity=8, journal=journal)
            job, _ = queue.submit(request())
            queue.claim(timeout=1.0)
        with JobJournal(tmp_path, fsync=False) as journal:
            queue = JobQueue(capacity=8, journal=journal)
            replay = journal.replay()
            queue.restore(list(replay.jobs.values()), replay.evicted)
            states, evicted = queue.snapshot_state()
            journal.compact(type(replay)(
                jobs={s["job_id"]: s for s in states}, evicted=evicted,
            ))
        with JobJournal(tmp_path, fsync=False) as journal:
            queue = JobQueue(capacity=8, journal=journal)
            replay = journal.replay()
            queue.restore(list(replay.jobs.values()), replay.evicted)
            restored = queue.get(job.job_id)
        assert restored.provenance == "retried"
        # Event sequences stay contiguous across the double crash.
        seqs = [e["seq"] for e in restored.events]
        assert seqs == list(range(len(seqs)))

    def test_release_parks_until_restore(self, tmp_path):
        with JobJournal(tmp_path, fsync=False) as journal:
            queue = JobQueue(capacity=8, journal=journal)
            job, _ = queue.submit(request())
            queue.claim(timeout=1.0)
            assert queue.release(job.job_id)
            assert queue.get(job.job_id).interrupted is True
            assert queue.claim(timeout=0.05) is None  # parked
        with JobJournal(tmp_path, fsync=False) as journal:
            queue = JobQueue(capacity=8, journal=journal)
            replay = journal.replay()
            queue.restore(list(replay.jobs.values()), replay.evicted)
            reclaimed = queue.claim(timeout=1.0)
        assert reclaimed.job_id == job.job_id

    def test_eviction_memory_round_trips(self, tmp_path):
        clock = [0.0]
        with JobJournal(tmp_path, fsync=False) as journal:
            queue = JobQueue(capacity=8, ttl_s=10.0,
                             clock=lambda: clock[0], journal=journal)
            job, _ = queue.submit(request())
            queue.claim(timeout=1.0)
            queue.complete(job.job_id, b"{}")
            clock[0] = 100.0
            queue.evict_expired()
            assert queue.get(job.job_id) is None
            assert queue.evicted_at(job.job_id) is not None
        with JobJournal(tmp_path, fsync=False) as journal:
            queue = JobQueue(capacity=8, journal=journal)
            replay = journal.replay()
            queue.restore(list(replay.jobs.values()), replay.evicted)
            assert queue.evicted_at(job.job_id) is not None

    def test_job_expired_error_carries_eviction_time(self):
        err = JobExpiredError("gone", evicted_at=42.0)
        assert err.evicted_at == 42.0
