"""E1 - Fig. 3(a) rows 4-5: scenario 1 (non-hole -> non-hole blob).

Regenerates the distance-ratio and stable-link-ratio series over the
10x-100x communication-range separation sweep and asserts the paper's
qualitative shape (ours converge to Hungarian's distance while
preserving far more links; global connectivity always holds).
"""

from _shared import assert_paper_shape, get_sweep, print_sweep


def test_fig3a_scenario1(benchmark):
    sweep = benchmark.pedantic(get_sweep, args=(1,), rounds=1, iterations=1)
    print_sweep(sweep)
    assert_paper_shape(sweep)
    # Scenario-1 specific: similar blob shapes keep L very high for ours.
    assert min(sweep.series("stable_link_ratio", "ours (a)")) > 0.9
