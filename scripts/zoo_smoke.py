#!/usr/bin/env python
"""CI smoke test for the scenario-zoo invariant campaign.

Runs ``python -m repro zoo`` twice (once serial, once with two
workers) over a small fixed-seed family x seed matrix, through a real
process boundary, and asserts the campaign contract:

1. both invocations exit 0 with every invariant passing,
2. the two summary files are byte-identical (same (family, seed) =>
   same campaign bytes, regardless of worker count or process),
3. a counterexample triple built from any case document replays
   byte-identically through ``--replay``, and
4. a tampered triple is flagged as DIVERGED with a non-zero exit
   (the replay check actually checks something).

Run:  PYTHONPATH=src python scripts/zoo_smoke.py
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
import tempfile
from pathlib import Path

MATRIX = ["--families", "corridor", "star", "--seeds", "2"]


def run_zoo(extra: list[str]) -> subprocess.CompletedProcess:
    cmd = [sys.executable, "-m", "repro", "zoo", *extra]
    print(f"$ {' '.join(cmd)}")
    proc = subprocess.run(cmd, text=True, capture_output=True)
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    return proc


def canonical_sha(doc) -> str:
    payload = json.dumps(
        doc, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        serial = Path(tmp) / "serial.json"
        parallel = Path(tmp) / "parallel.json"
        proc = run_zoo([*MATRIX, "--workers", "1", "--output", str(serial)])
        assert proc.returncode == 0, f"serial run exit {proc.returncode}"
        proc = run_zoo([*MATRIX, "--workers", "2", "--output", str(parallel)])
        assert proc.returncode == 0, f"parallel run exit {proc.returncode}"

        a, b = serial.read_bytes(), parallel.read_bytes()
        assert a == b, "zoo summaries differ between worker counts"
        print(f"byte-identical summaries: {len(a)} bytes")

        summary = json.loads(a)
        agg = summary["summary"]
        assert agg["all_pass"], agg
        assert agg["cases"] == len(summary["cases"]) > 0, agg
        assert summary["counterexamples"] == [], summary["counterexamples"]
        for family, fam in summary["families"].items():
            assert fam["passed"] == fam["cases"], (family, fam)
            assert all(v == 0 for v in fam["invariant_failures"].values())

        # Counterexample-replay round trip: a triple built from a case
        # document must reproduce that document byte for byte.
        case = summary["cases"][0]
        entry = {
            "family": case["family"],
            "seed": case["seed"],
            "params": case["params"],
            "case_sha256": canonical_sha(case),
        }
        triple = Path(tmp) / "triple.json"
        triple.write_text(json.dumps(entry))
        proc = run_zoo(["--replay", str(triple)])
        assert proc.returncode == 0, f"replay exit {proc.returncode}"
        assert "byte-identical" in proc.stdout, proc.stdout
        print("replay round-trip: byte-identical")

        # A tampered digest must be caught.
        entry["case_sha256"] = "0" * 64
        triple.write_text(json.dumps(entry))
        proc = run_zoo(["--replay", str(triple)])
        assert proc.returncode != 0, "tampered replay not flagged"
        assert "DIVERGED" in proc.stdout, proc.stdout
        print("tampered replay flagged: DIVERGED")
    print("zoo smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
