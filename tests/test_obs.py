"""Unit tests for the observability layer (tracer, metrics, JSONL sink)."""

import io
import json
import threading

import pytest

from repro.obs import (
    JsonlSink,
    Metrics,
    NullTracer,
    Tracer,
    activate,
    activate_metrics,
    get_metrics,
    get_tracer,
    read_jsonl,
    span,
)


class TestTracerSpans:
    def test_span_records_duration_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", size=3) as sp:
            sp.set("extra", "yes").set_attributes(more=1)
        (rec,) = tracer.get_trace()
        assert rec.name == "work"
        assert rec.duration_s is not None and rec.duration_s >= 0.0
        assert rec.attributes == {"size": 3, "extra": "yes", "more": 1}

    def test_nesting_parents_and_depths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("sibling"):
                pass
        outer, inner, leaf, sibling = tracer.get_trace()
        assert [r.depth for r in (outer, inner, leaf, sibling)] == [0, 1, 2, 1]
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id
        assert sibling.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_span_names_in_start_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert tracer.span_names() == ["a", "b", "c"]

    def test_call_count_and_phase_timings(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("repeated"):
                pass
        assert tracer.call_count("repeated") == 3
        timings = tracer.phase_timings()
        assert timings["repeated"]["calls"] == 3
        assert timings["repeated"]["total_s"] >= 0.0
        assert timings["repeated"]["mean_s"] == pytest.approx(
            timings["repeated"]["total_s"] / 3
        )

    def test_duration_recorded_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (rec,) = tracer.get_trace()
        assert rec.duration_s is not None

    def test_threaded_spans_do_not_cross_nest(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(name):
            barrier.wait()
            with tracer.span(name):
                pass

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r.depth == 0 for r in tracer.get_trace())


class TestAmbientTracer:
    def test_default_is_disabled(self):
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer)
        assert not tracer.enabled

    def test_module_span_is_noop_when_disabled(self):
        # The shared no-op context manager records nothing anywhere.
        with span("anything", key=1) as sp:
            sp.set("k", "v").set_attributes(a=2)
        assert get_tracer().get_trace() == []

    def test_activate_scopes_the_tracer(self):
        tracer = Tracer()
        with activate(tracer):
            assert get_tracer() is tracer
            with span("scoped"):
                pass
        assert get_tracer() is not tracer
        assert tracer.span_names() == ["scoped"]

    def test_activate_none_restores_noop(self):
        with activate(None):
            assert not get_tracer().enabled


class TestMetrics:
    def test_counter(self):
        m = Metrics()
        m.counter("hits").inc()
        m.counter("hits").inc(4)
        assert m.counter("hits").value == 5.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Metrics().counter("x").inc(-1)

    def test_gauge(self):
        m = Metrics()
        m.gauge("level").set(7)
        m.gauge("level").inc(-2)
        assert m.gauge("level").value == 5.0

    def test_histogram(self):
        m = Metrics()
        for v in (1.0, 3.0, 2.0):
            m.histogram("obs").observe(v)
        h = m.histogram("obs")
        assert (h.count, h.min, h.max) == (3, 1.0, 3.0)
        assert h.mean == pytest.approx(2.0)

    def test_kind_conflict_raises(self):
        m = Metrics()
        m.counter("name")
        with pytest.raises(TypeError):
            m.gauge("name")

    def test_snapshot_and_reset(self):
        m = Metrics()
        m.counter("b").inc()
        m.gauge("a").set(1)
        snap = m.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["b"] == {"kind": "counter", "name": "b", "value": 1.0}
        m.reset()
        assert m.snapshot() == {}

    def test_ambient_registry_scoping(self):
        mine = Metrics()
        with activate_metrics(mine):
            assert get_metrics() is mine
            get_metrics().counter("scoped").inc()
        assert mine.counter("scoped").value == 1.0
        assert get_metrics() is not mine


class TestJsonlSink:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        with JsonlSink(path) as sink:
            tracer.sink = sink
            with tracer.span("outer", robots=4):
                with tracer.span("inner"):
                    pass
            metrics = Metrics()
            metrics.counter("events").inc(2)
            sink.emit_metrics(metrics)
            assert sink.events_written == 3
        events = read_jsonl(path)
        spans = [e for e in events if e["type"] == "span"]
        # Spans are emitted as they *close*: inner first.
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert spans[1]["attributes"] == {"robots": 4}
        assert spans[0]["parent_id"] == spans[1]["span_id"]
        (metric,) = [e for e in events if e["type"] == "metric"]
        assert metric["name"] == "events" and metric["value"] == 2.0

    def test_numpy_values_are_coerced(self):
        import numpy as np

        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit({"scalar": np.float64(1.5), "arr": np.arange(3)})
        event = json.loads(buf.getvalue())
        assert event == {"scalar": 1.5, "arr": [0, 1, 2]}

    def test_borrowed_file_left_open(self):
        buf = io.StringIO()
        with JsonlSink(buf) as sink:
            sink.emit({"a": 1})
        assert not buf.closed
