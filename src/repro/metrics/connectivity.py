"""Global connectivity ``C`` over a transition (paper Definition 2).

A transition has ``C = 1`` when, at every instant, every robot has a
multi-hop communication path to the network boundary (the robots on the
outer boundary loop of the extracted triangulation ``T``).  When no
boundary anchor set is given the check degrades to plain graph
connectivity, which is the same predicate whenever the anchors are a
non-empty subset of the swarm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.udg import UnitDiskGraph
from repro.robots.motion import SwarmTrajectory

__all__ = ["ConnectivityReport", "global_connectivity", "connectivity_report"]


@dataclass(frozen=True)
class ConnectivityReport:
    """Outcome of the Definition-2 check over a transition.

    Attributes
    ----------
    connected : bool
        The paper's ``C`` as a boolean.
    first_failure_time : float or None
        Earliest sampled instant at which some robot lost its path to
        the boundary anchors.
    max_isolated : int
        Largest number of simultaneously isolated robots at any sample.
    samples : int
        Number of instants evaluated.
    """

    connected: bool
    first_failure_time: float | None
    max_isolated: int
    samples: int

    @property
    def as_flag(self) -> str:
        """Table-I style "Y"/"N" rendering."""
        return "Y" if self.connected else "N"


def global_connectivity(
    trajectory: SwarmTrajectory,
    comm_range: float,
    boundary_anchors=None,
    resolution: int = 32,
) -> bool:
    """Definition 2's ``C`` as a boolean."""
    return connectivity_report(
        trajectory, comm_range, boundary_anchors, resolution
    ).connected


def connectivity_report(
    trajectory: SwarmTrajectory,
    comm_range: float,
    boundary_anchors=None,
    resolution: int = 32,
) -> ConnectivityReport:
    """Evaluate Definition 2 over a trajectory's sampled instants.

    Parameters
    ----------
    trajectory : SwarmTrajectory
    comm_range : float
    boundary_anchors : iterable of int, optional
        Robot indices forming the network boundary.  Defaults to
        requiring plain connectivity of the whole graph.
    resolution : int
        Uniform sample count merged with the trajectory's critical
        times.
    """
    times = trajectory.sample_times(resolution)
    table = trajectory.positions_over(times)
    anchors = None if boundary_anchors is None else [int(a) for a in boundary_anchors]
    first_failure = None
    max_isolated = 0
    for t, snapshot in zip(times, table):
        graph = UnitDiskGraph(snapshot, comm_range)
        if anchors is None:
            comps = graph.components
            isolated = graph.node_count - len(comps[0]) if comps else 0
        else:
            reached = graph.nodes_connected_to(anchors)
            isolated = int((~reached).sum())
        if isolated > 0:
            max_isolated = max(max_isolated, isolated)
            if first_failure is None:
                first_failure = float(t)
    return ConnectivityReport(
        connected=first_failure is None,
        first_failure_time=first_failure,
        max_isolated=max_isolated,
        samples=len(times),
    )
