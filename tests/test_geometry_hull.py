"""Convex hull tests, with scipy as the independent oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.spatial import ConvexHull as ScipyHull

from repro.errors import GeometryError
from repro.geometry import Polygon, convex_hull, signed_area

coord = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


class TestConvexHullBasics:
    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            convex_hull(np.zeros((0, 2)))

    def test_single_point(self):
        hull = convex_hull([[1.0, 2.0]])
        assert hull.shape == (1, 2)

    def test_two_points(self):
        hull = convex_hull([[0, 0], [1, 1]])
        assert hull.shape == (2, 2)

    def test_collinear_points(self):
        hull = convex_hull([[0, 0], [1, 0], [2, 0], [3, 0]])
        assert len(hull) == 2

    def test_square_with_interior(self):
        pts = [[0, 0], [1, 0], [1, 1], [0, 1], [0.5, 0.5], [0.2, 0.8]]
        hull = convex_hull(pts)
        assert len(hull) == 4
        assert signed_area(hull) == pytest.approx(1.0)

    def test_ccw_orientation(self):
        hull = convex_hull([[0, 0], [2, 0], [1, 2], [1, 0.5]])
        assert signed_area(hull) > 0

    def test_duplicates_ignored(self):
        hull = convex_hull([[0, 0], [0, 0], [1, 0], [1, 0], [0, 1]])
        assert len(hull) == 3


class TestAgainstScipy:
    @given(
        st.lists(st.tuples(coord, coord), min_size=4, max_size=40)
    )
    @settings(max_examples=100)
    def test_same_area_as_scipy(self, pts):
        arr = np.unique(np.asarray(pts, dtype=float), axis=0)
        mine = convex_hull(arr)
        if len(mine) < 3 or abs(signed_area(mine)) < 1e-6:
            # (Near-)degenerate input: qhull rejects it; nothing to compare.
            return
        theirs = ScipyHull(arr)
        assert signed_area(mine) == pytest.approx(theirs.volume, rel=1e-7)

    @given(st.lists(st.tuples(coord, coord), min_size=3, max_size=30))
    @settings(max_examples=100)
    def test_all_points_inside_hull(self, pts):
        arr = np.asarray(pts, dtype=float)
        hull = convex_hull(arr)
        if len(hull) < 3 or abs(signed_area(hull)) < 1e-6:
            return
        poly = Polygon(hull)
        assert poly.contains(arr).all()
