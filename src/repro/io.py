"""Serialisation of plans and evaluations to JSON.

A marching result carries numpy arrays and nested dataclasses; this
module flattens the durable parts (positions, targets, per-robot
paths, metric scalars) into a plain-JSON document so downstream
analysis does not need the library - and a round-trip loader so it can
have the trajectory back when it does.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ReproError
from repro.marching.result import MarchingResult, RepairInfo
from repro.network.links import LinkTable
from repro.robots.motion import SwarmTrajectory, TimedPath

__all__ = ["result_to_dict", "save_result", "load_result_dict", "trajectory_from_dict"]

FORMAT_VERSION = 1


def _trajectory_to_dict(trajectory: SwarmTrajectory) -> dict[str, Any]:
    return {
        "t_start": trajectory.t_start,
        "t_end": trajectory.t_end,
        "paths": [
            {
                "waypoints": p.waypoints.tolist(),
                "times": p.times.tolist(),
            }
            for p in trajectory.paths
        ],
    }


def trajectory_from_dict(data: dict[str, Any]) -> SwarmTrajectory:
    """Rebuild a :class:`SwarmTrajectory` from its JSON form."""
    try:
        paths = [
            TimedPath(np.asarray(p["waypoints"], dtype=float),
                      np.asarray(p["times"], dtype=float))
            for p in data["paths"]
        ]
        return SwarmTrajectory(paths, float(data["t_start"]), float(data["t_end"]))
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed trajectory document: {exc}") from exc


def result_to_dict(result: MarchingResult) -> dict[str, Any]:
    """Flatten a :class:`MarchingResult` into a JSON-serialisable dict.

    Stage artifacts (meshes, disk maps) are intentionally dropped; they
    are reproducible from the inputs and not part of the durable record.
    """
    return {
        "format_version": FORMAT_VERSION,
        "method": result.method,
        "rotation_angle": result.rotation_angle,
        "rotation_evaluations": result.rotation_evaluations,
        "lloyd_iterations": result.lloyd_iterations,
        "boundary_anchors": list(result.boundary_anchors),
        "start_positions": result.start_positions.tolist(),
        "march_targets": result.march_targets.tolist(),
        "final_positions": result.final_positions.tolist(),
        "links": result.links.links.tolist(),
        "comm_range": result.links.comm_range,
        "repair": {
            "escorted": list(result.repair.escorted),
            "references": {str(k): v for k, v in result.repair.references.items()},
            "rounds": result.repair.rounds,
            "isolated_before": result.repair.isolated_before,
        },
        "trajectory": _trajectory_to_dict(result.trajectory),
    }


def save_result(result: MarchingResult, path) -> Path:
    """Write a result as pretty-printed JSON; returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(result_to_dict(result), indent=2))
    return p


def load_result_dict(path) -> dict[str, Any]:
    """Load a saved result document and restore the heavyweight fields.

    Returns a dict with numpy arrays for the position fields, a
    :class:`LinkTable`, a :class:`SwarmTrajectory`, and a
    :class:`RepairInfo` - everything the metrics functions need.

    Raises
    ------
    ReproError
        On version mismatch or malformed content.
    """
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read result file {path}: {exc}") from exc
    if data.get("format_version") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported result format {data.get('format_version')!r}"
        )
    out = dict(data)
    for key in ("start_positions", "march_targets", "final_positions"):
        out[key] = np.asarray(data[key], dtype=float)
    out["links"] = LinkTable(
        links=np.asarray(data["links"], dtype=int).reshape(-1, 2),
        comm_range=float(data["comm_range"]),
    )
    out["trajectory"] = trajectory_from_dict(data["trajectory"])
    rep = data["repair"]
    out["repair"] = RepairInfo(
        escorted=tuple(rep["escorted"]),
        references={int(k): int(v) for k, v in rep["references"].items()},
        rounds=int(rep["rounds"]),
        isolated_before=int(rep["isolated_before"]),
    )
    return out
