"""Harmonic disk embeddings, induced maps and rotation search."""

from repro.harmonic.boundary import boundary_parameterization, circle_positions
from repro.harmonic.diskmap import DiskMap, compute_disk_map
from repro.harmonic.distortion import StretchReport, edge_stretch, stretch_report
from repro.harmonic.rotation import (
    AngleSearchResult,
    exhaustive_angle_search,
    hierarchical_angle_search,
)
from repro.harmonic.solvers import (
    clear_factorization_cache,
    harmonic_energy,
    solve_iterative,
    solve_linear,
)
from repro.harmonic.transfer import InducedMap

__all__ = [
    "AngleSearchResult",
    "DiskMap",
    "InducedMap",
    "StretchReport",
    "edge_stretch",
    "stretch_report",
    "boundary_parameterization",
    "circle_positions",
    "clear_factorization_cache",
    "compute_disk_map",
    "exhaustive_angle_search",
    "harmonic_energy",
    "hierarchical_angle_search",
    "solve_iterative",
    "solve_linear",
]
