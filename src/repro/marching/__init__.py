"""The paper's core contribution: the optimal-marching planner."""

from repro.marching.distributed_planner import DistributedMarchingPlanner
from repro.marching.mission import LegReport, MissionPlanner, MissionReport
from repro.marching.pipeline import PipelineStages, run_pipeline
from repro.marching.planner import MarchingConfig, MarchingPlanner
from repro.marching.repair import repair_targets
from repro.marching.replan import (
    CascadeOutcome,
    FailureEvent,
    ReplanOutcome,
    replan_after_failure,
    validate_failure_sequence,
)
from repro.marching.result import MarchingResult, RepairInfo

__all__ = [
    "CascadeOutcome",
    "DistributedMarchingPlanner",
    "FailureEvent",
    "LegReport",
    "MarchingConfig",
    "MarchingPlanner",
    "MarchingResult",
    "MissionPlanner",
    "MissionReport",
    "PipelineStages",
    "RepairInfo",
    "ReplanOutcome",
    "repair_targets",
    "replan_after_failure",
    "run_pipeline",
    "validate_failure_sequence",
]
