"""Tests for the random scenario generator + fuzz runs of the planner."""

import numpy as np
import pytest

from repro.coverage import LloydConfig
from repro.errors import ScenarioError
from repro.exec import ParallelMap
from repro.experiments import random_foi, random_scenario
from repro.experiments.zoo.validate import hole_clearance as clearance_of
from repro.marching import MarchingConfig, MarchingPlanner
from repro.metrics import connectivity_report

FAST = MarchingConfig(
    foi_target_points=200, lloyd=LloydConfig(grid_target=700, max_iterations=20)
)


class TestRandomFoi:
    def test_area_respected(self, rng):
        foi = random_foi(rng, area=123_456.0)
        assert foi.area == pytest.approx(123_456.0)

    def test_deterministic_per_seed(self):
        a = random_foi(np.random.default_rng(5), area=100_000.0)
        b = random_foi(np.random.default_rng(5), area=100_000.0)
        assert np.array_equal(a.outer.vertices, b.outer.vertices)
        assert len(a.holes) == len(b.holes)

    def test_zero_holes_possible(self):
        foi = random_foi(np.random.default_rng(0), max_holes=0)
        assert not foi.has_holes

    def test_holes_inside(self, rng):
        for seed in range(5):
            foi = random_foi(np.random.default_rng(seed), max_holes=2)
            for hole in foi.holes:
                assert foi.outer.contains(hole.vertices).all()


class TestHoleClearance:
    """random_foi must enforce hole clearance instead of pinching."""

    def test_negative_clearance_rejected(self):
        with pytest.raises(ScenarioError, match="non-negative"):
            random_foi(np.random.default_rng(0), hole_clearance=-0.1)

    def test_impossible_clearance_raises(self):
        # A clearance wider than the blob itself cannot be satisfied by
        # any shrink; the generator must say so, not degrade silently.
        holed = [s for s in range(20)
                 if random_foi(np.random.default_rng(s), max_holes=2).has_holes]
        assert holed, "no holed draw in the probe range"
        with pytest.raises(ScenarioError, match="clearance"):
            random_foi(np.random.default_rng(holed[0]), max_holes=2,
                       hole_clearance=2.0)

    def test_clearance_enforced_in_unit_terms(self):
        # Unit-space clearance scales with sqrt(area); the unit blob's
        # outer area is < 2.5^2, so scaled clearance / sqrt(area) must
        # stay above hole_clearance / 2.5.
        want = 0.3
        checked = 0
        for seed in range(20):
            foi = random_foi(np.random.default_rng(seed), area=10_000.0,
                             max_holes=2, hole_clearance=want)
            for hole in foi.holes:
                rel = clearance_of(foi.outer, hole) / np.sqrt(foi.outer.area)
                assert rel >= want / 2.5
                checked += 1
        assert checked > 0

    def test_pinched_seed_now_kept_with_clearance(self):
        # Seed 50 used to hit the silent drop-all-holes fallback for M1;
        # the clearance shrink now keeps a valid hole instead.
        sc = random_scenario(seed=50, robot_count=36)
        for foi in (sc.m1, sc.m2):
            for hole in foi.holes:
                assert clearance_of(foi.outer, hole) > 0.0


def _scenario_digest(seed: int) -> str:
    """Module-level so the process backend can pickle it."""
    import hashlib

    sc = random_scenario(seed, robot_count=36)
    h = hashlib.sha256()
    for arr in (sc.m1.outer.vertices, sc.m2.outer.vertices, sc.swarm.positions):
        h.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
    for foi in (sc.m1, sc.m2):
        for hole in foi.holes:
            h.update(np.ascontiguousarray(hole.vertices, dtype=np.float64).tobytes())
    return h.hexdigest()


class TestGeneratorEdgeCases:
    def test_max_holes_zero_never_holed(self):
        for seed in range(8):
            foi = random_foi(np.random.default_rng(seed), max_holes=0)
            assert not foi.has_holes

    def test_minimum_area(self):
        # Tiny target areas still produce valid, correctly-sized regions.
        foi = random_foi(np.random.default_rng(3), area=1.0, max_holes=2)
        assert foi.area == pytest.approx(1.0)
        for hole in foi.holes:
            assert foi.outer.contains(hole.vertices).all()

    def test_seed_to_scenario_deterministic_across_processes(self):
        seeds = [0, 1, 50]
        local = [_scenario_digest(s) for s in seeds]
        remote = ParallelMap(backend="process", workers=2).map(
            _scenario_digest, seeds
        )
        assert local == list(remote)


class TestRandomScenario:
    def test_swarm_deployable_and_connected(self):
        sc = random_scenario(seed=1, robot_count=49)
        assert sc.swarm.size == 49
        assert sc.swarm.is_connected()
        assert sc.m1.contains(sc.swarm.positions).all()

    def test_separation_in_range(self):
        sc = random_scenario(seed=2, separation_range=(12.0, 14.0))
        gap = np.hypot(*(sc.m2.centroid - sc.m1.centroid))
        assert 12.0 * sc.comm_range <= gap <= 14.0 * sc.comm_range + 1e-6

    def test_deterministic(self):
        a = random_scenario(seed=7)
        b = random_scenario(seed=7)
        assert np.array_equal(a.swarm.positions, b.swarm.positions)
        assert np.allclose(a.m2.centroid, b.m2.centroid)


class TestFuzzPlanner:
    """The planner's guarantees must hold on arbitrary valid geometry,
    not just the paper's seven scenarios."""

    @pytest.mark.parametrize("seed", [11, 23, 37])
    def test_plan_on_random_scenarios(self, seed):
        sc = random_scenario(seed, robot_count=49, max_holes=1,
                             separation_range=(8.0, 20.0))
        result = MarchingPlanner(FAST).plan(sc.swarm, sc.m2)
        # Guarantee 1: global connectivity.
        rep = connectivity_report(
            result.trajectory, sc.comm_range, result.boundary_anchors
        )
        assert rep.connected, f"seed {seed} lost connectivity"
        # Guarantee 2: everyone ends inside the target free region.
        assert sc.m2.contains(result.final_positions).all()
        # Guarantee 3: distance sane (>= straight-line lower bound).
        d = result.total_distance
        lower = float(
            np.hypot(*(result.final_positions - sc.swarm.positions).T).sum()
        )
        assert d >= lower - 1e-6
        assert d < 5.0 * lower + 1e5
