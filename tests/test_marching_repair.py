"""Tests for the global-connectivity repair (Sec. III-D1)."""

import numpy as np
import pytest

from repro.errors import PlanningError
from repro.marching import repair_targets
from repro.network import UnitDiskGraph, adjacency_from_edges, bfs_hops
from repro.network.links import links_alive


def chain(n, spacing=1.0):
    return np.column_stack([np.arange(n) * spacing, np.zeros(n)])


class TestNoRepairNeeded:
    def test_targets_unchanged(self):
        p = chain(5)
        q = p + [100.0, 0.0]  # rigid shift keeps every link
        out, info = repair_targets(p, q, 1.5, boundary_anchors=[0, 4])
        assert np.allclose(out, q)
        assert info.escort_count == 0
        assert info.isolated_before == 0
        assert info.rounds == 1


class TestSingleIsolation:
    def test_isolated_robot_escorted(self):
        p = chain(5)
        q = p.copy()
        q[2] += [0.0, 50.0]  # robot 2's target tears it from everyone
        out, info = repair_targets(p, q, 1.5, boundary_anchors=[0, 4])
        assert 2 in info.escorted
        ref = info.references[2]
        assert ref in (1, 3)
        # Parallel escort: same displacement as the reference.
        assert np.allclose(out[2] - p[2], out[ref] - p[ref])

    def test_escorted_robot_connected_at_end(self):
        p = chain(5)
        q = p.copy()
        q[2] += [0.0, 50.0]
        out, _ = repair_targets(p, q, 1.5, boundary_anchors=[0, 4])
        graph = UnitDiskGraph(out, 1.5)
        assert graph.nodes_connected_to([0, 4]).all()


class TestSubgroupIsolation:
    def test_subgroup_escorted_together(self):
        p = chain(7)
        q = p.copy()
        # Robots 3-4 fly off together (mutually connected, but cut off).
        q[3] += [0.0, 50.0]
        q[4] += [0.0, 50.0]
        out, info = repair_targets(p, q, 1.5, boundary_anchors=[0, 6])
        assert {3, 4} <= set(info.escorted)
        # Both members copy the same reference displacement.
        refs = {info.references[3], info.references[4]}
        assert len(refs) == 1
        # After repair, nobody is isolated over the march.
        alive = links_alive(
            UnitDiskGraph(p, 1.5).edges, out, 1.5
        )
        adj = adjacency_from_edges(7, UnitDiskGraph(p, 1.5).edges[alive])
        hops = bfs_hops(adj, [0, 6])
        assert (hops >= 0).all()

    def test_reference_closest_to_boundary_preferred(self):
        # Line 0..6, anchors at 0 only: hops increase with index.  An
        # isolated robot 3 must choose reference 2 (hop 2) over 4 (hop 3).
        p = chain(7)
        q = p.copy()
        q[3] += [0.0, 50.0]
        out, info = repair_targets(p, q, 1.5, boundary_anchors=[0])
        assert info.references[3] == 2


class TestRepairContract:
    def test_count_mismatch(self):
        with pytest.raises(PlanningError):
            repair_targets(chain(3), chain(4), 1.5, [0])

    def test_no_anchors_rejected(self):
        p = chain(3)
        with pytest.raises(PlanningError):
            repair_targets(p, p, 1.5, [])

    def test_explicit_links_respected(self):
        p = chain(4)
        q = p.copy()
        q[3] += [0.0, 50.0]
        links = UnitDiskGraph(p, 1.5).edges
        out, info = repair_targets(p, q, 1.5, [0], links=links)
        assert 3 in info.escorted

    def test_whole_swarm_never_isolated_invariant(self, rng):
        """Random tears on a lattice: repair always restores boundary
        reachability at the endpoints (the invariant the planner relies
        on)."""
        rows, cols = 4, 5
        pts = []
        for r in range(rows):
            off = 0.0 if r % 2 == 0 else 0.5
            for c in range(cols):
                pts.append((c + off, r * np.sqrt(3) / 2))
        p = np.array(pts)
        rc = 1.1
        graph = UnitDiskGraph(p, rc)
        boundary = [i for i in range(len(p)) if graph.degree(i) < 6]
        for _ in range(5):
            q = p + [30.0, 0.0]
            tear = rng.choice(len(p), size=4, replace=False)
            q[tear] += rng.normal(0, 10, (4, 2))
            out, info = repair_targets(p, q, rc, boundary)
            alive = links_alive(graph.edges, out, rc) & links_alive(
                graph.edges, p, rc
            )
            adj = adjacency_from_edges(len(p), graph.edges[alive])
            hops = bfs_hops(adj, boundary)
            assert (hops >= 0).all()


class TestNestedSubgroupIsolation:
    """A subgroup whose only one-range neighbours are themselves isolated
    needs a later round: its escort can only start once the inner
    subgroup has been escorted back into the connected component."""

    def _nested_instance(self):
        p = chain(8)  # anchors -- 0 1 2 3 | A = {4, 5} | B = {6, 7}
        rc = 1.5
        shift = np.array([0.3, 0.0])
        q = p + shift  # the reached robots march rigidly
        q[4:6] += [0.0, 40.0]  # subgroup A tears off together...
        q[6:8] += [0.0, 80.0]  # ...and B, reachable only through A
        return p, q, rc

    def test_inner_then_outer_subgroup_escorted(self):
        p, q, rc = self._nested_instance()
        out, info = repair_targets(p, q, rc, boundary_anchors=[0])
        # Round 1 finds {4,5} and {6,7} isolated but can only escort A
        # (B's one-range neighbours 5 and 7 are both isolated); round 2
        # escorts B off the now-reached 5; round 3 verifies.
        assert info.rounds == 3
        assert set(info.escorted) == {4, 5, 6, 7}
        assert info.isolated_before == 4
        assert info.references[4] == info.references[5] == 3
        assert info.references[6] == info.references[7] == 5
        # Every escort copies its reference's displacement exactly.
        shift = q[3] - p[3]
        for r in (4, 5, 6, 7):
            assert np.allclose(out[r] - p[r], shift)

    def test_connectivity_holds_at_sampled_times(self):
        p, q, rc = self._nested_instance()
        out, _ = repair_targets(p, q, rc, boundary_anchors=[0])
        for t in np.linspace(0.0, 1.0, 9):
            pos = p + t * (out - p)
            graph = UnitDiskGraph(pos, rc)
            assert graph.nodes_connected_to([0]).all(), f"disconnected at t={t}"

    def test_deeper_nesting_converges(self):
        # Three chained subgroups: {4,5} <- {6,7} <- {8,9}.
        p = chain(10)
        rc = 1.5
        q = p.copy()
        q[4:6] += [0.0, 40.0]
        q[6:8] += [0.0, 80.0]
        q[8:10] += [0.0, 120.0]
        out, info = repair_targets(p, q, rc, boundary_anchors=[0])
        assert info.rounds == 4
        assert set(info.escorted) == {4, 5, 6, 7, 8, 9}
        for t in np.linspace(0.0, 1.0, 9):
            pos = p + t * (out - p)
            assert UnitDiskGraph(pos, rc).nodes_connected_to([0]).all()
