"""Deterministic open-loop load generator for the planning service.

The ROADMAP's "heavy traffic" claim is only worth something if it can
be falsified: this module replays a *seeded* population of concurrent
clients against a running :class:`~repro.service.server.PlanningService`
(or the ``repro serve`` process) and reports, in one canonical
document, whether the service kept its promises under fire:

* **zero 5xx** - overload must answer ``429 Retry-After``, never an
  internal error;
* **Retry-After correctness** - every 429 carries a positive,
  numeric drain estimate;
* **dedup exactness** - the schedule contains a known number of
  unique content addresses, so the fleet must report *exactly*
  ``clients - uniques`` deduplicated admissions and solve each unique
  once, no matter how many shards raced;
* **result byte-identity** - every client that asked for the same
  request must download byte-identical plan documents.

The schedule is a pure function of :class:`LoadgenConfig`: unique
requests are drawn per zoo family with per-index seeded RNGs, arrival
times follow seeded exponential inter-arrivals, and duplicate slots
are assigned by a seeded shuffle - so two runs (or two fleets with
different ``service_workers``) replay byte-for-byte the same traffic.
The summary separates a **canonical** section (schedule-derived counts
and correctness booleans; byte-identical across runs and worker
counts via :func:`summary_bytes`) from a **timing** section
(p50/p95/p99 per endpoint, 429/retry counts, per-shard attribution)
that is honest about being nondeterministic.

Socket concurrency is bounded by ``max_inflight`` worker threads so a
thousands-strong client population does not blow through the process
fd limit; arrival times stay open-loop (a saturated pool just means
late arrivals, which the timing section reports as scheduling lag).
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.errors import ServiceError
from repro.experiments.zoo.families import FAMILIES
from repro.io import canonical_digest, dumps_canonical
from repro.service import QueueFull, ServiceClient
from repro.service.jobs import job_id_for, normalize_plan_request

__all__ = [
    "LoadgenConfig",
    "build_schedule",
    "loadgen_passed",
    "render_loadgen",
    "run_loadgen",
    "run_loadgen_fleet",
    "summary_bytes",
]

#: per-family separation-factor band the unique requests draw from -
#: the request *mix* mirrors the zoo's archetype diversity without
#: leaving the registered scenario set the service accepts.
_FAMILY_SEPARATION = {
    "corridor": (8.0, 16.0),
    "archipelago": (16.0, 28.0),
    "annulus": (10.0, 20.0),
    "star": (12.0, 24.0),
    "rough": (6.0, 14.0),
}


@dataclass(frozen=True)
class LoadgenConfig:
    """Everything that determines the replayed traffic, and only that.

    ``service_workers`` is deliberately *not* here: the same config
    must produce the same canonical summary against any fleet size.
    """

    clients: int = 200
    duplicate_fraction: float = 0.5
    arrival_rate_hz: float = 200.0
    seed: int = 0
    families: tuple[str, ...] = tuple(FAMILIES)
    #: resolution knobs forwarded into every request (kept small so a
    #: smoke run solves in seconds; raise for soak runs).
    foi_target_points: int = 200
    lloyd_grid_target: int = 600
    resolution: int = 12
    #: every ``stream_every``-th client follows its job over the SSE
    #: events endpoint instead of polling (0 disables streaming).
    stream_every: int = 0
    #: client-side behaviour (not part of the canonical schedule).
    retries: int = 8
    timeout_s: float = 300.0
    max_inflight: int = 256

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ServiceError("loadgen needs at least one client")
        if not 0.0 <= self.duplicate_fraction < 1.0:
            raise ServiceError("duplicate_fraction must be in [0, 1)")
        if self.arrival_rate_hz <= 0:
            raise ServiceError("arrival_rate_hz must be positive")
        unknown = [f for f in self.families if f not in FAMILIES]
        if unknown or not self.families:
            raise ServiceError(
                f"unknown zoo families {unknown}; valid: {list(FAMILIES)}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "clients": self.clients,
            "duplicate_fraction": self.duplicate_fraction,
            "arrival_rate_hz": self.arrival_rate_hz,
            "seed": self.seed,
            "families": list(self.families),
            "foi_target_points": self.foi_target_points,
            "lloyd_grid_target": self.lloyd_grid_target,
            "resolution": self.resolution,
            "stream_every": self.stream_every,
        }


def _draw_request(config: LoadgenConfig, family: str, index: int) -> dict[str, Any]:
    """One unique request, a pure function of (seed, family, index)."""
    rng = random.Random(f"loadgen:{config.seed}:{family}:{index}")
    lo, hi = _FAMILY_SEPARATION[family]
    # Quantised separation keeps the canonical dict float-stable.
    separation = round(rng.uniform(lo, hi), 2)
    scenario_id = rng.randint(1, 7)
    doc = {
        "scenario_ids": [scenario_id],
        "separation_factor": separation,
        "methods": ["ours (a)"] if rng.random() < 0.5 else ["ours (a)", "Hungarian"],
        "foi_target_points": config.foi_target_points,
        "lloyd_grid_target": config.lloyd_grid_target,
        "resolution": config.resolution,
    }
    request, _priority = normalize_plan_request(doc)
    return request


def build_schedule(config: LoadgenConfig) -> list[dict[str, Any]]:
    """The full deterministic traffic plan, one entry per client.

    Entries carry ``t`` (arrival offset in seconds), the normalised
    ``request``, its ``job_id`` content address, the ``family`` it was
    drawn from and a ``stream`` flag.  The unique pool has exactly
    ``max(1, round(clients * (1 - duplicate_fraction)))`` members and
    every member appears at least once, so the expected dedup count is
    exact, not statistical.
    """
    uniques = max(1, round(config.clients * (1.0 - config.duplicate_fraction)))
    uniques = min(uniques, config.clients)
    pool = []
    seen: set[str] = set()
    index = 0
    while len(pool) < uniques:
        family = config.families[index % len(config.families)]
        request = _draw_request(config, family, index)
        job_id = job_id_for(request)
        index += 1
        if job_id in seen:  # two draws collided on a content address
            continue
        seen.add(job_id)
        pool.append({"request": request, "job_id": job_id, "family": family})
    rng = random.Random(f"loadgen:{config.seed}:schedule")
    # Every unique once, then seeded duplicate draws, then one shuffle:
    # the arrival order is scrambled but the multiset is exact.
    slots = list(range(uniques))
    slots.extend(
        rng.randrange(uniques) for _ in range(config.clients - uniques)
    )
    rng.shuffle(slots)
    schedule = []
    t = 0.0
    for client_index, slot in enumerate(slots):
        t += rng.expovariate(config.arrival_rate_hz)
        schedule.append({
            "client": client_index,
            "t": t,
            "stream": (
                config.stream_every > 0
                and client_index % config.stream_every == 0
            ),
            **pool[slot],
        })
    return schedule


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


def _latency_stats(samples: list[float]) -> dict[str, Any]:
    ordered = sorted(samples)
    return {
        "count": len(ordered),
        "p50_ms": round(_percentile(ordered, 0.50) * 1000.0, 3),
        "p95_ms": round(_percentile(ordered, 0.95) * 1000.0, 3),
        "p99_ms": round(_percentile(ordered, 0.99) * 1000.0, 3),
        "max_ms": round((ordered[-1] if ordered else 0.0) * 1000.0, 3),
    }


@dataclass
class _ClientOutcome:
    """What one replayed client observed (accumulated into the summary)."""

    client: int
    job_id: str
    created: bool = False
    deduplicated: bool = False
    completed: bool = False
    rejected_429: int = 0
    retry_after_ok: bool = True
    server_5xx: int = 0
    submit_latency_s: float = 0.0
    result_latency_s: float = 0.0
    total_latency_s: float = 0.0
    schedule_lag_s: float = 0.0
    streamed_events: int = 0
    result_digest: str = ""
    error: str | None = None
    events: list = field(default_factory=list)


def _run_client(
    entry: dict[str, Any],
    config: LoadgenConfig,
    host: str,
    port: int,
    t0: float,
) -> _ClientOutcome:
    """One client's whole conversation: admit (retrying 429), wait, fetch."""
    out = _ClientOutcome(client=entry["client"], job_id=entry["job_id"])
    delay = t0 + entry["t"] - time.monotonic()
    if delay > 0:
        time.sleep(delay)
    out.schedule_lag_s = max(0.0, -delay)
    jitter = random.Random(f"loadgen-client:{config.seed}:{entry['client']}")
    submit_client = ServiceClient(host, port, timeout=config.timeout_s)
    poll_client = ServiceClient(
        host,
        port,
        timeout=config.timeout_s,
        retries=config.retries,
        retry_seed=config.seed * 100_003 + entry["client"],
    )
    deadline = time.monotonic() + config.timeout_s
    started = time.monotonic()
    try:
        while True:  # admission loop: 429 is an answer, not a failure
            try:
                attempt_t0 = time.monotonic()
                admitted = submit_client.submit_request(entry["request"])
                out.submit_latency_s = time.monotonic() - attempt_t0
                break
            except QueueFull as exc:
                out.rejected_429 += 1
                retry_after = exc.retry_after_s
                if retry_after is None or retry_after < 1.0:
                    out.retry_after_ok = False
                    retry_after = 0.05
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        "admission still refused at deadline"
                    ) from exc
                # Honour the server's estimate, capped and jittered so
                # the rejected cohort does not stampede back in sync.
                time.sleep(
                    min(retry_after, 2.0) * (0.5 + 0.5 * jitter.random())
                )
        if admitted["job_id"] != entry["job_id"]:
            raise ServiceError(
                f"server admitted {admitted['job_id']}, schedule expected "
                f"{entry['job_id']} (content addressing diverged)"
            )
        out.created = not admitted.get("deduplicated", False)
        out.deduplicated = bool(admitted.get("deduplicated", False))
        remaining = max(1.0, deadline - time.monotonic())
        if entry["stream"]:
            for event in poll_client.iter_events(entry["job_id"]):
                out.streamed_events += 1
                out.events.append(event.get("kind"))
        else:
            poll_client.wait(entry["job_id"], timeout=remaining)
        fetch_t0 = time.monotonic()
        payload = poll_client.result_bytes(entry["job_id"])
        out.result_latency_s = time.monotonic() - fetch_t0
        out.result_digest = hashlib.sha256(payload).hexdigest()
        out.completed = True
    except ServiceError as exc:
        status = getattr(exc, "status", None)
        if isinstance(status, int) and status >= 500:
            out.server_5xx += 1
        out.error = str(exc)
    except Exception as exc:  # noqa: BLE001 - a client crash is a finding
        out.error = f"{type(exc).__name__}: {exc}"
    out.total_latency_s = time.monotonic() - started
    return out


def run_loadgen(
    config: LoadgenConfig,
    port: int,
    host: str = "127.0.0.1",
) -> dict[str, Any]:
    """Replay the seeded schedule against a running service.

    Returns the summary document described in the module docstring.
    The target should be *fresh* (no jobs from a previous run) for the
    canonical section's dedup counts to be schedule-exact; replays
    against a warm server still complete but report the extra
    deduplication they observed.
    """
    schedule = build_schedule(config)
    uniques = len({entry["job_id"] for entry in schedule})
    workers = min(config.max_inflight, config.clients)
    t0 = time.monotonic()
    with ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="loadgen"
    ) as pool:
        outcomes = list(
            pool.map(
                lambda entry: _run_client(entry, config, host, port, t0),
                schedule,
            )
        )
    elapsed = time.monotonic() - t0

    completed = [o for o in outcomes if o.completed]
    dedup_hits = sum(1 for o in outcomes if o.deduplicated)
    created = sum(1 for o in outcomes if o.created)
    server_5xx = sum(o.server_5xx for o in outcomes)
    rejected_429 = sum(o.rejected_429 for o in outcomes)
    # Byte-identity: every client of a given job saw one digest, and
    # clients of the *same* job saw the *same* digest.
    digests: dict[str, set[str]] = {}
    for o in completed:
        digests.setdefault(o.job_id, set()).add(o.result_digest)
    results_identical = all(len(seen) == 1 for seen in digests.values())

    per_endpoint = {
        "plan": _latency_stats([o.submit_latency_s for o in completed]),
        "result": _latency_stats([o.result_latency_s for o in completed]),
        "job": _latency_stats([o.total_latency_s for o in completed]),
    }
    try:
        final_metrics = ServiceClient(
            host, port, timeout=config.timeout_s
        ).metrics()
    except ServiceError:
        final_metrics = {}
    per_shard = {
        name: value
        for name, value in final_metrics.items()
        if ".shard." in name
    }

    summary = {
        "format_version": 1,
        "config": config.to_dict(),
        "canonical": {
            "clients": config.clients,
            "uniques": uniques,
            "duplicates": config.clients - uniques,
            "dedup_hits": dedup_hits,
            "jobs_created": created,
            "dedup_exact": (
                dedup_hits == config.clients - uniques and created == uniques
            ),
            "all_clients_completed": len(completed) == config.clients,
            "zero_5xx": server_5xx == 0,
            "retry_after_correct": all(o.retry_after_ok for o in outcomes),
            "results_byte_identical": results_identical,
            "request_pool": sorted({e["job_id"] for e in schedule}),
        },
        "timing": {
            "elapsed_s": round(elapsed, 3),
            "throughput_rps": round(config.clients / max(elapsed, 1e-9), 2),
            "rejected_429": rejected_429,
            "server_5xx": server_5xx,
            "streamed_events": sum(o.streamed_events for o in outcomes),
            "max_schedule_lag_s": round(
                max((o.schedule_lag_s for o in outcomes), default=0.0), 3
            ),
            "endpoints": per_endpoint,
            "per_shard": per_shard,
            "errors": sorted(
                {o.error for o in outcomes if o.error is not None}
            )[:10],
        },
    }
    return summary


def run_loadgen_fleet(
    config: LoadgenConfig,
    service_workers: int = 2,
    dispatchers: int = 2,
    capacity: int = 64,
    runner: Any = None,
    drain_probe: bool = True,
    journal: bool = True,
) -> dict[str, Any]:
    """Boot a fresh in-process fleet, load it, drain it, report.

    The self-contained flavour used by ``python -m repro loadgen``
    (without ``--port``), tests and the CI smoke: guarantees the target
    is cold, and appends a ``drain`` section verifying that shutdown
    mid-traffic is graceful (healthz flips to 503, every accepted job
    still completes, the fleet stops cleanly).

    With ``journal`` (the default) the fleet runs on a temporary job
    journal and, after the drained shutdown, a second fleet is booted
    on the same journal directory - the summary's ``recovery`` section
    reports how many jobs the restart restored and how long the replay
    took.  Per-append fsync is off here (this measures replay, not
    ``kill -9`` durability - the crashrec harness covers that).
    """
    import contextlib
    import tempfile

    from repro.service import PlanningService

    journal_cm: Any = (
        tempfile.TemporaryDirectory(prefix="repro-loadgen-journal-")
        if journal
        else contextlib.nullcontext()
    )
    with journal_cm as journal_dir:
        service = PlanningService(
            port=0,
            capacity=capacity,
            dispatchers=dispatchers,
            service_workers=service_workers,
            runner=runner,
            journal_dir=journal_dir,
            journal_fsync=False,
        )
        with service:
            summary = run_loadgen(config, port=service.port)
            drain: dict[str, Any] = {}
            if drain_probe:
                probe = ServiceClient(port=service.port)
                service.drain()
                health = probe.healthz()
                drain = {
                    "draining_healthz_status": health.get("http_status"),
                    "draining_announced": health.get("status") == "draining",
                    "rejects_new_work": False,
                }
                try:
                    probe.submit_request(build_schedule(config)[0]["request"])
                except ServiceError as exc:
                    drain["rejects_new_work"] = (
                        getattr(exc, "status", None) == 503
                    )
        recovery: dict[str, Any] = {}
        if journal:
            restarted = PlanningService(
                port=0,
                capacity=capacity,
                dispatchers=dispatchers,
                service_workers=service_workers,
                runner=runner,
                journal_dir=journal_dir,
                journal_fsync=False,
            )
            with restarted:
                recovery = dict(restarted.recovery)
    summary["drain"] = drain
    summary["recovery"] = recovery
    summary["service_workers"] = service_workers
    return summary


def summary_bytes(summary: dict[str, Any]) -> bytes:
    """Canonical bytes of the *deterministic* part of a summary.

    Only ``format_version``, ``config`` and ``canonical`` participate:
    those are byte-identical across repeated runs and across fleets
    with different ``service_workers``; timing and drain sections are
    measurements and stay out.
    """
    return dumps_canonical({
        "format_version": summary["format_version"],
        "config": summary["config"],
        "canonical": summary["canonical"],
    })


def render_loadgen(summary: dict[str, Any]) -> str:
    """Human-readable report of one load run (the CLI's output)."""
    from repro.experiments.tables import format_table

    canonical = summary["canonical"]
    timing = summary["timing"]
    rows = [
        [
            endpoint,
            stats["count"],
            f"{stats['p50_ms']:.1f}",
            f"{stats['p95_ms']:.1f}",
            f"{stats['p99_ms']:.1f}",
            f"{stats['max_ms']:.1f}",
        ]
        for endpoint, stats in timing["endpoints"].items()
    ]
    table = format_table(
        ["endpoint", "n", "p50 ms", "p95 ms", "p99 ms", "max ms"], rows
    )
    checks = [
        ("all clients completed", canonical["all_clients_completed"]),
        ("zero 5xx", canonical["zero_5xx"]),
        ("429 Retry-After correct", canonical["retry_after_correct"]),
        ("dedup exact", canonical["dedup_exact"]),
        ("results byte-identical", canonical["results_byte_identical"]),
    ]
    drain = summary.get("drain") or {}
    if drain:
        checks.append((
            "drain graceful",
            bool(
                drain.get("draining_announced")
                and drain.get("rejects_new_work")
            ),
        ))
    recovery = summary.get("recovery") or {}
    if recovery:
        checks.append((
            "restart recovery clean",
            recovery.get("jobs_requeued", 0) == 0
            and recovery.get("jobs_restored", 0) >= canonical["uniques"],
        ))
    check_lines = "\n".join(
        f"  [{'ok' if ok else 'FAIL'}] {name}" for name, ok in checks
    )
    header = (
        f"loadgen: {canonical['clients']} clients "
        f"({canonical['uniques']} unique, "
        f"{canonical['dedup_hits']} dedup hits, "
        f"{timing['rejected_429']} x 429) in {timing['elapsed_s']:.2f}s "
        f"({timing['throughput_rps']:.1f} req/s)"
    )
    if recovery:
        header += (
            f"\nrestart: {recovery.get('jobs_restored', 0)} jobs restored "
            f"({recovery.get('jobs_requeued', 0)} requeued, "
            f"{recovery.get('jobs_retried', 0)} retried) from "
            f"{recovery.get('journal_records', 0)} journal records in "
            f"{recovery.get('replay_s', 0.0):.3f}s"
        )
    digest = canonical_digest({
        "format_version": summary["format_version"],
        "config": summary["config"],
        "canonical": canonical,
    })
    return f"{header}\n{table}\n{check_lines}\ncanonical digest {digest}"


def loadgen_passed(summary: dict[str, Any]) -> bool:
    """The run's overall verdict (the CLI's exit code)."""
    canonical = summary["canonical"]
    verdict = (
        canonical["all_clients_completed"]
        and canonical["zero_5xx"]
        and canonical["retry_after_correct"]
        and canonical["dedup_exact"]
        and canonical["results_byte_identical"]
    )
    drain = summary.get("drain") or {}
    if drain:
        verdict = verdict and bool(
            drain.get("draining_announced") and drain.get("rejects_new_work")
        )
    recovery = summary.get("recovery") or {}
    if recovery:
        # A drained fleet's journal restores every unique job terminal
        # - a requeue here means a completed job's durability was lost.
        verdict = verdict and (
            recovery.get("jobs_requeued", 0) == 0
            and recovery.get("jobs_restored", 0) >= canonical["uniques"]
        )
    return verdict
