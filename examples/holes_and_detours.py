"""Marching into a FoI with obstacles: detours, escorts, connectivity.

Demonstrates the hole machinery of Sec. III-D: the swarm marches from a
hole-bearing field into another one (the paper's scenario-6 setting),
robots whose straight paths would cross the target's hole follow its
boundary, isolated robots are escorted parallel to a reference, and the
whole transition keeps Definition-2 global connectivity.

Run:  python examples/holes_and_detours.py
"""

from __future__ import annotations

import numpy as np

from repro import MarchingConfig, MarchingPlanner, RadioSpec, Swarm
from repro.foi import m1_scenario6, m2_scenario6, path_blocked_by_hole
from repro.metrics import connectivity_report, stable_link_ratio
from repro.viz import render_deployment


def main() -> None:
    radio = RadioSpec.from_comm_range(80.0)
    m1 = m1_scenario6()
    swarm = Swarm.deploy_lattice(m1, 144, radio)
    m2 = m2_scenario6()
    m2 = m2.translated(m1.centroid + np.array([1800.0, 0.0]) - m2.centroid)
    print(f"{m1.name}  ->  {m2.name}")

    result = MarchingPlanner(MarchingConfig(method="a")).plan(swarm, m2)

    # How many marching legs needed a detour around the target hole?
    detoured = sum(
        1
        for p, q in zip(result.start_positions, result.march_targets)
        if path_blocked_by_hole(m2, p, q) is not None
    )
    straight = float(
        np.hypot(*(result.march_targets - result.start_positions).T).sum()
    )
    print(f"  robots whose straight path crossed the hole: {detoured}")
    print(f"  escorted (connectivity repair)             : "
          f"{result.repair.escort_count} "
          f"(isolated before repair: {result.repair.isolated_before})")

    L = stable_link_ratio(result.links, result.trajectory)
    C = connectivity_report(
        result.trajectory, radio.comm_range, result.boundary_anchors
    )
    print(f"  D = {result.total_distance / 1000:.1f} km "
          f"(straight-march lower bound {straight / 1000:.1f} km)")
    print(f"  L = {L:.3f}   C = {C.as_flag}")

    path = "examples/output/holes_final.svg"
    render_deployment(
        m2, result.final_positions, radio.comm_range,
        initial_links=result.links.links, path=path,
    )
    print(f"  wrote {path}")


if __name__ == "__main__":
    main()
