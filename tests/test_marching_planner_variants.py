"""Planner configuration variants: solvers, boundary modes, timing."""

import numpy as np
import pytest

from repro.coverage import LloydConfig, gaussian_hotspot_density
from repro.foi import FieldOfInterest, ellipse_polygon
from repro.marching import MarchingConfig, MarchingPlanner
from repro.robots import RadioSpec, Swarm


def fast_cfg(**overrides):
    base = dict(
        foi_target_points=180,
        lloyd=LloydConfig(grid_target=600, max_iterations=15),
    )
    base.update(overrides)
    return MarchingConfig(**base)


@pytest.fixture(scope="module")
def small_setup():
    radio = RadioSpec.from_comm_range(80.0)
    m1 = FieldOfInterest(
        ellipse_polygon(1.0, 1.0, samples=32).scaled_to_area(100_000.0), name="m1"
    )
    swarm = Swarm.deploy_lattice(m1, 36, radio)
    m2 = FieldOfInterest(
        ellipse_polygon(1.1, 0.9, samples=32).scaled_to_area(95_000.0), name="m2"
    ).translated((900.0, 100.0))
    return swarm, m2


class TestBoundaryAndSolverVariants:
    def test_uniform_boundary_mode(self, small_setup):
        swarm, m2 = small_setup
        result = MarchingPlanner(fast_cfg(boundary_mode="uniform")).plan(swarm, m2)
        assert m2.contains(result.final_positions).all()

    def test_iterative_solver(self, small_setup):
        swarm, m2 = small_setup
        lin = MarchingPlanner(fast_cfg(solver="linear")).plan(swarm, m2)
        it = MarchingPlanner(fast_cfg(solver="iterative")).plan(swarm, m2)
        # Same fixed point -> essentially the same march targets.
        gap = np.hypot(*(lin.march_targets - it.march_targets).T)
        assert gap.max() < 1.0  # metres, on a ~1 km march

    def test_search_depth_zero(self, small_setup):
        swarm, m2 = small_setup
        result = MarchingPlanner(fast_cfg(search_depth=0)).plan(swarm, m2)
        assert result.rotation_evaluations == 4 + 1  # seeds + bracket centre

    def test_more_seeds_more_evaluations(self, small_setup):
        swarm, m2 = small_setup
        result = MarchingPlanner(
            fast_cfg(search_depth=2, initial_samples=8)
        ).plan(swarm, m2)
        assert result.rotation_evaluations == 8 + 2 * 2 + 1


class TestTimingAndDensity:
    def test_transition_time_scales_trajectory(self, small_setup):
        swarm, m2 = small_setup
        r1 = MarchingPlanner(fast_cfg(transition_time=1.0)).plan(swarm, m2)
        r5 = MarchingPlanner(fast_cfg(transition_time=5.0)).plan(swarm, m2)
        assert r5.trajectory.t_end == pytest.approx(5.0)
        # Distance is a geometric quantity: independent of T.
        assert r5.total_distance == pytest.approx(r1.total_distance, rel=1e-6)

    def test_density_changes_final_layout(self, small_setup):
        swarm, m2 = small_setup
        uniform = MarchingPlanner(fast_cfg()).plan(swarm, m2)
        hot = MarchingPlanner(fast_cfg()).plan(
            swarm, m2,
            density=gaussian_hotspot_density(m2.centroid, sigma=60.0, peak=8.0),
        )
        c = m2.centroid

        def near(pts):
            return float(np.mean(np.hypot(*(pts - c).T) < 100.0))

        assert near(hot.final_positions) > near(uniform.final_positions)

    def test_repeated_plans_deterministic(self, small_setup):
        swarm, m2 = small_setup
        a = MarchingPlanner(fast_cfg()).plan(swarm, m2)
        b = MarchingPlanner(fast_cfg()).plan(swarm, m2)
        assert np.array_equal(a.final_positions, b.final_positions)
        assert a.rotation_angle == b.rotation_angle
