"""Disk embeddings of meshes (the harmonic map to the unit disk).

A :class:`DiskMap` bundles a mesh (holes filled with virtual vertices
if needed), the computed unit-disk position of every vertex, and the
bookkeeping to go back and forth between disk space and the mesh's
geographic coordinates.  It is the object the modified-harmonic-map
algorithm composes and rotates.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import MappingError
from repro.exec.cache import get_cache, stable_hash
from repro.geometry.pointlocate import TriangleLocator
from repro.geometry.vec import rotate
from repro.harmonic.boundary import boundary_parameterization, circle_positions
from repro.harmonic.solvers import solve_iterative, solve_linear
from repro.mesh.holes import FilledMesh, fill_holes
from repro.mesh.quality import orientation_signs
from repro.mesh.trimesh import TriMesh
from repro.obs import span

__all__ = ["DiskMap", "compute_disk_map", "disk_map_cache_key"]

_CACHE_NAMESPACE = "harmonic.diskmap"
# Key quantum for vertex coordinates after centring.  Well below any
# geometric scale the library works at (communication ranges are tens
# of metres), but far above the float noise introduced by translating a
# mesh, so translated copies of one region share a cache entry.
_KEY_QUANTUM = 1e-6


def _canonical_vertices(mesh: TriMesh) -> np.ndarray:
    """Vertices centred on their mean and snapped to the key quantum.

    The embedding is *solved* in this frame too, so the computed disk
    positions are a pure (bitwise-reproducible) function of the cache
    key: any worker process, any run, cold or warm cache, produces the
    same bytes for key-equal meshes.
    """
    vertices = np.asarray(mesh.vertices, dtype=float)
    centered = vertices - vertices.mean(axis=0)
    return np.round(centered / _KEY_QUANTUM)


def disk_map_cache_key(
    mesh: TriMesh, boundary_mode: str, solver: str, tol: float
) -> str:
    """Content address of a disk-map computation.

    The harmonic embedding depends only on the mesh connectivity and
    the boundary chord proportions, both of which are invariant under
    translation of the vertex coordinates; the key therefore centres
    the vertices on their mean (and quantises at ``1e-6``) so the same
    target region placed at different separations resolves to one cache
    entry.  Any reordering, rotation or scaling of the input yields a
    different key - a conservative miss, never a wrong hit.
    """
    return stable_hash(
        "diskmap",
        _canonical_vertices(mesh).astype(np.int64),
        np.asarray(mesh.triangles, dtype=np.int64),
        str(boundary_mode),
        str(solver),
        float(tol),
    )


@dataclass(frozen=True)
class DiskMap:
    """A harmonic embedding of a mesh onto the unit disk.

    Attributes
    ----------
    source : TriMesh
        The original mesh (before hole filling), with geographic
        coordinates.
    filled : FilledMesh
        The hole-filled mesh actually embedded (identical to ``source``
        plus virtual vertices when the source had holes).
    disk_positions : (n_filled, 2) ndarray
        Unit-disk coordinates of every filled-mesh vertex.
    boundary_mode : str
        The boundary parameterization used.
    solver : str
        ``"linear"`` or ``"iterative"``.
    iterations : int
        Sweeps used by the iterative solver (0 for linear).
    """

    source: TriMesh
    filled: FilledMesh
    disk_positions: np.ndarray
    boundary_mode: str
    solver: str
    iterations: int

    @property
    def robot_disk_positions(self) -> np.ndarray:
        """Disk coordinates of the *source* vertices (virtuals stripped)."""
        return self.disk_positions[: self.filled.original_vertex_count]

    def rotated_positions(self, theta: float) -> np.ndarray:
        """All filled-mesh disk coordinates rotated CCW by ``theta``."""
        return rotate(self.disk_positions, theta)

    @cached_property
    def locator(self) -> TriangleLocator:
        """Spatial index over the filled mesh's disk-space triangles."""
        return TriangleLocator(self.disk_positions, self.filled.mesh.triangles)

    def is_embedding(self) -> bool:
        """Whether every disk-space triangle keeps positive orientation.

        True means the map is fold-free: the discrete analogue of the
        diffeomorphism guarantee (Tutte / Kneser-Choquet).
        """
        disk_mesh = self.filled.mesh.with_vertices(self.disk_positions)
        return bool(np.all(orientation_signs(disk_mesh) > 0))

    def max_radius(self) -> float:
        """Largest distance of any embedded vertex from the disk centre."""
        return float(np.hypot(self.disk_positions[:, 0], self.disk_positions[:, 1]).max())


def compute_disk_map(
    mesh: TriMesh,
    boundary_mode: str = "chord",
    solver: str = "linear",
    tol: float = 1e-7,
    use_cache: bool = True,
) -> DiskMap:
    """Harmonic-map a (possibly holed) mesh to the unit disk.

    Steps (paper Sec. III-B and III-D3):

    1. fill holes with virtual centroid vertices,
    2. pin the outer boundary loop to the unit circle,
    3. solve the uniform-weight harmonic system for the interior.

    Parameters
    ----------
    mesh : TriMesh
        Must be connected with exactly one outer boundary loop.
    boundary_mode : {"chord", "uniform"}
    solver : {"linear", "iterative"}
    tol : float
        Convergence tolerance of the iterative solver.
    use_cache : bool
        Look the embedding up in the ambient
        :class:`repro.exec.ContentCache` (see
        :func:`disk_map_cache_key`) before solving, and store it after.
        The M2 grid mesh of a sweep is translated per separation but
        identical up to translation, so a whole sweep solves it once.

    Raises
    ------
    MappingError
        If the solver fails or the result is not an embedding.
    """
    cache = get_cache() if use_cache else None
    key = None
    with span(
        "harmonic.disk_map",
        vertices=mesh.vertex_count,
        boundary_mode=boundary_mode,
        solver=solver,
    ) as sp_:
        if cache is not None:
            key = disk_map_cache_key(mesh, boundary_mode, solver, tol)
            hit = cache.get(_CACHE_NAMESPACE, key)
            if hit is not None:
                positions, iterations = hit
                dm = DiskMap(
                    source=mesh,
                    filled=fill_holes(mesh),
                    disk_positions=positions,
                    boundary_mode=boundary_mode,
                    solver=solver,
                    iterations=iterations,
                )
                sp_.set_attributes(cache="hit", iterations=iterations)
                return dm
        filled = fill_holes(mesh)
        # Solve in the translation-canonical frame of the cache key (the
        # uniform-weight system only sees connectivity and boundary
        # chord proportions, so this changes nothing beyond fp noise)
        # to make the disk positions a pure function of the key.
        canonical = fill_holes(
            mesh.with_vertices(_canonical_vertices(mesh) * _KEY_QUANTUM)
        ).mesh
        loop, angles = boundary_parameterization(canonical, mode=boundary_mode)
        bpos = circle_positions(angles)
        if solver == "linear":
            positions = solve_linear(canonical, loop, bpos)
            iterations = 0
        elif solver == "iterative":
            positions, iterations = solve_iterative(
                canonical, loop, bpos, tol=tol
            )
        else:
            raise MappingError(f"unknown solver {solver!r}")
        dm = DiskMap(
            source=mesh,
            filled=filled,
            disk_positions=positions,
            boundary_mode=boundary_mode,
            solver=solver,
            iterations=iterations,
        )
        if dm.max_radius() > 1.0 + 1e-6:
            raise MappingError("disk map escapes the unit disk")
        if cache is not None and key is not None:
            cache.put(_CACHE_NAMESPACE, key, (positions, iterations))
        sp_.set_attributes(
            cache="miss" if cache is not None else "off",
            iterations=iterations,
            max_radius=dm.max_radius(),
        )
    return dm
