"""Tests for the resilient executor: recovery, metrics, typed failure."""

import numpy as np
import pytest

from repro.coverage import LloydConfig
from repro.distributed import LinkFaults
from repro.errors import UnrecoverableError
from repro.faults import (
    CrashFault,
    FaultSchedule,
    ResilientExecutor,
    SlowFault,
    StuckFault,
    build_archetype_schedule,
    execute_with_faults,
    rejoin_components,
)
from repro.foi import FieldOfInterest, ellipse_polygon
from repro.marching import MarchingConfig, MarchingPlanner
from repro.metrics import connectivity_report
from repro.network import UnitDiskGraph
from repro.obs import Metrics, activate_metrics
from repro.robots import RadioSpec, Swarm

FAST = MarchingConfig(
    foi_target_points=150,
    lloyd=LloydConfig(grid_target=500, max_iterations=8),
)


@pytest.fixture(scope="module")
def mission():
    radio = RadioSpec.from_comm_range(80.0)
    m1 = FieldOfInterest(
        ellipse_polygon(1.0, 1.0, samples=30).scaled_to_area(100_000.0),
        name="m1",
    )
    swarm = Swarm.deploy_lattice(m1, 36, radio)
    m2 = FieldOfInterest(
        ellipse_polygon(1.1, 0.9, samples=30).scaled_to_area(95_000.0),
        name="m2",
    ).translated((1000.0, 100.0))
    original = MarchingPlanner(FAST).plan(swarm, m2)
    return swarm, m2, original


def run(mission, schedule, **kwargs):
    swarm, m2, original = mission
    return execute_with_faults(
        swarm, m2, schedule, config=FAST, resolution=8, original=original,
        **kwargs,
    )


class TestRecovery:
    def test_single_crash_recovers(self, mission):
        swarm, m2, original = mission
        schedule = FaultSchedule(
            crashes=(CrashFault(at=0.4, robots=(7,)),)
        )
        report = run(mission, schedule)
        assert report.outcome == "recovered"
        assert report.metrics.replan_count == 1
        assert report.metrics.lost_robots == 1
        assert 7 not in report.survivor_ids
        assert len(report.survivor_ids) == swarm.size - 1
        # Definition-2 holds over the survivors' executed plan.
        rep = connectivity_report(
            report.final_result.trajectory,
            swarm.radio.comm_range,
            report.final_result.boundary_anchors,
            8,
        )
        assert rep.connected
        assert report.metrics.connected_all

    def test_cascading_crashes(self, mission):
        swarm, _, _ = mission
        schedule = FaultSchedule(
            crashes=(
                CrashFault(at=0.2, robots=(3,)),
                CrashFault(at=0.5, robots=(10, 11)),
                CrashFault(at=0.8, robots=(20,)),
            )
        )
        report = run(mission, schedule)
        assert report.outcome == "recovered"
        assert report.metrics.replan_count == 3
        assert report.metrics.lost_robots == 4
        marches = [s for s in report.segments if s.kind == "march"]
        assert len(marches) == 4  # three partial legs + the final one

    def test_redeath_is_noop(self, mission):
        """A robot named by a later crash after it already died is
        skipped, not an error (random schedules may overlap)."""
        schedule = FaultSchedule(
            crashes=(
                CrashFault(at=0.3, robots=(5,)),
                CrashFault(at=0.6, robots=(5, 9)),
            )
        )
        report = run(mission, schedule)
        assert report.outcome == "recovered"
        assert report.metrics.lost_robots == 2

    def test_empty_schedule_flies_baseline(self, mission):
        swarm, _, original = mission
        report = run(mission, FaultSchedule())
        assert report.outcome == "recovered"
        assert report.metrics.replan_count == 0
        assert report.metrics.extra_distance == pytest.approx(0.0, abs=1e-6)
        assert report.metrics.executed_distance == pytest.approx(
            original.total_distance
        )
        assert len(report.survivor_ids) == swarm.size

    def test_deterministic(self, mission):
        schedule = build_archetype_schedule(
            "cascade", mission[0].positions, seed=3
        )
        a = run(mission, schedule)
        b = run(mission, schedule)
        assert a.to_dict() == b.to_dict()


class TestTimeFaults:
    def test_stuck_costs_time_not_distance(self, mission):
        schedule = FaultSchedule(
            stucks=(StuckFault(at=0.3, robots=(2, 3), duration=0.2),)
        )
        report = run(mission, schedule)
        assert report.outcome == "recovered"
        assert report.metrics.replan_count == 0
        assert report.metrics.time_to_recover == pytest.approx(
            0.2 * mission[2].trajectory.duration
        )
        assert report.metrics.extra_distance == pytest.approx(0.0, abs=1e-6)

    def test_slow_dilates_window(self, mission):
        schedule = FaultSchedule(
            slows=(SlowFault(at=0.3, robots=(2,), factor=0.5, duration=0.2),)
        )
        report = run(mission, schedule)
        # Half speed for a 0.2-fraction window doubles its duration.
        assert report.metrics.time_to_recover == pytest.approx(
            0.2 * mission[2].trajectory.duration
        )


class TestUnrecoverable:
    def test_too_few_survivors_is_typed(self, mission):
        swarm, _, _ = mission
        schedule = FaultSchedule(
            crashes=(
                CrashFault(at=0.4, robots=tuple(range(swarm.size - 2))),
            )
        )
        with pytest.raises(UnrecoverableError) as err:
            run(mission, schedule)
        assert err.value.stage == "survivors"
        assert err.value.survivors == 2

    def test_consensus_failure_is_typed(self, mission):
        # Crash a consensus participant at round 0 of every recovery
        # consensus: the roster can never complete, both attempts go
        # quiet incomplete, and the executor refuses loudly.
        schedule = FaultSchedule(
            crashes=(CrashFault(at=0.4, robots=(7,)),),
            comms=LinkFaults(crash_at={0: [0]}),
        )
        with pytest.raises(UnrecoverableError) as err:
            run(mission, schedule)
        assert err.value.stage == "consensus"

    def test_consensus_survives_storm_comms(self, mission):
        schedule = build_archetype_schedule(
            "storm", mission[0].positions, seed=1
        )
        report = run(mission, schedule)
        assert report.outcome == "recovered"
        assert report.metrics.consensus_rounds > 0


class TestRejoinComponents:
    def test_two_components_merge(self):
        left = np.array([[0.0, 0.0], [5.0, 0.0], [10.0, 0.0]])
        right = left + np.array([100.0, 0.0])
        pos = np.vstack([left, right])
        merged, dist, longest = rejoin_components(pos, comm_range=12.0)
        assert UnitDiskGraph(merged, 12.0).is_connected()
        assert dist > 0
        assert longest > 0
        # The escorted component moved rigidly: internal distances kept.
        def gaps(p):
            return np.round(np.diff(p[:, 0]), 9)
        assert (gaps(merged[3:]) == gaps(right)).all()

    def test_connected_input_is_untouched(self):
        pos = np.array([[0.0, 0.0], [5.0, 0.0], [10.0, 0.0]])
        merged, dist, longest = rejoin_components(pos, comm_range=12.0)
        assert (merged == pos).all()
        assert dist == 0.0 and longest == 0.0

    def test_three_components_merge(self):
        pos = np.array([
            [0.0, 0.0], [5.0, 0.0],
            [200.0, 0.0], [205.0, 0.0],
            [0.0, 200.0], [5.0, 200.0],
        ])
        merged, dist, _ = rejoin_components(pos, comm_range=10.0)
        assert UnitDiskGraph(merged, 10.0).is_connected()
        assert dist > 0


class TestObsAndReport:
    def test_recovery_gauges_emitted(self, mission):
        metrics = Metrics()
        schedule = FaultSchedule(crashes=(CrashFault(at=0.4, robots=(7,)),))
        with activate_metrics(metrics):
            run(mission, schedule)
        snap = metrics.snapshot()
        assert snap["faults.missions_recovered"]["value"] == 1
        assert snap["faults.replans"]["value"] == 1
        assert "faults.extra_distance" in snap
        assert "faults.time_to_recover" in snap

    def test_report_to_dict_is_plain_json(self, mission):
        import json

        schedule = FaultSchedule(crashes=(CrashFault(at=0.4, robots=(7,)),))
        report = run(mission, schedule)
        doc = report.to_dict()
        json.dumps(doc)  # must not raise
        assert doc["outcome"] == "recovered"
        assert doc["metrics"]["replan_count"] == 1
        assert any(s["kind"] == "march" for s in doc["segments"])

    def test_executor_plans_when_no_original_given(self, mission):
        swarm, m2, original = mission
        executor = ResilientExecutor(config=FAST, resolution=8)
        report = executor.execute(swarm, m2, FaultSchedule())
        assert report.outcome == "recovered"
        assert report.metrics.baseline_distance == pytest.approx(
            original.total_distance, rel=0.05
        )
