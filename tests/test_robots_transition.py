"""Tests for transition builders (straight, detoured, stepwise)."""

import numpy as np
import pytest

from repro.errors import PlanningError
from repro.foi import FieldOfInterest, ellipse_polygon, path_blocked_by_hole
from repro.geometry import Polygon
from repro.robots import detoured_transition, stepwise_trajectory, straight_transition


@pytest.fixture(scope="module")
def hole_foi():
    outer = Polygon([(0, 0), (20, 0), (20, 20), (0, 20)])
    return FieldOfInterest(outer, [ellipse_polygon(3, 3, samples=20, center=(10, 10))])


class TestStraightTransition:
    def test_linear_interpolation(self):
        traj = straight_transition([[0, 0]], [[10, 0]])
        assert np.allclose(traj.positions_at(0.3), [[3, 0]])

    def test_eqn2_form(self, rng):
        """Eqn. 2: position(t) = (T-t)/T p + t/T q for straight marches."""
        p = rng.uniform(0, 10, (5, 2))
        q = rng.uniform(0, 10, (5, 2))
        traj = straight_transition(p, q, 0.0, 2.0)
        for t in (0.0, 0.5, 1.3, 2.0):
            expected = (2.0 - t) / 2.0 * p + t / 2.0 * q
            assert np.allclose(traj.positions_at(t), expected, atol=1e-9)

    def test_count_mismatch(self):
        with pytest.raises(PlanningError):
            straight_transition([[0, 0]], [[1, 1], [2, 2]])


class TestDetouredTransition:
    def test_no_holes_degrades_to_straight(self, square_foi):
        traj = detoured_transition([[1, 1]], [[50, 50]], square_foi)
        assert len(traj.paths[0].waypoints) == 2

    def test_blocked_path_gets_waypoints(self, hole_foi):
        traj = detoured_transition([[2, 10]], [[18, 10]], hole_foi)
        assert len(traj.paths[0].waypoints) > 2

    def test_detoured_path_is_clear(self, hole_foi):
        traj = detoured_transition([[2, 10]], [[18, 10]], hole_foi)
        wps = traj.paths[0].waypoints
        for a, b in zip(wps, wps[1:]):
            assert path_blocked_by_hole(hole_foi, a, b) is None

    def test_unblocked_robot_unaffected(self, hole_foi):
        traj = detoured_transition(
            [[2, 10], [2, 2]], [[18, 10], [18, 2]], hole_foi
        )
        assert len(traj.paths[1].waypoints) == 2

    def test_none_foi(self):
        traj = detoured_transition([[0, 0]], [[5, 5]], None)
        assert traj.total_distance() == pytest.approx(np.sqrt(50))

    def test_source_foi_holes_avoided(self, hole_foi):
        # March leaves the hole-bearing FoI toward a plain target: the
        # path across the source hole must still detour.
        target = FieldOfInterest([(30, 0), (50, 0), (50, 20), (30, 20)])
        traj = detoured_transition(
            [[2.0, 10.0]], [[40.0, 10.0]], target, source_foi=hole_foi
        )
        wps = traj.paths[0].waypoints
        assert len(wps) > 2
        for a, b in zip(wps, wps[1:]):
            assert path_blocked_by_hole(hole_foi, a, b) is None

    def test_both_fois_holes_combined(self, hole_foi):
        target = FieldOfInterest(
            Polygon([(30, 0), (50, 0), (50, 20), (30, 20)]),
            [ellipse_polygon(3, 3, samples=20, center=(40, 10))],
        )
        traj = detoured_transition(
            [[2.0, 10.0]], [[48.0, 10.0]], target, source_foi=hole_foi
        )
        wps = traj.paths[0].waypoints
        for a, b in zip(wps, wps[1:]):
            assert path_blocked_by_hole(hole_foi, a, b) is None
            assert path_blocked_by_hole(target, a, b) is None


class TestStepwiseTrajectory:
    def test_passes_through_snapshots(self):
        steps = [
            np.array([[0.0, 0.0], [1.0, 0.0]]),
            np.array([[0.0, 1.0], [1.0, 1.0]]),
            np.array([[0.0, 2.0], [2.0, 2.0]]),
        ]
        traj = stepwise_trajectory(steps, 0.0, 1.0)
        assert np.allclose(traj.positions_at(0.0), steps[0])
        assert np.allclose(traj.positions_at(0.5), steps[1])
        assert np.allclose(traj.positions_at(1.0), steps[2])

    def test_total_distance_sums_steps(self):
        steps = [
            np.array([[0.0, 0.0]]),
            np.array([[3.0, 0.0]]),
            np.array([[3.0, 4.0]]),
        ]
        traj = stepwise_trajectory(steps)
        assert traj.total_distance() == pytest.approx(7.0)

    def test_single_snapshot_stationary(self):
        traj = stepwise_trajectory([np.array([[1.0, 1.0]])])
        assert traj.total_distance() == 0.0

    def test_inconsistent_counts_rejected(self):
        with pytest.raises(PlanningError):
            stepwise_trajectory([np.zeros((2, 2)), np.zeros((3, 2))])

    def test_empty_rejected(self):
        with pytest.raises(PlanningError):
            stepwise_trajectory([])
