"""Unit tests for the scenario zoo: families, validation, campaigns."""

import json

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.experiments.zoo import (
    FAMILIES,
    INVARIANTS,
    ZooCase,
    ZooConfig,
    ZooParams,
    assert_deployable,
    build_foi,
    build_zoo_scenario,
    case_bytes,
    draw_params,
    family_rng,
    hole_clearance,
    mild_params,
    render_zoo,
    replay_counterexample,
    run_zoo_case,
    shrink_hole_to_clearance,
    summary_bytes,
    validate_foi,
    zoo_campaign,
)
from repro.experiments.zoo import campaign as campaign_module
from repro.foi.shapes import ellipse_polygon, radial_blob

UNIT_CONFIG = ZooConfig(
    robot_count=25, foi_target_points=120, grid_target=400, shrink=False
)


class TestFamilies:
    def test_five_families(self):
        assert len(FAMILIES) >= 5

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_family_builds_valid_geometry(self, family, seed):
        foi, params = build_foi(family, seed)
        assert params == draw_params(family, seed)
        report = validate_foi(foi)
        assert report.ok, f"{family}[{seed}]: {report.failures}"

    @pytest.mark.parametrize("family", FAMILIES)
    def test_reproducible_from_family_and_seed(self, family):
        a, pa = build_foi(family, seed=4)
        b, pb = build_foi(family, seed=4)
        assert pa == pb
        assert np.array_equal(a.outer.vertices, b.outer.vertices)
        assert len(a.holes) == len(b.holes)
        for x, y in zip(a.holes, b.holes):
            assert np.array_equal(x.vertices, y.vertices)

    def test_different_seeds_differ(self):
        a, _ = build_foi("star", 0)
        b, _ = build_foi("star", 1)
        assert not np.array_equal(a.outer.vertices, b.outer.vertices)

    def test_family_rng_streams_independent(self):
        a = family_rng("star", 0, 1).uniform(size=4)
        b = family_rng("star", 0, 2).uniform(size=4)
        assert not np.allclose(a, b)

    def test_family_rng_family_tagged(self):
        a = family_rng("star", 0).uniform(size=4)
        b = family_rng("rough", 0).uniform(size=4)
        assert not np.allclose(a, b)

    def test_unknown_family_rejected(self):
        with pytest.raises(ScenarioError, match="family"):
            build_foi("moebius", 0)

    @pytest.mark.parametrize(
        "bad",
        [
            ZooParams(lobes=0),
            ZooParams(hole_count=-1),
            ZooParams(roughness=1.5),
            ZooParams(min_corridor_width=0.0),
        ],
    )
    def test_nonsense_params_rejected(self, bad):
        with pytest.raises(ScenarioError):
            build_foi("corridor", 0, params=bad)

    def test_annulus_family_produces_true_annulus(self):
        # At least one small seed must draw the holed variant.
        holed = [build_foi("annulus", s)[0].has_holes for s in range(8)]
        assert any(holed)

    def test_mild_params_are_milder(self):
        params = ZooParams(
            lobes=3, hole_count=2, hole_area_fraction=0.1, roughness=0.4,
            min_corridor_width=0.15,
        )
        variants = mild_params("rough", params)
        assert variants
        for v in variants:
            assert (
                v.hole_count < params.hole_count
                or v.roughness < params.roughness
                or v.lobes < params.lobes
                or v.min_corridor_width > params.min_corridor_width
            )


class TestZooParams:
    def test_round_trip(self):
        p = ZooParams(lobes=2, hole_count=1, hole_area_fraction=0.05,
                      roughness=0.3, min_corridor_width=0.18)
        assert ZooParams.from_dict(p.to_dict()) == p

    def test_from_dict_malformed(self):
        with pytest.raises(ScenarioError):
            ZooParams.from_dict({"lobes": "many"})

    def test_dict_is_json_plain(self):
        d = draw_params("corridor", 7).to_dict()
        assert json.loads(json.dumps(d)) == d


class TestValidate:
    OUTER = radial_blob({})

    def test_hole_clearance_escaping_hole(self):
        escaped = ellipse_polygon(0.3, 0.3, samples=16, center=(1.0, 0.0))
        assert hole_clearance(self.OUTER, escaped) == float("-inf")

    def test_shrink_returns_unchanged_when_clear(self):
        hole = ellipse_polygon(0.1, 0.1, samples=16)
        out = shrink_hole_to_clearance(self.OUTER, hole, 0.1)
        assert out is not None
        assert np.array_equal(out.vertices, hole.vertices)

    def test_shrink_negative_clearance_rejected(self):
        hole = ellipse_polygon(0.1, 0.1, samples=16)
        with pytest.raises(ScenarioError):
            shrink_hole_to_clearance(self.OUTER, hole, -0.5)

    def test_shrink_impossible_returns_none(self):
        hole = ellipse_polygon(0.2, 0.2, samples=16, center=(0.9, 0.0))
        assert shrink_hole_to_clearance(self.OUTER, hole, 2.0) is None

    def test_validate_foi_flags_pinched_hole(self):
        from repro.foi.region import FieldOfInterest

        near = ellipse_polygon(0.2, 0.2, samples=16, center=(0.75, 0.0))
        foi = FieldOfInterest(self.OUTER, [near])
        report = validate_foi(foi, min_clearance=0.2)
        assert not report.ok
        assert "hole_clearance" in report.failures

    def test_assert_deployable_on_zoo_family(self):
        foi, _ = build_foi("archipelago", 1)
        swarm = assert_deployable(foi, robot_count=16)
        assert swarm.size == 16
        assert swarm.is_connected()


class TestScenarioAndCase:
    def test_build_zoo_scenario_deterministic(self):
        a = build_zoo_scenario("star", 3, UNIT_CONFIG)
        b = build_zoo_scenario("star", 3, UNIT_CONFIG)
        assert np.array_equal(a.swarm.positions, b.swarm.positions)
        assert np.array_equal(a.m2.outer.vertices, b.m2.outer.vertices)

    def test_run_zoo_case_document_shape(self):
        doc = run_zoo_case(ZooCase("corridor", 0), UNIT_CONFIG)
        assert doc["family"] == "corridor"
        assert doc["seed"] == 0
        assert doc["outcome"] in ("pass", "fail", "error")
        for method_doc in doc["methods"].values():
            assert set(method_doc["invariants"]) == set(INVARIANTS)
        assert case_bytes(doc) == case_bytes(
            run_zoo_case(ZooCase("corridor", 0), UNIT_CONFIG)
        )

    def test_generation_error_is_documented_not_raised(self):
        doc = run_zoo_case(
            ZooCase("corridor", 0, params=ZooParams(lobes=0)), UNIT_CONFIG
        )
        assert doc["outcome"] == "error"
        assert doc["stage"] == "generate"
        assert doc["methods"] == {}


class TestCampaign:
    def test_small_campaign_passes_and_is_byte_stable(self):
        kwargs = dict(
            families=("corridor", "star"),
            seeds=(0, 1),
            config=UNIT_CONFIG,
        )
        serial = zoo_campaign(workers=1, backend="serial", **kwargs)
        threaded = zoo_campaign(workers=2, backend="thread", **kwargs)
        assert summary_bytes(serial) == summary_bytes(threaded)
        assert serial["summary"]["all_pass"]
        assert serial["counterexamples"] == []
        for agg in serial["families"].values():
            assert agg["cases"] == 2
            assert agg["passed"] == 2

    def test_unknown_family_rejected(self):
        with pytest.raises(ScenarioError, match="unknown zoo families"):
            zoo_campaign(families=("nonsense",), seeds=(0,), config=UNIT_CONFIG)

    def test_render_zoo_lists_each_family(self):
        summary = zoo_campaign(
            families=("annulus",), seeds=(0,), config=UNIT_CONFIG, workers=1,
            backend="serial",
        )
        text = render_zoo(summary)
        assert "annulus" in text
        assert "C=1" in text


class TestShrinkAndReplay:
    @pytest.fixture()
    def forced_failure(self, monkeypatch):
        """Make the document invariant fail for every case."""
        real = campaign_module._check_document

        def broken(payload):
            checked = dict(real(payload))
            checked["ok"] = False
            return checked

        monkeypatch.setattr(campaign_module, "_check_document", broken)

    def test_failure_produces_shrunk_replayable_triple(self, forced_failure):
        config = ZooConfig(
            robot_count=25, foi_target_points=120, grid_target=400,
            methods=("ours (a)",), shrink=True, shrink_budget=2,
        )
        summary = zoo_campaign(
            families=("rough",), seeds=(0,), config=config, workers=1,
            backend="serial",
        )
        assert not summary["summary"]["all_pass"]
        assert summary["counterexamples"]
        entry = summary["counterexamples"][0]
        assert entry["family"] == "rough"
        assert "document" in entry["invariants"]
        # The triple replays byte-identically while the defect persists.
        doc, matches = replay_counterexample(entry, config)
        assert doc["outcome"] == "fail"
        assert matches

    def test_replay_after_fix_reports_divergence(self, monkeypatch):
        real = campaign_module._check_document

        def broken(payload):
            checked = dict(real(payload))
            checked["ok"] = False
            return checked

        monkeypatch.setattr(campaign_module, "_check_document", broken)
        config = ZooConfig(
            robot_count=25, foi_target_points=120, grid_target=400,
            methods=("ours (a)",), shrink=False,
        )
        summary = zoo_campaign(
            families=("rough",), seeds=(0,), config=config, workers=1,
            backend="serial",
        )
        entry = summary["counterexamples"][0]
        monkeypatch.setattr(campaign_module, "_check_document", real)
        doc, matches = replay_counterexample(entry, config)
        assert doc["outcome"] == "pass"
        assert not matches

    def test_malformed_counterexample_rejected(self):
        with pytest.raises(ScenarioError, match="malformed"):
            replay_counterexample({"seed": "not-an-int", "family": None})
