"""Unit-disk communication graphs.

Robots are "connected" exactly when their Euclidean distance is at most
the communication range ``r_c`` (disk model, Sec. II).  The
:class:`UnitDiskGraph` snapshot is the basis for neighbour queries,
link bookkeeping and connectivity checks throughout the library.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.errors import GeometryError
from repro.geometry.vec import as_points, pairwise_distances

__all__ = ["UnitDiskGraph", "udg_edges"]


def udg_edges(positions, comm_range: float) -> np.ndarray:
    """All undirected links ``(i, j)`` with ``i < j`` within ``comm_range``.

    Returns an ``(m, 2)`` int array (empty when no pair is in range).
    """
    pts = as_points(positions)
    if comm_range <= 0:
        raise GeometryError("communication range must be positive")
    if len(pts) < 2:
        return np.zeros((0, 2), dtype=int)
    d = pairwise_distances(pts)
    iu, ju = np.triu_indices(len(pts), k=1)
    mask = d[iu, ju] <= comm_range
    return np.column_stack([iu[mask], ju[mask]]).astype(int)


class UnitDiskGraph:
    """Snapshot of the swarm's communication graph at one instant.

    Parameters
    ----------
    positions : (n, 2) array-like
        Robot positions.
    comm_range : float
        Communication range ``r_c`` (same for all robots, Sec. II).
    """

    def __init__(self, positions, comm_range: float) -> None:
        self.positions = as_points(positions)
        if comm_range <= 0:
            raise GeometryError("communication range must be positive")
        self.comm_range = float(comm_range)

    @property
    def node_count(self) -> int:
        return len(self.positions)

    @cached_property
    def edges(self) -> np.ndarray:
        """Undirected links as an ``(m, 2)`` int array with ``i < j``."""
        return udg_edges(self.positions, self.comm_range)

    @cached_property
    def edge_set(self) -> frozenset[tuple[int, int]]:
        """The links as a frozenset of ``(i, j)`` tuples with ``i < j``."""
        return frozenset((int(i), int(j)) for i, j in self.edges)

    @cached_property
    def adjacency(self) -> list[list[int]]:
        """Per-node sorted neighbour lists."""
        adj: list[list[int]] = [[] for _ in range(self.node_count)]
        for i, j in self.edges:
            adj[int(i)].append(int(j))
            adj[int(j)].append(int(i))
        return [sorted(a) for a in adj]

    def neighbors(self, i: int) -> list[int]:
        """Nodes within communication range of node ``i``."""
        return self.adjacency[i]

    def degree(self, i: int) -> int:
        return len(self.adjacency[i])

    def has_edge(self, i: int, j: int) -> bool:
        a, b = (i, j) if i < j else (j, i)
        return (a, b) in self.edge_set

    @cached_property
    def components(self) -> list[list[int]]:
        """Connected components as sorted node lists, largest first."""
        n = self.node_count
        seen = np.zeros(n, dtype=bool)
        comps: list[list[int]] = []
        adj = self.adjacency
        for start in range(n):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            comp = [start]
            while stack:
                v = stack.pop()
                for w in adj[v]:
                    if not seen[w]:
                        seen[w] = True
                        comp.append(w)
                        stack.append(w)
            comps.append(sorted(comp))
        comps.sort(key=len, reverse=True)
        return comps

    def is_connected(self) -> bool:
        """Whether all nodes form a single component."""
        return self.node_count <= 1 or len(self.components) == 1

    def nodes_connected_to(self, anchors) -> np.ndarray:
        """Boolean mask of nodes with a path to any node in ``anchors``.

        This implements Definition 2's reachability test: a robot
        counts as globally connected when a multi-hop path to the
        network boundary (the anchor set) exists.
        """
        mask = np.zeros(self.node_count, dtype=bool)
        stack = [int(a) for a in anchors]
        for a in stack:
            if not 0 <= a < self.node_count:
                raise GeometryError(f"anchor {a} out of range")
            mask[a] = True
        adj = self.adjacency
        while stack:
            v = stack.pop()
            for w in adj[v]:
                if not mask[w]:
                    mask[w] = True
                    stack.append(w)
        return mask
