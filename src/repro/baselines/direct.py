"""The direct-translation baseline (paper Sec. IV).

"One method, represented by direct translation, computes the centroids
of both the current and target FoIs M1 and M2 and a rigid translation
from the centroid of M1 to the centroid of M2.  The mobile robots move
from M1 to M2 based on the rigid translation, and then adjust
themselves to optimal coverage positions in M2 based on Hungarian
method."

The rigid phase preserves every link by construction (all robots share
the same velocity), so any link breakage happens in the adjustment
phase - exactly the behaviour the paper's fifth-row plots show.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.hungarian import min_cost_matching
from repro.baselines.plans import BaselinePlan
from repro.foi.region import FieldOfInterest
from repro.geometry.vec import as_points
from repro.robots.motion import SwarmTrajectory, TimedPath

__all__ = ["direct_translation_plan"]


def direct_translation_plan(
    starts,
    target_positions,
    m1: FieldOfInterest,
    m2: FieldOfInterest,
    t_end: float = 1.0,
) -> BaselinePlan:
    """Plan the direct-translation transition.

    Parameters
    ----------
    starts : (n, 2) array-like
        Robot positions in M1.
    target_positions : (n, 2) array-like
        Pre-computed optimal coverage positions ``Q`` in M2.
    m1, m2 : FieldOfInterest
        Used only for their centroids (the rigid translation vector).
    t_end : float
        Total transition time ``T``.
    """
    p = as_points(starts)
    q = as_points(target_positions)
    offset = m2.centroid - m1.centroid
    translated = p + offset
    assignment = min_cost_matching(translated, q)
    finals = q[assignment]

    # Time split: rigid phase and adjustment phase share T proportionally
    # to their mean leg lengths (both phases are synchronous).
    rigid_leg = float(np.hypot(offset[0], offset[1]))
    adjust_d = np.hypot(*(finals - translated).T)
    adjust_leg = float(adjust_d.mean())
    total_leg = rigid_leg + adjust_leg
    if total_leg <= 0:
        split = 0.5 * t_end
    else:
        split = t_end * (rigid_leg / total_leg)
        split = min(max(split, 0.05 * t_end), 0.95 * t_end)

    paths = []
    for a, mid, b in zip(p, translated, finals):
        phase1 = TimedPath.constant_speed(np.vstack([a, mid]), 0.0, split)
        phase2 = TimedPath.constant_speed(np.vstack([mid, b]), split, t_end)
        paths.append(phase1.then(phase2))
    trajectory = SwarmTrajectory(paths, 0.0, t_end)
    return BaselinePlan(
        name="direct translation",
        assignment=assignment,
        final_positions=finals,
        trajectory=trajectory,
    )
