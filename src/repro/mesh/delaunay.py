"""Delaunay triangulation of point sets and FoIs.

scipy's ``Delaunay`` provides the raw triangulation; this module adapts
it to the library's needs: triangulating a (possibly concave, possibly
holed) Field of Interest by filtering triangles whose centroid falls
outside the free region, and triangulating swarm positions with a
maximum edge length (the communication range).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

from repro.errors import MeshError
from repro.foi.gridding import FoiPointSet, grid_foi
from repro.foi.region import FieldOfInterest
from repro.geometry.vec import as_points
from repro.mesh.trimesh import TriMesh
from repro.obs import span

__all__ = ["delaunay_mesh", "triangulate_foi", "FoiMesh", "delaunay_with_max_edge"]


def delaunay_mesh(points) -> TriMesh:
    """Plain Delaunay triangulation of a point set as a :class:`TriMesh`.

    Raises
    ------
    MeshError
        If fewer than 3 points or all points are collinear.
    """
    pts = as_points(points)
    if len(pts) < 3:
        raise MeshError("Delaunay triangulation needs at least 3 points")
    with span("mesh.delaunay", points=len(pts)) as sp_:
        try:
            tri = Delaunay(pts)
        except Exception as exc:  # qhull raises its own error type
            raise MeshError(f"Delaunay triangulation failed: {exc}") from exc
        simplices = np.asarray(tri.simplices, dtype=int)
        if len(simplices) == 0:
            raise MeshError("Delaunay triangulation produced no triangles")
        # Regular (lattice) inputs make qhull emit sliver simplices from
        # collinear points; drop them before the strict TriMesh validation.
        a = pts[simplices[:, 0]]
        b = pts[simplices[:, 1]]
        c = pts[simplices[:, 2]]
        area2 = (b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1]) - (
            b[:, 1] - a[:, 1]
        ) * (c[:, 0] - a[:, 0])
        scale = max(1.0, float(np.abs(pts).max()) ** 2)
        keep = np.abs(area2) > 1e-12 * scale
        if not keep.any():
            raise MeshError("all Delaunay triangles are degenerate")
        sp_.set_attributes(triangles=int(keep.sum()))
    return TriMesh(pts, simplices[keep])


def delaunay_with_max_edge(points, max_edge: float) -> tuple[TriMesh, np.ndarray]:
    """Delaunay triangulation keeping only triangles with all edges short.

    This is the centralized oracle for connectivity-graph triangulation
    extraction: the Delaunay triangulation restricted to communication
    links (edges no longer than ``max_edge``), reduced to its largest
    connected component.

    Returns
    -------
    (TriMesh, (k,) int ndarray)
        The mesh and, for each of its vertices, the index of the source
        point.  ``k`` equals ``len(points)`` when no point was dropped.
    """
    mesh = delaunay_mesh(points)
    a = mesh.vertices[mesh.triangles[:, 0]]
    b = mesh.vertices[mesh.triangles[:, 1]]
    c = mesh.vertices[mesh.triangles[:, 2]]
    ok = (
        (np.hypot(*(a - b).T) <= max_edge)
        & (np.hypot(*(b - c).T) <= max_edge)
        & (np.hypot(*(c - a).T) <= max_edge)
    )
    keep = np.flatnonzero(ok)
    if len(keep) == 0:
        raise MeshError("no triangle satisfies the edge-length bound")
    return TriMesh(mesh.vertices, mesh.triangles[keep]).largest_component()


class FoiMesh:
    """A triangulated Field of Interest plus its sampling metadata.

    Attributes
    ----------
    mesh : TriMesh
        The triangulation of the free region.
    foi : FieldOfInterest
        The region that was triangulated.
    point_set : FoiPointSet
        The raw samples (note: the mesh may drop isolated samples; use
        ``vertex_map`` to translate indices).
    vertex_map : (k,) int ndarray
        For each mesh vertex, the index of the source sample point.
    """

    def __init__(
        self,
        mesh: TriMesh,
        foi: FieldOfInterest,
        point_set: FoiPointSet,
        vertex_map: np.ndarray,
    ) -> None:
        self.mesh = mesh
        self.foi = foi
        self.point_set = point_set
        self.vertex_map = vertex_map

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FoiMesh({self.foi.name!r}, {self.mesh!r})"


def triangulate_foi(
    foi: FieldOfInterest,
    spacing: float | None = None,
    target_points: int = 600,
) -> FoiMesh:
    """Grid and triangulate a Field of Interest (paper Sec. III-B).

    Samples the FoI (boundary + interior grid), Delaunay-triangulates
    the samples, removes triangles whose centroid lies outside the free
    region (this carves out concavities and holes), and keeps the
    largest connected component.

    Returns
    -------
    FoiMesh

    Raises
    ------
    MeshError
        If the surviving mesh is too small or structurally unsound.
    """
    ps = grid_foi(foi, spacing=spacing, target_points=target_points)
    pts = as_points(ps.points)
    # Triangulate in a translation-canonical frame (mean-centred,
    # snapped to a 1e-6 grid): qhull tie-breaks exactly co-circular
    # lattice points on raw coordinates, so translated copies of one
    # region would otherwise get structurally different triangulations
    # - defeating the content-addressed disk-map cache and making sweep
    # results depend on where M2 happens to sit.
    centered = pts - pts.mean(axis=0)
    canonical = np.round(centered / 1e-6) * 1e-6
    full = TriMesh(pts, delaunay_mesh(canonical).triangles)
    a = full.vertices[full.triangles[:, 0]]
    b = full.vertices[full.triangles[:, 1]]
    c = full.vertices[full.triangles[:, 2]]
    centroids = (a + b + c) / 3.0
    keep = foi.contains(centroids)
    # Also drop slivers along the boundary whose inradius is tiny; they
    # destabilise the harmonic map without adding coverage.
    areas = 0.5 * np.abs(
        (b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1])
        - (b[:, 1] - a[:, 1]) * (c[:, 0] - a[:, 0])
    )
    per = (
        np.hypot(*(a - b).T) + np.hypot(*(b - c).T) + np.hypot(*(c - a).T)
    )
    inradius = 2.0 * areas / np.where(per > 0, per, 1.0)
    keep &= inradius > 1e-9 * max(1.0, float(np.sqrt(foi.area)))
    t_idx = np.flatnonzero(keep)
    if len(t_idx) < 4:
        raise MeshError("FoI triangulation kept too few triangles; refine spacing")
    sub, vmap = TriMesh(full.vertices, full.triangles[t_idx]).largest_component()
    if not sub.is_connected():
        raise MeshError("FoI triangulation is disconnected after filtering")
    expected_loops = 1 + len(foi.holes)
    if len(sub.boundary_loops) != expected_loops:
        raise MeshError(
            f"FoI triangulation has {len(sub.boundary_loops)} boundary loops, "
            f"expected {expected_loops}; adjust grid spacing"
        )
    return FoiMesh(mesh=sub, foi=foi, point_set=ps, vertex_map=vmap)
