"""Tests for FoI point sampling (grid_foi)."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.foi import grid_foi, m2_scenario4, suggest_spacing


class TestSuggestSpacing:
    def test_yields_roughly_target(self, square_foi):
        spacing = suggest_spacing(square_foi, target_points=400)
        pts = square_foi.grid_points(spacing)
        assert 250 <= len(pts) <= 600

    def test_rejects_tiny_targets(self, square_foi):
        with pytest.raises(GeometryError):
            suggest_spacing(square_foi, target_points=4)


class TestGridFoi:
    def test_structure(self, holed_foi):
        ps = grid_foi(holed_foi, target_points=300)
        n = len(ps.points)
        assert n > 200
        # Boundary index arrays partition correctly.
        assert ps.outer_boundary[0] == 0
        assert len(ps.hole_boundaries) == 1
        all_boundary = set(ps.outer_boundary.tolist())
        for h in ps.hole_boundaries:
            all_boundary.update(h.tolist())
        interior = set(ps.interior.tolist())
        assert all_boundary.isdisjoint(interior)
        assert all_boundary | interior == set(range(n))

    def test_outer_boundary_points_on_outer(self, holed_foi):
        ps = grid_foi(holed_foi, target_points=300)
        for idx in ps.outer_boundary:
            assert holed_foi.outer.boundary_distance(ps.points[idx]) < 1e-6

    def test_hole_boundary_points_on_hole(self, holed_foi):
        ps = grid_foi(holed_foi, target_points=300)
        hole = holed_foi.holes[0]
        for idx in ps.hole_boundaries[0]:
            assert hole.boundary_distance(ps.points[idx]) < 1e-6

    def test_interior_points_have_margin(self, holed_foi):
        ps = grid_foi(holed_foi, target_points=300)
        margin = 0.45 * ps.spacing
        for idx in ps.interior:
            assert holed_foi.boundary_distance(ps.points[idx]) >= margin - 1e-9

    def test_explicit_spacing(self, square_foi):
        ps = grid_foi(square_foi, spacing=5.0)
        assert ps.spacing == pytest.approx(5.0)

    def test_rejects_bad_spacing(self, square_foi):
        with pytest.raises(GeometryError):
            grid_foi(square_foi, spacing=-1.0)

    def test_concave_scenario_shape(self):
        foi = m2_scenario4()
        ps = grid_foi(foi, target_points=350)
        inside = foi.contains(ps.points)
        # Boundary samples may sit exactly on the outline; everything else
        # must be strictly in the free region.
        assert inside.mean() > 0.95
