"""Tests for pinch removal and fan analysis."""

import numpy as np
import pytest

from repro.mesh import TriMesh, remove_pinches, vertex_fans
from repro.network import extract_triangulation


def pinched_mesh():
    """Two triangle fans joined only at vertex 2."""
    verts = [(0, 0), (1, 0), (0.5, 0.5), (0, 1), (1, 1), (2, 0.5), (1.8, 1.2)]
    tris = [(0, 1, 2), (2, 3, 4), (2, 4, 6)]
    return TriMesh(verts, tris)


class TestVertexFans:
    def test_manifold_vertex_one_fan(self):
        mesh = TriMesh([(0, 0), (1, 0), (1, 1), (0, 1)], [(0, 1, 2), (0, 2, 3)])
        assert len(vertex_fans(mesh, 0)) == 1
        assert len(vertex_fans(mesh, 1)) == 1

    def test_pinched_vertex_two_fans(self):
        mesh = pinched_mesh()
        fans = vertex_fans(mesh, 2)
        assert len(fans) == 2
        assert len(fans[0]) == 2  # largest first

    def test_isolated_vertex_no_fans(self):
        mesh = TriMesh([(0, 0), (1, 0), (0, 1), (5, 5)], [(0, 1, 2)])
        assert vertex_fans(mesh, 3) == []


class TestRemovePinches:
    def test_manifold_mesh_untouched(self):
        mesh = TriMesh([(0, 0), (1, 0), (1, 1), (0, 1)], [(0, 1, 2), (0, 2, 3)])
        repaired, vmap = remove_pinches(mesh)
        assert repaired.triangle_count == 2
        assert np.array_equal(vmap, np.arange(4))

    def test_pinch_resolved(self):
        mesh = pinched_mesh()
        with pytest.raises(Exception):
            _ = mesh.boundary_loops  # confirms the fixture is pinched
        repaired, vmap = remove_pinches(mesh)
        assert len(repaired.boundary_loops) >= 1  # manifold now
        # The larger fan (2 triangles) survives.
        assert repaired.triangle_count == 2
        assert 0 not in vmap or repaired.triangle_count == 2

    def test_repaired_mesh_is_disk(self):
        repaired, _ = remove_pinches(pinched_mesh())
        assert repaired.is_topological_disk()

    def test_extraction_handles_midmarch_swarms(self, rng):
        """Randomly stretched configurations (mid-march snapshots) must
        always yield a manifold triangulation."""
        for _ in range(10):
            n = 40
            base = np.column_stack([
                np.linspace(0, 30, n), rng.normal(0, 2.0, n)
            ])
            jitter = rng.normal(0, 1.0, (n, 2))
            pts = base + jitter
            try:
                mesh, vmap = extract_triangulation(pts, comm_range=4.0)
            except Exception:
                continue  # too sparse: acceptable, just not pinched
            assert len(mesh.boundary_loops) >= 1
            loops_ok = mesh.outer_boundary_loop  # no MeshError
            assert len(loops_ok) >= 3
