"""Shared infrastructure for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper.  Sweeps
are expensive, so results are cached per scenario at module level and
shared between the figure benchmarks and the Table-I benchmark.

The assertions check the *shape* of the paper's results, not absolute
numbers (our substrate is a simulator, not the authors' testbed):

* both of our methods keep global connectivity in every run,
* our stable link ratio dominates the Hungarian baseline everywhere
  and direct translation on average,
* every method's total distance converges to the Hungarian optimum as
  the M1-M2 separation grows 10x -> 100x communication ranges.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import (
    DEFAULT_METHODS,
    SweepResult,
    get_scenario,
    sweep_separations,
)

SEPARATIONS = (10.0, 40.0, 70.0, 100.0)
RUN_KWARGS = dict(
    foi_target_points=320,
    lloyd_grid_target=1400,
    resolution=24,
)

_SWEEPS: dict[int, SweepResult] = {}


def get_sweep(scenario_id: int) -> SweepResult:
    """Run (or fetch) the Fig. 3-style sweep for a scenario."""
    if scenario_id not in _SWEEPS:
        _SWEEPS[scenario_id] = sweep_separations(
            get_scenario(scenario_id),
            separation_factors=SEPARATIONS,
            **RUN_KWARGS,
        )
    return _SWEEPS[scenario_id]


def assert_paper_shape(sweep: SweepResult) -> None:
    """The qualitative claims of Figs. 3-5 that must hold."""
    ours = ("ours (a)", "ours (b)")
    for pt in sweep.points:
        # Table-I guarantee: our methods never lose global connectivity.
        for method in ours:
            assert pt.connected[method], (
                f"scenario {sweep.scenario_id}: {method} lost connectivity "
                f"at separation {pt.separation_factor}"
            )
        # Fifth-row claim: ours preserves more links than Hungarian.
        assert (
            pt.stable_link_ratio["ours (a)"]
            > pt.stable_link_ratio["Hungarian"]
        ), f"scenario {sweep.scenario_id} @ {pt.separation_factor}x"

    # Ours beats direct translation on link preservation on average.
    mean_a = float(np.mean(sweep.series("stable_link_ratio", "ours (a)")))
    mean_direct = float(
        np.mean(sweep.series("stable_link_ratio", "direct translation"))
    )
    assert mean_a > mean_direct - 0.02

    # Fourth-row claim: distances converge to the Hungarian optimum.
    last = sweep.points[-1]
    first = sweep.points[0]
    for method in ("ours (a)", "ours (b)", "direct translation"):
        assert last.distance_ratio[method] < 1.2, (
            f"{method} ratio {last.distance_ratio[method]:.3f} at 100x"
        )
        assert last.distance_ratio[method] <= first.distance_ratio[method] + 0.05

    # Method (b) targets distance: never much worse than method (a).
    for pt in sweep.points:
        assert pt.distance_ratio["ours (b)"] <= pt.distance_ratio["ours (a)"] + 0.03


def print_sweep(sweep: SweepResult) -> None:
    """Print the sweep table and save the two SVG figure panels."""
    from pathlib import Path

    from repro.experiments import render_sweep, write_sweep_figures

    print()
    print(render_sweep(sweep, list(DEFAULT_METHODS)))
    out_dir = Path(__file__).parent / "output" / "figures"
    for path in write_sweep_figures(sweep, out_dir):
        print(f"figure: {path}")
