"""The mission executor: march, detect target motion, replan, repeat.

:class:`MissionRunner` drives one mission end to end.  Each epoch it
plans from the swarm's current positions to the epoch's target, lets
the swarm execute a configurable fraction of that plan (the remainder
is abandoned when the next target update arrives), and measures the
leg: disk-map cache traffic, executed distance, stable-link ratio, and
connectivity at every sampled instant *including* left-sided limits at
jump discontinuities.  Crash faults from an optional
:class:`~repro.faults.schedule.FaultSchedule` are composed in: a crash
whose mission fraction lands inside an epoch removes its robots at the
remapped instant of the executed window, and the surviving swarm
replans the next leg without them.

Determinism contract: :meth:`MissionRunner.run` scopes a *private*
cache and metrics registry, so the produced mission document is a pure
function of ``(spec, config, faults)`` - byte-identical whether the
mission runs in-process, in a service worker, or behind a sharded
fleet.  Wall-clock measurements (replan latency) are therefore *not*
part of the document; they are emitted through the ``progress``
callback only.  Every epoch ends in a metrics record or a typed
:class:`~repro.errors.MissionError` - never a silently degraded plan.
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from repro.errors import MissionError, MissionInterrupted, ReproError
from repro.exec.cache import ContentCache, activate_cache
from repro.faults.schedule import CrashFault, FaultSchedule
from repro.io import canonical_digest, mission_document, result_to_dict
from repro.marching.planner import MarchingPlanner
from repro.marching.replan import _remap_event_time
from repro.metrics.stable_links import stable_link_ratio
from repro.missions.checkpoint import MissionCheckpoint, checkpoint_key
from repro.missions.diff import plan_diff
from repro.missions.spec import MissionConfig, MissionSpec
from repro.missions.targets import mission_targets
from repro.network.udg import UnitDiskGraph
from repro.obs import Metrics, activate_metrics, span
from repro.robots.robot import RadioSpec
from repro.robots.swarm import Swarm

__all__ = ["MissionRunner", "run_mission"]

#: Disk-map cache counters sampled per epoch.
_HITS = "cache.harmonic.diskmap.hits"
_MISSES = "cache.harmonic.diskmap.misses"

#: ``progress(kind, data)`` callback type: mirrors the service's SSE
#: event shape (kind plus a JSON-safe payload).
ProgressFn = Callable[[str, dict[str, Any]], None]


def _validated_schedule(faults: FaultSchedule | None) -> FaultSchedule | None:
    """Missions compose with crash faults only - refuse the rest loudly."""
    if faults is None:
        return None
    unsupported = []
    if faults.stucks:
        unsupported.append("stuck")
    if faults.slows:
        unsupported.append("slow")
    if faults.comms is not None:
        unsupported.append("comms")
    if unsupported:
        raise MissionError(
            "mission fault schedules support crash faults only; "
            f"schedule {faults.name!r} also carries: {unsupported} "
            "(run those through the resilient executor instead)"
        )
    return faults


class MissionRunner:
    """Execute one mission: a seeded target sequence with replanning.

    Parameters
    ----------
    spec : MissionSpec
    config : MissionConfig, optional
    faults : FaultSchedule, optional
        Crash-only schedule; ``at`` instants are mission fractions over
        the *whole* mission (epoch ``k`` of ``E`` owns the fraction
        window ``[k/E, (k+1)/E)``).
    """

    def __init__(
        self,
        spec: MissionSpec,
        config: MissionConfig | None = None,
        faults: FaultSchedule | None = None,
    ) -> None:
        self.spec = spec
        self.config = config or MissionConfig()
        self.faults = _validated_schedule(faults)

    # ------------------------------------------------------------------

    def _crashes_for_epoch(self, epoch: int) -> list[CrashFault]:
        if self.faults is None:
            return []
        lo = epoch / self.spec.epochs
        hi = (epoch + 1) / self.spec.epochs
        last = epoch == self.spec.epochs - 1
        return [
            c
            for c in self.faults.crashes
            if lo <= c.at < hi or (last and c.at >= hi)
        ]

    def run(
        self,
        progress: ProgressFn | None = None,
        checkpoint_dir: str | None = None,
        interrupt: Callable[[], bool] | None = None,
    ) -> dict[str, Any]:
        """Run the mission; returns the canonical mission document.

        Parameters
        ----------
        progress : callable, optional
            ``progress(kind, data)`` sink for streaming events.
        checkpoint_dir : str or Path, optional
            Durable per-epoch checkpointing: completed epochs (and the
            mission's private disk-cache manifest) are committed there
            after every epoch, and a later run against the same
            directory resumes from the last committed epoch instead of
            epoch zero - producing a document byte-identical to an
            uninterrupted run.  The directory is removed on success.
        interrupt : callable, optional
            Polled at every epoch boundary; when it returns True the
            runner checkpoints (if enabled) and raises
            :class:`MissionInterrupted` - the graceful-drain hook.

        Raises
        ------
        MissionError
            When a leg cannot be planned, or a crash leaves too few /
            disconnected survivors.
        MissionInterrupted
            When ``interrupt`` fired at an epoch boundary.
        """
        emit = progress or (lambda kind, data: None)
        checkpoint: MissionCheckpoint | None = None
        if checkpoint_dir is not None:
            key = checkpoint_key(
                self.spec.to_dict(),
                self.config.to_dict(),
                self.faults.to_dict() if self.faults is not None else None,
            )
            checkpoint = MissionCheckpoint(checkpoint_dir, key=key)
            cache = checkpoint.cache(self.config.cache_capacity)
        else:
            cache = ContentCache(self.config.cache_capacity)
        with activate_metrics(Metrics()) as metrics, activate_cache(
            cache
        ), span("mission.run", family=self.spec.family, seed=self.spec.seed):
            return self._run(emit, metrics, checkpoint, interrupt)

    # ------------------------------------------------------------------

    def _run(
        self,
        emit: ProgressFn,
        metrics: Metrics,
        checkpoint: MissionCheckpoint | None = None,
        interrupt: Callable[[], bool] | None = None,
    ) -> dict[str, Any]:
        spec, config = self.spec, self.config
        scenario, targets = mission_targets(spec, config)
        planner = MarchingPlanner(config.marching_config())
        radio = RadioSpec.from_comm_range(config.comm_range)

        alive = np.arange(scenario.swarm.size)  # original robot ids
        positions = scenario.swarm.positions
        epochs: list[dict[str, Any]] = []
        previous: dict[str, Any] = {}
        totals = {"hits": 0, "misses": 0, "distance": 0.0, "violations": 0}
        fault_replans = 0
        start_epoch = 0

        state = checkpoint.load() if checkpoint is not None else None
        if state is not None:
            # Resume from the last committed epoch.  Positions/ids come
            # back bit-exact (JSON floats round-trip through repr), and
            # the target sequence is regenerated deterministically, so
            # everything downstream is as if the completed epochs ran
            # in this process.
            epochs = [dict(e) for e in state["epochs"]]
            start_epoch = len(epochs)
            positions = np.asarray(state["positions"], dtype=float)
            alive = np.asarray(state["alive"], dtype=int)
            totals = dict(state["totals"])
            fault_replans = int(state["fault_replans"])
            if start_epoch > 0:
                prev = state["previous"]
                previous = {
                    "target": targets[start_epoch - 1],
                    "distance": prev.get("distance"),
                    "ratio": prev.get("ratio"),
                }
            metrics.counter("mission.checkpoint.resumed").inc()
            emit("resumed", {"epoch": start_epoch,
                             "epochs_completed": start_epoch})

        for epoch in range(start_epoch, len(targets)):
            target = targets[epoch]
            if interrupt is not None and interrupt():
                raise MissionInterrupted(
                    f"mission interrupted at epoch boundary {epoch} "
                    f"({epoch} epochs completed and checkpointed)",
                    epochs_completed=epoch,
                )
            hits0 = metrics.counter(_HITS).value
            misses0 = metrics.counter(_MISSES).value
            t0 = time.perf_counter()
            try:
                result = planner.plan(Swarm(positions, radio), target)
            except ReproError as exc:
                raise MissionError(
                    f"epoch {epoch} replan failed: {exc}", epoch=epoch
                ) from exc
            latency = time.perf_counter() - t0
            hits = int(metrics.counter(_HITS).value - hits0)
            misses = int(metrics.counter(_MISSES).value - misses0)

            traj = result.trajectory
            if epoch == len(targets) - 1:
                t_cut = traj.t_end
            else:
                t_cut = _cut_time(
                    traj, config.advance_fraction, config.comm_range, epoch
                )
            span_len = traj.t_end - traj.t_start
            frac = 1.0 if span_len <= 0 else (t_cut - traj.t_start) / span_len

            # -- crash faults landing in this epoch's fraction window --
            death_time: dict[int, float] = {}  # local robot id -> instant
            recoveries: list[dict[str, Any]] = []
            lo = epoch / spec.epochs
            hi = (epoch + 1) / spec.epochs
            for crash in self._crashes_for_epoch(epoch):
                t_fault = _remap_event_time(
                    crash.at, lo, hi, traj.t_start, t_cut
                )
                id_to_local = {int(o): j for j, o in enumerate(alive)}
                failed_local = sorted(
                    id_to_local[int(r)]
                    for r in crash.robots
                    if int(r) in id_to_local
                )
                if not failed_local:
                    continue  # every listed robot already died earlier
                for j in failed_local:
                    death_time[j] = t_fault
                present = [
                    j for j in range(len(alive)) if j not in death_time
                ]
                snapshot = traj.positions_at(t_fault)[present]
                if len(present) < 4:
                    raise MissionError(
                        f"epoch {epoch}: crash at fraction {crash.at} "
                        f"leaves {len(present)} survivors - too few to "
                        "march on",
                        epoch=epoch,
                    )
                connected = UnitDiskGraph(
                    snapshot, config.comm_range
                ).is_connected()
                if not connected:
                    raise MissionError(
                        f"epoch {epoch}: crash at fraction {crash.at} "
                        "disconnected the surviving network",
                        epoch=epoch,
                    )
                fault_replans += 1
                recovery = {
                    "epoch": epoch,
                    "at": float(crash.at),
                    "failed": [int(alive[j]) for j in failed_local],
                    "survivors": len(present),
                    "connected": True,
                }
                recoveries.append(recovery)
                emit("recovery", dict(recovery))

            # -- measure the executed window ---------------------------
            violations, samples = _connectivity_violations(
                traj, result.boundary_anchors, death_time, config, t_cut
            )
            distances = traj.distances_between(traj.t_start, t_cut)
            for j, t_fault in death_time.items():
                distances[j] = traj.distances_between(traj.t_start, t_fault)[j]
            executed = float(distances.sum())
            ratio = float(
                stable_link_ratio(result.links, traj, config.resolution)
            )

            diff = plan_diff(
                epoch,
                target,
                result,
                stable_ratio=ratio,
                cache_hits=hits,
                cache_misses=misses,
                previous_target=previous.get("target"),
                previous_distance=previous.get("distance"),
                previous_stable_ratio=previous.get("ratio"),
                target_deformed=_deformed_epoch(spec, epoch),
            )
            record = {
                "epoch": epoch,
                "target": {
                    "name": target.name,
                    "centroid": [float(c) for c in target.centroid],
                    "area": float(target.area),
                },
                "robots": int(len(alive)),
                "plan_diff": diff.to_dict(),
                "executed_distance": executed,
                "executed_fraction": float(frac),
                "stable_ratio": ratio,
                "c_violations": int(violations),
                "samples": int(samples),
                "recoveries": recoveries,
                "plan_digest": canonical_digest(result_to_dict(result)),
            }
            epochs.append(record)
            totals["hits"] += hits
            totals["misses"] += misses
            totals["distance"] += executed
            totals["violations"] += violations
            previous = {"target": target, "distance": diff.plan_distance,
                        "ratio": ratio}

            # -- advance to the epoch boundary -------------------------
            survivors_local = [
                j for j in range(len(alive)) if j not in death_time
            ]
            positions = traj.positions_at(t_cut)[survivors_local]
            alive = alive[survivors_local]

            # -- commit, then announce: an observed ``checkpoint`` (or
            # later) event implies this epoch survives any crash -------
            if checkpoint is not None:
                checkpoint.save({
                    "epochs": epochs,
                    "positions": positions.tolist(),
                    "alive": [int(a) for a in alive],
                    "totals": totals,
                    "fault_replans": fault_replans,
                    "previous": {"distance": previous["distance"],
                                 "ratio": previous["ratio"]},
                })
                emit("checkpoint", {"epoch": epoch,
                                    "plan_digest": record["plan_digest"]})
            emit("plan_diff", diff.to_dict())
            emit(
                "epoch",
                {
                    "epoch": epoch,
                    "robots": record["robots"],
                    "cache_hits": hits,
                    "cache_misses": misses,
                    "c_violations": int(violations),
                    "replan_latency_s": latency,
                },
            )

        final_target = targets[-1]
        summary = {
            "epochs": len(epochs),
            "replans": len(epochs),
            "fault_replans": fault_replans,
            "survivors": int(len(alive)),
            "cache_hits": totals["hits"],
            "cache_misses": totals["misses"],
            "total_distance": float(totals["distance"]),
            "c_violations": int(totals["violations"]),
            "connected_all": totals["violations"] == 0,
            "in_target": int(np.sum(final_target.contains(positions))),
            "completed": True,
        }
        document = mission_document(
            spec.to_dict(),
            config.to_dict(),
            self.faults.to_dict() if self.faults is not None else None,
            epochs,
            summary,
        )
        if checkpoint is not None:
            checkpoint.clear()
        return document


def _deformed_epoch(spec: MissionSpec, epoch: int) -> bool:
    if epoch == 0:
        return False
    if spec.motion == "deform":
        return True
    return spec.motion == "drift+deform" and epoch % 2 == 0


def _cut_time(
    traj, advance_fraction: float, comm_range: float, epoch: int
) -> float:
    """The instant where this leg hands over to the next target.

    The next leg replans from the swarm's frozen snapshot, and the
    planner requires a *connected* start - mid-march the formation can
    satisfy Definition 2 (every robot reaches the boundary anchors)
    while momentarily split as a plain graph.  So the handover happens
    at the whole-graph-connected instant nearest the requested
    fraction, scanned deterministically outward in 1/64-span steps:
    the fleet regroups before accepting a new target.
    """
    span_len = traj.t_end - traj.t_start
    base = traj.t_start + advance_fraction * span_len
    if span_len <= 0:
        return traj.t_end
    step = span_len / 64.0
    for k in range(129):
        offset = ((k + 1) // 2) * step * (1 if k % 2 else -1)
        t = min(traj.t_end, max(traj.t_start, base + offset))
        if UnitDiskGraph(traj.positions_at(t), comm_range).is_connected():
            return float(t)
    raise MissionError(
        f"epoch {epoch}: no connected handover instant found near "
        f"fraction {advance_fraction}",
        epoch=epoch,
    )


def _connectivity_violations(
    traj,
    boundary_anchors,
    death_time: dict[int, float],
    config: MissionConfig,
    t_cut: float,
) -> tuple[int, int]:
    """Count Definition-2 violations over the executed window.

    Samples uniformly over ``[t_start, t_cut]`` plus the left-sided
    limits at every jump discontinuity inside the window (``C = 1``
    must hold through the jumps too).  An instant violates when some
    living robot has no multi-hop path to the network boundary (the
    plan's anchor set); robots dead at the instant are excluded, and
    when every anchor has died the check degrades to plain
    connectivity of the survivors.
    """
    ts = np.linspace(traj.t_start, t_cut, max(2, config.resolution))
    disc = traj.discontinuity_times()
    disc = disc[(disc > traj.t_start) & (disc <= t_cut)]
    checks: list[tuple[float, str]] = [(float(t), "right") for t in ts]
    checks += [(float(t), "left") for t in disc]
    anchors = [int(a) for a in boundary_anchors]

    violations = 0
    n = traj.robot_count
    for t, side in checks:
        present = [
            j
            for j in range(n)
            if j not in death_time or t < death_time[j]
        ]
        if not present:
            continue
        pts = traj.positions_over(np.array([t]), side=side)[0][present]
        graph = UnitDiskGraph(pts, config.comm_range)
        compact = {j: k for k, j in enumerate(present)}
        local_anchors = [compact[a] for a in anchors if a in compact]
        if local_anchors:
            ok = bool(graph.nodes_connected_to(local_anchors).all())
        else:
            ok = graph.is_connected()
        if not ok:
            violations += 1
    return violations, len(checks)


def run_mission(
    spec: MissionSpec | dict[str, Any],
    config: MissionConfig | dict[str, Any] | None = None,
    faults: FaultSchedule | None = None,
    progress: ProgressFn | None = None,
    checkpoint_dir: str | None = None,
    interrupt: Callable[[], bool] | None = None,
) -> dict[str, Any]:
    """Convenience wrapper: build a runner and run it once."""
    if isinstance(spec, dict):
        spec = MissionSpec.from_dict(spec)
    if isinstance(config, dict):
        config = MissionConfig.from_dict(config)
    return MissionRunner(spec, config=config, faults=faults).run(
        progress, checkpoint_dir=checkpoint_dir, interrupt=interrupt
    )
