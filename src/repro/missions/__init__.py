"""Streaming missions: online replanning against moving targets.

A mission is a seeded sequence of target FoIs - the base zoo scenario
plus per-epoch drift/deform motion - executed as one long-running job.
:class:`MissionRunner` marches the swarm, replans at every epoch
boundary (translated targets are disk-map cache hits, deformed targets
genuine re-solves), composes optional crash faults, and produces a
canonical byte-stable mission document plus streamed
``epoch``/``plan_diff``/``recovery`` progress events.
"""

from repro.missions.diff import PlanDiff, plan_diff
from repro.missions.spec import MOTIONS, MissionConfig, MissionSpec
from repro.missions.targets import mission_targets
from repro.missions.runner import MissionRunner, run_mission

__all__ = [
    "MOTIONS",
    "MissionConfig",
    "MissionRunner",
    "MissionSpec",
    "PlanDiff",
    "mission_targets",
    "plan_diff",
    "run_mission",
]
