"""Line-segment primitives: intersection, projection, distances.

These are the workhorse predicates used by polygon clipping, hole-detour
path planning and mesh validation.  All predicates take raw coordinate
pairs (anything coercible by :func:`repro.geometry.vec.as_point`) so
they compose freely with numpy code.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.vec import as_point, cross2

__all__ = [
    "orientation",
    "on_segment",
    "segments_intersect",
    "segment_intersection_point",
    "project_point_on_segment",
    "point_segment_distance",
    "points_segments_distance",
    "segments_properly_cross",
]

_EPS = 1e-12


def orientation(a, b, c) -> int:
    """Orientation of the ordered triple ``(a, b, c)``.

    Returns
    -------
    int
        ``+1`` for counter-clockwise, ``-1`` for clockwise, ``0`` for
        collinear (within a relative tolerance).
    """
    a = as_point(a)
    b = as_point(b)
    c = as_point(c)
    val = cross2(b - a, c - a)
    scale = max(
        1.0,
        abs(b[0] - a[0]) + abs(b[1] - a[1]),
        abs(c[0] - a[0]) + abs(c[1] - a[1]),
    )
    if abs(val) <= _EPS * scale * scale:
        return 0
    return 1 if val > 0 else -1


def on_segment(p, a, b, tol: float = 1e-9) -> bool:
    """Whether point ``p`` lies on the closed segment ``[a, b]``."""
    return point_segment_distance(p, a, b) <= tol


def segments_intersect(a1, a2, b1, b2) -> bool:
    """Whether closed segments ``[a1, a2]`` and ``[b1, b2]`` intersect.

    Touching endpoints and collinear overlaps count as intersections.
    """
    o1 = orientation(a1, a2, b1)
    o2 = orientation(a1, a2, b2)
    o3 = orientation(b1, b2, a1)
    o4 = orientation(b1, b2, a2)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and on_segment(b1, a1, a2):
        return True
    if o2 == 0 and on_segment(b2, a1, a2):
        return True
    if o3 == 0 and on_segment(a1, b1, b2):
        return True
    if o4 == 0 and on_segment(a2, b1, b2):
        return True
    return False


def segments_properly_cross(a1, a2, b1, b2) -> bool:
    """Whether the two segments cross at a single interior point.

    Shared endpoints and collinear overlaps do *not* count.  This is the
    predicate used to detect edge crossings in extracted triangulations.
    """
    o1 = orientation(a1, a2, b1)
    o2 = orientation(a1, a2, b2)
    o3 = orientation(b1, b2, a1)
    o4 = orientation(b1, b2, a2)
    return o1 != 0 and o2 != 0 and o3 != 0 and o4 != 0 and o1 != o2 and o3 != o4


def segment_intersection_point(a1, a2, b1, b2) -> Optional[np.ndarray]:
    """Intersection point of two segments, or ``None``.

    For collinear overlapping segments an arbitrary shared point is
    returned.  For disjoint segments returns ``None``.
    """
    a1 = as_point(a1)
    a2 = as_point(a2)
    b1 = as_point(b1)
    b2 = as_point(b2)
    d1 = a2 - a1
    d2 = b2 - b1
    denom = cross2(d1, d2)
    if abs(denom) > _EPS * max(1.0, float(np.abs(d1).sum() * np.abs(d2).sum())):
        t = cross2(b1 - a1, d2) / denom
        u = cross2(b1 - a1, d1) / denom
        if -1e-12 <= t <= 1.0 + 1e-12 and -1e-12 <= u <= 1.0 + 1e-12:
            return a1 + np.clip(t, 0.0, 1.0) * d1
        return None
    # Parallel.  Check collinear overlap.
    if orientation(a1, a2, b1) != 0:
        return None
    for p in (b1, b2):
        if on_segment(p, a1, a2):
            return np.asarray(p, dtype=float)
    for p in (a1, a2):
        if on_segment(p, b1, b2):
            return np.asarray(p, dtype=float)
    return None


def project_point_on_segment(p, a, b) -> np.ndarray:
    """Closest point to ``p`` on the closed segment ``[a, b]``."""
    p = as_point(p)
    a = as_point(a)
    b = as_point(b)
    d = b - a
    denom = float(d @ d)
    if denom < _EPS:
        return a.copy()
    t = float(np.clip((p - a) @ d / denom, 0.0, 1.0))
    return a + t * d


def point_segment_distance(p, a, b) -> float:
    """Euclidean distance from point ``p`` to the closed segment ``[a, b]``."""
    q = project_point_on_segment(p, a, b)
    p = as_point(p)
    return float(np.hypot(p[0] - q[0], p[1] - q[1]))


def points_segments_distance(points, seg_starts, seg_ends) -> np.ndarray:
    """Distances from many points to many closed segments, vectorised.

    Parameters
    ----------
    points : (m, 2) array-like
    seg_starts, seg_ends : (k, 2) array-like
        Segment endpoints.

    Returns
    -------
    (m, k) ndarray
        ``out[i, j]`` is the distance from ``points[i]`` to segment ``j``.
    """
    p = np.asarray(points, dtype=float).reshape(-1, 2)
    a = np.asarray(seg_starts, dtype=float).reshape(-1, 2)
    b = np.asarray(seg_ends, dtype=float).reshape(-1, 2)
    d = b - a  # (k, 2)
    denom = (d * d).sum(axis=1)  # (k,)
    safe = np.where(denom < _EPS, 1.0, denom)
    # t[i, j] = clamp(((p_i - a_j) . d_j) / |d_j|^2, 0, 1)
    pa = p[:, None, :] - a[None, :, :]  # (m, k, 2)
    t = (pa * d[None, :, :]).sum(axis=2) / safe[None, :]
    t = np.where(denom[None, :] < _EPS, 0.0, np.clip(t, 0.0, 1.0))
    proj = a[None, :, :] + t[:, :, None] * d[None, :, :]
    diff = p[:, None, :] - proj
    return np.hypot(diff[..., 0], diff[..., 1])
