"""Comparison methods: Hungarian, direct translation, greedy matching."""

from repro.baselines.direct import direct_translation_plan
from repro.baselines.greedy import greedy_matching, greedy_plan
from repro.baselines.hungarian import matching_cost, min_cost_matching, solve_assignment
from repro.baselines.hungarian_plan import hungarian_plan
from repro.baselines.plans import BaselinePlan

__all__ = [
    "BaselinePlan",
    "direct_translation_plan",
    "greedy_matching",
    "greedy_plan",
    "hungarian_plan",
    "matching_cost",
    "min_cost_matching",
    "solve_assignment",
]
