"""Barycentric coordinates on triangles (paper Appendix A).

The induced harmonic map of the paper transfers a robot's disk position
into geographic coordinates by barycentric interpolation over the grid
triangle containing it (Eqn. 1).  This module provides the forward and
inverse operations plus containment predicates, both scalar and
vectorised over many triangles.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeometryError
from repro.geometry.vec import as_point, as_points

__all__ = [
    "triangle_area",
    "barycentric_coords",
    "from_barycentric",
    "point_in_triangle",
    "barycentric_coords_many",
    "barycentric_coords_paired",
]


def triangle_area(a, b, c) -> float:
    """Signed area of triangle ``(a, b, c)`` (positive if CCW)."""
    a = as_point(a)
    b = as_point(b)
    c = as_point(c)
    return 0.5 * float((b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]))


def barycentric_coords(p, a, b, c) -> np.ndarray:
    """Barycentric coordinates ``(t1, t2, t3)`` of ``p`` in triangle ``abc``.

    Follows the area-ratio definition from the paper's appendix:
    ``t1 = Area(p, b, c) / Area(a, b, c)`` and cyclic, so
    ``p = t1*a + t2*b + t3*c`` and ``t1 + t2 + t3 = 1`` exactly (the
    third coordinate is computed as the complement for numerical
    robustness).

    Raises
    ------
    GeometryError
        If the triangle is degenerate.
    """
    p = as_point(p)
    a = as_point(a)
    b = as_point(b)
    c = as_point(c)
    area = triangle_area(a, b, c)
    scale = max(1.0, float(np.abs(np.vstack([a, b, c])).max()) ** 2)
    if abs(area) < 1e-14 * scale:
        raise GeometryError("degenerate triangle in barycentric_coords")
    t1 = triangle_area(p, b, c) / area
    t2 = triangle_area(a, p, c) / area
    t3 = 1.0 - t1 - t2
    return np.array([t1, t2, t3])


def from_barycentric(t, a, b, c) -> np.ndarray:
    """Point with barycentric coordinates ``t = (t1, t2, t3)`` in ``abc``."""
    t = np.asarray(t, dtype=float)
    if t.shape != (3,):
        raise GeometryError("barycentric coordinates must have shape (3,)")
    a = as_point(a)
    b = as_point(b)
    c = as_point(c)
    return t[0] * a + t[1] * b + t[2] * c


def point_in_triangle(p, a, b, c, tol: float = 1e-9) -> bool:
    """Whether ``p`` lies inside (or on the boundary of) triangle ``abc``."""
    t = barycentric_coords(p, a, b, c)
    return bool(np.all(t >= -tol))


def barycentric_coords_many(p, tri_a, tri_b, tri_c) -> np.ndarray:
    """Barycentric coordinates of one point ``p`` against many triangles.

    Parameters
    ----------
    p : (2,) array-like
    tri_a, tri_b, tri_c : (m, 2) arrays
        Corner coordinates of ``m`` candidate triangles.

    Returns
    -------
    (m, 3) ndarray
        Rows are ``(t1, t2, t3)``; degenerate triangles yield rows of
        ``nan`` rather than raising, so callers can mask them out.
    """
    p = as_point(p)
    a = as_points(tri_a)
    b = as_points(tri_b)
    c = as_points(tri_c)
    area2 = (b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1]) - (b[:, 1] - a[:, 1]) * (
        c[:, 0] - a[:, 0]
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        t1 = (
            (b[:, 0] - p[0]) * (c[:, 1] - p[1]) - (b[:, 1] - p[1]) * (c[:, 0] - p[0])
        ) / area2
        t2 = (
            (p[0] - a[:, 0]) * (c[:, 1] - a[:, 1])
            - (p[1] - a[:, 1]) * (c[:, 0] - a[:, 0])
        ) / area2
    t1 = np.where(np.abs(area2) < 1e-300, np.nan, t1)
    t2 = np.where(np.abs(area2) < 1e-300, np.nan, t2)
    t3 = 1.0 - t1 - t2
    return np.column_stack([t1, t2, t3])


def barycentric_coords_paired(pts, tri_a, tri_b, tri_c) -> np.ndarray:
    """Row-wise barycentric coordinates: point ``k`` in triangle ``k``.

    The batched counterpart of :func:`barycentric_coords_many` for the
    case of *many points, each against its own triangle* - the shape
    the vectorised point-location queries produce.  Identical
    arithmetic per element, so results match the one-point call
    bitwise.

    Parameters
    ----------
    pts : (m, 2) array-like
    tri_a, tri_b, tri_c : (m, 2) arrays
        Corner coordinates of point ``k``'s candidate triangle.

    Returns
    -------
    (m, 3) ndarray
        Rows are ``(t1, t2, t3)``; degenerate triangles yield rows of
        ``nan`` rather than raising, so callers can mask them out.
    """
    p = as_points(pts)
    a = as_points(tri_a)
    b = as_points(tri_b)
    c = as_points(tri_c)
    if not (len(p) == len(a) == len(b) == len(c)):
        raise GeometryError("paired barycentric inputs must align row-wise")
    area2 = (b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1]) - (b[:, 1] - a[:, 1]) * (
        c[:, 0] - a[:, 0]
    )
    px = p[:, 0]
    py = p[:, 1]
    with np.errstate(divide="ignore", invalid="ignore"):
        t1 = (
            (b[:, 0] - px) * (c[:, 1] - py) - (b[:, 1] - py) * (c[:, 0] - px)
        ) / area2
        t2 = (
            (px - a[:, 0]) * (c[:, 1] - a[:, 1])
            - (py - a[:, 1]) * (c[:, 0] - a[:, 0])
        ) / area2
    t1 = np.where(np.abs(area2) < 1e-300, np.nan, t1)
    t2 = np.where(np.abs(area2) < 1e-300, np.nan, t2)
    t3 = 1.0 - t1 - t2
    return np.column_stack([t1, t2, t3])
