"""Total stable link ratio ``L`` (paper Definition 1).

A link counts as *stable* when the two robots remain within
communication range at every instant of the transition.  For
synchronous piecewise-linear motion the inter-robot distance is convex
on every common linear sub-interval, so evaluating at the union of the
trajectory's critical times (all waypoint times) and a safety grid is
exact.  Trajectories may additionally contain *discontinuities* -
duplicated waypoint times modelling instantaneous jumps - where
interval sampling only sees the post-jump position; the evaluator
therefore also checks the left-sided limit at each discontinuity so a
link that is out of range just before a jump is correctly counted as
broken.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.links import LinkTable
from repro.obs import span
from repro.robots.motion import SwarmTrajectory

__all__ = ["StableLinkReport", "stable_link_ratio", "stable_link_report"]


@dataclass(frozen=True)
class StableLinkReport:
    """Stable-link accounting for one transition.

    Attributes
    ----------
    initial_links : int
        ``sum_i m_i / 2`` - number of undirected M1 links.
    stable_links : int
        Links alive at every evaluated instant.
    ratio : float
        ``L`` per Definition 1.
    broken_mask : (m,) bool ndarray
        True where the corresponding initial link broke.
    """

    initial_links: int
    stable_links: int
    ratio: float
    broken_mask: np.ndarray


def stable_link_ratio(
    links: LinkTable, trajectory: SwarmTrajectory, resolution: int = 32
) -> float:
    """Definition 1's ``L`` over a trajectory."""
    return stable_link_report(links, trajectory, resolution).ratio


def stable_link_report(
    links: LinkTable, trajectory: SwarmTrajectory, resolution: int = 32
) -> StableLinkReport:
    """Detailed stable-link accounting over a trajectory."""
    times = trajectory.sample_times(resolution)
    with span(
        "metrics.stable_links",
        links=links.link_count,
        samples=int(len(times)),
    ) as sp:
        stable = links.stable_mask_over(trajectory.positions_over(times))
        disc = trajectory.discontinuity_times()
        if len(disc):
            # Right-continuous sampling above misses the pre-jump
            # positions; AND in aliveness at the left-sided limits.
            stable &= links.stable_mask_over(
                trajectory.positions_over(disc, side="left")
            )
        m = links.link_count
        s = int(stable.sum())
        ratio = 1.0 if m == 0 else s / m
        sp.set_attributes(stable=s, ratio=ratio, discontinuities=int(len(disc)))
    return StableLinkReport(
        initial_links=m,
        stable_links=s,
        ratio=ratio,
        broken_mask=~stable,
    )
