"""Typed plan diffs: what changed between consecutive mission legs.

Every epoch of a mission emits one :class:`PlanDiff` - the structured
"what just happened" record the service streams to clients and the
canonical mission document persists.  The diff compares the epoch's
fresh plan against the previous leg: how far the target moved, how the
plan's cost metrics shifted, and whether the harmonic solve was served
from the translation-canonical disk-map cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.foi.region import FieldOfInterest
from repro.marching.result import MarchingResult

__all__ = ["PlanDiff", "plan_diff"]


@dataclass(frozen=True)
class PlanDiff:
    """The delta one replan epoch introduced.

    Attributes
    ----------
    epoch : int
    target_shift : float
        Distance the target centroid moved since the previous epoch
        (0 for epoch 0).
    target_area_ratio : float
        New target area over previous target area (1 for epoch 0).
    target_deformed : bool
        Whether the target shape was redrawn (vs. rigidly translated).
    cache_hits, cache_misses : int
        Disk-map cache traffic of this epoch's replan; a pure
        translation shows up here as hits with zero misses.
    plan_distance : float
        Total travel distance of the fresh plan (the paper's ``D``).
    delta_distance : float
        ``plan_distance`` minus the previous leg's plan distance.
    stable_ratio : float
        Stable-link ratio ``L`` of the fresh plan.
    delta_stable_ratio : float
        ``stable_ratio`` minus the previous leg's ratio (0 for epoch 0).
    robots : int
        Robots marching in this leg (drops when faults fire).
    """

    epoch: int
    target_shift: float
    target_area_ratio: float
    target_deformed: bool
    cache_hits: int
    cache_misses: int
    plan_distance: float
    delta_distance: float
    stable_ratio: float
    delta_stable_ratio: float
    robots: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "epoch": int(self.epoch),
            "target_shift": float(self.target_shift),
            "target_area_ratio": float(self.target_area_ratio),
            "target_deformed": bool(self.target_deformed),
            "cache_hits": int(self.cache_hits),
            "cache_misses": int(self.cache_misses),
            "plan_distance": float(self.plan_distance),
            "delta_distance": float(self.delta_distance),
            "stable_ratio": float(self.stable_ratio),
            "delta_stable_ratio": float(self.delta_stable_ratio),
            "robots": int(self.robots),
        }


def plan_diff(
    epoch: int,
    target: FieldOfInterest,
    result: MarchingResult,
    stable_ratio: float,
    cache_hits: int,
    cache_misses: int,
    previous_target: FieldOfInterest | None = None,
    previous_distance: float | None = None,
    previous_stable_ratio: float | None = None,
    target_deformed: bool = False,
) -> PlanDiff:
    """Build the :class:`PlanDiff` for one epoch's fresh plan."""
    if previous_target is None:
        shift, area_ratio = 0.0, 1.0
    else:
        shift = float(
            np.linalg.norm(target.centroid - previous_target.centroid)
        )
        area_ratio = float(target.area / previous_target.area)
    distance = float(result.total_distance)
    return PlanDiff(
        epoch=epoch,
        target_shift=shift,
        target_area_ratio=area_ratio,
        target_deformed=target_deformed,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        plan_distance=distance,
        delta_distance=distance - float(previous_distance or 0.0),
        stable_ratio=float(stable_ratio),
        delta_stable_ratio=(
            0.0
            if previous_stable_ratio is None
            else float(stable_ratio) - float(previous_stable_ratio)
        ),
        robots=result.robot_count,
    )
