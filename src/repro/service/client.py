"""Blocking HTTP client for the planning service (stdlib ``http.client``).

The counterpart of :class:`~repro.service.server.PlanningService` used
by tests, examples and the ``repro submit`` CLI::

    client = ServiceClient(port=service.port)
    submitted = client.submit([1], separation_factor=12.0)
    client.wait(submitted["job_id"], timeout=600.0)
    document = client.result(submitted["job_id"])

Every non-2xx answer raises :class:`repro.errors.ServiceError` (a
``429`` raises :class:`~repro.service.jobs.QueueFull` carrying the
server's ``Retry-After``; a ``410`` with ``state: expired`` raises
:class:`~repro.service.jobs.JobExpiredError` carrying the eviction
time - resubmit, don't retry), so callers never have to inspect
status codes unless they want to.

With ``retries > 0`` the client absorbs transient failures before
giving up: connection refused/reset (the service is restarting),
mid-download disconnects (a truncated result body surfaces as
``http.client.IncompleteRead`` and the whole GET is retried - results
are immutable content-addressed documents, so a re-fetch is always
safe), 429 backpressure (honouring the server's ``Retry-After``), and
503 while the service drains.  Sleeps follow bounded exponential
backoff with seeded jitter, every retry increments the
``service.client_retries`` obs counter, and the budget is per request
- a request never retries more than ``retries`` times, so callers keep
a hard latency bound.

:meth:`ServiceClient.iter_events` consumes the service's
``GET /v1/jobs/{id}/events`` SSE stream, yielding progress events as
dicts until the final ``end`` frame.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any

from repro.errors import ServiceError
from repro.obs import get_metrics

from repro.service.jobs import JobExpiredError, QueueFull

__all__ = ["ServiceClient"]

_TERMINAL_STATES = ("done", "failed", "cancelled")

# HTTP answers worth retrying: backpressure and drain. Anything else
# (404, 400, 500...) is a real answer the caller must see.
_RETRYABLE_STATUSES = (429, 503)


class ServiceClient:
    """Small blocking client; one HTTP request per call.

    Parameters
    ----------
    host, port, timeout
        Where the service listens; per-request socket timeout.
    retries : int
        Extra attempts per request on transient failures (connection
        refused/reset, 429, 503).  0 (the default) preserves the
        strict one-request-per-call behaviour.
    backoff_s : float
        First retry sleep; doubles each retry.
    backoff_max_s : float
        Upper bound on any single sleep (and on an honoured
        ``Retry-After``), keeping worst-case latency proportional to
        ``retries``.
    retry_seed : int
        Seeds the jitter so retry timing is reproducible.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        timeout: float = 30.0,
        retries: int = 0,
        backoff_s: float = 0.05,
        backoff_max_s: float = 2.0,
        retry_seed: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        if retries < 0:
            raise ServiceError("retries must be >= 0")
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.backoff_max_s = float(backoff_max_s)
        self._jitter = random.Random(f"service-client:{retry_seed}")

    # -- transport ------------------------------------------------------

    def _backoff(self, attempt: int, retry_after: float | None = None) -> None:
        """Sleep before retry ``attempt`` (0-based), with jitter."""
        if retry_after is not None:
            delay = min(retry_after, self.backoff_max_s)
        else:
            delay = min(self.backoff_s * (2.0 ** attempt), self.backoff_max_s)
        # Jitter in [0.5, 1.0) x delay de-synchronises competing clients.
        time.sleep(delay * (0.5 + 0.5 * self._jitter.random()))

    def _request_once(
        self, method: str, path: str, payload: bytes | None
    ) -> tuple[int, dict[str, str], bytes]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(
                method,
                path,
                body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            data = response.read()
            headers = {k.lower(): v for k, v in response.getheaders()}
            return response.status, headers, data
        finally:
            conn.close()

    def _request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
        retryable: bool = True,
    ) -> tuple[int, dict[str, str], bytes]:
        payload = None if body is None else json.dumps(body).encode()
        budget = self.retries if retryable else 0
        for attempt in range(budget + 1):
            last = attempt == budget
            try:
                status, headers, data = self._request_once(
                    method, path, payload
                )
            except (OSError, http.client.HTTPException) as exc:
                # OSError covers refused/reset connections;
                # HTTPException covers a connection that died *mid
                # response* (IncompleteRead from a truncated body,
                # BadStatusLine from a connection closed before the
                # status line).  Both get the same jittered schedule.
                if last:
                    raise ServiceError(
                        f"cannot reach service at {self.host}:{self.port}: "
                        f"{exc}"
                    ) from exc
                get_metrics().counter("service.client_retries").inc()
                self._backoff(attempt)
                continue
            if status in _RETRYABLE_STATUSES and not last:
                retry_after = None
                try:
                    retry_after = float(headers.get("retry-after", ""))
                except ValueError:
                    pass
                get_metrics().counter("service.client_retries").inc()
                self._backoff(attempt, retry_after)
                continue
            return status, headers, data
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _json(data: bytes) -> Any:
        try:
            return json.loads(data) if data else {}
        except json.JSONDecodeError as exc:
            raise ServiceError(f"service returned invalid JSON: {exc}") from exc

    def _raise_for(self, status: int, headers: dict[str, str], data: bytes) -> None:
        doc = self._json(data)
        message = doc.get("error") if isinstance(doc, dict) else None
        message = message or f"service answered HTTP {status}"
        if status == 429:
            retry_after = None
            try:
                retry_after = float(headers.get("retry-after", ""))
            except ValueError:
                pass
            exc: ServiceError = QueueFull(message, retry_after_s=retry_after)
        elif (
            status == 410
            and isinstance(doc, dict)
            and doc.get("state") == "expired"
        ):
            # TTL eviction, not cancellation: the caller should
            # resubmit (dedup gives the same job id), not retry the GET.
            exc = JobExpiredError(
                f"HTTP 410: {message}", evicted_at=doc.get("evicted_at")
            )
        else:
            exc = ServiceError(f"HTTP {status}: {message}")
        # The numeric status rides along so callers (e.g. the load
        # generator's 5xx accounting) never parse it out of the message.
        exc.status = status  # type: ignore[attr-defined]
        raise exc

    # -- submission -----------------------------------------------------

    def submit_request(self, doc: dict[str, Any]) -> dict[str, Any]:
        """Submit a raw ``POST /v1/plan`` body; returns the admission doc."""
        status, headers, data = self._request("POST", "/v1/plan", doc)
        if status != 202:
            self._raise_for(status, headers, data)
        return self._json(data)

    def submit(
        self,
        scenario_ids,
        separation_factor: float = 20.0,
        methods=None,
        priority: int = 0,
        **knobs: Any,
    ) -> dict[str, Any]:
        """Submit a plan request built from keyword arguments.

        ``knobs`` forwards resolution parameters (``foi_target_points``,
        ``lloyd_grid_target``, ``resolution``) verbatim.
        """
        doc: dict[str, Any] = {
            "scenario_ids": list(scenario_ids),
            "separation_factor": separation_factor,
            "priority": priority,
            **knobs,
        }
        if methods is not None:
            doc["methods"] = list(methods)
        return self.submit_request(doc)

    def submit_mission(
        self,
        spec: Any,
        config: Any = None,
        faults: Any = None,
        priority: int = 0,
    ) -> dict[str, Any]:
        """Submit a mission (``POST /v1/mission``); returns the admission doc.

        ``spec``/``config``/``faults`` may be the typed objects
        (:class:`~repro.missions.MissionSpec` etc.) or their plain-dict
        forms - anything with a ``to_dict`` is serialised.
        """
        def plain(obj: Any) -> Any:
            return obj.to_dict() if hasattr(obj, "to_dict") else obj

        doc: dict[str, Any] = {"spec": plain(spec), "priority": priority}
        if config is not None:
            doc["config"] = plain(config)
        if faults is not None:
            doc["faults"] = plain(faults)
        status, headers, data = self._request("POST", "/v1/mission", doc)
        if status != 202:
            self._raise_for(status, headers, data)
        return self._json(data)

    def run_mission(
        self,
        spec: Any,
        config: Any = None,
        faults: Any = None,
        priority: int = 0,
        timeout: float = 600.0,
        on_event: Any = None,
    ) -> dict[str, Any]:
        """Submit a mission, follow its event stream, return the document.

        ``on_event`` (optional) receives every streamed event dict as it
        arrives - ``claimed``, ``recovery``, ``plan_diff``, ``epoch``,
        ``phase``, ``end`` - so callers can render live progress.  After
        the stream ends the job's terminal state is checked: a failed or
        cancelled mission raises :class:`ServiceError`.
        """
        submitted = self.submit_mission(spec, config, faults, priority)
        job_id = submitted["job_id"]
        for event in self.iter_events(job_id, timeout=self.timeout):
            if on_event is not None:
                on_event(event)
        final = self.wait(job_id, timeout=timeout)
        if final.get("state") != "done":
            raise ServiceError(
                f"mission job {job_id} ended {final.get('state')!r}: "
                f"{final.get('error')}"
            )
        return self.result(job_id)

    # -- polling and results --------------------------------------------

    def status(self, job_id: str) -> dict[str, Any]:
        """The job's status document (``GET /v1/jobs/{id}``)."""
        status, headers, data = self._request("GET", f"/v1/jobs/{job_id}")
        if status != 200:
            self._raise_for(status, headers, data)
        return self._json(data)

    def wait(
        self, job_id: str, timeout: float = 300.0, poll_s: float = 0.05
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its status.

        Raises :class:`ServiceError` if the deadline passes first.
        """
        deadline = time.monotonic() + timeout
        while True:
            doc = self.status(job_id)
            if doc.get("state") in _TERMINAL_STATES:
                return doc
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {doc.get('state')!r} after {timeout}s"
                )
            time.sleep(poll_s)

    def result_bytes(self, job_id: str) -> bytes:
        """The plan document's exact canonical bytes (``done`` jobs only)."""
        status, headers, data = self._request("GET", f"/v1/jobs/{job_id}/result")
        if status != 200:
            self._raise_for(status, headers, data)
        return data

    def result(self, job_id: str) -> dict[str, Any]:
        """The plan document, JSON-decoded."""
        return self._json(self.result_bytes(job_id))

    def _open_events(
        self, job_id: str, since: int, timeout: float | None
    ) -> tuple[http.client.HTTPConnection, http.client.HTTPResponse]:
        """One SSE connection, replaying the log from cursor ``since``."""
        conn = http.client.HTTPConnection(
            self.host,
            self.port,
            timeout=self.timeout if timeout is None else timeout,
        )
        path = f"/v1/jobs/{job_id}/events"
        if since > 0:
            path += f"?since={since}"
        try:
            conn.request("GET", path)
            return conn, conn.getresponse()
        except BaseException:
            conn.close()
            raise

    def iter_events(self, job_id: str, timeout: float | None = None):
        """Stream the job's progress events (``GET /v1/jobs/{id}/events``).

        Yields each server-sent event as a dict (``seq``, ``kind``,
        kind-specific fields) until the final ``end`` frame.  Keepalive
        comments are filtered out.

        A stream lost *mid-flight* (reset connection, stalled read,
        server close without an ``end`` frame) is resumed: the client
        reconnects with ``?since=<cursor>`` - the next sequence number
        it has not yet seen - on the same jittered backoff schedule as
        request retries, and skips any replayed duplicates by ``seq``.
        The budget is ``retries`` reconnections per call; once it is
        exhausted a read error raises :class:`ServiceError` and a clean
        server close simply ends the iteration (matching the
        zero-retries behaviour).

        ``timeout`` bounds each read (defaults to the client timeout).
        """
        cursor = 0  # next event sequence number we have not yielded
        attempts = 0
        while True:
            conn = None
            lost: Exception | None = None
            try:
                conn, response = self._open_events(job_id, cursor, timeout)
                if response.status != 200:
                    data = response.read()
                    headers = {k.lower(): v for k, v in response.getheaders()}
                    self._raise_for(response.status, headers, data)
                data_lines: list[bytes] = []
                while True:
                    try:
                        line = response.readline()
                    except OSError as exc:
                        lost = exc
                        break
                    if not line:
                        break  # server closed the stream
                    line = line.strip()
                    if line.startswith(b":"):
                        continue  # keepalive comment frame
                    if not line:  # blank line terminates one event
                        if data_lines:
                            try:
                                event = json.loads(b"\n".join(data_lines))
                            except json.JSONDecodeError as exc:
                                raise ServiceError(
                                    f"invalid event frame: {exc}"
                                ) from exc
                            data_lines = []
                            kind = event.get("kind")
                            seq = event.get("seq")
                            if kind == "draining":
                                # Out-of-band announcement: it borrows
                                # the current cursor position without
                                # consuming a log sequence number, so
                                # it must not advance (or dedupe
                                # against) the resume cursor.
                                yield event
                                continue
                            if isinstance(seq, int):
                                if seq < cursor and kind != "end":
                                    continue  # replayed duplicate
                                cursor = max(cursor, seq + 1)
                            yield event
                            if kind == "end":
                                return
                        continue
                    field, _, value = line.partition(b":")
                    if field == b"data":
                        data_lines.append(value.strip())
            finally:
                if conn is not None:
                    conn.close()
            # The stream died before its 'end' frame: resume from the
            # cursor while the reconnect budget lasts.
            if attempts >= self.retries:
                if lost is not None:
                    raise ServiceError(
                        f"event stream for job {job_id} stalled: {lost}"
                    ) from lost
                return
            attempts += 1
            get_metrics().counter("service.client_retries").inc()
            self._backoff(attempts - 1)

    def cancel(self, job_id: str) -> dict[str, Any]:
        status, headers, data = self._request("POST", f"/v1/jobs/{job_id}/cancel")
        if status != 200:
            self._raise_for(status, headers, data)
        return self._json(data)

    # -- introspection --------------------------------------------------

    def jobs(self) -> dict[str, Any]:
        status, headers, data = self._request("GET", "/v1/jobs")
        if status != 200:
            self._raise_for(status, headers, data)
        return self._json(data)

    def healthz(self) -> dict[str, Any]:
        """Health document; includes the HTTP status as ``http_status``
        (a draining service answers 503 but still describes itself).
        Never retried: a health probe's whole point is the raw answer."""
        status, _headers, data = self._request(
            "GET", "/healthz", retryable=False
        )
        doc = self._json(data)
        if isinstance(doc, dict):
            doc["http_status"] = status
        return doc

    def metrics(self) -> dict[str, Any]:
        status, headers, data = self._request("GET", "/metrics")
        if status != 200:
            self._raise_for(status, headers, data)
        return self._json(data)

    def tracez(self) -> dict[str, Any]:
        status, headers, data = self._request("GET", "/tracez")
        if status != 200:
            self._raise_for(status, headers, data)
        return self._json(data)
