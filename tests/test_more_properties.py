"""Second property-test wave: clipping, Voronoi, energy-churn theorems."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.coverage import cell_area, voronoi_cells
from repro.geometry import Polygon, clip_convex, signed_area
from repro.metrics import link_churn
from repro.robots import straight_transition

coord = st.floats(-20, 20, allow_nan=False, allow_infinity=False)
point = st.tuples(coord, coord)

WINDOW = [(-25.0, -25.0), (25.0, -25.0), (25.0, 25.0), (-25.0, 25.0)]


class TestClippingProperties:
    @given(st.lists(point, min_size=3, max_size=8))
    @settings(max_examples=100)
    def test_intersection_area_bounded(self, pts):
        try:
            subject = Polygon(pts)
        except Exception:
            assume(False)
        assume(subject.is_simple())
        out = clip_convex(subject.vertices, WINDOW)
        area = abs(signed_area(out)) if len(out) >= 3 else 0.0
        assert area <= subject.area + 1e-6
        assert area <= abs(signed_area(WINDOW)) + 1e-6

    @given(st.lists(point, min_size=3, max_size=8))
    @settings(max_examples=100)
    def test_subject_inside_window_unchanged(self, pts):
        try:
            subject = Polygon(pts)
        except Exception:
            assume(False)
        assume(subject.is_simple())
        # WINDOW spans [-25, 25]^2 and points are drawn from [-20, 20].
        out = clip_convex(subject.vertices, WINDOW)
        assert abs(signed_area(out)) == pytest.approx(subject.area, rel=1e-9)


class TestVoronoiProperties:
    @given(st.integers(2, 12), st.integers(0, 100_000))
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, n, seed):
        rng = np.random.default_rng(seed)
        sites = rng.uniform(-20, 20, (n, 2))
        assume(len(np.unique(np.round(sites, 6), axis=0)) == n)
        cells = voronoi_cells(sites, WINDOW)
        total = sum(cell_area(c) for c in cells)
        assert total == pytest.approx(abs(signed_area(WINDOW)), rel=1e-6)

    @given(st.integers(2, 10), st.integers(0, 100_000))
    @settings(max_examples=60, deadline=None)
    def test_cells_disjoint_interiors(self, n, seed):
        rng = np.random.default_rng(seed)
        sites = rng.uniform(-20, 20, (n, 2))
        assume(len(np.unique(np.round(sites, 6), axis=0)) == n)
        cells = voronoi_cells(sites, WINDOW)
        # Each cell's centroid is closest to its own site - combined
        # with the partition property this pins disjoint interiors.
        for i, cell in enumerate(cells):
            if len(cell) < 3:
                continue
            c = cell.mean(axis=0)
            d = np.hypot(*(sites - c).T)
            assert int(np.argmin(d)) == i


class TestChurnTheorems:
    @given(st.integers(2, 10), st.integers(0, 100_000))
    @settings(max_examples=80, deadline=None)
    def test_pairing_events_dominate_required(self, n, seed):
        """Every 'new' final link needed at least one pairing event."""
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 10, (n, 2))
        target = pos + rng.normal(0, 3, (n, 2))
        traj = straight_transition(pos, target)
        report = link_churn(traj, 3.0, resolution=16)
        assert report.pairing_events >= report.new_pairings_required

    @given(st.integers(2, 10), st.integers(0, 100_000))
    @settings(max_examples=80, deadline=None)
    def test_stable_bounded_by_endpoints(self, n, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 10, (n, 2))
        target = pos + rng.normal(0, 2, (n, 2))
        traj = straight_transition(pos, target)
        report = link_churn(traj, 3.0, resolution=16)
        assert report.stable_links <= min(report.initial_links, report.final_links)
        assert report.new_pairings_required >= 0
