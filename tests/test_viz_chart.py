"""Tests for the SVG line charts and sweep figure generation."""

import numpy as np
import pytest

from repro.viz import LineChart, METHOD_COLORS
from repro.viz.chart import _nice_ticks


class TestNiceTicks:
    def test_unit_interval(self):
        ticks = _nice_ticks(0.0, 1.0)
        assert 0.0 in ticks and 1.0 in ticks
        assert len(ticks) <= 6

    def test_round_steps(self):
        ticks = _nice_ticks(0.0, 87.0)
        steps = np.diff(ticks)
        assert np.allclose(steps, steps[0])

    def test_degenerate_range(self):
        ticks = _nice_ticks(5.0, 5.0)
        assert len(ticks) >= 1


class TestLineChart:
    def _chart(self):
        chart = LineChart("T", "x", "y")
        chart.add_series("ours (a)", [1, 2, 3], [1.0, 1.1, 1.2])
        chart.add_series("Hungarian", [1, 2, 3], [1.0, 1.0, 1.0])
        return chart

    def test_document_structure(self):
        doc = self._chart().to_string()
        assert doc.startswith("<svg")
        assert doc.count("<polyline") == 2
        # Markers: 3 per series + 1 legend-ish dot per direct label.
        assert doc.count("<circle") >= 8

    def test_fixed_method_colors(self):
        doc = self._chart().to_string()
        assert METHOD_COLORS["ours (a)"] in doc
        assert METHOD_COLORS["Hungarian"] in doc

    def test_color_follows_entity_not_rank(self):
        """Dropping a series must not repaint the survivors."""
        solo = LineChart("T", "x", "y")
        solo.add_series("Hungarian", [1, 2], [1.0, 1.0])
        assert METHOD_COLORS["Hungarian"] in solo.to_string()

    def test_direct_labels_present(self):
        doc = self._chart().to_string()
        # Name appears twice: once in the legend, once as direct label.
        assert doc.count("ours (a)") == 2

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError):
            LineChart("T", "x", "y").to_string()

    def test_mismatched_series_rejected(self):
        chart = LineChart("T", "x", "y")
        with pytest.raises(ValueError):
            chart.add_series("a", [1, 2], [1.0])

    def test_y_range_respected(self):
        chart = LineChart("T", "x", "y", y_range=(0.0, 1.0))
        chart.add_series("ours (a)", [0, 1], [0.2, 0.8])
        doc = chart.to_string()
        assert "<svg" in doc

    def test_save(self, tmp_path):
        path = self._chart().save(tmp_path / "chart.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")


class TestSweepFigures:
    def test_write_sweep_figures(self, tmp_path):
        from repro.experiments import write_sweep_figures
        from repro.experiments.harness import SweepPoint, SweepResult

        methods = ["ours (a)", "ours (b)", "direct translation", "Hungarian"]
        points = [
            SweepPoint(
                separation_factor=s,
                distance_ratio={m: 1.0 + 0.1 / s for m in methods},
                stable_link_ratio={m: 0.5 for m in methods},
                connected={m: True for m in methods},
            )
            for s in (10.0, 40.0)
        ]
        sweep = SweepResult(scenario_id=9, points=points)
        written = write_sweep_figures(sweep, tmp_path)
        assert len(written) == 2
        for p in written:
            assert p.exists()
            assert "Scenario 9" in p.read_text()
