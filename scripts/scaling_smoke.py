#!/usr/bin/env python
"""CI smoke test for swarm-scale vectorization.

Asserts the scaling contract on hardware-independent guards:

1. the n=100/1000 scaling curve finishes inside a generous wall
   budget, with the spatial-hash edge set verified against the
   brute-force oracle at both sizes (``scaling_curve`` raises on any
   deviation),
2. unit-disk-graph construction grows sub-quadratically: a 10x swarm
   must cost far less than the 100x a quadratic build would,
3. the 10 000-robot graph builds in under two seconds inside 100 MB of
   peak allocation (the budgets that used to be impossible with the
   dense pairwise matrix), and
4. ``python -m repro report --scaling`` - through a real process
   boundary - emits the "Scaling curves" section with one row per
   pipeline stage.

Run:  PYTHONPATH=src python scripts/scaling_smoke.py
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import time
from pathlib import Path

WALL_BUDGET_S = 60.0
UDG_RATIO_LIMIT = 30.0

STAGES = [
    "network.udg_edges",
    "network.adjacency",
    "network.components",
    "robots.sampling",
    "metrics.stable_links",
    "mesh.delaunay",
    "harmonic.solve_cold",
    "harmonic.solve_warm",
    "geometry.locator_build",
    "geometry.locate_batch",
]


def check_curve() -> None:
    from repro.experiments.scaling import (
        format_scaling_table,
        scaling_curve,
        stage_lookup,
    )

    t0 = time.perf_counter()
    curve = scaling_curve(sizes=(100, 1_000), verify_max_n=1_000)
    elapsed = time.perf_counter() - t0
    print(format_scaling_table(curve))
    print(f"curve wall-clock: {elapsed:.2f}s")
    assert elapsed < WALL_BUDGET_S, f"curve took {elapsed:.1f}s"

    by_key = stage_lookup(curve)
    for stage in STAGES:
        for n in (100, 1_000):
            assert (stage, n) in by_key, f"missing measurement {stage} @ {n}"

    # 10x the robots must not cost 100x the time (the quadratic
    # signature); the 1e-3 s floor keeps the ratio meaningful when the
    # small size is too fast to time.
    t100 = by_key[("network.udg_edges", 100)]["seconds"]
    t1000 = by_key[("network.udg_edges", 1_000)]["seconds"]
    ratio = t1000 / max(t100, 1e-3)
    print(f"UDG t(1000)/t(100) = {ratio:.1f}")
    assert ratio < UDG_RATIO_LIMIT, f"UDG scaling ratio {ratio:.1f}"

    cold = by_key[("harmonic.solve_cold", 1_000)]["seconds"]
    warm = by_key[("harmonic.solve_warm", 1_000)]["seconds"]
    print(f"harmonic solve cold/warm @ 1k: {cold:.3f}s / {warm:.3f}s")


def check_10k_udg() -> None:
    import numpy as np

    from repro.experiments.scaling import _measure, synthetic_swarm_positions
    from repro.network import udg_edges

    pts = synthetic_swarm_positions(10_000, comm_range=80.0, seed=0)
    edges, seconds, peak = _measure(lambda: udg_edges(pts, 80.0))
    print(
        f"10k-robot UDG: {len(edges)} edges in {seconds:.3f}s, "
        f"peak {peak / 1e6:.1f} MB"
    )
    assert seconds < 2.0, f"10k UDG took {seconds:.2f}s"
    assert peak < 100e6, f"10k UDG peaked at {peak / 1e6:.0f} MB"
    assert np.all(edges[:, 0] < edges[:, 1]), "edge list not canonical"


def check_report_cli() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "report.md"
        cmd = [
            sys.executable, "-m", "repro", "report",
            "--scenarios", "1",
            "--scaling", "--scaling-sizes", "100", "1000",
            "--output", str(out),
        ]
        print(f"$ {' '.join(cmd)}")
        proc = subprocess.run(cmd, text=True, capture_output=True)
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        assert proc.returncode == 0, f"exit code {proc.returncode}"
        text = out.read_text()
    assert "## Scaling curves" in text, "report lacks the scaling section"
    for stage in STAGES:
        assert f"| {stage} |" in text, f"report lacks stage row {stage}"


def main() -> int:
    check_curve()
    check_10k_udg()
    check_report_cli()
    print("scaling smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
