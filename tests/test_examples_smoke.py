"""Gated smoke tests running every example script end to end.

The examples use paper-scale swarms (100-144 robots) and take a few
minutes in total, so they only run when ``REPRO_RUN_EXAMPLES=1`` is
set (CI's nightly job, or a release check).  The fast suite still
guards the examples' building blocks through the unit tests.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = [
    "quickstart.py",
    "multi_foi_mission.py",
    "density_adaptive.py",
    "holes_and_detours.py",
    "distributed_protocols.py",
    "failure_recovery.py",
    "transition_trace.py",
    "serve_and_submit.py",
    "mission_stream.py",
]

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_RUN_EXAMPLES") != "1",
    reason="set REPRO_RUN_EXAMPLES=1 to run the full example scripts",
)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=EXAMPLES_DIR.parent,
    )
    assert result.returncode == 0, result.stderr[-2000:]


def test_all_examples_listed():
    """Every example on disk is covered by the smoke list."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES)
