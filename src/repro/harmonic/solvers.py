"""Harmonic (Tutte) interior solvers: iterative and sparse-linear.

With the boundary pinned to a convex curve and every interior vertex
placed at the average of its neighbours, the resulting piecewise-linear
map is the discrete harmonic map with uniform spring weights.  Tutte's
theorem guarantees it is an embedding (a diffeomorphism in the paper's
language) for a triangulated disk with convex boundary.

Two solvers compute the same fixed point:

* :func:`solve_iterative` - repeated neighbour averaging, exactly the
  paper's distributed computation ("at each step, an inner vertex
  computes its position as the average of the positions of its
  neighboring vertices").
* :func:`solve_linear` - the sparse Laplacian system solved directly;
  orders of magnitude faster and used as the default engine.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import MappingError
from repro.mesh.trimesh import TriMesh
from repro.obs import span

__all__ = ["solve_linear", "solve_iterative", "harmonic_energy"]


def _split_vertices(
    mesh: TriMesh, boundary: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Interior and boundary index arrays; validates the boundary set."""
    b = np.asarray(boundary, dtype=int)
    if len(b) == 0:
        raise MappingError("harmonic solve needs pinned boundary vertices")
    if len(np.unique(b)) != len(b):
        raise MappingError("boundary vertex list contains duplicates")
    mask = np.zeros(mesh.vertex_count, dtype=bool)
    mask[b] = True
    interior = np.flatnonzero(~mask)
    return interior, b


def solve_linear(
    mesh: TriMesh, boundary: np.ndarray, boundary_positions: np.ndarray
) -> np.ndarray:
    """Solve the uniform-weight Tutte system with a sparse direct solver.

    Parameters
    ----------
    mesh : TriMesh
        Connectivity source (vertex coordinates are ignored).
    boundary : (b,) int array
        Pinned vertex indices.
    boundary_positions : (b, 2) array
        Their target positions (typically on the unit circle).

    Returns
    -------
    (n, 2) ndarray
        Positions for all vertices.
    """
    interior, b_idx = _split_vertices(mesh, boundary)
    bpos = np.asarray(boundary_positions, dtype=float)
    if bpos.shape != (len(b_idx), 2):
        raise MappingError("boundary position array shape mismatch")
    n = mesh.vertex_count
    out = np.zeros((n, 2))
    out[b_idx] = bpos
    if len(interior) == 0:
        return out

    ni = len(interior)
    pos_in_interior = -np.ones(n, dtype=int)
    pos_in_interior[interior] = np.arange(ni)
    adj = mesh.adjacency
    counts = np.array([len(adj[v]) for v in interior])
    if np.any(counts == 0):
        v = int(interior[int(np.flatnonzero(counts == 0)[0])])
        raise MappingError(f"interior vertex {v} has no neighbours")

    with span("harmonic.solve_linear", vertices=n, interior=ni) as sp_:
        # Vectorised COO assembly: one flattened neighbour array, split
        # into interior couplings (matrix entries) and boundary
        # couplings (right-hand-side contributions).
        nbr_flat = np.concatenate(
            [np.asarray(adj[v], dtype=int) for v in interior]
        )
        seg_ids = np.repeat(np.arange(ni), counts)
        inv_deg = 1.0 / counts.astype(float)
        nbr_slot = pos_in_interior[nbr_flat]
        to_interior = nbr_slot >= 0

        diag = np.arange(ni)
        rows = np.concatenate([diag, seg_ids[to_interior]])
        cols = np.concatenate([diag, nbr_slot[to_interior]])
        vals = np.concatenate([np.ones(ni), -inv_deg[seg_ids[to_interior]]])

        rhs = np.zeros((ni, 2))
        bnd_rows = seg_ids[~to_interior]
        np.add.at(
            rhs, bnd_rows, out[nbr_flat[~to_interior]] * inv_deg[bnd_rows][:, None]
        )

        mat = sp.csr_matrix((vals, (rows, cols)), shape=(ni, ni))
        sp_.set_attributes(nnz=int(mat.nnz))
        solution = spla.spsolve(mat.tocsc(), rhs)
        if solution.ndim == 1:
            solution = solution[:, None]
        if not np.all(np.isfinite(solution)):
            raise MappingError(
                "harmonic linear solve produced non-finite positions"
            )
        out[interior] = solution
        residual = mat @ solution - rhs
        sp_.set_attributes(residual=float(np.abs(residual).max()))
    return out


def solve_iterative(
    mesh: TriMesh,
    boundary: np.ndarray,
    boundary_positions: np.ndarray,
    tol: float = 1e-7,
    max_iterations: int = 100_000,
) -> tuple[np.ndarray, int]:
    """Neighbour-averaging iteration (the paper's distributed solver).

    Interior vertices start at the disk centre (as in Sec. III-B) and
    repeatedly move to the mean of their neighbours until the largest
    move falls below ``tol``.

    Returns
    -------
    (positions, iterations)

    Raises
    ------
    MappingError
        If convergence is not reached within ``max_iterations``.
    """
    interior, b_idx = _split_vertices(mesh, boundary)
    bpos = np.asarray(boundary_positions, dtype=float)
    if bpos.shape != (len(b_idx), 2):
        raise MappingError("boundary position array shape mismatch")
    n = mesh.vertex_count
    pos = np.zeros((n, 2))
    pos[b_idx] = bpos
    if len(interior) == 0:
        return pos, 0

    # Flatten adjacency into numpy indices for a vectorised Jacobi sweep.
    adj = mesh.adjacency
    nbr_flat = np.concatenate([np.asarray(adj[v], dtype=int) for v in interior])
    counts = np.array([len(adj[v]) for v in interior])
    if np.any(counts == 0):
        raise MappingError("interior vertex with no neighbours")
    seg_ids = np.repeat(np.arange(len(interior)), counts)

    with span(
        "harmonic.solve_iterative", vertices=n, interior=len(interior), tol=tol
    ) as sp_:
        for iteration in range(1, max_iterations + 1):
            sums = np.zeros((len(interior), 2))
            np.add.at(sums, seg_ids, pos[nbr_flat])
            new = sums / counts[:, None]
            delta = float(np.abs(new - pos[interior]).max())
            pos[interior] = new
            if delta < tol:
                sp_.set_attributes(iterations=iteration, residual=delta)
                return pos, iteration
    raise MappingError(
        f"harmonic iteration did not converge in {max_iterations} sweeps"
    )


def harmonic_energy(mesh: TriMesh, positions: np.ndarray) -> float:
    """Uniform-weight spring energy ``sum_edges |x_u - x_v|^2``.

    The discrete harmonic map minimises this energy subject to the
    boundary constraint; tests use it to verify both solvers find the
    same minimum.
    """
    p = np.asarray(positions, dtype=float)
    e = mesh.edges
    d = p[e[:, 0]] - p[e[:, 1]]
    return float((d * d).sum())
