"""Tracing how a transition unfolds: link survival over time.

Records the time series of link state for the same scenario under our
method (a) and under the Hungarian baseline, then renders both as SVG
time-series charts.  The trace shows *why* the scalar metrics come out
the way they do: under the harmonic-map march the "stable so far" curve
stays near 1.0, while under the distance-optimal assignment it
collapses early and the swarm transiently bunches up (total links well
above the initial count mid-flight).

Run:  python examples/transition_trace.py
"""

from __future__ import annotations

import numpy as np

from repro import MarchingConfig, MarchingPlanner, RadioSpec, Swarm
from repro.baselines import hungarian_plan
from repro.coverage import optimal_coverage_positions
from repro.experiments import record_trace, render_trace_chart
from repro.foi import m1_base, m2_scenario1
from repro.network import LinkTable


def main() -> None:
    radio = RadioSpec.from_comm_range(80.0)
    m1 = m1_base()
    swarm = Swarm.deploy_lattice(m1, 100, radio)
    m2 = m2_scenario1()
    m2 = m2.translated(m1.centroid + np.array([1600.0, 0.0]) - m2.centroid)

    ours = MarchingPlanner(MarchingConfig(method="a")).plan(swarm, m2)
    q = optimal_coverage_positions(m2, swarm.size, radio.comm_range)
    baseline = hungarian_plan(swarm.positions, q)
    links = LinkTable.from_graph(swarm.communication_graph())

    for name, trajectory, anchors in (
        ("ours_a", ours.trajectory, ours.boundary_anchors),
        ("hungarian", baseline.trajectory, None),
    ):
        trace = record_trace(trajectory, links, boundary_anchors=anchors)
        path = render_trace_chart(
            trace,
            f"examples/output/trace_{name}.svg",
            title=f"Link survival over time - {name}",
        )
        print(
            f"{name:10s} stable ratio {trace.final_stable_ratio:.3f}, "
            f"peak compression {trace.peak_compression:.2f}x, "
            f"max isolated {trace.isolated.max()} -> {path}"
        )


if __name__ == "__main__":
    main()
