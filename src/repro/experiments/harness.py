"""Experiment harness: run methods on scenarios and collect the metrics.

This is the code behind every table and figure reproduction.  For a
scenario instance it runs the four methods of Sec. IV - our method (a),
our method (b), direct translation, and Hungarian - and scores each
with the paper's three metrics (``D``, ``L``, ``C``).

Heavy per-scenario artifacts (the M1 swarm, its triangulation boundary,
the canonical optimal coverage positions ``Q``) depend only on the FoI
*shapes*, not on where M2 is placed, so they are computed once per
scenario and translated per separation - making the Fig. 3 sweeps
tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import direct_translation_plan, hungarian_plan
from repro.coverage.lattice import optimal_coverage_positions
from repro.coverage.lloyd import LloydConfig
from repro.exec import ParallelMap, resolve_workers
from repro.experiments.scenarios import ScenarioSpec
from repro.marching import MarchingConfig, MarchingPlanner
from repro.metrics import (
    connectivity_report,
    stable_link_ratio,
)
from repro.network.extract import extract_triangulation
from repro.network.links import LinkTable
from repro.obs import span
from repro.robots import RadioSpec, Swarm
from repro.robots.motion import SwarmTrajectory

__all__ = [
    "TransitionEvaluation",
    "ScenarioRun",
    "SweepPoint",
    "SweepResult",
    "evaluate_trajectory",
    "run_scenario",
    "run_scenarios",
    "sweep_separations",
    "sweep_many",
    "DEFAULT_METHODS",
]

DEFAULT_METHODS = ("ours (a)", "ours (b)", "direct translation", "Hungarian")


@dataclass(frozen=True)
class TransitionEvaluation:
    """The paper's three metrics for one method on one scenario instance.

    Attributes
    ----------
    method : str
    total_distance : float
        ``D`` including any adjustment phase.
    stable_link_ratio : float
        ``L`` per Definition 1.
    globally_connected : bool
        ``C`` per Definition 2 (path to network boundary at all times).
    max_isolated : int
        Worst simultaneous isolation observed (0 when connected).
    final_positions : ndarray
    """

    method: str
    total_distance: float
    stable_link_ratio: float
    globally_connected: bool
    max_isolated: int
    final_positions: np.ndarray

    @property
    def connectivity_flag(self) -> str:
        return "Y" if self.globally_connected else "N"


def evaluate_trajectory(
    method: str,
    trajectory: SwarmTrajectory,
    links: LinkTable,
    boundary_anchors,
    resolution: int = 32,
) -> TransitionEvaluation:
    """Score a trajectory with the paper's three metrics."""
    report = connectivity_report(
        trajectory, links.comm_range, boundary_anchors, resolution
    )
    return TransitionEvaluation(
        method=method,
        total_distance=trajectory.total_distance(),
        stable_link_ratio=stable_link_ratio(links, trajectory, resolution),
        globally_connected=report.connected,
        max_isolated=report.max_isolated,
        final_positions=trajectory.end_positions,
    )


@dataclass
class _ScenarioCache:
    """Shape-dependent artifacts shared across separations."""

    swarm: Swarm
    links: LinkTable
    anchors: tuple[int, ...]
    q_canonical: np.ndarray
    m2_canonical_centroid: np.ndarray


_CACHE: dict[tuple, _ScenarioCache] = {}


def _scenario_cache(spec: ScenarioSpec, grid_target: int) -> _ScenarioCache:
    key = (spec.scenario_id, spec.robot_count, spec.comm_range, grid_target)
    if key in _CACHE:
        return _CACHE[key]
    radio = RadioSpec.from_comm_range(spec.comm_range)
    m1 = spec.m1_builder()
    m2 = spec.m2_builder()
    swarm = Swarm.deploy_lattice(m1, spec.robot_count, radio)
    links = LinkTable.from_graph(swarm.communication_graph())
    t_mesh, vmap = extract_triangulation(swarm.positions, spec.comm_range)
    anchors = tuple(int(vmap[v]) for v in t_mesh.outer_boundary_loop)
    q_canonical = optimal_coverage_positions(
        m2, spec.robot_count, spec.comm_range, grid_target=grid_target
    )
    cache = _ScenarioCache(
        swarm=swarm,
        links=links,
        anchors=anchors,
        q_canonical=q_canonical,
        m2_canonical_centroid=m2.centroid,
    )
    _CACHE[key] = cache
    return cache


@dataclass(frozen=True)
class ScenarioRun:
    """All method evaluations for one (scenario, separation) instance."""

    scenario_id: int
    separation_factor: float
    evaluations: dict[str, TransitionEvaluation]

    def distance_ratio(self, method: str, baseline: str = "Hungarian") -> float:
        """``D_method / D_baseline`` - the normalised y-axis of Fig. 3/4/5."""
        return (
            self.evaluations[method].total_distance
            / self.evaluations[baseline].total_distance
        )


def run_scenario(
    spec: ScenarioSpec,
    separation_factor: float = 20.0,
    methods=DEFAULT_METHODS,
    foi_target_points: int = 500,
    lloyd_grid_target: int = 2000,
    resolution: int = 32,
) -> ScenarioRun:
    """Run the requested methods on a scenario instance and score them.

    Parameters
    ----------
    spec : ScenarioSpec
    separation_factor : float
        M1-M2 centroid distance in communication ranges.
    methods : iterable of str
        Subset of ``DEFAULT_METHODS``.
    foi_target_points, lloyd_grid_target : int
        Resolution knobs forwarded to the planner.
    resolution : int
        Metric sampling resolution over the transition.
    """
    cache = _scenario_cache(spec, lloyd_grid_target)
    m1, m2 = spec.build(separation_factor)
    offset = m2.centroid - cache.m2_canonical_centroid
    q_targets = cache.q_canonical + offset

    evaluations: dict[str, TransitionEvaluation] = {}
    with span(
        "experiment.run_scenario",
        scenario=spec.scenario_id,
        separation=separation_factor,
    ):
        for method in methods:
            with span("experiment.method", method=method) as sp_:
                if method == "ours (a)" or method == "ours (b)":
                    cfg = MarchingConfig(
                        method="a" if method.endswith("(a)") else "b",
                        foi_target_points=foi_target_points,
                        lloyd=LloydConfig(grid_target=lloyd_grid_target),
                    )
                    result = MarchingPlanner(cfg).plan(
                        cache.swarm, m2, source_foi=m1
                    )
                    evaluations[method] = evaluate_trajectory(
                        method, result.trajectory, result.links,
                        result.boundary_anchors, resolution,
                    )
                elif method == "direct translation":
                    plan = direct_translation_plan(
                        cache.swarm.positions, q_targets, m1, m2
                    )
                    evaluations[method] = evaluate_trajectory(
                        method, plan.trajectory, cache.links, cache.anchors,
                        resolution,
                    )
                elif method == "Hungarian":
                    plan = hungarian_plan(cache.swarm.positions, q_targets)
                    evaluations[method] = evaluate_trajectory(
                        method, plan.trajectory, cache.links, cache.anchors,
                        resolution,
                    )
                else:
                    raise ValueError(f"unknown method {method!r}")
                e = evaluations[method]
                sp_.set_attributes(
                    total_distance=e.total_distance,
                    stable_link_ratio=e.stable_link_ratio,
                    connected=e.globally_connected,
                )
    return ScenarioRun(
        scenario_id=spec.scenario_id,
        separation_factor=separation_factor,
        evaluations=evaluations,
    )


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis point of a Fig. 3-style sweep."""

    separation_factor: float
    distance_ratio: dict[str, float]
    stable_link_ratio: dict[str, float]
    connected: dict[str, bool]


@dataclass(frozen=True)
class SweepResult:
    """A full separation sweep for one scenario (rows 4-5 of Fig. 3/5)."""

    scenario_id: int
    points: list[SweepPoint] = field(default_factory=list)

    def series(self, metric: str, method: str) -> list[float]:
        """Extract one plotted series, e.g. ``series("distance_ratio", "ours (a)")``."""
        return [getattr(p, metric)[method] for p in self.points]

    @property
    def separations(self) -> list[float]:
        return [p.separation_factor for p in self.points]


def _sweep_point_from_run(run: ScenarioRun) -> SweepPoint:
    """Condense one scenario run into a Fig. 3 sweep point."""
    hung = run.evaluations.get("Hungarian")
    base = hung.total_distance if hung else max(
        e.total_distance for e in run.evaluations.values()
    )
    return SweepPoint(
        separation_factor=run.separation_factor,
        distance_ratio={
            m: e.total_distance / base for m, e in run.evaluations.items()
        },
        stable_link_ratio={
            m: e.stable_link_ratio for m, e in run.evaluations.items()
        },
        connected={
            m: e.globally_connected for m, e in run.evaluations.items()
        },
    )


def _scenario_task(task) -> ScenarioRun:
    """One ``run_scenario`` call, shaped for :class:`ParallelMap`.

    Module-level (hence picklable) so the process backend can ship it;
    ``task`` is ``(spec, separation, methods, run_kwargs)``.
    """
    spec, separation, methods, run_kwargs = task
    return run_scenario(spec, separation, methods, **run_kwargs)


def _sweep_task(task) -> "SweepResult":
    """One whole-scenario sweep, shaped for :class:`ParallelMap`."""
    spec, separation_factors, methods, run_kwargs = task
    return sweep_separations(
        spec, separation_factors, methods, workers=1, **run_kwargs
    )


def sweep_separations(
    spec: ScenarioSpec,
    separation_factors=(10.0, 25.0, 50.0, 75.0, 100.0),
    methods=DEFAULT_METHODS,
    workers: int | None = None,
    backend: str = "process",
    **run_kwargs,
) -> SweepResult:
    """Reproduce a Fig. 3-style sweep: metrics vs M1-M2 separation.

    Parameters
    ----------
    spec, separation_factors, methods
        As before.
    workers : int, optional
        Fan the sweep points out over this many workers (``None`` reads
        ``REPRO_WORKERS``, default 1 = inline).  Results are identical
        for any worker count: every point is a pure computation, and
        per-worker obs spans/metrics merge back in point order.
    backend : str
        :class:`repro.exec.ParallelMap` backend for ``workers > 1``.
    """
    workers = resolve_workers(workers)
    seps = list(separation_factors)
    if workers > 1 and len(seps) > 1:
        engine = ParallelMap(backend=backend, workers=workers)
        runs = engine.map(
            _scenario_task,
            [(spec, sep, tuple(methods), dict(run_kwargs)) for sep in seps],
        )
    else:
        runs = [run_scenario(spec, sep, methods, **run_kwargs) for sep in seps]
    return SweepResult(
        scenario_id=spec.scenario_id,
        points=[_sweep_point_from_run(run) for run in runs],
    )


def run_scenarios(
    specs,
    separation_factor: float = 20.0,
    methods=DEFAULT_METHODS,
    workers: int | None = None,
    backend: str = "process",
    **run_kwargs,
) -> dict[int, ScenarioRun]:
    """Run several scenarios (Table I / report path), optionally in parallel.

    Returns
    -------
    dict
        ``{scenario_id: ScenarioRun}`` in scenario order, identical for
        any ``workers`` count.
    """
    specs = list(specs)
    workers = resolve_workers(workers)
    if workers > 1 and len(specs) > 1:
        engine = ParallelMap(backend=backend, workers=workers)
        runs = engine.map(
            _scenario_task,
            [
                (spec, separation_factor, tuple(methods), dict(run_kwargs))
                for spec in specs
            ],
        )
    else:
        runs = [
            run_scenario(spec, separation_factor, methods, **run_kwargs)
            for spec in specs
        ]
    return {spec.scenario_id: run for spec, run in zip(specs, runs)}


def sweep_many(
    specs,
    separation_factors=(10.0, 25.0, 50.0, 75.0, 100.0),
    methods=DEFAULT_METHODS,
    workers: int | None = None,
    backend: str = "process",
    **run_kwargs,
) -> list[SweepResult]:
    """Full sweeps for several scenarios, one worker task per scenario."""
    specs = list(specs)
    workers = resolve_workers(workers)
    if workers > 1 and len(specs) > 1:
        engine = ParallelMap(backend=backend, workers=workers)
        return engine.map(
            _sweep_task,
            [
                (spec, tuple(separation_factors), tuple(methods), dict(run_kwargs))
                for spec in specs
            ],
        )
    return [
        sweep_separations(
            spec, separation_factors, methods, workers=1, **run_kwargs
        )
        for spec in specs
    ]
