"""Unit tests for the service job store: admission, dedup, TTL, claims."""

import threading

import pytest

from repro.errors import ServiceError
from repro.service import (
    JobQueue,
    QueueClosed,
    QueueFull,
    normalize_plan_request,
)


def request(sep=20.0, **overrides):
    body = {"scenario_ids": [1], "separation_factor": sep}
    body.update(overrides)
    normalized, _priority = normalize_plan_request(body)
    return normalized


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestNormalization:
    def test_defaults_filled_in(self):
        req, priority = normalize_plan_request({"scenario_id": 3})
        assert req["scenario_ids"] == [3]
        assert req["separation_factor"] == 20.0
        assert req["foi_target_points"] == 500
        assert req["lloyd_grid_target"] == 2000
        assert req["resolution"] == 32
        assert priority == 0

    def test_equivalent_requests_canonicalise_identically(self):
        a, _ = normalize_plan_request(
            {"scenario_ids": [2, 1], "methods": ["Hungarian", "ours (a)"]}
        )
        b, _ = normalize_plan_request(
            {"scenario_ids": [1, 2, 2], "methods": ["ours (a)", "Hungarian"],
             "priority": 5}
        )
        assert a == b

    def test_priority_not_part_of_request(self):
        req, priority = normalize_plan_request({"scenario_id": 1, "priority": 7})
        assert priority == 7
        assert "priority" not in req

    @pytest.mark.parametrize("body", [
        [],                                          # not an object
        {},                                          # no scenarios
        {"scenario_ids": [99]},                      # unknown scenario
        {"scenario_id": 1, "methods": ["nope"]},     # unknown method
        {"scenario_id": 1, "methods": []},           # no methods
        {"scenario_id": 1, "resolution": 0},         # non-positive knob
        {"scenario_id": 1, "separation_factor": "x"},
        {"scenario_id": 1, "frobnicate": True},      # unknown field
    ])
    def test_rejects_malformed(self, body):
        with pytest.raises(ServiceError):
            normalize_plan_request(body)


class TestAdmission:
    def test_submit_and_claim(self):
        queue = JobQueue(capacity=4)
        job, created = queue.submit(request())
        assert created and job.state == "queued"
        claimed = queue.claim(timeout=0.1)
        assert claimed is job and claimed.state == "running"
        queue.complete(job.job_id, b"{}")
        assert queue.get(job.job_id).state == "done"
        assert queue.get(job.job_id).result == b"{}"

    def test_duplicate_submission_same_job_id(self):
        queue = JobQueue(capacity=4)
        a, created_a = queue.submit(request())
        b, created_b = queue.submit(request())
        assert created_a and not created_b
        assert a.job_id == b.job_id
        assert queue.get(a.job_id).submissions == 2

    def test_done_jobs_still_deduplicate(self):
        queue = JobQueue(capacity=4)
        job, _ = queue.submit(request())
        queue.claim(timeout=0.1)
        queue.complete(job.job_id, b"{}")
        again, created = queue.submit(request())
        assert not created and again.state == "done"

    def test_capacity_counts_queued_only(self):
        queue = JobQueue(capacity=1)
        first, _ = queue.submit(request(sep=10.0))
        queue.claim(timeout=0.1)  # running jobs free the slot
        queue.submit(request(sep=11.0))
        with pytest.raises(QueueFull):
            queue.submit(request(sep=12.0))

    def test_failed_job_revived_on_resubmit(self):
        queue = JobQueue(capacity=4)
        job, _ = queue.submit(request())
        queue.claim(timeout=0.1)
        queue.fail(job.job_id, "boom")
        revived, created = queue.submit(request())
        assert created and revived.job_id == job.job_id
        assert revived.state == "queued" and revived.error is None

    def test_closed_queue_rejects(self):
        queue = JobQueue(capacity=4)
        queue.close()
        with pytest.raises(QueueClosed):
            queue.submit(request())


class TestOrderingAndCancel:
    def test_priority_then_fifo(self):
        queue = JobQueue(capacity=8)
        low, _ = queue.submit(request(sep=10.0), priority=0)
        high, _ = queue.submit(request(sep=11.0), priority=5)
        low2, _ = queue.submit(request(sep=12.0), priority=0)
        order = [queue.claim(timeout=0.1).job_id for _ in range(3)]
        assert order == [high.job_id, low.job_id, low2.job_id]

    def test_cancel_only_queued(self):
        queue = JobQueue(capacity=4)
        job, _ = queue.submit(request())
        assert queue.cancel(job.job_id)
        assert queue.get(job.job_id).state == "cancelled"
        job2, _ = queue.submit(request(sep=11.0))
        queue.claim(timeout=0.1)
        assert not queue.cancel(job2.job_id)  # running

    def test_cancelled_job_revived_on_resubmit(self):
        queue = JobQueue(capacity=4)
        job, _ = queue.submit(request())
        queue.cancel(job.job_id)
        revived, created = queue.submit(request())
        assert created and revived.state == "queued"
        assert revived.job_id == job.job_id

    def test_claim_blocks_until_submit(self):
        queue = JobQueue(capacity=4)
        got = []

        def claimer():
            got.append(queue.claim(timeout=5.0))

        thread = threading.Thread(target=claimer)
        thread.start()
        job, _ = queue.submit(request())
        thread.join(timeout=5.0)
        assert got and got[0].job_id == job.job_id

    def test_close_without_drain_cancels_backlog(self):
        queue = JobQueue(capacity=4)
        job, _ = queue.submit(request())
        queue.close(drain=False)
        assert queue.get(job.job_id).state == "cancelled"
        assert queue.claim(timeout=0.1) is None

    def test_close_with_drain_serves_backlog(self):
        queue = JobQueue(capacity=4)
        job, _ = queue.submit(request())
        queue.close(drain=True)
        assert queue.claim(timeout=0.1).job_id == job.job_id
        assert queue.claim(timeout=0.1) is None


class TestTTL:
    def test_terminal_jobs_evicted_after_ttl(self):
        clock = FakeClock()
        queue = JobQueue(capacity=4, ttl_s=10.0, clock=clock)
        job, _ = queue.submit(request())
        queue.claim(timeout=0.1)
        queue.complete(job.job_id, b"{}")
        clock.now = 5.0
        assert queue.evict_expired() == 0
        clock.now = 20.0
        assert queue.evict_expired() == 1
        assert queue.get(job.job_id) is None

    def test_active_jobs_never_evicted(self):
        clock = FakeClock()
        queue = JobQueue(capacity=4, ttl_s=10.0, clock=clock)
        queued, _ = queue.submit(request(sep=10.0))
        running, _ = queue.submit(request(sep=11.0))
        queue.claim(timeout=0.1)
        clock.now = 1e6
        assert queue.evict_expired() == 0
        assert queue.counts()["queued"] + queue.counts()["running"] == 2

    def test_eviction_allows_fresh_submission(self):
        clock = FakeClock()
        queue = JobQueue(capacity=4, ttl_s=10.0, clock=clock)
        job, _ = queue.submit(request())
        queue.claim(timeout=0.1)
        queue.complete(job.job_id, b"{}")
        clock.now = 20.0  # submit() evicts opportunistically
        fresh, created = queue.submit(request())
        assert created and fresh.state == "queued"

    def test_bad_parameters_rejected(self):
        with pytest.raises(ServiceError):
            JobQueue(capacity=0)
        with pytest.raises(ServiceError):
            JobQueue(ttl_s=0.0)


class TestStatusDocument:
    def test_to_dict_shape(self):
        clock = FakeClock()
        queue = JobQueue(capacity=4, clock=clock)
        job, _ = queue.submit(request(), priority=3)
        clock.now = 2.0
        queue.claim(timeout=0.1)
        clock.now = 5.0
        queue.complete(job.job_id, b"{}")
        doc = job.to_dict()
        assert doc["state"] == "done"
        assert doc["priority"] == 3
        assert doc["queue_wait_s"] == pytest.approx(2.0)
        assert doc["run_s"] == pytest.approx(3.0)
        assert doc["request"]["scenario_ids"] == [1]
        assert "result" not in doc
