"""Tests for scenarios, the lemma constructions, tables and the harness."""

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.experiments import (
    SCENARIOS,
    format_table,
    get_scenario,
    lemma1_example,
    lemma2_example,
    render_sweep,
    render_table1,
    run_scenario,
)


class TestScenarioRegistry:
    def test_seven_scenarios(self):
        assert sorted(SCENARIOS) == [1, 2, 3, 4, 5, 6, 7]

    def test_lookup(self):
        spec = get_scenario(3)
        assert spec.scenario_id == 3
        assert spec.robot_count == 144
        assert spec.comm_range == 80.0

    def test_unknown_raises(self):
        with pytest.raises(ScenarioError):
            get_scenario(12)

    def test_separation_respected(self):
        spec = get_scenario(1)
        m1, m2 = spec.build(separation_factor=25.0)
        gap = np.hypot(*(m2.centroid - m1.centroid))
        assert gap == pytest.approx(25.0 * 80.0)

    def test_negative_separation_rejected(self):
        with pytest.raises(ScenarioError):
            get_scenario(1).build(-1.0)

    def test_hole_classification(self):
        assert not get_scenario(1).has_holes
        assert get_scenario(3).has_holes
        assert get_scenario(6).has_holes


class TestLemma1:
    def test_tradeoff_exists(self):
        ex = lemma1_example()
        assert ex.tradeoff_holds

    def test_hungarian_strictly_shorter(self):
        ex = lemma1_example()
        assert ex.min_distance < ex.preserving_distance

    def test_preserving_keeps_strictly_more_links(self):
        ex = lemma1_example()
        assert ex.preserving_links > ex.min_distance_links

    def test_assignments_differ(self):
        ex = lemma1_example()
        assert not np.array_equal(
            ex.link_preserving_assignment, ex.min_distance_assignment
        )


class TestLemma2:
    def test_full_preservation_impossible(self):
        """Lemma 2 verified exhaustively over all 5040 assignments."""
        ex = lemma2_example()
        assert ex.full_preservation_impossible

    def test_hexagon_has_twelve_links(self):
        ex = lemma2_example()
        assert ex.total_links == 12  # 6 rim + 6 spokes

    def test_at_least_two_links_lost(self):
        # The paper: some robots "have to break at least two
        # communication links individually".
        ex = lemma2_example()
        assert ex.total_links - ex.best_preserved >= 2

    def test_line_preserves_chain_links(self):
        # A line of 7 robots has 6 adjacent links; the best assignment
        # can keep at most those.
        ex = lemma2_example()
        assert ex.best_preserved <= 6


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_harness_and_renderers(self):
        """One small end-to-end harness run exercising the renderers."""
        spec = get_scenario(1)
        run = run_scenario(
            spec,
            separation_factor=12.0,
            foi_target_points=220,
            lloyd_grid_target=900,
            resolution=16,
        )
        assert set(run.evaluations) == {
            "ours (a)", "ours (b)", "direct translation", "Hungarian"
        }
        ours = run.evaluations["ours (a)"]
        hung = run.evaluations["Hungarian"]
        # Qualitative shape of the paper's results.
        assert ours.globally_connected
        assert ours.stable_link_ratio > hung.stable_link_ratio
        assert run.distance_ratio("ours (a)") < 2.0
        table = render_table1({1: run}, list(run.evaluations))
        assert "Scenario 1" in table
        assert "Y" in table

    def test_run_scenario_unknown_method(self):
        with pytest.raises(ValueError):
            run_scenario(get_scenario(1), methods=("teleport",))
