"""Tests for the Lloyd adjustment: convergence, holes, connectivity safety."""

import numpy as np
import pytest

from repro.errors import CoverageError
from repro.coverage import (
    LloydConfig,
    coverage_fraction,
    gaussian_hotspot_density,
    hole_proximity_density,
    lattice_positions,
    optimal_coverage_positions,
    run_lloyd,
    uniform_density,
    validate_density,
)
from repro.network import UnitDiskGraph


class TestRunLloyd:
    def test_converges_on_square(self, square_foi, rng):
        start = square_foi.sample_free_points(16, rng)
        result = run_lloyd(
            start, square_foi, comm_range=200.0,
            config=LloydConfig(grid_target=900, max_iterations=80),
        )
        assert result.converged
        assert square_foi.contains(result.positions).all()

    def test_snapshots_start_at_input(self, square_foi, rng):
        start = square_foi.sample_free_points(9, rng)
        result = run_lloyd(start, square_foi, comm_range=200.0)
        assert np.allclose(result.snapshots[0], start)
        assert np.allclose(result.snapshots[-1], result.positions)

    def test_movement_accounted(self, square_foi, rng):
        start = square_foi.sample_free_points(9, rng)
        result = run_lloyd(start, square_foi, comm_range=200.0)
        step_sum = sum(
            float(np.hypot(*(b - a).T).sum())
            for a, b in zip(result.snapshots, result.snapshots[1:])
        )
        assert result.total_movement == pytest.approx(step_sum)

    def test_positions_avoid_holes(self, holed_foi, rng):
        start = holed_foi.sample_free_points(20, rng)
        result = run_lloyd(start, holed_foi, comm_range=200.0)
        assert holed_foi.contains(result.positions).all()

    def test_robot_outside_region_pulled_in(self, square_foi):
        start = np.array([[150.0, 50.0], [160.0, 60.0], [50.0, 50.0]])
        result = run_lloyd(
            start, square_foi, comm_range=500.0,
            config=LloydConfig(max_iterations=40),
        )
        assert square_foi.contains(result.positions).all()

    def test_improves_coverage(self, square_foi, rng):
        start = square_foi.sample_free_points(25, rng)
        before = coverage_fraction(square_foi, start, sensing_range=12.0)
        result = run_lloyd(start, square_foi, comm_range=200.0)
        after = coverage_fraction(square_foi, result.positions, sensing_range=12.0)
        assert after >= before - 0.02

    def test_requires_comm_range_when_safe(self, square_foi, rng):
        start = square_foi.sample_free_points(4, rng)
        with pytest.raises(CoverageError):
            run_lloyd(start, square_foi, comm_range=None)

    def test_unsafe_mode_without_range(self, square_foi, rng):
        start = square_foi.sample_free_points(4, rng)
        result = run_lloyd(
            start, square_foi,
            config=LloydConfig(connectivity_safe=False, max_iterations=10),
        )
        assert len(result.positions) == 4

    def test_empty_sites_rejected(self, square_foi):
        with pytest.raises(CoverageError):
            run_lloyd(np.zeros((0, 2)), square_foi, comm_range=10.0)

    def test_connectivity_preserved_each_step(self, square_foi):
        # Tight comm range: unconstrained Lloyd would spread a compact
        # cluster apart; the safe variant must stay connected throughout.
        start = np.array(
            [[45.0 + i * 2.0, 50.0] for i in range(8)]
        )
        rc = 15.0
        result = run_lloyd(
            start, square_foi, comm_range=rc,
            config=LloydConfig(grid_target=900, max_iterations=30),
        )
        for snap in result.snapshots:
            assert UnitDiskGraph(snap, rc).is_connected()


class TestDensity:
    def test_uniform(self):
        w = validate_density(uniform_density(), [[0, 0], [1, 1]])
        assert np.allclose(w, 1.0)

    def test_gaussian_peaks_at_center(self):
        d = gaussian_hotspot_density([0.0, 0.0], sigma=1.0)
        w = d(np.array([[0.0, 0.0], [5.0, 0.0]]))
        assert w[0] > w[1]

    def test_gaussian_invalid_params(self):
        with pytest.raises(CoverageError):
            gaussian_hotspot_density([0, 0], sigma=0.0)

    def test_hole_proximity_increases_near_hole(self, holed_foi):
        d = hole_proximity_density(holed_foi, sigma=5.0)
        near = d(np.array([[50.0, 62.5]]))  # just above the hole
        far = d(np.array([[5.0, 5.0]]))
        assert near[0] > far[0]

    def test_hole_proximity_requires_holes(self, square_foi):
        with pytest.raises(CoverageError):
            hole_proximity_density(square_foi, sigma=5.0)

    def test_validate_rejects_negative(self):
        with pytest.raises(CoverageError):
            validate_density(lambda pts: -np.ones(len(pts)), [[0, 0]])

    def test_validate_rejects_shape(self):
        with pytest.raises(CoverageError):
            validate_density(lambda pts: np.ones(len(pts) + 1), [[0, 0]])

    def test_density_shifts_mass(self, square_foi, rng):
        """Fig. 6's mechanism: a hotspot density concentrates robots."""
        start = lattice_positions(square_foi, 30, comm_range=40.0)
        hotspot = gaussian_hotspot_density([50.0, 50.0], sigma=15.0, peak=8.0)
        res_uni = run_lloyd(start, square_foi, comm_range=200.0)
        res_hot = run_lloyd(start, square_foi, comm_range=200.0, density=hotspot)
        center = np.array([50.0, 50.0])

        def near_center(pts):
            return float(np.mean(np.hypot(*(pts - center).T) < 25.0))

        assert near_center(res_hot.positions) > near_center(res_uni.positions)


class TestLatticeAndOptimal:
    def test_lattice_positions_count(self, square_foi):
        pts = lattice_positions(square_foi, 30, comm_range=40.0)
        assert len(pts) == 30
        assert square_foi.contains(pts).all()

    def test_optimal_positions_deterministic(self, square_foi):
        a = optimal_coverage_positions(square_foi, 20, 40.0, grid_target=800)
        b = optimal_coverage_positions(square_foi, 20, 40.0, grid_target=800)
        assert np.array_equal(a, b)

    def test_optimal_positions_spread(self, square_foi):
        pts = optimal_coverage_positions(square_foi, 20, 40.0, grid_target=800)
        # Pairwise minimum distance is healthy (no stacking).
        d = np.hypot(*(pts[:, None] - pts[None, :]).T) + np.eye(20) * 1e9
        assert d.min() > 10.0

    def test_invalid_count(self, square_foi):
        with pytest.raises(CoverageError):
            optimal_coverage_positions(square_foi, 0, 40.0)
