"""Time-series traces of a transition: links, isolation, compression.

The paper's metrics (``D``, ``L``, ``C``) are scalars per transition;
this module records *how the transition unfolds*: at every sampled
instant, how many of the initial links are still alive, how many links
exist at all (the mid-flight compression effect), and how many robots
lack a path to the boundary.  Traces explain the scalars - e.g. L's
denominator effects - and render as an SVG time-series chart.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.network.links import LinkTable, links_alive
from repro.network.udg import UnitDiskGraph
from repro.robots.motion import SwarmTrajectory
from repro.viz.chart import LineChart

__all__ = ["TransitionTrace", "record_trace", "render_trace_chart"]


@dataclass(frozen=True)
class TransitionTrace:
    """Sampled time series over one transition.

    Attributes
    ----------
    times : (k,) ndarray
        Sample instants.
    initial_links_alive : (k,) int ndarray
        Initial links within range at each instant.
    total_links : (k,) int ndarray
        All links of the instantaneous unit-disk graph.
    isolated : (k,) int ndarray
        Robots without a path to the boundary anchors (0 when none).
    stable_links_running : (k,) int ndarray
        Initial links alive at *every* instant up to and including this
        one - a non-increasing curve whose last value is L's numerator.
    """

    times: np.ndarray
    initial_links_alive: np.ndarray
    total_links: np.ndarray
    isolated: np.ndarray
    stable_links_running: np.ndarray

    @property
    def initial_link_count(self) -> int:
        return int(self.initial_links_alive[0])

    @property
    def final_stable_ratio(self) -> float:
        m = self.initial_link_count
        return 1.0 if m == 0 else float(self.stable_links_running[-1]) / m

    @property
    def peak_compression(self) -> float:
        """Max total links relative to the initial count (>= 1 when the
        formation transiently bunches up)."""
        m = max(self.initial_link_count, 1)
        return float(self.total_links.max()) / m


def record_trace(
    trajectory: SwarmTrajectory,
    links: LinkTable,
    boundary_anchors=None,
    resolution: int = 48,
) -> TransitionTrace:
    """Sample a trajectory into a :class:`TransitionTrace`."""
    times = trajectory.sample_times(resolution)
    table = trajectory.positions_over(times)
    anchors = (
        None if boundary_anchors is None else [int(a) for a in boundary_anchors]
    )
    alive_counts = []
    total_counts = []
    isolated_counts = []
    running = []
    stable = np.ones(links.link_count, dtype=bool)
    for snapshot in table:
        alive = links.alive_mask(snapshot)
        stable &= alive
        alive_counts.append(int(alive.sum()))
        running.append(int(stable.sum()))
        graph = UnitDiskGraph(snapshot, links.comm_range)
        total_counts.append(len(graph.edges))
        if anchors is None:
            comps = graph.components
            isolated_counts.append(
                graph.node_count - len(comps[0]) if comps else 0
            )
        else:
            isolated_counts.append(int((~graph.nodes_connected_to(anchors)).sum()))
    return TransitionTrace(
        times=times,
        initial_links_alive=np.asarray(alive_counts),
        total_links=np.asarray(total_counts),
        isolated=np.asarray(isolated_counts),
        stable_links_running=np.asarray(running),
    )


def render_trace_chart(trace: TransitionTrace, path, title: str = "Transition trace") -> Path:
    """Render a trace as an SVG time-series chart.

    Series are normalised by the initial link count so the stable-link
    floor and the mid-flight compression read off the same axis.
    """
    m = max(trace.initial_link_count, 1)
    chart = LineChart(
        title=title,
        x_label="transition time t / T",
        y_label="links / initial links",
        width=720,
    )
    chart.add_series(
        "initial links alive", trace.times, trace.initial_links_alive / m,
        color="#2a78d6",
    )
    chart.add_series(
        "stable so far", trace.times, trace.stable_links_running / m,
        color="#1baf7a",
    )
    chart.add_series(
        "all links", trace.times, trace.total_links / m, color="#eda100"
    )
    return chart.save(path)
