"""End-to-end crash recovery: the acceptance contract of the journal.

Three layers, slowest last:

- in-process service restarts on one journal directory (acknowledged
  plan results survive, provenance is reported, TTL-expired results
  answer ``410`` with a typed client error);
- a drain-interrupted mission resumes across a service restart with a
  byte-identical final document;
- real ``python -m repro serve`` subprocesses killed with ``SIGKILL``
  mid-mission (and drained with ``SIGTERM``) via the
  :mod:`repro.experiments.crashrec` harness - zero lost acknowledged
  jobs, byte-identical mission documents.
"""

import time

import pytest

from repro.errors import ServiceError
from repro.experiments.crashrec import (
    CrashRecConfig,
    crashrec_passed,
    expected_mission_bytes,
    run_crashrec,
)
from repro.io import dumps_canonical
from repro.missions import MissionConfig, MissionSpec, run_mission
from repro.service import JobExpiredError, PlanningService, ServiceClient

FAST = MissionConfig(
    robot_count=16,
    foi_target_points=100,
    grid_target=300,
    lloyd_max_iterations=6,
    resolution=4,
)


def echo_runner(request):
    return {"echo": request["scenario_ids"], "sep": request["separation_factor"]}


def service_on(journal_dir, **kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("dispatchers", 1)
    kwargs.setdefault("journal_fsync", False)
    svc = PlanningService(journal_dir=journal_dir, **kwargs)
    svc.events_poll_s = 0.01
    return svc


class TestServiceRestart:
    def test_acked_results_survive_restart(self, tmp_path):
        with service_on(tmp_path, runner=echo_runner) as svc:
            client = ServiceClient(port=svc.port, retries=3)
            submitted = client.submit([1], separation_factor=12.0)
            job_id = submitted["job_id"]
            client.wait(job_id, timeout=30.0)
            first_bytes = client.result_bytes(job_id)

        with service_on(tmp_path, runner=echo_runner) as svc:
            assert svc.recovery["jobs_restored"] == 1
            assert svc.recovery["jobs_requeued"] == 0
            client = ServiceClient(port=svc.port, retries=3)
            status = client.status(job_id)
            assert status["state"] == "done"
            assert status["provenance"] == "recovered"
            assert client.result_bytes(job_id) == first_bytes

    def test_resubmission_dedups_onto_recovered_job(self, tmp_path):
        with service_on(tmp_path, runner=echo_runner) as svc:
            client = ServiceClient(port=svc.port, retries=3)
            submitted = client.submit([2], separation_factor=21.0)
            job_id = submitted["job_id"]
            client.wait(job_id, timeout=30.0)

        with service_on(tmp_path, runner=echo_runner) as svc:
            client = ServiceClient(port=svc.port, retries=3)
            # Content-address idempotency across processes: the same
            # request dedups onto the recovered done job, no re-run.
            again = client.submit([2], separation_factor=21.0)
            assert again["job_id"] == job_id
            assert again["deduplicated"]
            assert client.status(job_id)["state"] == "done"

    def test_healthz_reports_journal_and_recovery(self, tmp_path):
        with service_on(tmp_path, runner=echo_runner) as svc:
            client = ServiceClient(port=svc.port, retries=3)
            doc = client.healthz()
            assert doc["journal"]["directory"] == str(tmp_path)
            assert doc["journal"]["fsync"] is False
            assert doc["recovery"]["jobs_restored"] == 0

    def test_expired_result_is_typed_410(self, tmp_path):
        with service_on(tmp_path, runner=echo_runner, ttl_s=0.05) as svc:
            client = ServiceClient(port=svc.port, retries=3)
            submitted = client.submit([1], separation_factor=31.0)
            job_id = submitted["job_id"]
            client.wait(job_id, timeout=30.0)
            time.sleep(0.1)
            for shard in svc.shards:
                shard.queue.evict_expired()
            with pytest.raises(JobExpiredError) as exc:
                client.status(job_id)
            assert exc.value.evicted_at is not None
            with pytest.raises(JobExpiredError):
                client.result(job_id)
            # An id the service never saw stays a plain 404.
            with pytest.raises(ServiceError) as plain:
                client.status("0" * 64)
            assert not isinstance(plain.value, JobExpiredError)

    def test_eviction_survives_restart(self, tmp_path):
        with service_on(tmp_path, runner=echo_runner, ttl_s=0.05) as svc:
            client = ServiceClient(port=svc.port, retries=3)
            submitted = client.submit([1], separation_factor=44.0)
            job_id = submitted["job_id"]
            client.wait(job_id, timeout=30.0)
            time.sleep(0.1)
            for shard in svc.shards:
                shard.queue.evict_expired()

        with service_on(tmp_path, runner=echo_runner) as svc:
            client = ServiceClient(port=svc.port, retries=3)
            with pytest.raises(JobExpiredError):
                client.status(job_id)


class TestMissionResumeAcrossRestart:
    SPEC = MissionSpec(family="corridor", seed=0, epochs=4, motion="drift")

    def test_drain_interrupted_mission_resumes_byte_identical(self, tmp_path):
        baseline = dumps_canonical(run_mission(self.SPEC, FAST))
        with service_on(tmp_path) as svc:
            client = ServiceClient(port=svc.port, timeout=120.0, retries=3)
            submitted = client.submit_mission(self.SPEC, FAST)
            job_id = submitted["job_id"]
            # Wait for the first durable epoch, then drain: the runner
            # must checkpoint-and-release at the next epoch boundary.
            for event in client.iter_events(job_id, timeout=60.0):
                if event.get("kind") == "checkpoint":
                    break
        # __exit__ ran stop(): drain interrupts the mission.  Unless the
        # mission managed to finish first, the job is parked for resume.

        with service_on(tmp_path) as svc:
            assert svc.recovery["jobs_restored"] == 1
            client = ServiceClient(port=svc.port, timeout=120.0, retries=3)
            final = client.wait(job_id, timeout=120.0)
            assert final["state"] == "done"
            assert final["provenance"] in ("recovered", "retried")
            assert client.result_bytes(job_id) == baseline


class TestSubprocessKill9:
    """The headline acceptance test: kill -9, restart, nothing lost."""

    CONFIG = CrashRecConfig(
        seed=0,
        epochs=3,
        kill_epoch=1,
        plan_jobs=1,
        robot_count=16,
        foi_target_points=100,
        grid_target=300,
        lloyd_max_iterations=8,
        resolution=4,
    )

    def test_sigkill_loses_nothing(self, tmp_path):
        summary = run_crashrec(
            self.CONFIG,
            tmp_path / "journal",
            sig="SIGKILL",
            baseline=expected_mission_bytes(self.CONFIG),
        )
        canonical = summary["canonical"]
        assert crashrec_passed(summary), summary
        assert summary["timing"]["crash_exit_code"] == -9
        assert canonical["zero_lost_acked"], canonical["lost_acked"]
        assert canonical["mission_byte_identical"]
        assert canonical["mission_provenance"] == "retried"
        assert canonical["epochs_streamed_before_crash"] >= self.CONFIG.kill_epoch

    def test_sigterm_drains_checkpoints_and_exits_zero(self, tmp_path):
        config = CrashRecConfig(
            seed=0,
            epochs=5,
            kill_epoch=1,
            plan_jobs=1,
            robot_count=16,
            foi_target_points=100,
            grid_target=300,
            lloyd_max_iterations=8,
            resolution=4,
        )
        summary = run_crashrec(
            config,
            tmp_path / "journal",
            sig="SIGTERM",
            baseline=expected_mission_bytes(config),
        )
        canonical = summary["canonical"]
        timing = summary["timing"]
        assert crashrec_passed(summary), summary
        # Graceful drain: epoch finished + checkpointed, drain announced
        # on the SSE stream, clean exit.
        assert timing["crash_exit_code"] == 0
        assert timing["drain_announced"]
        assert timing["interrupted_event"]
        assert canonical["zero_lost_acked"], canonical["lost_acked"]
        assert canonical["mission_byte_identical"]
        assert canonical["resumed_from_epoch"] >= 1
