"""Tests for timed paths and swarm trajectories."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PlanningError
from repro.robots import SwarmTrajectory, TimedPath

coord = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


class TestTimedPath:
    def test_constant_speed_times(self):
        path = TimedPath.constant_speed([[0, 0], [3, 0], [3, 4]], 0.0, 1.0)
        # Leg lengths 3 and 4: breakpoints at 0, 3/7, 1.
        assert np.allclose(path.times, [0.0, 3 / 7, 1.0])

    def test_position_interpolation(self):
        path = TimedPath.constant_speed([[0, 0], [10, 0]], 0.0, 1.0)
        assert np.allclose(path.position_at(0.25), [2.5, 0.0])

    def test_clamping_outside_span(self):
        path = TimedPath.constant_speed([[0, 0], [10, 0]], 0.0, 1.0)
        assert np.allclose(path.position_at(-5.0), [0, 0])
        assert np.allclose(path.position_at(5.0), [10, 0])

    def test_stationary(self):
        path = TimedPath.stationary([2.0, 3.0], 0.0)
        assert np.allclose(path.position_at(0.7), [2.0, 3.0])
        assert path.length == 0.0

    def test_length(self):
        path = TimedPath.constant_speed([[0, 0], [3, 0], [3, 4]], 0.0, 1.0)
        assert path.length == pytest.approx(7.0)

    def test_zero_length_multiwaypoint(self):
        path = TimedPath.constant_speed([[1, 1], [1, 1]], 0.0, 1.0)
        assert path.length == 0.0

    def test_times_must_align(self):
        with pytest.raises(PlanningError):
            TimedPath([[0, 0], [1, 1]], [0.0])

    def test_decreasing_times_rejected(self):
        with pytest.raises(PlanningError):
            TimedPath([[0, 0], [1, 1]], [1.0, 0.0])

    def test_then_concatenates(self):
        a = TimedPath.constant_speed([[0, 0], [1, 0]], 0.0, 0.5)
        b = TimedPath.constant_speed([[1, 0], [1, 1]], 0.5, 1.0)
        joined = a.then(b)
        assert joined.length == pytest.approx(2.0)
        assert np.allclose(joined.position_at(0.75), [1.0, 0.5])

    def test_then_requires_junction(self):
        a = TimedPath.constant_speed([[0, 0], [1, 0]], 0.0, 0.5)
        b = TimedPath.constant_speed([[5, 0], [6, 0]], 0.5, 1.0)
        with pytest.raises(PlanningError):
            a.then(b)

    def test_positions_at_many_matches_scalar(self):
        path = TimedPath.constant_speed([[0, 0], [4, 0], [4, 4]], 0.0, 2.0)
        ts = np.linspace(-0.5, 2.5, 13)
        many = path.positions_at_many(ts)
        for t, p in zip(ts, many):
            assert np.allclose(p, path.position_at(t), atol=1e-12)

    @given(st.lists(st.tuples(coord, coord), min_size=2, max_size=6))
    @settings(max_examples=100)
    def test_distance_convex_along_pairs(self, pts):
        """Inter-robot distance is convex in t for synchronous linear motion,
        so the max over a sub-interval is attained at its endpoints."""
        a = TimedPath.constant_speed([pts[0], pts[-1]], 0.0, 1.0)
        b = TimedPath.constant_speed([pts[1], pts[0]], 0.0, 1.0)

        def dist(t):
            return float(np.hypot(*(a.position_at(t) - b.position_at(t))))

        end_max = max(dist(0.0), dist(1.0))
        for t in np.linspace(0, 1, 9):
            assert dist(t) <= end_max + 1e-6


class TestSwarmTrajectory:
    def _simple(self):
        paths = [
            TimedPath.constant_speed([[0, 0], [10, 0]], 0.0, 1.0),
            TimedPath.constant_speed([[0, 1], [10, 1]], 0.0, 1.0),
        ]
        return SwarmTrajectory(paths, 0.0, 1.0)

    def test_positions_at(self):
        traj = self._simple()
        mid = traj.positions_at(0.5)
        assert np.allclose(mid, [[5, 0], [5, 1]])

    def test_start_end(self):
        traj = self._simple()
        assert np.allclose(traj.start_positions, [[0, 0], [0, 1]])
        assert np.allclose(traj.end_positions, [[10, 0], [10, 1]])

    def test_total_distance(self):
        assert self._simple().total_distance() == pytest.approx(20.0)

    def test_sample_times_include_critical(self):
        paths = [
            TimedPath.constant_speed([[0, 0], [1, 0], [1, 5]], 0.0, 1.0),
            TimedPath.constant_speed([[0, 1], [10, 1]], 0.0, 1.0),
        ]
        traj = SwarmTrajectory(paths, 0.0, 1.0)
        ts = traj.sample_times(8)
        assert 1.0 / 6.0 == pytest.approx(ts[np.argmin(np.abs(ts - 1 / 6))], abs=1e-9)

    def test_positions_over_table(self):
        traj = self._simple()
        table = traj.positions_over([0.0, 0.5, 1.0])
        assert table.shape == (3, 2, 2)
        assert np.allclose(table[1], [[5, 0], [5, 1]])

    def test_snapshots_match_positions_at(self):
        traj = self._simple()
        for t, snap in zip(traj.sample_times(5), traj.snapshots(5)):
            assert np.allclose(snap, traj.positions_at(t))

    def test_then_chains(self):
        first = self._simple()
        second = SwarmTrajectory(
            [
                TimedPath.constant_speed([[10, 0], [10, 10]], 1.0, 2.0),
                TimedPath.constant_speed([[10, 1], [0, 1]], 1.0, 2.0),
            ],
            1.0,
            2.0,
        )
        joined = first.then(second)
        assert joined.duration == pytest.approx(2.0)
        assert joined.total_distance() == pytest.approx(20.0 + 20.0)

    def test_then_count_mismatch(self):
        first = self._simple()
        second = SwarmTrajectory(
            [TimedPath.constant_speed([[10, 0], [0, 0]], 1.0, 2.0)], 1.0, 2.0
        )
        with pytest.raises(PlanningError):
            first.then(second)

    def test_empty_rejected(self):
        with pytest.raises(PlanningError):
            SwarmTrajectory([], 0.0, 1.0)
