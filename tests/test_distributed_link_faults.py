"""Tests for the LinkFaults model: delay, duplication, windows,
per-edge loss, crashes and the per-kind bookkeeping."""

import pytest

from repro.distributed import (
    LinkFaults,
    SyncNetwork,
    reliable_flood_aggregate,
)
from repro.distributed.protocols.flooding import FloodSumNode
from repro.distributed.protocols.reliable_flood import ReliableFloodNode
from repro.errors import ProtocolError
from repro.network import adjacency_from_edges
from repro.obs import Metrics, activate_metrics


def line_adjacency(n):
    return adjacency_from_edges(n, [(i, i + 1) for i in range(n - 1)])


def complete_adjacency(n):
    return adjacency_from_edges(
        n, [(i, j) for i in range(n) for j in range(i + 1, n)]
    )


class TestLinkFaultsValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ProtocolError):
            LinkFaults(loss_rate=1.0)
        with pytest.raises(ProtocolError):
            LinkFaults(delay_rate=-0.1)
        with pytest.raises(ProtocolError):
            LinkFaults(duplication_rate=1.5)

    def test_window_shape(self):
        with pytest.raises(ProtocolError):
            LinkFaults(loss_windows=((3, 1, 0.5),))
        with pytest.raises(ProtocolError):
            LinkFaults(loss_windows=((0, 4, 1.0),))

    def test_max_delay_requires_one_round(self):
        with pytest.raises(ProtocolError):
            LinkFaults(delay_rate=0.5, max_delay=0)

    def test_default_is_inactive(self):
        assert not LinkFaults().active
        assert LinkFaults(delay_rate=0.1).active

    def test_loss_for_sums_and_caps(self):
        faults = LinkFaults(
            loss_rate=0.5,
            loss_windows=((0, 10, 0.4),),
            per_edge_loss={(0, 1): 0.4},
        )
        assert faults.loss_for(5, 0, 1) == pytest.approx(0.999999)
        assert faults.loss_for(20, 0, 1) == pytest.approx(0.9)
        assert faults.loss_for(20, 1, 0) == pytest.approx(0.5)

    def test_unknown_crash_node_rejected(self):
        nodes = [FloodSumNode(i, 0.0, 2) for i in range(2)]
        with pytest.raises(ProtocolError):
            SyncNetwork(
                nodes, line_adjacency(2),
                faults=LinkFaults(crash_at={0: [5]}),
            )


class TestDelay:
    def test_delayed_messages_still_arrive(self):
        n = 6
        nodes = [ReliableFloodNode(i, float(i), n) for i in range(n)]
        net = SyncNetwork(
            nodes, line_adjacency(n), seed=2,
            faults=LinkFaults(delay_rate=0.4, max_delay=3),
        )
        net.run(max_rounds=500)
        assert all(node.complete for node in nodes)
        assert net.delayed_messages > 0
        assert sum(net.delayed_by_kind.values()) == net.delayed_messages

    def test_delay_is_seed_deterministic(self):
        def run(seed):
            n = 6
            nodes = [ReliableFloodNode(i, float(i), n) for i in range(n)]
            net = SyncNetwork(
                nodes, line_adjacency(n), seed=seed,
                faults=LinkFaults(delay_rate=0.4, max_delay=3),
            )
            rounds = net.run(max_rounds=500)
            return rounds, net.delayed_messages, net.delivered_messages

        assert run(11) == run(11)
        assert run(11) != run(12)


class TestDuplication:
    def test_duplicates_are_delivered_and_counted(self):
        n = 5
        nodes = [ReliableFloodNode(i, float(i), n) for i in range(n)]
        net = SyncNetwork(
            nodes, complete_adjacency(n), seed=4,
            faults=LinkFaults(duplication_rate=0.5),
        )
        net.run(max_rounds=300)
        assert all(node.complete for node in nodes)
        assert net.duplicated_messages > 0
        # Each duplicate is delivered on top of its original.
        assert net.delivered_messages > net.duplicated_messages

    def test_idempotent_protocol_survives_duplication(self):
        n = 6
        values = [float(i) for i in range(n)]
        out = reliable_flood_aggregate(
            values, line_adjacency(n), seed=5,
            faults=LinkFaults(duplication_rate=0.4),
        )
        assert out == [sum(values)] * n


class TestPerEdgeLossAndWindows:
    def test_per_edge_loss_only_hits_that_edge(self):
        n = 4
        nodes = [ReliableFloodNode(i, float(i), n) for i in range(n)]
        net = SyncNetwork(
            nodes, line_adjacency(n), seed=0,
            faults=LinkFaults(per_edge_loss={(0, 1): 0.9}),
        )
        net.run(max_rounds=500)
        assert all(node.complete for node in nodes)
        assert net.dropped_messages > 0

    def test_loss_window_expires(self):
        n = 6
        nodes = [ReliableFloodNode(i, float(i), n) for i in range(n)]
        net = SyncNetwork(
            nodes, line_adjacency(n), seed=1,
            faults=LinkFaults(loss_windows=((0, 5, 0.8),)),
        )
        net.run(max_rounds=500)
        # The storm passes, so the protocol still completes.
        assert all(node.complete for node in nodes)


class TestCrashMidProtocol:
    def test_crashed_node_disappears(self):
        n = 5
        nodes = [ReliableFloodNode(i, float(i), n) for i in range(n)]
        net = SyncNetwork(
            nodes, complete_adjacency(n), seed=0,
            faults=LinkFaults(crash_at={2: [4]}),
        )
        net.run(max_rounds=300)
        assert 4 in net.crashed
        assert nodes[4].halted
        # Survivors cannot assemble the dead node's record forever;
        # with a complete graph the others already have each other.
        assert all(node.complete for node in nodes[:4]) or not all(
            node.complete for node in nodes[:4]
        )  # no hang either way

    def test_messages_to_crashed_node_are_dropped_and_counted(self):
        n = 4
        nodes = [ReliableFloodNode(i, float(i), n) for i in range(n)]
        net = SyncNetwork(
            nodes, complete_adjacency(n), seed=0,
            faults=LinkFaults(crash_at={1: [0]}),
        )
        try:
            net.run(max_rounds=120)
        except ProtocolError:
            pass  # retransmission may livelock-guard; counters still valid
        assert net.dropped_messages > 0
        assert sum(net.dropped_by_kind.values()) == net.dropped_messages

    def test_crash_at_round_zero(self):
        n = 4
        nodes = [FloodSumNode(i, float(i), n) for i in range(n)]
        net = SyncNetwork(
            nodes, line_adjacency(n),
            faults=LinkFaults(crash_at={0: [0]}),
        )
        net.run(max_rounds=100)
        assert nodes[0].halted


class TestObsCounters:
    def test_per_kind_counters_are_emitted(self):
        metrics = Metrics()
        with activate_metrics(metrics):
            n = 6
            nodes = [ReliableFloodNode(i, float(i), n) for i in range(n)]
            net = SyncNetwork(
                nodes, line_adjacency(n), seed=3,
                faults=LinkFaults(
                    loss_rate=0.2, delay_rate=0.2, max_delay=2,
                    duplication_rate=0.2,
                ),
            )
            net.run(max_rounds=1000)
        snap = metrics.snapshot()
        assert snap["distributed.messages_delayed"]["value"] == (
            net.delayed_messages
        )
        assert snap["distributed.messages_duplicated"]["value"] == (
            net.duplicated_messages
        )
        per_kind_dropped = sum(
            row["value"] for name, row in snap.items()
            if name.startswith("distributed.dropped.")
        )
        assert per_kind_dropped == net.dropped_messages


class TestLegacyEquivalence:
    def test_faults_none_matches_plain_loss_run(self):
        """The fault pipeline must not perturb the RNG draw sequence of
        pre-existing loss-only runs."""

        def run(faults):
            n = 8
            nodes = [FloodSumNode(i, float(i), n) for i in range(n)]
            net = SyncNetwork(
                nodes, line_adjacency(n), loss_rate=0.3, seed=7,
                faults=faults,
            )
            try:
                net.run(max_rounds=60)
            except ProtocolError:
                pass
            return net.dropped_messages, net.delivered_messages, [
                sorted(node.state["records"]) for node in nodes
            ]

        assert run(None) == run(LinkFaults())


class TestReliableFloodUnderFaults:
    def test_reliable_flood_claims_hold_under_full_fault_mix(self):
        n = 8
        values = [float(i + 1) for i in range(n)]
        out = reliable_flood_aggregate(
            values, line_adjacency(n), seed=9,
            faults=LinkFaults(
                loss_rate=0.2,
                delay_rate=0.2,
                max_delay=2,
                duplication_rate=0.15,
            ),
        )
        assert out == [sum(values)] * n

    def test_faults_widen_round_budget(self):
        n = 6
        values = [1.0] * n
        # Must not raise under heavy sustained loss: the default round
        # budget scales with the fault severity.  (Extreme loss can
        # still genuinely defeat the protocol - a completed node's
        # farewell window may end before a neighbour catches up - which
        # surfaces as ProtocolError, never a silent wrong answer.)
        out = reliable_flood_aggregate(
            values, line_adjacency(n), seed=0,
            faults=LinkFaults(loss_rate=0.5),
        )
        assert out == [float(n)] * n
