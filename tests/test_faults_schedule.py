"""Tests for declarative fault schedules and archetype builders."""

import numpy as np
import pytest

from repro.distributed import LinkFaults
from repro.errors import PlanningError
from repro.faults import (
    ARCHETYPES,
    CrashFault,
    FaultSchedule,
    SlowFault,
    StuckFault,
    build_archetype_schedule,
    random_schedule,
)


def lattice_positions(n=25):
    side = int(np.ceil(np.sqrt(n)))
    xs, ys = np.meshgrid(np.arange(side), np.arange(side))
    return np.c_[xs.ravel(), ys.ravel()][:n].astype(float) * 10.0


class TestFaultValidation:
    def test_crash_needs_robots(self):
        with pytest.raises(PlanningError):
            CrashFault(at=0.5, robots=())

    def test_crash_rejects_duplicates(self):
        with pytest.raises(PlanningError):
            CrashFault(at=0.5, robots=(1, 1))

    def test_crash_time_must_be_fraction(self):
        with pytest.raises(PlanningError):
            CrashFault(at=1.0, robots=(0,))
        with pytest.raises(PlanningError):
            CrashFault(at=-0.1, robots=(0,))

    def test_stuck_duration_positive(self):
        with pytest.raises(PlanningError):
            StuckFault(at=0.2, robots=(0,), duration=0.0)

    def test_slow_factor_range(self):
        with pytest.raises(PlanningError):
            SlowFault(at=0.2, robots=(0,), factor=0.0, duration=0.1)
        with pytest.raises(PlanningError):
            SlowFault(at=0.2, robots=(0,), factor=1.5, duration=0.1)
        SlowFault(at=0.2, robots=(0,), factor=1.0, duration=0.1)  # ok

    def test_schedule_rejects_equal_instants(self):
        with pytest.raises(PlanningError):
            FaultSchedule(
                crashes=(CrashFault(at=0.3, robots=(0,)),),
                stucks=(StuckFault(at=0.3, robots=(1,), duration=0.1),),
            )

    def test_schedule_rejects_unordered_crashes(self):
        with pytest.raises(PlanningError):
            FaultSchedule(
                crashes=(
                    CrashFault(at=0.6, robots=(0,)),
                    CrashFault(at=0.6, robots=(1,)),
                )
            )

    def test_events_time_ordered(self):
        sched = FaultSchedule(
            crashes=(CrashFault(at=0.7, robots=(0,)),),
            stucks=(StuckFault(at=0.2, robots=(1,), duration=0.1),),
            slows=(SlowFault(at=0.5, robots=(2,), factor=0.5, duration=0.1),),
        )
        assert [e.at for e in sched.events()] == [0.2, 0.5, 0.7]

    def test_crashed_ids_union(self):
        sched = FaultSchedule(
            crashes=(
                CrashFault(at=0.2, robots=(3, 1)),
                CrashFault(at=0.6, robots=(5,)),
            )
        )
        assert sched.crashed_ids == (1, 3, 5)

    def test_to_dict_round_trips_comms(self):
        sched = FaultSchedule(
            seed=9,
            crashes=(CrashFault(at=0.4, robots=(2,)),),
            comms=LinkFaults(loss_rate=0.1, duplication_rate=0.05),
        )
        doc = sched.to_dict()
        assert doc["seed"] == 9
        assert doc["crashes"] == [{"at": 0.4, "robots": [2]}]
        assert doc["comms"]["loss_rate"] == 0.1


class TestArchetypes:
    @pytest.mark.parametrize("archetype", ARCHETYPES)
    def test_builders_are_deterministic(self, archetype):
        pos = lattice_positions()
        a = build_archetype_schedule(archetype, pos, seed=3)
        b = build_archetype_schedule(archetype, pos, seed=3)
        assert a == b
        assert a.name == archetype

    def test_different_seeds_differ_somewhere(self):
        pos = lattice_positions()
        schedules = {
            build_archetype_schedule("single", pos, seed=s).crashes[0].robots
            for s in range(20)
        }
        assert len(schedules) > 1

    def test_cluster_is_geometric(self):
        pos = lattice_positions()
        sched = build_archetype_schedule("cluster", pos, seed=0)
        cluster = sched.crashes[0].robots
        assert len(cluster) >= 2
        pts = pos[list(cluster)]
        # Nearest-neighbour cluster: mutual distances stay small
        # compared to the lattice diameter.
        diam = np.hypot(*(pos.max(0) - pos.min(0)))
        spread = max(
            np.hypot(*(p - q)) for p in pts for q in pts
        )
        assert spread < diam / 2

    def test_cascade_has_multiple_instants(self):
        sched = build_archetype_schedule(
            "cascade", lattice_positions(), seed=1
        )
        assert len(sched.crashes) == 3
        ats = [c.at for c in sched.crashes]
        assert ats == sorted(ats)

    def test_storm_has_comms_faults(self):
        sched = build_archetype_schedule("storm", lattice_positions(), seed=0)
        assert sched.comms is not None
        assert sched.comms.active

    def test_unknown_archetype_rejected(self):
        with pytest.raises(PlanningError):
            build_archetype_schedule("meteor", lattice_positions())

    def test_too_few_robots_rejected(self):
        with pytest.raises(PlanningError):
            build_archetype_schedule("single", lattice_positions(4))


class TestRandomSchedule:
    def test_deterministic(self):
        assert random_schedule(30, seed=5) == random_schedule(30, seed=5)

    def test_valid_for_many_seeds(self):
        for seed in range(30):
            sched = random_schedule(30, seed=seed)
            ats = [c.at for c in sched.crashes]
            assert ats == sorted(set(ats))
            assert all(0.0 <= at < 1.0 for at in ats)
            assert all(
                0 <= i < 30 for c in sched.crashes for i in c.robots
            )

    def test_rejects_empty_swarm(self):
        with pytest.raises(PlanningError):
            random_schedule(0, seed=1)
