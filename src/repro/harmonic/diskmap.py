"""Disk embeddings of meshes (the harmonic map to the unit disk).

A :class:`DiskMap` bundles a mesh (holes filled with virtual vertices
if needed), the computed unit-disk position of every vertex, and the
bookkeeping to go back and forth between disk space and the mesh's
geographic coordinates.  It is the object the modified-harmonic-map
algorithm composes and rotates.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import MappingError
from repro.geometry.pointlocate import TriangleLocator
from repro.geometry.vec import rotate
from repro.harmonic.boundary import boundary_parameterization, circle_positions
from repro.harmonic.solvers import solve_iterative, solve_linear
from repro.mesh.holes import FilledMesh, fill_holes
from repro.mesh.quality import orientation_signs
from repro.mesh.trimesh import TriMesh
from repro.obs import span

__all__ = ["DiskMap", "compute_disk_map"]


@dataclass(frozen=True)
class DiskMap:
    """A harmonic embedding of a mesh onto the unit disk.

    Attributes
    ----------
    source : TriMesh
        The original mesh (before hole filling), with geographic
        coordinates.
    filled : FilledMesh
        The hole-filled mesh actually embedded (identical to ``source``
        plus virtual vertices when the source had holes).
    disk_positions : (n_filled, 2) ndarray
        Unit-disk coordinates of every filled-mesh vertex.
    boundary_mode : str
        The boundary parameterization used.
    solver : str
        ``"linear"`` or ``"iterative"``.
    iterations : int
        Sweeps used by the iterative solver (0 for linear).
    """

    source: TriMesh
    filled: FilledMesh
    disk_positions: np.ndarray
    boundary_mode: str
    solver: str
    iterations: int

    @property
    def robot_disk_positions(self) -> np.ndarray:
        """Disk coordinates of the *source* vertices (virtuals stripped)."""
        return self.disk_positions[: self.filled.original_vertex_count]

    def rotated_positions(self, theta: float) -> np.ndarray:
        """All filled-mesh disk coordinates rotated CCW by ``theta``."""
        return rotate(self.disk_positions, theta)

    @cached_property
    def locator(self) -> TriangleLocator:
        """Spatial index over the filled mesh's disk-space triangles."""
        return TriangleLocator(self.disk_positions, self.filled.mesh.triangles)

    def is_embedding(self) -> bool:
        """Whether every disk-space triangle keeps positive orientation.

        True means the map is fold-free: the discrete analogue of the
        diffeomorphism guarantee (Tutte / Kneser-Choquet).
        """
        disk_mesh = self.filled.mesh.with_vertices(self.disk_positions)
        return bool(np.all(orientation_signs(disk_mesh) > 0))

    def max_radius(self) -> float:
        """Largest distance of any embedded vertex from the disk centre."""
        return float(np.hypot(self.disk_positions[:, 0], self.disk_positions[:, 1]).max())


def compute_disk_map(
    mesh: TriMesh,
    boundary_mode: str = "chord",
    solver: str = "linear",
    tol: float = 1e-7,
) -> DiskMap:
    """Harmonic-map a (possibly holed) mesh to the unit disk.

    Steps (paper Sec. III-B and III-D3):

    1. fill holes with virtual centroid vertices,
    2. pin the outer boundary loop to the unit circle,
    3. solve the uniform-weight harmonic system for the interior.

    Parameters
    ----------
    mesh : TriMesh
        Must be connected with exactly one outer boundary loop.
    boundary_mode : {"chord", "uniform"}
    solver : {"linear", "iterative"}
    tol : float
        Convergence tolerance of the iterative solver.

    Raises
    ------
    MappingError
        If the solver fails or the result is not an embedding.
    """
    with span(
        "harmonic.disk_map",
        vertices=mesh.vertex_count,
        boundary_mode=boundary_mode,
        solver=solver,
    ) as sp_:
        filled = fill_holes(mesh)
        loop, angles = boundary_parameterization(filled.mesh, mode=boundary_mode)
        bpos = circle_positions(angles)
        if solver == "linear":
            positions = solve_linear(filled.mesh, loop, bpos)
            iterations = 0
        elif solver == "iterative":
            positions, iterations = solve_iterative(
                filled.mesh, loop, bpos, tol=tol
            )
        else:
            raise MappingError(f"unknown solver {solver!r}")
        dm = DiskMap(
            source=mesh,
            filled=filled,
            disk_positions=positions,
            boundary_mode=boundary_mode,
            solver=solver,
            iterations=iterations,
        )
        if dm.max_radius() > 1.0 + 1e-6:
            raise MappingError("disk map escapes the unit disk")
        sp_.set_attributes(iterations=iterations, max_radius=dm.max_radius())
    return dm
