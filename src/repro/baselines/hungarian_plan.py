"""The Hungarian baseline: straight to matched targets (paper Sec. IV).

"The other method, represented by Hungarian method, directly applies
Hungarian algorithm to find the moving path of the group of mobile
robots from M1 to the optimal coverage positions in M2, which should
achieve the minimum total moving distance among all possible methods."
"""

from __future__ import annotations

from repro.baselines.hungarian import min_cost_matching
from repro.baselines.plans import BaselinePlan
from repro.geometry.vec import as_points
from repro.robots.transition import straight_transition

__all__ = ["hungarian_plan"]


def hungarian_plan(starts, target_positions, t_end: float = 1.0) -> BaselinePlan:
    """Straight-line transition along the minimum-distance matching."""
    p = as_points(starts)
    q = as_points(target_positions)
    assignment = min_cost_matching(p, q)
    finals = q[assignment]
    return BaselinePlan(
        name="Hungarian",
        assignment=assignment,
        final_positions=finals,
        trajectory=straight_transition(p, finals, 0.0, t_end),
    )
