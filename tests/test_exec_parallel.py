"""Tests for the parallel map engine (backends, seeding, faults)."""

import random
import time

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.exec import (
    BACKENDS,
    ParallelMap,
    derive_seed,
    parallel_map,
    resolve_workers,
    seeded,
    task_rng,
)
from repro.obs import Metrics, Tracer, activate, activate_metrics, get_metrics, span


# ----------------------------------------------------------------------
# Module-level task functions: the process backend pickles them by
# reference, so they cannot be closures.


def _double(x):
    return 2 * x


def _draw(x):
    return (x, random.random(), float(np.random.rand()))


def _boom(x):
    if x == 3:
        raise ValueError("task three always fails")
    return x


def _sleepy(x):
    time.sleep(30.0)
    return x


def _traced(x):
    with span("task.work", item=x):
        get_metrics().counter("task.count").inc()
    return x


@pytest.fixture
def obs():
    """Private tracer + metrics so counters do not leak across tests."""
    tracer = Tracer()
    metrics = Metrics()
    with activate(tracer), activate_metrics(metrics):
        yield tracer, metrics


class TestSeeding:
    def test_derive_seed_deterministic(self):
        assert derive_seed(7, 0) == derive_seed(7, 0)
        assert derive_seed(7, 0) != derive_seed(7, 1)
        assert derive_seed(7, 0) != derive_seed(8, 0)

    def test_seeded_scopes_and_restores_state(self):
        random.seed(999)
        np.random.seed(999)
        before = (random.getstate(), np.random.get_state()[1].tobytes())
        with seeded(42):
            first = (random.random(), float(np.random.rand()))
        after = (random.getstate(), np.random.get_state()[1].tobytes())
        assert before == after
        with seeded(42):
            assert (random.random(), float(np.random.rand())) == first

    def test_task_rng_independent_streams(self):
        a = task_rng(0, 0).random(4)
        b = task_rng(0, 1).random(4)
        assert not np.allclose(a, b)
        assert np.allclose(a, task_rng(0, 0).random(4))


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5

    def test_default_and_garbage_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        monkeypatch.setenv("REPRO_WORKERS", "many")
        assert resolve_workers(None) == 1

    def test_floor_at_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1


class TestValidation:
    def test_unknown_backend(self):
        with pytest.raises(ExecutionError):
            ParallelMap(backend="gpu")

    def test_bad_chunk_size(self):
        with pytest.raises(ExecutionError):
            ParallelMap(chunk_size=0)

    def test_bad_retries(self):
        with pytest.raises(ExecutionError):
            ParallelMap(retries=-1)

    def test_bad_timeout(self):
        with pytest.raises(ExecutionError):
            ParallelMap(timeout=0.0)


class TestChunking:
    def test_explicit_chunk_size(self):
        pm = ParallelMap(chunk_size=2)
        chunks = pm._chunk([(i, i, 0) for i in range(5)])
        assert [len(c) for c in chunks] == [2, 2, 1]

    def test_default_chunk_size_scales_with_workers(self):
        pm = ParallelMap(backend="thread", workers=2)
        chunks = pm._chunk([(i, i, 0) for i in range(16)])
        assert [len(c) for c in chunks] == [2] * 8

    def test_small_input_still_covered(self):
        pm = ParallelMap(backend="thread", workers=4)
        chunks = pm._chunk([(0, 0, 0)])
        assert [len(c) for c in chunks] == [1]


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_input_order(self, backend, obs):
        pm = ParallelMap(backend=backend, workers=2, collect_obs=False)
        assert pm.map(_double, range(9)) == [2 * i for i in range(9)]

    def test_empty_input(self, obs):
        assert ParallelMap(backend="process", workers=2).map(_double, []) == []

    def test_seeded_draws_identical_across_backends(self, obs):
        draws = [
            ParallelMap(
                backend=b, workers=2, seed=7, collect_obs=False
            ).map(_draw, range(6))
            for b in BACKENDS
        ]
        assert draws[0] == draws[1] == draws[2]

    def test_draws_independent_of_worker_count(self, obs):
        one = ParallelMap(
            backend="process", workers=1, collect_obs=False, seed=3
        ).map(_draw, range(6))
        four = ParallelMap(
            backend="process", workers=4, collect_obs=False, seed=3
        ).map(_draw, range(6))
        assert one == four

    def test_root_seed_changes_draws(self, obs):
        a = ParallelMap(backend="serial", seed=1, collect_obs=False).map(
            _draw, range(4)
        )
        b = ParallelMap(backend="serial", seed=2, collect_obs=False).map(
            _draw, range(4)
        )
        assert a != b

    def test_convenience_wrapper(self, obs):
        assert parallel_map(_double, range(4), backend="serial") == [0, 2, 4, 6]

    def test_submitted_completed_counters(self, obs):
        _, metrics = obs
        ParallelMap(backend="thread", workers=2).map(_double, range(5))
        assert metrics.counter("exec.tasks_submitted").value == 5
        assert metrics.counter("exec.tasks_completed").value == 5


class TestFaultInjection:
    def test_raising_task_serial(self, obs):
        _, metrics = obs
        pm = ParallelMap(backend="serial", retries=1, chunk_size=1)
        with pytest.raises(ExecutionError) as exc_info:
            pm.map(_boom, range(5))
        assert isinstance(exc_info.value.__cause__, ValueError)
        assert "2 attempt(s)" in str(exc_info.value)
        assert metrics.counter("exec.task_retries").value == 1
        assert metrics.counter("exec.tasks_failed").value == 1

    def test_raising_task_process(self, obs):
        _, metrics = obs
        pm = ParallelMap(
            backend="process", workers=2, retries=1, chunk_size=1,
            collect_obs=False,
        )
        with pytest.raises(ExecutionError):
            pm.map(_boom, range(5))
        assert metrics.counter("exec.task_retries").value == 1
        assert metrics.counter("exec.tasks_failed").value == 1

    def test_retry_salvages_transient_failure(self, obs):
        _, metrics = obs
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return x

        out = ParallelMap(backend="serial", retries=1, chunk_size=1).map(
            flaky, [10]
        )
        assert out == [10]
        assert metrics.counter("exec.task_retries").value == 1
        assert metrics.counter("exec.tasks_failed").value == 0

    def test_unpicklable_task_is_clean_error(self, obs):
        pm = ParallelMap(
            backend="process", workers=2, retries=0, collect_obs=False
        )
        with pytest.raises(ExecutionError):
            pm.map(lambda x: x, range(3))  # lambdas cannot cross processes

    def test_timeout_never_hangs(self, obs):
        _, metrics = obs
        # workers=1 would degrade to the serial backend, which cannot
        # enforce timeouts; the pooled path needs workers > 1.
        pm = ParallelMap(
            backend="process", workers=2, timeout=0.3, retries=0,
            collect_obs=False,
        )
        start = time.monotonic()
        with pytest.raises(ExecutionError):
            pm.map(_sleepy, [1])
        elapsed = time.monotonic() - start
        assert elapsed < 15.0  # the 30s sleeper was abandoned, not joined
        assert metrics.counter("exec.task_timeouts").value == 1
        assert metrics.counter("exec.tasks_failed").value == 1

    def test_backend_fallback_to_serial(self, obs, monkeypatch):
        _, metrics = obs
        monkeypatch.setattr(
            ParallelMap, "_make_executor", lambda self, backend: None
        )
        out = ParallelMap(backend="process", workers=2).map(_double, range(6))
        assert out == [2 * i for i in range(6)]
        assert metrics.counter("exec.backend_fallbacks").value == 1


class TestObsMerge:
    def test_worker_spans_and_metrics_merge(self, obs):
        tracer, metrics = obs
        out = ParallelMap(backend="process", workers=2).map(_traced, range(4))
        assert out == list(range(4))
        assert metrics.counter("task.count").value == 4
        work = [r for r in tracer.get_trace() if r.name == "task.work"]
        assert len(work) == 4
        assert {r.attributes["task_index"] for r in work} == {0, 1, 2, 3}
        assert all(r.attributes["origin"] == "exec.worker" for r in work)

    def test_merged_spans_feed_phase_timings(self, obs):
        tracer, _ = obs
        ParallelMap(backend="thread", workers=2).map(_traced, range(3))
        timings = tracer.phase_timings()
        assert timings["task.work"]["calls"] == 3

    def test_collect_obs_off_leaves_parent_clean(self, obs):
        tracer, metrics = obs
        ParallelMap(backend="thread", workers=2, collect_obs=False).map(
            _traced, range(3)
        )
        # Thread workers share the ambient registry, so the counter still
        # moves, but no spans are re-emitted with a worker origin.
        assert not [
            r
            for r in tracer.get_trace()
            if r.attributes.get("origin") == "exec.worker"
        ]
