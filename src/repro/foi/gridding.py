"""Point-set generation for triangulating a Field of Interest.

The paper's pipeline "grids and triangulates the surface data" of the
target FoI before harmonic-mapping it to the unit disk (Sec. III-B).
This module produces the point sets: boundary samples along the outer
polygon and every hole, plus interior grid points, tagged so the mesh
builder can recover which loop each boundary sample came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GeometryError
from repro.foi.region import FieldOfInterest

__all__ = ["FoiPointSet", "grid_foi", "suggest_spacing"]


@dataclass(frozen=True)
class FoiPointSet:
    """Points sampled from a FoI, ready for Delaunay triangulation.

    Attributes
    ----------
    points : (n, 2) ndarray
        All sample points: outer boundary first, then each hole
        boundary in order, then interior grid points.
    outer_boundary : (b,) int ndarray
        Indices into ``points`` of the outer-boundary samples, in CCW
        boundary order.
    hole_boundaries : tuple of int ndarray
        Per-hole index arrays, each in boundary order.
    spacing : float
        The grid pitch used.
    """

    points: np.ndarray
    outer_boundary: np.ndarray
    hole_boundaries: tuple[np.ndarray, ...] = field(default_factory=tuple)
    spacing: float = 0.0

    @property
    def interior(self) -> np.ndarray:
        """Indices of interior (non-boundary) points."""
        boundary = set(self.outer_boundary.tolist())
        for h in self.hole_boundaries:
            boundary.update(h.tolist())
        return np.array(
            [i for i in range(len(self.points)) if i not in boundary], dtype=int
        )


def suggest_spacing(foi: FieldOfInterest, target_points: int = 600) -> float:
    """Grid pitch that yields roughly ``target_points`` interior samples."""
    if target_points < 16:
        raise GeometryError("target_points too small to triangulate a FoI")
    return float(np.sqrt(foi.area / target_points))


def grid_foi(
    foi: FieldOfInterest,
    spacing: float | None = None,
    target_points: int = 600,
    boundary_margin_fraction: float = 0.45,
) -> FoiPointSet:
    """Sample a FoI into boundary + interior points at a uniform pitch.

    Parameters
    ----------
    foi : FieldOfInterest
    spacing : float, optional
        Grid pitch; derived from ``target_points`` when omitted.
    target_points : int
        Approximate number of interior points when ``spacing`` is None.
    boundary_margin_fraction : float
        Interior points closer than this fraction of the pitch to any
        boundary are dropped to avoid sliver triangles.

    Returns
    -------
    FoiPointSet
    """
    if spacing is None:
        spacing = suggest_spacing(foi, target_points)
    if spacing <= 0:
        raise GeometryError("spacing must be positive")

    chunks: list[np.ndarray] = []
    outer_n = max(8, int(round(foi.outer.perimeter / spacing)))
    outer_pts = foi.outer.sample_boundary(outer_n)
    chunks.append(outer_pts)
    outer_idx = np.arange(len(outer_pts))
    offset = len(outer_pts)

    hole_idx: list[np.ndarray] = []
    for hole in foi.holes:
        n = max(6, int(round(hole.perimeter / spacing)))
        pts = hole.sample_boundary(n)
        chunks.append(pts)
        hole_idx.append(np.arange(offset, offset + len(pts)))
        offset += len(pts)

    interior = foi.grid_points(spacing)
    if len(interior):
        margin = boundary_margin_fraction * spacing
        interior = interior[foi.boundary_distances(interior) >= margin]
    chunks.append(interior.reshape(-1, 2))

    points = np.vstack(chunks)
    if len(points) < 8:
        raise GeometryError(
            f"FoI sampling produced only {len(points)} points; decrease spacing"
        )
    return FoiPointSet(
        points=points,
        outer_boundary=outer_idx,
        hole_boundaries=tuple(hole_idx),
        spacing=float(spacing),
    )
