"""Tests for unit-disk graphs and link bookkeeping."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.network import LinkTable, UnitDiskGraph, links_alive, udg_edges

LINE = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [5.0, 0.0]])


class TestUdgEdges:
    def test_chain(self):
        e = udg_edges(LINE, 1.5)
        assert e.tolist() == [[0, 1], [1, 2]]

    def test_no_edges(self):
        e = udg_edges(LINE, 0.5)
        assert len(e) == 0

    def test_complete(self):
        e = udg_edges(LINE, 10.0)
        assert len(e) == 6

    def test_single_node(self):
        assert len(udg_edges([[0.0, 0.0]], 1.0)) == 0

    def test_bad_range(self):
        with pytest.raises(GeometryError):
            udg_edges(LINE, 0.0)

    def test_boundary_inclusive(self):
        e = udg_edges([[0, 0], [1, 0]], 1.0)
        assert len(e) == 1


class TestUnitDiskGraph:
    def test_neighbors(self):
        g = UnitDiskGraph(LINE, 1.5)
        assert g.neighbors(1) == [0, 2]
        assert g.neighbors(3) == []
        assert g.degree(0) == 1

    def test_has_edge(self):
        g = UnitDiskGraph(LINE, 1.5)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 3)

    def test_components(self):
        g = UnitDiskGraph(LINE, 1.5)
        comps = g.components
        assert comps[0] == [0, 1, 2]
        assert comps[1] == [3]
        assert not g.is_connected()

    def test_connected(self):
        g = UnitDiskGraph(LINE[:3], 1.5)
        assert g.is_connected()

    def test_single_node_connected(self):
        assert UnitDiskGraph([[0.0, 0.0]], 1.0).is_connected()

    def test_nodes_connected_to(self):
        g = UnitDiskGraph(LINE, 1.5)
        mask = g.nodes_connected_to([0])
        assert mask.tolist() == [True, True, True, False]

    def test_anchor_out_of_range(self):
        g = UnitDiskGraph(LINE, 1.5)
        with pytest.raises(GeometryError):
            g.nodes_connected_to([99])

    @given(st.integers(2, 12), st.floats(0.5, 3.0))
    @settings(max_examples=50)
    def test_edge_symmetry_property(self, n, rc):
        rng = np.random.default_rng(n)
        pts = rng.uniform(0, 5, (n, 2))
        g = UnitDiskGraph(pts, rc)
        d = np.hypot(*(pts[:, None] - pts[None, :]).T)
        for i, j in g.edges:
            assert d[i, j] <= rc + 1e-12
        # Every in-range pair is present.
        expected = sum(
            1 for i in range(n) for j in range(i + 1, n) if d[i, j] <= rc
        )
        assert len(g.edges) == expected


class TestLinkTable:
    def test_from_positions(self):
        table = LinkTable.from_positions(LINE, 1.5)
        assert table.link_count == 2

    def test_alive_mask_after_move(self):
        table = LinkTable.from_positions(LINE, 1.5)
        moved = LINE + np.array([[0, 0], [0, 2.0], [0, 0], [0, 0]])
        mask = table.alive_mask(moved)
        assert mask.tolist() == [False, False]  # robot 1 moved away from both

    def test_surviving_fraction(self):
        table = LinkTable.from_positions(LINE, 1.5)
        assert table.surviving_fraction(LINE) == 1.0

    def test_empty_links_fraction_one(self):
        table = LinkTable.from_positions(LINE, 0.5)
        assert table.surviving_fraction(LINE) == 1.0

    def test_stable_mask_over_snapshots(self):
        table = LinkTable.from_positions(LINE, 1.5)
        mid = LINE + np.array([[0, 0], [0, 5.0], [0, 0], [0, 0]])
        snaps = [LINE, mid, LINE]  # link breaks mid-way then returns
        stable = table.stable_mask_over(snaps)
        assert stable.tolist() == [False, False]

    def test_stable_ratio_definition(self):
        table = LinkTable.from_positions(LINE, 1.5)
        mid = LINE + np.array([[0, 0], [0, 0], [0, 5.0], [0, 0]])
        # Only link (1,2) breaks; (0,1) stays.
        ratio = table.stable_link_ratio_over([LINE, mid])
        assert ratio == pytest.approx(0.5)

    def test_links_alive_function(self):
        links = np.array([[0, 1], [1, 2]])
        alive = links_alive(links, LINE, 1.5)
        assert alive.tolist() == [True, True]
        alive = links_alive(np.zeros((0, 2), dtype=int), LINE, 1.5)
        assert len(alive) == 0
