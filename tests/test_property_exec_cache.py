"""Property tests: locate/interpolate round-trips and cache-key stability.

Two hypothesis suites backing the execution/caching layer:

* the barycentric locate -> interpolate round-trip on random Delaunay
  triangulations, checked against a brute-force containment oracle
  (this is the primitive the cached induced map relies on), and
* disk-map cache-key stability - translated meshes must collide (one
  sweep, one solve) while reordered/scaled meshes must not (a wrong
  hit would silently corrupt an embedding).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.errors import GeometryError
from repro.exec import stable_hash
from repro.geometry import convex_hull, signed_area
from repro.geometry.barycentric import barycentric_coords, from_barycentric
from repro.geometry.pointlocate import TriangleLocator
from repro.harmonic.diskmap import disk_map_cache_key
from repro.mesh import delaunay_mesh
from repro.mesh.trimesh import TriMesh

coord = st.integers(-30, 30)
ipoint = st.tuples(coord, coord)


def _mesh_from(pts) -> TriMesh:
    """A Delaunay mesh over the drawn integer points (or assume-reject)."""
    arr = np.unique(np.asarray(pts, dtype=float), axis=0)
    assume(len(arr) >= 5)
    hull = convex_hull(arr)
    assume(len(hull) >= 3 and abs(signed_area(hull)) > 1e-3)
    mesh = delaunay_mesh(arr)
    assume(len(mesh.triangles) >= 1)
    return mesh


def _contains(p, a, b, c, tol=1e-7) -> bool:
    try:
        return bool(np.all(barycentric_coords(p, a, b, c) >= -tol))
    except GeometryError:  # degenerate sliver: cannot contain anything
        return False


class TestLocateInterpolateRoundTrip:
    @given(
        st.lists(ipoint, min_size=5, max_size=25, unique=True),
        st.integers(0, 10**6),
        st.tuples(st.floats(0.05, 1), st.floats(0.05, 1), st.floats(0.05, 1)),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_matches_brute_force(self, pts, tri_pick, raw_w):
        mesh = _mesh_from(pts)
        tris = mesh.triangles
        a, b, c = mesh.vertices[tris[tri_pick % len(tris)]]
        w = np.asarray(raw_w, dtype=float)
        w = w / w.sum()
        p = from_barycentric(w, a, b, c)

        locator = TriangleLocator(mesh.vertices, tris)
        hit = locator.locate(p, tol=1e-9)
        # p was synthesized inside a triangle, so locate cannot miss.
        assert hit is not None
        tri_idx, bary = hit
        oracle = [
            t
            for t in range(len(tris))
            if _contains(p, *mesh.vertices[tris[t]])
        ]
        assert tri_idx in oracle
        # Interpolating the located coordinates reproduces the point.
        va, vb, vc = mesh.vertices[tris[tri_idx]]
        back = from_barycentric(bary, va, vb, vc)
        assert np.allclose(back, p, atol=1e-7)
        assert bary.min() >= -1e-9
        assert bary.sum() == pytest.approx(1.0)

    @given(st.lists(ipoint, min_size=5, max_size=20, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_mesh_vertex_locates_to_corner(self, pts):
        mesh = _mesh_from(pts)
        locator = TriangleLocator(mesh.vertices, mesh.triangles)
        v = int(np.unique(mesh.triangles)[0])
        hit = locator.locate(mesh.vertices[v], tol=1e-9)
        assert hit is not None
        tri_idx, bary = hit
        # A triangulation vertex can only lie in triangles that have it
        # as a corner, where one barycentric coordinate is 1.
        assert v in mesh.triangles[tri_idx]
        assert bary.max() == pytest.approx(1.0)


class TestCacheKeyStability:
    KEY_ARGS = ("chord", "linear", 1e-7)

    @given(
        st.lists(ipoint, min_size=5, max_size=20, unique=True),
        st.tuples(st.integers(-10**5, 10**5), st.integers(-10**5, 10**5)),
    )
    @settings(max_examples=40, deadline=None)
    def test_translation_collides(self, pts, t):
        mesh = _mesh_from(pts)
        moved = mesh.with_vertices(mesh.vertices + np.asarray(t, dtype=float))
        assert disk_map_cache_key(
            mesh, *self.KEY_ARGS
        ) == disk_map_cache_key(moved, *self.KEY_ARGS)

    @given(
        st.lists(ipoint, min_size=5, max_size=20, unique=True),
        st.floats(1.5, 3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_scaling_does_not_collide(self, pts, s):
        mesh = _mesh_from(pts)
        scaled = mesh.with_vertices(mesh.vertices * s)
        assert disk_map_cache_key(
            mesh, *self.KEY_ARGS
        ) != disk_map_cache_key(scaled, *self.KEY_ARGS)

    @given(st.lists(ipoint, min_size=5, max_size=20, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_vertex_reordering_does_not_collide(self, pts):
        # Reordering is a *conservative miss*: the same region stored
        # under a different vertex order recomputes rather than risking
        # a wrong hit against mismatched indices.
        mesh = _mesh_from(pts)
        n = mesh.vertex_count
        perm = np.arange(n)[::-1]
        reordered = TriMesh(
            mesh.vertices[perm], np.asarray(perm[mesh.triangles])
        )
        assert disk_map_cache_key(
            mesh, *self.KEY_ARGS
        ) != disk_map_cache_key(reordered, *self.KEY_ARGS)

    @given(st.lists(ipoint, min_size=5, max_size=20, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_solver_parameters_split_keys(self, pts):
        mesh = _mesh_from(pts)
        base = disk_map_cache_key(mesh, "chord", "linear", 1e-7)
        assert base != disk_map_cache_key(mesh, "uniform", "linear", 1e-7)
        assert base != disk_map_cache_key(mesh, "chord", "iterative", 1e-7)


class TestStableHashProperties:
    @given(
        st.dictionaries(
            st.text(max_size=5), st.integers(), min_size=1, max_size=6
        ),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_dict_insertion_order_irrelevant(self, d, rnd):
        items = list(d.items())
        rnd.shuffle(items)
        assert stable_hash(dict(items)) == stable_hash(d)

    @given(st.lists(st.integers(), max_size=6), st.integers())
    @settings(max_examples=60, deadline=None)
    def test_appending_changes_hash(self, xs, y):
        assert stable_hash(xs) != stable_hash(xs + [y])

    @given(st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_array_equals_itself_only(self, vals):
        arr = np.asarray(vals, dtype=float)
        assert stable_hash(arr) == stable_hash(arr.copy())
        assert stable_hash(arr) != stable_hash(arr + 1.0)
