"""Exception hierarchy for the ``repro`` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except`` clause while still letting programming errors
(``TypeError``, ``ValueError`` from numpy, ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GeometryError(ReproError):
    """A geometric primitive received degenerate or invalid input."""


class MeshError(ReproError):
    """A triangle mesh violates a structural invariant.

    Raised, for example, when a mesh that is required to be a topological
    disk has zero or several boundary loops, or when a triangulation
    references vertices that do not exist.
    """


class MappingError(ReproError):
    """A harmonic map could not be computed or failed validation."""


class PlanningError(ReproError):
    """A marching plan could not be constructed for the given scenario."""


class ProtocolError(ReproError):
    """A distributed protocol reached an inconsistent state."""


class CoverageError(ReproError):
    """A coverage computation (Voronoi / Lloyd) received invalid input."""


class ExecutionError(ReproError):
    """A parallel-execution task failed permanently.

    Raised by :class:`repro.exec.ParallelMap` after a task has exhausted
    its retry budget - whether the worker raised, timed out, or the task
    could not even be shipped to the worker (e.g. an unpicklable
    payload on the process backend).  The original failure is chained as
    ``__cause__`` when one exists.
    """


class ScenarioError(ReproError):
    """An experiment scenario is mis-specified."""


class UnrecoverableError(ReproError):
    """A fault-injected mission cannot be recovered by the survivors.

    Raised by :mod:`repro.faults` when recovery is provably impossible
    (too few survivors to replan, the planner cannot produce a new plan,
    or the survivors' recovery consensus cannot complete under the
    injected communication faults).  The resilient executor guarantees
    every run ends either recovered or with this error - never a silent
    partial plan, never a hang.

    Attributes
    ----------
    stage : str
        Recovery stage that failed (``"consensus"``, ``"replan"``,
        ``"rejoin"``, ``"survivors"``).
    survivors : int
        Robots still alive when recovery was abandoned.
    """

    def __init__(self, message: str, stage: str = "", survivors: int = 0) -> None:
        super().__init__(message)
        self.stage = stage
        self.survivors = int(survivors)


class MissionError(ReproError):
    """A streaming mission is mis-specified or cannot continue.

    Raised by :mod:`repro.missions` - on an invalid mission spec, on a
    fault schedule the mission executor cannot honour, or when a crash
    mid-epoch leaves the survivors unable to march on (too few robots,
    disconnected network).  The mission contract mirrors the resilient
    executor's: every epoch ends in a metrics record or a typed error,
    never a silently degraded plan.

    Attributes
    ----------
    epoch : int
        Epoch being executed when the mission failed (-1 when the
        failure precedes execution, e.g. a bad spec).
    """

    def __init__(self, message: str, epoch: int = -1) -> None:
        super().__init__(message)
        self.epoch = int(epoch)


class MissionInterrupted(ReproError):
    """A mission run was interrupted at an epoch boundary.

    Raised by :class:`repro.missions.MissionRunner` when an ``interrupt``
    callable (wired by the service drain path) fires between epochs.
    The runner checkpoints every completed epoch *before* raising, so the
    mission can later resume from the boundary and still produce a
    document byte-identical to an uninterrupted run.  This is a control
    signal, not a failure: the service releases the job back to the
    queue instead of marking it failed.

    Attributes
    ----------
    epochs_completed : int
        Number of epochs fully executed (and checkpointed) before the
        interrupt was honoured.
    """

    def __init__(self, message: str, epochs_completed: int = 0) -> None:
        super().__init__(message)
        self.epochs_completed = int(epochs_completed)


class ServiceError(ReproError):
    """The planning service rejected or could not complete a request.

    Raised by :mod:`repro.service` - by the server when a request is
    malformed or arrives while the service is draining, and by the
    client when the server answers with an error status.  The admission
    failures (queue full, queue closed) are narrower subclasses defined
    in :mod:`repro.service.jobs`.
    """


class JournalError(ReproError):
    """The write-ahead job journal is unusable.

    Raised when a journal directory is locked by another live process,
    or when replay encounters a record written by an unsupported journal
    format version.  Torn trailing records (the normal signature of a
    ``kill -9``) are *not* errors - replay skips them and counts them.
    """
