"""E12 - energy accounting: movement vs link re-pairing (ours).

The paper motivates link preservation by the energy and delay of
re-pairing secure links ("saves a lot of energy on updating new
connections").  This benchmark quantifies that claim with the
:mod:`repro.metrics.energy` model on scenario 1: our method pays a few
percent more movement than Hungarian but avoids most of the pairing
churn, so its total energy advantage grows with the pairing cost.
"""

from repro.baselines import direct_translation_plan, hungarian_plan
from repro.coverage import LloydConfig, optimal_coverage_positions
from repro.experiments import format_table, get_scenario
from repro.marching import MarchingConfig, MarchingPlanner
from repro.metrics import EnergyModel, transition_energy
from repro.robots import RadioSpec, Swarm

CFG = MarchingConfig(
    foi_target_points=320, lloyd=LloydConfig(grid_target=1400, max_iterations=50)
)


def _run():
    spec = get_scenario(1)
    radio = RadioSpec.from_comm_range(spec.comm_range)
    m1, m2 = spec.build(separation_factor=20.0)
    swarm = Swarm.deploy_lattice(m1, spec.robot_count, radio)
    q = optimal_coverage_positions(m2, spec.robot_count, spec.comm_range,
                                   grid_target=1400)
    trajectories = {
        "ours (a)": MarchingPlanner(CFG).plan(swarm, m2).trajectory,
        "direct translation": direct_translation_plan(
            swarm.positions, q, m1, m2
        ).trajectory,
        "Hungarian": hungarian_plan(swarm.positions, q).trajectory,
    }
    model = EnergyModel()
    return {
        name: transition_energy(traj, spec.comm_range, model)
        for name, traj in trajectories.items()
    }


def test_energy_accounting(benchmark):
    reports = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for name, rep in reports.items():
        rows.append([
            name,
            f"{rep.movement / 1e6:.2f} MJ",
            f"{rep.pairing / 1e3:.1f} kJ",
            rep.churn.new_pairings_required,
            rep.churn.stable_links,
            f"{rep.total / 1e6:.2f} MJ",
        ])
    print("\nE12 - transition energy (move 6 J/m, pairing 25 J/new link):")
    print(format_table(
        ["method", "movement", "pairing", "new links", "stable links", "total"],
        rows,
    ))
    ours = reports["ours (a)"]
    hung = reports["Hungarian"]
    # The headline: the arrived network needs far fewer new pairings
    # under our method than under the distance-optimal plan.
    assert (
        ours.churn.new_pairings_required
        < 0.5 * hung.churn.new_pairings_required
    )
    # Movement premium stays small (paper: "negligible cost").
    assert ours.movement < 1.2 * hung.movement
