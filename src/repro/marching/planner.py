"""The optimal-marching planner (paper Sec. III, the core contribution).

:class:`MarchingPlanner` strings together every stage of the proposed
algorithm:

1. **Preprocess** - extract the triangulation ``T`` from the swarm's
   connectivity graph in M1 (Sec. III-A).
2. **Modified harmonic map** - embed ``T`` and the gridded target FoI
   ``M2`` on unit disks, search the overlay rotation angle with the
   fixed-depth interval halving, and read each robot's target off the
   induced map by barycentric interpolation (Sec. III-B, Eqn. 1).
3. **Global-connectivity repair** - escort isolated robots/subgroups
   parallel to a reached reference (Sec. III-D1).
4. **March** - synchronous straight-line motion with hole detours
   (Eqn. 2, Sec. III-D3).
5. **Minor local adjustment** - connectivity-safe, density-aware Lloyd
   iteration to the centroidal-Voronoi coverage positions
   (Sec. III-C).

Method (a) maximises the stable-link count; method (b) minimises the
total moving distance (Sec. III-D2).  Both guarantee ``C = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.coverage.density import DensityFunction
from repro.coverage.lloyd import LloydConfig, run_lloyd
from repro.errors import PlanningError
from repro.foi.region import FieldOfInterest
from repro.geometry.vec import as_points
from repro.harmonic.diskmap import compute_disk_map
from repro.harmonic.rotation import hierarchical_angle_search
from repro.harmonic.transfer import InducedMap
from repro.marching.repair import repair_targets
from repro.marching.result import MarchingResult, RepairInfo
from repro.mesh.delaunay import triangulate_foi
from repro.network.extract import extract_triangulation
from repro.network.links import LinkTable, links_alive
from repro.network.udg import UnitDiskGraph
from repro.obs import span
from repro.robots.motion import SwarmTrajectory
from repro.robots.swarm import Swarm
from repro.robots.transition import detoured_transition, stepwise_trajectory

__all__ = ["MarchingConfig", "MarchingPlanner"]


@dataclass(frozen=True)
class MarchingConfig:
    """Planner tuning knobs.

    Attributes
    ----------
    method : {"a", "b"}
        (a) maximise the stable link ratio; (b) minimise the total
        moving distance.
    search_depth : int
        Interval-halving depth of the rotation search (paper: 4).
    initial_samples : int
        Coarse seed angles for the rotation search.
    boundary_mode : {"chord", "uniform"}
        Boundary parameterization of the harmonic maps.
    solver : {"linear", "iterative"}
        Harmonic interior solver.
    foi_target_points : int
        Grid resolution of the target FoI triangulation.
    lloyd : LloydConfig
        Adjustment-phase configuration (connectivity-safe by default).
    transition_time : float
        Total time ``T`` of the march + adjustment plan.
    keep_artifacts : bool
        Keep meshes/disk maps on the result for figures and debugging.
    use_cache : bool
        Let the disk-map stages consult the ambient
        :class:`repro.exec.ContentCache` (default True); the target
        FoI's embedding is mission-independent, so repeated plans into
        the same region (sweeps, method (a) vs (b)) reuse one solve.
    """

    method: str = "a"
    search_depth: int = 4
    initial_samples: int = 4
    boundary_mode: str = "chord"
    solver: str = "linear"
    foi_target_points: int = 600
    lloyd: LloydConfig = field(default_factory=LloydConfig)
    transition_time: float = 1.0
    keep_artifacts: bool = False
    use_cache: bool = True

    def __post_init__(self) -> None:
        if self.method not in ("a", "b"):
            raise PlanningError(f"method must be 'a' or 'b', got {self.method!r}")
        if self.search_depth < 0:
            raise PlanningError("search_depth must be non-negative")
        if self.transition_time <= 0:
            raise PlanningError("transition_time must be positive")


class MarchingPlanner:
    """Plans the relocation of a swarm between two Fields of Interest.

    Parameters
    ----------
    config : MarchingConfig, optional

    Examples
    --------
    >>> from repro.foi import m1_base, m2_scenario1
    >>> from repro.robots import Swarm, RadioSpec
    >>> radio = RadioSpec.from_comm_range(80.0)
    >>> swarm = Swarm.deploy_lattice(m1_base(), 64, radio)
    >>> planner = MarchingPlanner()
    >>> result = planner.plan(swarm, m2_scenario1().translated((2000, 0)))
    >>> result.trajectory.total_distance() > 0
    True
    """

    def __init__(self, config: MarchingConfig | None = None) -> None:
        self.config = config or MarchingConfig()

    # ------------------------------------------------------------------

    def plan(
        self,
        swarm: Swarm,
        target_foi: FieldOfInterest,
        density: DensityFunction | None = None,
        source_foi: FieldOfInterest | None = None,
    ) -> MarchingResult:
        """Plan the transition of ``swarm`` into ``target_foi``.

        Parameters
        ----------
        swarm : Swarm
            Deployed in the current FoI; must be connected.
        target_foi : FieldOfInterest
        density : DensityFunction, optional
            Density for the adjustment phase (Sec. IV-E).
        source_foi : FieldOfInterest, optional
            The FoI being left; when it has holes the march detours
            around them too (hole-to-hole scenarios).

        Returns
        -------
        MarchingResult

        Raises
        ------
        PlanningError
            If the swarm is disconnected or a pipeline stage fails.
        """
        cfg = self.config
        p = swarm.positions
        comm_range = swarm.radio.comm_range
        graph = swarm.communication_graph()
        if not graph.is_connected():
            raise PlanningError("the swarm must start connected")
        links = LinkTable.from_graph(graph)

        # Stage 1: triangulation extraction.
        with span("plan.extract_triangulation", robots=len(p)) as sp_:
            t_mesh, vmap = extract_triangulation(p, comm_range)
            sp_.set_attributes(t_vertices=len(vmap))
        in_t = np.zeros(len(p), dtype=bool)
        in_t[vmap] = True
        anchors = tuple(int(vmap[v]) for v in t_mesh.outer_boundary_loop)

        # Stage 2: modified harmonic map.
        with span("plan.disk_map_t", solver=cfg.solver):
            dm_t = compute_disk_map(
                t_mesh, boundary_mode=cfg.boundary_mode, solver=cfg.solver,
                use_cache=cfg.use_cache,
            )
        with span("plan.triangulate_foi", target_points=cfg.foi_target_points):
            foi_mesh = triangulate_foi(
                target_foi, target_points=cfg.foi_target_points
            )
        with span("plan.disk_map_m2", solver=cfg.solver):
            dm_m2 = compute_disk_map(
                foi_mesh.mesh, boundary_mode=cfg.boundary_mode, solver=cfg.solver,
                use_cache=cfg.use_cache,
            )
        induced = InducedMap(dm_m2)
        disk_pts = dm_t.robot_disk_positions

        t_links = self._links_among(links.links, in_t, vmap)

        def mapped_targets(angle: float) -> np.ndarray:
            return induced.map_points(disk_pts, rotation=angle)

        if cfg.method == "a":

            def objective(angle: float) -> float:
                q_t = mapped_targets(angle)
                return float(links_alive(t_links, q_t, comm_range).sum())

            maximize = True
        else:

            def objective(angle: float) -> float:
                q_t = mapped_targets(angle)
                d = q_t - p[vmap]
                return float(np.hypot(d[:, 0], d[:, 1]).sum())

            maximize = False

        with span("plan.rotation_search", method=cfg.method) as sp_:
            search = hierarchical_angle_search(
                objective,
                depth=cfg.search_depth,
                maximize=maximize,
                initial_samples=cfg.initial_samples,
            )
            sp_.set_attributes(angle=search.angle, evaluations=search.evaluations)

        # Stage 3: targets for every robot (escort stragglers outside T).
        q = np.zeros_like(p)
        q[vmap] = mapped_targets(search.angle)
        for i in np.flatnonzero(~in_t):
            ref = self._nearest_in_t(i, p, in_t)
            q[i] = p[i] + (q[ref] - p[ref])
        # Robots mapped onto hole-boundary chords may sit marginally
        # inside a hole; project them into the free region.
        inside = target_foi.contains(q)
        for i in np.flatnonzero(~inside):
            q[i] = target_foi.project_inside(q[i])

        with span("plan.repair"):
            q, repair_info = repair_targets(
                p, q, comm_range, anchors, links=links.links
            )

        # Stage 4: the march (with hole detours in the target FoI).
        march_total = float(np.hypot(*(q - p).T).sum())

        # Stage 5: Lloyd adjustment to coverage positions.
        with span("plan.adjust") as sp_:
            lloyd = run_lloyd(
                q,
                target_foi,
                comm_range=comm_range,
                density=density,
                config=cfg.lloyd,
            )
            sp_.set_attributes(iterations=lloyd.iterations)
        adjust_total = lloyd.total_movement

        with span("plan.march", march_distance=march_total) as sp_:
            t_split = self._time_split(
                march_total, adjust_total, cfg.transition_time
            )
            march_traj = detoured_transition(
                p, q, target_foi, 0.0, t_split, source_foi=source_foi
            )
            adjust_traj = stepwise_trajectory(
                lloyd.snapshots, t_split, cfg.transition_time
            )
            trajectory = march_traj.then(adjust_traj)
            sp_.set_attributes(total_distance=trajectory.total_distance())

        artifacts: dict[str, object] = {}
        if cfg.keep_artifacts:
            artifacts = {
                "t_mesh": t_mesh,
                "t_vertex_map": vmap,
                "disk_map_t": dm_t,
                "foi_mesh": foi_mesh,
                "disk_map_m2": dm_m2,
                "lloyd": lloyd,
                "search": search,
            }

        return MarchingResult(
            method=f"ours ({cfg.method})",
            start_positions=p.copy(),
            march_targets=q,
            final_positions=lloyd.positions,
            trajectory=trajectory,
            links=links,
            boundary_anchors=anchors,
            rotation_angle=search.angle,
            rotation_evaluations=search.evaluations,
            repair=repair_info,
            lloyd_iterations=lloyd.iterations,
            artifacts=artifacts,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _links_among(links: np.ndarray, in_t: np.ndarray, vmap: np.ndarray) -> np.ndarray:
        """M1 links with both endpoints in T, re-indexed to T vertex order."""
        robot_to_t = -np.ones(len(in_t), dtype=int)
        robot_to_t[vmap] = np.arange(len(vmap))
        both = in_t[links[:, 0]] & in_t[links[:, 1]]
        sub = links[both]
        return np.column_stack([robot_to_t[sub[:, 0]], robot_to_t[sub[:, 1]]])

    @staticmethod
    def _nearest_in_t(i: int, p: np.ndarray, in_t: np.ndarray) -> int:
        """Closest robot that is part of the triangulation."""
        candidates = np.flatnonzero(in_t)
        if len(candidates) == 0:
            raise PlanningError("triangulation contains no robots")
        d = np.hypot(p[candidates, 0] - p[i, 0], p[candidates, 1] - p[i, 1])
        return int(candidates[int(np.argmin(d))])

    @staticmethod
    def _time_split(march_total: float, adjust_total: float, t_end: float) -> float:
        """Split ``[0, T]`` between the march and the adjustment phases."""
        total = march_total + adjust_total
        if total <= 0:
            return 0.5 * t_end
        split = t_end * march_total / total
        return min(max(split, 0.05 * t_end), 0.95 * t_end)
