"""Asyncio HTTP/1.1 planning service (stdlib only).

:class:`PlanningService` exposes the experiment harness as a
long-running, concurrent endpoint: swarm operators ``POST`` an
M1->M2 transition request, poll the job, and fetch the plan document -
while the service deduplicates identical requests, shares one content
cache across jobs, applies backpressure when the queue fills, and
publishes its own health, metrics and trace state.

Endpoints
---------
``POST /v1/plan``
    Submit a plan request (see
    :func:`~repro.service.jobs.normalize_plan_request` for the body
    schema).  ``202`` with ``{"job_id", "state", "deduplicated",
    "shard"}``; ``429`` + ``Retry-After`` when the owning shard's
    queue is full (the estimate comes from the observed
    ``service.job_duration_s`` histogram); ``503`` while draining.
``GET /v1/jobs`` / ``GET /v1/jobs/{id}``
    Job listing (all shards merged) / one job's status document.
``GET /v1/jobs/{id}/result``
    ``200`` with the canonical-JSON plan document once ``done``;
    ``202`` while queued/running, ``404`` unknown, ``410`` cancelled
    (``state: cancelled``) or TTL-expired (``state: expired`` with the
    eviction time), ``500`` with the failure reason when ``failed``.
``GET /v1/jobs/{id}/events`` (alias ``GET /v1/plan/{id}/events``)
    Server-sent-events stream of the job's progress: ``queued``,
    ``claimed`` (with the measured queue wait and owning shard),
    ``phase`` timings for solve/serialize, ``recovery`` events when
    the result document carries RecoveryMetrics, the terminal state,
    and a final ``end`` frame.  Poll-free alternative to
    ``GET /v1/jobs/{id}``; the stream replays from the beginning, so
    attaching to a finished job yields its full history at once.
``POST /v1/jobs/{id}/cancel``
    Cancel a queued job (``409`` once running or terminal).
``GET /healthz``
    ``200 {"status": "ok", ...}`` in normal operation, ``503``
    ``{"status": "draining"}`` during shutdown; includes per-shard
    queue depths and the live event-stream count.
``GET /metrics``
    Snapshot of the service's :class:`repro.obs.Metrics` registry,
    including per-shard ``service.shard.{i}.queue.depth`` gauges and
    ``service.shard.{i}.claim_latency_s`` histograms.
``GET /tracez``
    The most recent spans of the service's tracer.

Architecture: the asyncio event loop runs in a dedicated thread and
only ever does bookkeeping (parse, admit, look up, serialise a status
doc, relay progress events) - solves happen on
:class:`~repro.service.executor_bridge.ExecutorBridge` dispatcher
threads via :class:`repro.exec.ParallelMap`, so a slow plan never
blocks health checks or admissions.  With ``service_workers > 1`` the
queue itself is sharded: each shard worker owns a private
:class:`~repro.service.jobs.JobQueue` plus its own dispatcher pool,
and submissions are routed by consistent hash of the content address
(:class:`~repro.service.sharding.ShardRouter`), so identical requests
still collapse onto one job on one shard while distinct requests
spread across the fleet.  All shards share one content cache (and,
when configured, the same atomic sharded
:class:`~repro.exec.DiskStore`), so a solve on any shard warms every
other.  The HTTP layer is a hand-rolled HTTP/1.1 subset (one request
per connection, ``Connection: close``): no new dependencies, and the
stdlib ``http.client`` in :mod:`repro.service.client` speaks it
happily.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import json
import math
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.errors import MissionInterrupted, ServiceError
from repro.exec import ContentCache, activate_cache
from repro.io import FORMAT_VERSION, dumps_canonical, plan_document
from repro.obs import Metrics, Tracer, activate, activate_metrics, span

from repro.service.jobs import (
    Job,
    JobQueue,
    QueueClosed,
    QueueFull,
    job_id_for,
    normalize_mission_request,
    normalize_plan_request,
)
from repro.service.executor_bridge import ExecutorBridge
from repro.service.journal import JobJournal, JournalReplay
from repro.service.sharding import ShardRouter

__all__ = [
    "PlanningService",
    "ShardWorker",
    "default_runner",
    "run_mission_request",
    "run_plan_request",
]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_MAX_BODY_BYTES = 1_000_000
_HEADER_TIMEOUT_S = 10.0


def run_plan_request(request: dict[str, Any], cache: ContentCache | None = None):
    """Default job body: the experiment harness, under the service cache.

    Runs :func:`repro.experiments.run_scenarios` for the normalised
    request and returns the versioned plan document.  Executed inside a
    ParallelMap worker, so the service's content cache is bound in
    explicitly (worker threads do not inherit the dispatcher's ambient
    context) - this is what lets deduplicated and back-to-back jobs
    share disk-map entries.
    """
    from repro.experiments import get_scenario, run_scenarios

    cm = activate_cache(cache) if cache is not None else contextlib.nullcontext()
    with cm:
        runs = run_scenarios(
            [get_scenario(sid) for sid in request["scenario_ids"]],
            separation_factor=request["separation_factor"],
            methods=tuple(request["methods"]),
            workers=1,
            foi_target_points=request["foi_target_points"],
            lloyd_grid_target=request["lloyd_grid_target"],
            resolution=request["resolution"],
        )
    return plan_document(runs)


def run_mission_request(
    request: dict[str, Any],
    progress: Any = None,
    checkpoint_dir: str | None = None,
    interrupt: Callable[[], bool] | None = None,
) -> dict[str, Any]:
    """Mission job body: run the mission executor for a normalised request.

    The mission runner scopes a *private* cache and metrics registry
    internally (its document must be byte-identical across worker
    counts and shards), so unlike :func:`run_plan_request` the service
    cache is deliberately not bound in.  ``progress`` is the
    ``(kind, data)`` callback the executor bridge wires to the job's
    SSE event log; ``checkpoint_dir`` enables durable per-epoch
    checkpoints (and resume-from-checkpoint after a crash); a fired
    ``interrupt`` is reported as a ``mission_interrupted`` sentinel
    document so the bridge can release the job instead of failing it.
    """
    from repro.faults import schedule_from_dict
    from repro.missions import run_mission

    faults_doc = request.get("faults")
    faults = None if faults_doc is None else schedule_from_dict(faults_doc)
    try:
        return run_mission(
            request["spec"],
            request["config"],
            faults=faults,
            progress=progress,
            checkpoint_dir=checkpoint_dir,
            interrupt=interrupt,
        )
    except MissionInterrupted as exc:
        return {
            "format_version": FORMAT_VERSION,
            "kind": "mission_interrupted",
            "epochs_completed": exc.epochs_completed,
        }


def default_runner(
    cache: ContentCache, checkpoint_root: str | Path | None = None
) -> Callable[..., Any]:
    """The service's job body: dispatch on the request's ``kind``.

    Plan batches run under the shared service cache; missions run the
    streaming mission executor, checkpointing per epoch under
    ``checkpoint_root/<job_id>`` when a root is given (the service
    passes ``<journal_dir>/missions``).  The returned callable
    advertises ``supports_progress`` and ``supports_interrupt`` so the
    executor bridge knows it may pass ``progress`` and ``interrupt``
    callbacks.
    """

    def run(
        request: dict[str, Any],
        progress: Any = None,
        interrupt: Callable[[], bool] | None = None,
    ) -> Any:
        if isinstance(request, dict) and request.get("kind") == "mission":
            checkpoint_dir = None
            if checkpoint_root is not None:
                checkpoint_dir = str(Path(checkpoint_root) / job_id_for(request))
            return run_mission_request(
                request,
                progress=progress,
                checkpoint_dir=checkpoint_dir,
                interrupt=interrupt,
            )
        return run_plan_request(request, cache=cache)

    run.supports_progress = True
    # Interrupting is only safe when missions checkpoint durably: a
    # parked job with no checkpoint (and no journal to restore it)
    # would simply be lost work.  Without a journal, drains let
    # missions run to completion as before.
    run.supports_interrupt = checkpoint_root is not None
    return run


class ShardWorker:
    """One fleet shard: a private job queue plus its dispatcher pool."""

    __slots__ = ("index", "queue", "bridge")

    def __init__(self, index: int, queue: JobQueue, bridge: ExecutorBridge) -> None:
        self.index = index
        self.queue = queue
        self.bridge = bridge


class PlanningService:
    """Planning-as-a-service: HTTP frontend + sharded job store + bridges.

    Parameters
    ----------
    host, port : str, int
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    capacity : int
        Total queued-job bound, split evenly across the shards;
        admissions beyond a shard's share get ``429``.
    dispatchers : int
        Concurrent jobs in flight *per shard* (executor-bridge threads).
    service_workers : int
        Number of shard workers.  1 (the default) reproduces the PR-3
        single-queue service exactly; N > 1 shards the queue by
        consistent hash of the content address while every shard shares
        the one content cache / disk store.
    job_timeout_s, retries
        Per-job engine budget (see :class:`ExecutorBridge`).
    ttl_s : float
        Retention of finished jobs and their results.
    task_backend : str
        ``repro.exec`` backend for the per-job map (default thread).
    runner : callable, optional
        Override the job body (tests inject fast/failing runners);
        defaults to :func:`run_plan_request` bound to the service cache.
    journal_dir : str or Path, optional
        Directory for the write-ahead job journal.  When set, every
        job state transition is journaled durably before it is
        acknowledged, mission jobs checkpoint per epoch under
        ``journal_dir/missions``, and :meth:`start` replays the
        journal to recover jobs from a previous (possibly killed)
        process.  Without it the service is purely in-memory (the
        pre-journal behaviour).
    journal_fsync : bool
        Fsync every journal append (default).  Tests disable it for
        speed; production keeps it on - it is the durability claim.
    tracer, metrics, cache
        Observability and cache objects; fresh ones are created when
        omitted.  Pass the ambient tracer to stream spans to a
        ``--trace`` sink.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity: int = 64,
        dispatchers: int = 2,
        service_workers: int = 1,
        job_timeout_s: float | None = None,
        retries: int = 1,
        ttl_s: float = 3600.0,
        task_backend: str = "thread",
        runner: Callable[[dict[str, Any]], Any] | None = None,
        journal_dir: str | Path | None = None,
        journal_fsync: bool = True,
        tracer: Tracer | None = None,
        metrics: Metrics | None = None,
        cache: ContentCache | None = None,
        tracez_limit: int = 256,
    ) -> None:
        if service_workers < 1:
            raise ServiceError("service_workers must be positive")
        self.host = host
        self.port = port
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else Metrics()
        self.cache = cache if cache is not None else ContentCache()
        self.journal: JobJournal | None = None
        checkpoint_root: Path | None = None
        if journal_dir is not None:
            self.journal = JobJournal(journal_dir, fsync=journal_fsync)
            checkpoint_root = Path(journal_dir) / "missions"
        #: recovery stats of the last :meth:`start` (empty dict until a
        #: journal-backed start has replayed; all-zero counts on a cold
        #: journal).
        self.recovery: dict[str, Any] = {}
        if runner is not None:
            self.runner = runner
        else:
            self.runner = default_runner(self.cache, checkpoint_root=checkpoint_root)
        self._router = ShardRouter(service_workers)
        shard_capacity = max(1, capacity // service_workers)
        self.shards: list[ShardWorker] = []
        for index in range(service_workers):
            queue = JobQueue(
                capacity=shard_capacity, ttl_s=ttl_s, shard=index,
                journal=self.journal,
            )
            bridge = ExecutorBridge(
                queue,
                self.runner,
                dispatchers=dispatchers,
                task_backend=task_backend,
                job_timeout_s=job_timeout_s,
                retries=retries,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            self.shards.append(ShardWorker(index, queue, bridge))
        # Single-shard aliases: the PR-3 API (and its tests) address the
        # one queue/bridge directly; on a fleet they mean shard 0.
        self.queue = self.shards[0].queue
        self.bridge = self.shards[0].bridge
        self.tracez_limit = tracez_limit
        #: event-stream tuning (tests shrink these to force edge paths)
        self.events_poll_s = 0.05
        self.events_keepalive_s = 1.0
        self.events_drain_timeout_s = 10.0
        self._streams: set[asyncio.Task] = set()
        self._draining = False
        self._started_at: float | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._evict_task: asyncio.Task | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._boot_error: BaseException | None = None

    @property
    def service_workers(self) -> int:
        return len(self.shards)

    def _shard_for(self, job_id: str) -> ShardWorker:
        return self.shards[self._router.shard_for(job_id)]

    def _find_job(self, job_id: str) -> tuple[JobQueue, Job | None]:
        """The owning shard's queue and the job (None when unknown)."""
        queue = self._shard_for(job_id).queue
        return queue, queue.get(job_id)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "PlanningService":
        """Bind, boot the event-loop thread and every shard's dispatchers.

        With a journal, recovery runs first: the journal is replayed,
        every non-terminal job from the previous process is re-enqueued
        (at-least-once; content-address dedup makes re-execution
        idempotent), and the journal is compacted from the restored
        state - all *before* any dispatcher can claim work, so the
        recovered backlog is ordered ahead of new submissions.
        """
        if self._thread is not None:
            return self
        self._recover()
        for shard in self.shards:
            shard.bridge.start()
        self._thread = threading.Thread(
            target=self._loop_main, name="repro-service-http", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._boot_error is not None:
            for shard in self.shards:
                shard.bridge.stop(drain=False, timeout=5.0)
            if self.journal is not None:
                self.journal.close()
            raise ServiceError(
                f"service failed to start on {self.host}:{self.port}: "
                f"{self._boot_error!r}"
            )
        self._started_at = time.monotonic()
        return self

    def _recover(self) -> None:
        """Replay the journal and restore jobs into the shard queues."""
        if self.journal is None:
            return
        t0 = time.perf_counter()
        with activate_metrics(self.metrics):
            replay = self.journal.replay()
            stats = {
                "restored": 0, "requeued": 0, "retried": 0,
                "completed": 0, "failed": 0, "cancelled": 0,
            }
            if replay.jobs or replay.evicted:
                owners = self._router.partition(list(replay.jobs))
                evicted_owners = self._router.partition(list(replay.evicted))
                for shard in self.shards:
                    states = [
                        replay.jobs[job_id]
                        for job_id in owners.get(shard.index, [])
                    ]
                    evicted = {
                        job_id: replay.evicted[job_id]
                        for job_id in evicted_owners.get(shard.index, [])
                    }
                    shard_stats = shard.queue.restore(states, evicted)
                    for key, value in shard_stats.items():
                        stats[key] += value
            # Compact from the *restored* live state, not the raw
            # replay: restore appends provenance events ("retried") the
            # old log never saw, and the snapshot must keep event
            # sequences contiguous for ``?since=`` resume.
            states: list[dict[str, Any]] = []
            evicted_all: dict[str, float] = {}
            for shard in self.shards:
                shard_states, shard_evicted = shard.queue.snapshot_state()
                states.extend(shard_states)
                evicted_all.update(shard_evicted)
            self.journal.compact(
                JournalReplay(
                    jobs={state["job_id"]: state for state in states},
                    evicted=evicted_all,
                    records=replay.records,
                    torn=replay.torn,
                    segments=replay.segments,
                )
            )
            replay_s = time.perf_counter() - t0
            self.recovery = {
                "replay_s": replay_s,
                "journal_records": replay.records,
                "torn_records": replay.torn,
                "segments": replay.segments,
                "jobs_restored": stats["restored"],
                "jobs_requeued": stats["requeued"],
                "jobs_retried": stats["retried"],
                "jobs_completed": stats["completed"],
                "jobs_failed": stats["failed"],
                "jobs_cancelled": stats["cancelled"],
            }
            self.metrics.gauge("service.recovery.replay_s").set(replay_s)
            self.metrics.gauge("service.recovery.journal_records").set(
                replay.records
            )
            if replay.torn:
                self.metrics.counter("service.recovery.torn_records").inc(
                    replay.torn
                )

    def drain(self) -> None:
        """Stop accepting new plan submissions (existing jobs keep going).

        In-flight interrupt-aware jobs (missions) are asked to
        checkpoint-and-release at their next epoch boundary so a
        drain-then-stop never throws away completed epochs.
        """
        self._draining = True
        for shard in self.shards:
            shard.bridge.request_drain()

    def stop(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Graceful shutdown: reject new work, drain, then close HTTP.

        With ``drain`` (the default) every queued and running job is
        finished before the dispatchers exit; without it the backlog is
        cancelled and only in-flight jobs complete.
        """
        if self._thread is None:
            if self.journal is not None:
                self.journal.close()
            return
        self.drain()
        for shard in self.shards:
            shard.bridge.stop(drain=drain, timeout=timeout)
        if self._loop is not None and not self._loop.is_closed():
            future = asyncio.run_coroutine_threadsafe(
                self._shutdown_async(), self._loop
            )
            with contextlib.suppress(Exception):
                future.result(timeout=10.0)
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._thread = None
        if self.journal is not None:
            self.journal.close()
        self._stopped.set()

    def wait(self) -> None:
        """Block until :meth:`stop` is called (the CLI's serve loop).

        Polls so SIGINT interrupts the wait on every platform.
        """
        while not self._stopped.wait(timeout=1.0):
            pass

    def __enter__(self) -> "PlanningService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- event-loop thread ---------------------------------------------

    def _loop_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._boot())
        except BaseException as exc:
            self._boot_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            with contextlib.suppress(Exception):
                loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    async def _boot(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._evict_task = asyncio.get_running_loop().create_task(
            self._evict_loop()
        )

    async def _shutdown_async(self) -> None:
        if self._evict_task is not None:
            self._evict_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._evict_task
        # Event streams on jobs that drained to terminal end on their
        # own; cancel whatever is still attached (e.g. a consumer of a
        # job whose client never read the final frames) so the loop
        # stops with no orphaned tasks.
        streams = list(self._streams)
        for task in streams:
            task.cancel()
        if streams:
            await asyncio.gather(*streams, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _evict_loop(self) -> None:
        interval = max(1.0, min(self.queue.ttl_s / 4.0, 30.0))
        while True:
            await asyncio.sleep(interval)
            with activate_metrics(self.metrics):
                for shard in self.shards:
                    shard.queue.evict_expired()

    # -- HTTP plumbing --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, query, body = parsed
            if body is _TOO_LARGE:
                status, payload, extra = 413, {"error": "request body too large"}, {}
            else:
                events_job = self._events_job_id(method, path)
                if events_job is not None:
                    await self._stream_events(
                        writer, events_job, since=_since_param(query)
                    )
                    return
                status, payload, extra = self._route(method, path, body)
            await self._respond(writer, status, payload, extra)
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
            pass
        except Exception as exc:  # never let one connection kill the server
            with contextlib.suppress(Exception):
                await self._respond(writer, 500, {"error": f"internal error: {exc}"}, {})
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, str, Any] | None:
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=_HEADER_TIMEOUT_S
        )
        if not request_line.strip():
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError:
            return "GET", "/__malformed__", "", None
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(
                reader.readline(), timeout=_HEADER_TIMEOUT_S
            )
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = 0
        path, _, query = target.partition("?")
        if length > _MAX_BODY_BYTES:
            return method.upper(), path, query, _TOO_LARGE
        body = b""
        if length > 0:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=_HEADER_TIMEOUT_S
            )
        return method.upper(), path, query, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        extra_headers: dict[str, str],
    ) -> None:
        body = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head.extend(f"{k}: {v}" for k, v in extra_headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # -- progress-event streaming ---------------------------------------

    @staticmethod
    def _events_job_id(method: str, path: str) -> str | None:
        """The job id of an event-stream request, None for anything else."""
        parts = [p for p in path.split("/") if p]
        if (
            method == "GET"
            and len(parts) == 4
            and parts[0] == "v1"
            and parts[1] in ("jobs", "plan")
            and parts[3] == "events"
        ):
            return parts[2]
        return None

    async def _drain_stream(self, writer: asyncio.StreamWriter) -> None:
        """Flush with a consumer deadline: a reader that stops draining
        its socket for ``events_drain_timeout_s`` is disconnected rather
        than allowed to pin server memory."""
        await asyncio.wait_for(
            writer.drain(), timeout=self.events_drain_timeout_s
        )

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job_id: str, since: int = 0
    ) -> None:
        """Serve one ``text/event-stream`` connection for a job.

        Replays the job's event log from ``since`` (a resume cursor: the
        ``?since=N`` query parameter carries the next sequence number a
        reconnecting client wants), then follows it until the job is
        terminal (final ``end`` frame) or the consumer goes away.  Keepalive comment frames flush out silently-closed
        connections; a drain announcement is sent once when the service
        starts shutting down mid-stream.  Every exit path detaches the
        task from ``_streams`` and records a ``service.events`` span
        with its outcome, so shutdown can prove no stream was orphaned.
        """
        queue, job = self._find_job(job_id)
        with activate(self.tracer), activate_metrics(self.metrics):
            self.metrics.counter("service.http.events.requests").inc()
            if job is None:
                status, payload, extra = self._gone_or_unknown(queue, job_id)
                self.metrics.counter(f"service.http.status.{status}").inc()
                await self._respond(writer, status, payload, extra)
                return
            self.metrics.counter("service.http.status.200").inc()
        task = asyncio.current_task()
        assert task is not None
        self._streams.add(task)
        outcome = "complete"
        emitted = 0
        t0 = time.perf_counter()
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-cache\r\n"
                b"Connection: close\r\n\r\n"
            )
            await self._drain_stream(writer)
            cursor = max(0, since)
            announced_drain = False
            last_write = time.monotonic()
            while True:
                events = queue.events_since(job_id, cursor)
                if events:
                    cursor += len(events)
                    emitted += len(events)
                    for event in events:
                        writer.write(_sse_frame(event))
                    await self._drain_stream(writer)
                    last_write = time.monotonic()
                job = queue.get(job_id)
                if job is None or (
                    job.terminal and not queue.events_since(job_id, cursor)
                ):
                    writer.write(_sse_frame({
                        "seq": cursor,
                        "kind": "end",
                        "state": "evicted" if job is None else job.state,
                    }))
                    emitted += 1
                    await self._drain_stream(writer)
                    break
                if self._draining and not announced_drain:
                    announced_drain = True
                    writer.write(_sse_frame({
                        "seq": cursor, "kind": "draining",
                    }))
                    await self._drain_stream(writer)
                    last_write = time.monotonic()
                if time.monotonic() - last_write >= self.events_keepalive_s:
                    writer.write(b": keepalive\n\n")
                    await self._drain_stream(writer)
                    last_write = time.monotonic()
                await asyncio.sleep(self.events_poll_s)
        except ConnectionError:
            outcome = "disconnect"
        except asyncio.TimeoutError:
            outcome = "slow_consumer"
        except asyncio.CancelledError:
            # Shutdown cancelled us; swallow so the connection's finally
            # block still closes the socket cleanly.  Best-effort flush
            # of whatever landed in the log since the last poll tick
            # (the drain path publishes its `interrupted` event right
            # before streams are cancelled) - buffered writes only, the
            # transport flushes them on close.
            outcome = "shutdown"
            with contextlib.suppress(Exception):
                for event in queue.events_since(job_id, cursor):
                    writer.write(_sse_frame(event))
                    cursor += 1
                    emitted += 1
                if self._draining and not announced_drain:
                    writer.write(_sse_frame({
                        "seq": cursor, "kind": "draining",
                    }))
                    emitted += 1
        finally:
            self._streams.discard(task)
            self.metrics.histogram("service.http.events.latency_s").observe(
                time.perf_counter() - t0
            )
            self.metrics.counter(f"service.events.{outcome}").inc()
            if self.tracer.enabled:
                self.tracer.absorb_records([
                    {
                        "name": "service.events",
                        "span_id": 0,
                        "parent_id": None,
                        "depth": 0,
                        "t_start": 0.0,
                        "duration_s": time.perf_counter() - t0,
                        "attributes": {
                            "job_id": job_id,
                            "outcome": outcome,
                            "events": emitted,
                            "origin": "service",
                        },
                    }
                ])

    # -- routing --------------------------------------------------------

    def _route(
        self, method: str, path: str, body: bytes | None
    ) -> tuple[int, Any, dict[str, str]]:
        """Dispatch one request; fast bookkeeping only (no solves here)."""
        label, handler = self._resolve(method, path)
        t0 = time.perf_counter()
        with activate(self.tracer), activate_metrics(self.metrics):
            with span("service.request", method=method, path=path) as sp:
                try:
                    status, payload, extra = handler(body)
                except ServiceError as exc:
                    status, payload, extra = 400, {"error": str(exc)}, {}
                except Exception as exc:
                    status, payload, extra = (
                        500,
                        {"error": f"internal error: {exc}"},
                        {},
                    )
                sp.set_attributes(endpoint=label, status=status)
            elapsed = time.perf_counter() - t0
            self.metrics.histogram(f"service.http.{label}.latency_s").observe(
                elapsed
            )
            self.metrics.counter(f"service.http.{label}.requests").inc()
            self.metrics.counter(f"service.http.status.{status}").inc()
        return status, payload, extra

    def _resolve(self, method: str, path: str):
        parts = [p for p in path.split("/") if p]
        if path == "/v1/plan":
            if method != "POST":
                return "plan", self._method_not_allowed("POST")
            return "plan", self._post_plan
        if path == "/v1/mission":
            if method != "POST":
                return "mission", self._method_not_allowed("POST")
            return "mission", self._post_mission
        if path == "/healthz" and method == "GET":
            return "healthz", self._get_healthz
        if path == "/metrics" and method == "GET":
            return "metrics", self._get_metrics
        if path == "/tracez" and method == "GET":
            return "tracez", self._get_tracez
        if parts[:2] == ["v1", "jobs"]:
            if len(parts) == 2 and method == "GET":
                return "jobs_list", self._get_jobs
            if len(parts) == 3 and method == "GET":
                return "job_status", functools.partial(
                    self._get_job, job_id=parts[2]
                )
            if len(parts) == 4 and parts[3] == "result" and method == "GET":
                return "job_result", functools.partial(
                    self._get_result, job_id=parts[2]
                )
            if len(parts) == 4 and parts[3] == "cancel" and method == "POST":
                return "job_cancel", functools.partial(
                    self._post_cancel, job_id=parts[2]
                )
        return "unknown", self._not_found

    @staticmethod
    def _method_not_allowed(allowed: str):
        def handler(body: bytes | None) -> tuple[int, Any, dict[str, str]]:
            return 405, {"error": f"method not allowed; use {allowed}"}, {
                "Allow": allowed
            }

        return handler

    @staticmethod
    def _not_found(body: bytes | None) -> tuple[int, Any, dict[str, str]]:
        return 404, {"error": "no such endpoint"}, {}

    # -- handlers -------------------------------------------------------

    def _post_plan(self, body: bytes | None) -> tuple[int, Any, dict[str, str]]:
        if self._draining:
            return 503, {"error": "service is draining; try another replica"}, {}
        try:
            doc = json.loads(body or b"")
        except json.JSONDecodeError as exc:
            return 400, {"error": f"request body is not valid JSON: {exc}"}, {}
        with span("service.admission"):
            request, priority = normalize_plan_request(doc)
            shard = self._shard_for(job_id_for(request))
            try:
                job, created = shard.queue.submit(request, priority)
            except QueueFull as exc:
                retry_after = self._retry_after_s()
                return (
                    429,
                    {"error": str(exc), "retry_after_s": retry_after},
                    {"Retry-After": str(retry_after)},
                )
            except QueueClosed as exc:
                return 503, {"error": str(exc)}, {}
        self._observe_depths()
        return (
            202,
            {
                "job_id": job.job_id,
                "state": job.state,
                "deduplicated": not created,
                "shard": shard.index,
            },
            {},
        )

    def _post_mission(self, body: bytes | None) -> tuple[int, Any, dict[str, str]]:
        if self._draining:
            return 503, {"error": "service is draining; try another replica"}, {}
        try:
            doc = json.loads(body or b"")
        except json.JSONDecodeError as exc:
            return 400, {"error": f"request body is not valid JSON: {exc}"}, {}
        with span("service.admission"):
            request, priority = normalize_mission_request(doc)
            shard = self._shard_for(job_id_for(request))
            try:
                job, created = shard.queue.submit(request, priority)
            except QueueFull as exc:
                retry_after = self._retry_after_s()
                return (
                    429,
                    {"error": str(exc), "retry_after_s": retry_after},
                    {"Retry-After": str(retry_after)},
                )
            except QueueClosed as exc:
                return 503, {"error": str(exc)}, {}
        self._observe_depths()
        return (
            202,
            {
                "job_id": job.job_id,
                "state": job.state,
                "deduplicated": not created,
                "shard": shard.index,
            },
            {},
        )

    def _observe_depths(self) -> None:
        """Refresh the global and per-shard queue-depth gauges."""
        total = 0
        for shard in self.shards:
            depth = shard.queue.depth()
            total += depth
            self.metrics.gauge(f"service.shard.{shard.index}.queue.depth").set(
                depth
            )
        self.metrics.gauge("service.queue.depth").set(total)

    def _retry_after_s(self) -> int:
        """Backlog-drain estimate from the job-duration histogram."""
        hist = self.metrics.histogram("service.job_duration_s")
        mean_s = hist.mean if hist.count else 1.0
        backlog = 0
        for shard in self.shards:
            counts = shard.queue.counts()
            backlog += counts["queued"] + counts["running"]
        dispatchers = sum(shard.bridge.dispatchers for shard in self.shards)
        estimate = mean_s * max(1, backlog) / max(1, dispatchers)
        return max(1, math.ceil(estimate))

    def _aggregate_counts(self) -> dict[str, int]:
        total: dict[str, int] = {}
        for shard in self.shards:
            for state, count in shard.queue.counts().items():
                total[state] = total.get(state, 0) + count
        return total

    def _get_healthz(self, body: bytes | None) -> tuple[int, Any, dict[str, str]]:
        counts = self._aggregate_counts()
        doc = {
            "status": "draining" if self._draining else "ok",
            "jobs": counts,
            "queue_depth": counts["queued"],
            "dispatchers": sum(s.bridge.dispatchers for s in self.shards),
            "service_workers": self.service_workers,
            "shards": [
                {"shard": s.index, "queue_depth": s.queue.depth()}
                for s in self.shards
            ],
            "active_streams": len(self._streams),
            "uptime_s": (
                time.monotonic() - self._started_at if self._started_at else 0.0
            ),
            "journal": (
                None
                if self.journal is None
                else {
                    "directory": str(self.journal.directory),
                    "segments": self.journal.segment_count,
                    "fsync": self.journal.fsync,
                }
            ),
            "recovery": self.recovery,
        }
        return (503 if self._draining else 200), doc, {}

    def _get_metrics(self, body: bytes | None) -> tuple[int, Any, dict[str, str]]:
        self._observe_depths()
        return 200, self.metrics.snapshot(), {}

    def _get_tracez(self, body: bytes | None) -> tuple[int, Any, dict[str, str]]:
        records = self.tracer.get_trace()
        recent = records[-self.tracez_limit :]
        return (
            200,
            {
                "total_spans": len(records),
                "spans": [r.to_dict() for r in recent],
            },
            {},
        )

    def _get_jobs(self, body: bytes | None) -> tuple[int, Any, dict[str, str]]:
        now = time.monotonic()
        entries = []
        for shard in self.shards:
            for job in shard.queue.jobs():
                entry = job.to_dict(now)
                entry["shard"] = shard.index
                entries.append((job.submitted_at, job.job_id, entry))
        entries.sort(key=lambda item: item[:2])
        return (
            200,
            {
                "counts": self._aggregate_counts(),
                "jobs": [entry for _, _, entry in entries],
            },
            {},
        )

    def _gone_or_unknown(
        self, queue: JobQueue, job_id: str
    ) -> tuple[int, Any, dict[str, str]]:
        """404 for never-seen ids, typed ``410 expired`` for TTL-evicted.

        A client that polls too slowly must be able to distinguish "you
        never submitted this" from "your result existed but aged out" -
        retrying the former is useless, resubmitting the latter works
        (content-address dedup gives it the same job id).
        """
        evicted_at = queue.evicted_at(job_id)
        if evicted_at is not None:
            return (
                410,
                {
                    "error": f"job {job_id} expired: result evicted by ttl",
                    "state": "expired",
                    "evicted_at": evicted_at,
                },
                {},
            )
        return 404, {"error": f"unknown job {job_id}"}, {}

    def _get_job(
        self, body: bytes | None, job_id: str
    ) -> tuple[int, Any, dict[str, str]]:
        queue, job = self._find_job(job_id)
        if job is None:
            return self._gone_or_unknown(queue, job_id)
        return 200, job.to_dict(time.monotonic()), {}

    def _get_result(
        self, body: bytes | None, job_id: str
    ) -> tuple[int, Any, dict[str, str]]:
        queue, job = self._find_job(job_id)
        if job is None:
            return self._gone_or_unknown(queue, job_id)
        if job.state == "done":
            return 200, job.result, {}
        if job.state == "failed":
            return 500, {"error": job.error, "state": "failed"}, {}
        if job.state == "cancelled":
            return 410, {"error": "job was cancelled", "state": "cancelled"}, {}
        return 202, {"state": job.state, "job_id": job_id}, {}

    def _post_cancel(
        self, body: bytes | None, job_id: str
    ) -> tuple[int, Any, dict[str, str]]:
        queue, job = self._find_job(job_id)
        if job is None:
            return self._gone_or_unknown(queue, job_id)
        if queue.cancel(job_id):
            return 200, {"job_id": job_id, "state": "cancelled"}, {}
        return (
            409,
            {"error": f"job is {job.state}; only queued jobs can be cancelled"},
            {},
        )


def _since_param(query: str) -> int:
    """The ``since=N`` resume cursor of an event-stream URL (0 default).

    Malformed or negative values fall back to a full replay - resuming
    too early is always safe (the client skips duplicates by seq).
    """
    for part in query.split("&"):
        name, _, value = part.partition("=")
        if name == "since":
            try:
                return max(0, int(value))
            except ValueError:
                return 0
    return 0


def _sse_frame(event: dict[str, Any]) -> bytes:
    """One server-sent event: named by kind, id'd by sequence number."""
    data = json.dumps(event, sort_keys=True, separators=(",", ":"))
    return (
        f"event: {event.get('kind', 'message')}\n"
        f"id: {event.get('seq', 0)}\n"
        f"data: {data}\n\n"
    ).encode("utf-8")


class _TooLarge:
    """Sentinel: request body exceeded the service's size cap."""


_TOO_LARGE = _TooLarge()
