"""Round-trip tests for plan serialisation."""

import json

import numpy as np
import pytest

from repro.coverage import LloydConfig
from repro.errors import ReproError
from repro.foi import FieldOfInterest, ellipse_polygon
from repro.io import (
    FORMAT_VERSION,
    SUPPORTED_FORMAT_VERSIONS,
    check_format_version,
    dumps_canonical,
    evaluation_from_dict,
    load_result_dict,
    plan_document,
    result_to_dict,
    save_result,
    scenario_run_from_dict,
    scenario_run_to_dict,
    trajectory_from_dict,
)
from repro.marching import MarchingConfig, MarchingPlanner
from repro.metrics import stable_link_ratio, total_moving_distance
from repro.robots import RadioSpec, Swarm


@pytest.fixture(scope="module")
def planned():
    radio = RadioSpec.from_comm_range(80.0)
    m1 = FieldOfInterest(
        ellipse_polygon(1.0, 1.0, samples=32).scaled_to_area(100_000.0), name="m1"
    )
    swarm = Swarm.deploy_lattice(m1, 36, radio)
    m2 = FieldOfInterest(
        ellipse_polygon(1.1, 0.9, samples=32).scaled_to_area(95_000.0), name="m2"
    ).translated((900.0, 0.0))
    cfg = MarchingConfig(
        foi_target_points=180, lloyd=LloydConfig(grid_target=600, max_iterations=15)
    )
    return MarchingPlanner(cfg).plan(swarm, m2)


class TestRoundTrip:
    def test_dict_is_json_serialisable(self, planned):
        doc = result_to_dict(planned)
        text = json.dumps(doc)
        assert json.loads(text)["method"] == "ours (a)"

    def test_save_and_load(self, planned, tmp_path):
        path = save_result(planned, tmp_path / "plan.json")
        loaded = load_result_dict(path)
        assert loaded["method"] == planned.method
        assert np.allclose(loaded["start_positions"], planned.start_positions)
        assert np.allclose(loaded["final_positions"], planned.final_positions)
        assert loaded["repair"].rounds == planned.repair.rounds

    def test_metrics_survive_round_trip(self, planned, tmp_path):
        path = save_result(planned, tmp_path / "plan.json")
        loaded = load_result_dict(path)
        original_d = total_moving_distance(planned.trajectory)
        loaded_d = total_moving_distance(loaded["trajectory"])
        assert loaded_d == pytest.approx(original_d, rel=1e-9)
        original_l = stable_link_ratio(planned.links, planned.trajectory)
        loaded_l = stable_link_ratio(loaded["links"], loaded["trajectory"])
        assert loaded_l == pytest.approx(original_l)

    def test_trajectory_positions_identical(self, planned, tmp_path):
        path = save_result(planned, tmp_path / "plan.json")
        loaded = load_result_dict(path)
        for t in (0.0, 0.33, 0.8, 1.0):
            assert np.allclose(
                loaded["trajectory"].positions_at(t),
                planned.trajectory.positions_at(t),
                atol=1e-12,
            )

    def test_version_checked(self, planned, tmp_path):
        doc = result_to_dict(planned)
        doc["format_version"] = 999
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(ReproError):
            load_result_dict(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_result_dict(tmp_path / "nope.json")

    def test_malformed_trajectory(self):
        with pytest.raises(ReproError):
            trajectory_from_dict({"paths": [{"waypoints": [[0, 0]]}]})

    def test_repair_and_links_survive_round_trip(self, planned, tmp_path):
        path = save_result(planned, tmp_path / "plan.json")
        loaded = load_result_dict(path)
        assert loaded["repair"].escorted == planned.repair.escorted
        assert loaded["repair"].references == planned.repair.references
        assert loaded["repair"].isolated_before == planned.repair.isolated_before
        assert loaded["links"].comm_range == planned.links.comm_range
        assert np.array_equal(loaded["links"].links, planned.links.links)


class TestVersionDiscipline:
    def test_error_names_version_and_supported_list(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"format_version": 7, "method": "x"}))
        with pytest.raises(ReproError) as excinfo:
            load_result_dict(path)
        message = str(excinfo.value)
        assert "format_version 7" in message
        assert str(list(SUPPORTED_FORMAT_VERSIONS)) in message
        assert "future.json" in message

    def test_missing_version_rejected(self):
        with pytest.raises(ReproError, match="format_version None"):
            check_format_version({"method": "x"})

    def test_current_version_accepted(self):
        check_format_version({"format_version": FORMAT_VERSION})


class TestCanonicalBytes:
    def test_key_order_does_not_matter(self):
        a = dumps_canonical({"b": 1, "a": [1, 2]})
        b = dumps_canonical({"a": [1, 2], "b": 1})
        assert a == b
        assert a == b'{"a":[1,2],"b":1}'

    def test_bytes_are_json(self):
        doc = {"runs": {"1": {"sep": 12.0}}}
        assert json.loads(dumps_canonical(doc)) == doc


class TestScenarioRunRoundTrip:
    @pytest.fixture()
    def run(self):
        from repro.experiments.harness import ScenarioRun, TransitionEvaluation

        evaluation = TransitionEvaluation(
            method="ours (a)",
            total_distance=123.5,
            stable_link_ratio=0.875,
            globally_connected=True,
            max_isolated=0,
            final_positions=np.array([[0.0, 1.0], [2.0, 3.0]]),
        )
        return ScenarioRun(
            scenario_id=1, separation_factor=12.0,
            evaluations={"ours (a)": evaluation},
        )

    def test_round_trip(self, run):
        restored = scenario_run_from_dict(scenario_run_to_dict(run))
        assert restored.scenario_id == run.scenario_id
        assert restored.separation_factor == run.separation_factor
        original = run.evaluations["ours (a)"]
        back = restored.evaluations["ours (a)"]
        assert back.method == original.method
        assert back.total_distance == original.total_distance
        assert back.stable_link_ratio == original.stable_link_ratio
        assert back.globally_connected is original.globally_connected
        assert np.array_equal(back.final_positions, original.final_positions)

    def test_plan_document_is_versioned_and_canonical(self, run):
        doc = plan_document({1: run})
        check_format_version(doc)
        assert doc["kind"] == "plan_batch"
        assert json.loads(dumps_canonical(doc)) == doc

    def test_malformed_evaluation_rejected(self):
        with pytest.raises(ReproError, match="malformed evaluation"):
            evaluation_from_dict({"method": "ours (a)"})

    def test_malformed_run_rejected(self):
        with pytest.raises(ReproError, match="malformed scenario run"):
            scenario_run_from_dict({"scenario_id": 1})
