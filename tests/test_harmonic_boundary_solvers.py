"""Tests for boundary parameterization and the harmonic solvers."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.harmonic import (
    boundary_parameterization,
    circle_positions,
    harmonic_energy,
    solve_iterative,
    solve_linear,
)
from repro.mesh import TriMesh, delaunay_mesh


@pytest.fixture(scope="module")
def disk_mesh():
    """A small disk-like mesh: rings of points around the origin."""
    rings = [np.zeros((1, 2))]
    for r, n in ((1.0, 8), (2.0, 16)):
        theta = np.linspace(0, 2 * np.pi, n, endpoint=False)
        rings.append(np.column_stack([r * np.cos(theta), r * np.sin(theta)]))
    return delaunay_mesh(np.vstack(rings))


class TestBoundaryParameterization:
    def test_loop_starts_at_min_id(self, disk_mesh):
        loop, angles = boundary_parameterization(disk_mesh)
        assert loop[0] == min(loop)
        assert angles[0] == pytest.approx(0.0)

    def test_uniform_mode_equal_spacing(self, disk_mesh):
        loop, angles = boundary_parameterization(disk_mesh, mode="uniform")
        gaps = np.diff(angles)
        assert np.allclose(gaps, gaps[0])

    def test_chord_mode_spacing_proportional(self, disk_mesh):
        loop, angles = boundary_parameterization(disk_mesh, mode="chord")
        # Outer ring is equally spaced, so chord == uniform here.
        gaps = np.diff(angles)
        assert np.allclose(gaps, gaps[0], atol=1e-9)

    def test_angles_cover_circle_once(self, disk_mesh):
        loop, angles = boundary_parameterization(disk_mesh)
        assert angles.min() >= 0.0
        assert angles.max() < 2 * np.pi
        assert len(np.unique(np.round(angles, 12))) == len(angles)

    def test_unknown_mode_raises(self, disk_mesh):
        with pytest.raises(MappingError):
            boundary_parameterization(disk_mesh, mode="mystery")

    def test_circle_positions_unit_norm(self):
        pos = circle_positions(np.linspace(0, 6, 17))
        assert np.allclose(np.hypot(pos[:, 0], pos[:, 1]), 1.0)


class TestSolvers:
    def _setup(self, mesh):
        loop, angles = boundary_parameterization(mesh)
        return loop, circle_positions(angles)

    def test_linear_boundary_pinned(self, disk_mesh):
        loop, bpos = self._setup(disk_mesh)
        out = solve_linear(disk_mesh, loop, bpos)
        assert np.allclose(out[loop], bpos)

    def test_linear_interior_is_neighbor_average(self, disk_mesh):
        loop, bpos = self._setup(disk_mesh)
        out = solve_linear(disk_mesh, loop, bpos)
        boundary = set(loop.tolist())
        for v in range(disk_mesh.vertex_count):
            if v in boundary:
                continue
            nbrs = disk_mesh.neighbors(v)
            assert np.allclose(out[v], out[nbrs].mean(axis=0), atol=1e-9)

    def test_iterative_matches_linear(self, disk_mesh):
        loop, bpos = self._setup(disk_mesh)
        lin = solve_linear(disk_mesh, loop, bpos)
        it, sweeps = solve_iterative(disk_mesh, loop, bpos, tol=1e-10)
        assert sweeps > 0
        assert np.allclose(lin, it, atol=1e-7)

    def test_linear_minimises_energy(self, disk_mesh, rng):
        loop, bpos = self._setup(disk_mesh)
        out = solve_linear(disk_mesh, loop, bpos)
        base = harmonic_energy(disk_mesh, out)
        boundary = set(loop.tolist())
        interior = [v for v in range(disk_mesh.vertex_count) if v not in boundary]
        # Any perturbation of interior vertices must not lower the energy.
        for _ in range(10):
            perturbed = out.copy()
            perturbed[interior] += rng.normal(0, 0.05, (len(interior), 2))
            assert harmonic_energy(disk_mesh, perturbed) >= base - 1e-12

    def test_result_inside_unit_disk(self, disk_mesh):
        loop, bpos = self._setup(disk_mesh)
        out = solve_linear(disk_mesh, loop, bpos)
        assert np.hypot(out[:, 0], out[:, 1]).max() <= 1.0 + 1e-9

    def test_duplicate_boundary_rejected(self, disk_mesh):
        loop, bpos = self._setup(disk_mesh)
        bad = np.concatenate([loop, loop[:1]])
        with pytest.raises(MappingError):
            solve_linear(disk_mesh, bad, np.vstack([bpos, bpos[:1]]))

    def test_shape_mismatch_rejected(self, disk_mesh):
        loop, bpos = self._setup(disk_mesh)
        with pytest.raises(MappingError):
            solve_linear(disk_mesh, loop, bpos[:-1])

    def test_no_boundary_rejected(self, disk_mesh):
        with pytest.raises(MappingError):
            solve_linear(disk_mesh, np.zeros(0, dtype=int), np.zeros((0, 2)))

    def test_iterative_nonconvergence_raises(self, disk_mesh):
        loop, bpos = self._setup(disk_mesh)
        with pytest.raises(MappingError):
            solve_iterative(disk_mesh, loop, bpos, tol=1e-14, max_iterations=3)
