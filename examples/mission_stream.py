"""Streaming missions: follow a replanning job's live SSE event feed.

Boots a two-shard `repro.service.PlanningService`, submits a drifting
mission (`POST /v1/mission`), and follows its progress over the
`GET /v1/jobs/{id}/events` stream: one `plan_diff` + `epoch` pair per
replanned leg, in order, as the mission advances.  Then checks two of
the mission contracts:

* the mission document fetched over HTTP is byte-identical to running
  the same `(spec, config)` through `repro.missions.MissionRunner`
  in-process (missions scope their own cache and metrics, so worker
  count and transport cannot leak into the bytes), and
* the drifting target is served from the translation-canonical
  disk-map cache - every epoch after the first reports a cache hit.

Run:  python examples/mission_stream.py
"""

from __future__ import annotations

from repro.io import dumps_canonical
from repro.missions import MissionConfig, MissionRunner, MissionSpec
from repro.service import PlanningService, ServiceClient

SPEC = MissionSpec(family="corridor", seed=0, epochs=3, motion="drift")
CONFIG = MissionConfig()


def show(event: dict) -> None:
    kind = event.get("kind")
    if kind == "plan_diff":
        print(
            f"  epoch {event['epoch']}: target shifted "
            f"{event['target_shift']:.1f} m, plan D = "
            f"{event['plan_distance'] / 1000:.2f} km "
            f"(cache {event['cache_hits']} hit / "
            f"{event['cache_misses']} miss)"
        )
    elif kind == "epoch":
        print(
            f"  epoch {event['epoch']} done: {event['robots']} robots, "
            f"{event['c_violations']} connectivity violations"
        )
    elif kind == "recovery":
        print(
            f"  recovery: robots {event['failed']} lost at fraction "
            f"{event['at']}, {event['survivors']} march on"
        )


def main() -> None:
    with PlanningService(port=0, service_workers=2, dispatchers=2) as service:
        client = ServiceClient(port=service.port, timeout=120.0, retries=3)
        print(
            f"service on port {service.port}: streaming a "
            f"{SPEC.epochs}-epoch {SPEC.motion!r} mission over "
            f"{SPEC.family!r} targets"
        )
        served = client.run_mission(SPEC, config=CONFIG, on_event=show)

        summary = served["summary"]
        print(
            f"mission complete: {summary['replans']} replans, "
            f"D = {summary['total_distance'] / 1000:.2f} km, "
            f"{summary['survivors']} robots in formation, "
            f"C violations = {summary['c_violations']}"
        )

        # Contract 1: served document == in-process run, byte for byte.
        local = MissionRunner(SPEC, CONFIG).run()
        assert dumps_canonical(served) == dumps_canonical(local)
        print("byte-identity vs in-process MissionRunner: OK")

        # Contract 2: a rigidly drifting target is a disk-map cache hit
        # on every replan after the cold first solve.
        for record in served["epochs"][1:]:
            assert record["plan_diff"]["cache_hits"] >= 1, record
        print("translation-canonical cache hits on every drift replan: OK")


if __name__ == "__main__":
    main()
