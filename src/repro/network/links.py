"""Link bookkeeping: stable links, broken links, churn.

Definition 1 of the paper scores a transition by its *total stable link
ratio*: the fraction of M1 communication links that stay connected for
the entire transition.  :class:`LinkTable` captures the initial link
set and offers the set operations the metric (and the rotation-angle
search) needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.vec import as_points
from repro.network.udg import UnitDiskGraph, udg_edges

__all__ = ["LinkTable", "links_alive", "count_surviving_links"]


def links_alive(links: np.ndarray, positions, comm_range: float) -> np.ndarray:
    """Boolean mask: which of ``links`` are within range at ``positions``.

    Parameters
    ----------
    links : (m, 2) int array
        Node-index pairs.
    positions : (n, 2) array-like
    comm_range : float
    """
    links = np.asarray(links, dtype=int).reshape(-1, 2)
    pts = as_points(positions)
    if len(links) == 0:
        return np.zeros(0, dtype=bool)
    d = pts[links[:, 0]] - pts[links[:, 1]]
    return np.hypot(d[:, 0], d[:, 1]) <= comm_range


def count_surviving_links(links: np.ndarray, positions, comm_range: float) -> int:
    """Number of ``links`` still in range at ``positions``."""
    return int(links_alive(links, positions, comm_range).sum())


@dataclass(frozen=True)
class LinkTable:
    """The communication links of a swarm at the start of a transition.

    Attributes
    ----------
    links : (m, 2) int ndarray
        Initial links (``i < j``), the denominator population of the
        stable-link ratio.
    comm_range : float
    """

    links: np.ndarray
    comm_range: float

    @classmethod
    def from_positions(cls, positions, comm_range: float) -> "LinkTable":
        """Capture all links of the unit-disk graph at ``positions``."""
        return cls(
            links=udg_edges(positions, comm_range), comm_range=float(comm_range)
        )

    @classmethod
    def from_graph(cls, graph: UnitDiskGraph) -> "LinkTable":
        return cls(links=graph.edges, comm_range=graph.comm_range)

    @property
    def link_count(self) -> int:
        return len(self.links)

    def alive_mask(self, positions) -> np.ndarray:
        """Which initial links are in range at ``positions``."""
        return links_alive(self.links, positions, self.comm_range)

    def surviving_fraction(self, positions) -> float:
        """Fraction of initial links in range at ``positions`` (1.0 if none)."""
        if self.link_count == 0:
            return 1.0
        return float(self.alive_mask(positions).mean())

    def stable_mask_over(self, snapshots) -> np.ndarray:
        """Links alive at *every* snapshot of positions.

        Parameters
        ----------
        snapshots : iterable of (n, 2) arrays
            Position samples over the transition, in time order.

        Returns
        -------
        (m,) bool ndarray
        """
        stable = np.ones(self.link_count, dtype=bool)
        for pos in snapshots:
            stable &= self.alive_mask(pos)
            if not stable.any():
                break
        return stable

    def stable_link_ratio_over(self, snapshots) -> float:
        """Definition 1's ``L`` evaluated over sampled snapshots.

        ``L = (# links alive at all samples) / (# initial links)``.
        Note the definition's double sum counts each link once per
        endpoint in both numerator and denominator, so the factor of
        two cancels and the ratio of undirected counts is identical.
        """
        if self.link_count == 0:
            return 1.0
        return float(self.stable_mask_over(snapshots).mean())
