"""Tests for the markdown report builder and the Kershner bound."""

import numpy as np
import pytest

from repro.coverage import kershner_bound
from repro.errors import CoverageError
from repro.experiments import build_report, write_report


class TestKershnerBound:
    def test_formula(self):
        # 2A / (3 sqrt(3) r^2), rounded up.
        assert kershner_bound(100.0, 2.0) == int(
            np.ceil(200.0 / (3 * np.sqrt(3) * 4.0))
        )

    def test_scenario_sizes_satisfiable(self):
        """144 robots with r_s = 80/sqrt(3) m suffice for every scenario FoI."""
        from repro.foi import SCENARIO_AREAS, M1_AREA
        from repro.robots import RadioSpec

        rs = RadioSpec.from_comm_range(80.0).sensing_range
        for area in [M1_AREA, *SCENARIO_AREAS.values()]:
            assert kershner_bound(area, rs) <= 144

    def test_invalid_inputs(self):
        with pytest.raises(CoverageError):
            kershner_bound(-1.0, 2.0)
        with pytest.raises(CoverageError):
            kershner_bound(10.0, 0.0)

    def test_monotonicity(self):
        assert kershner_bound(200.0, 2.0) >= kershner_bound(100.0, 2.0)
        assert kershner_bound(100.0, 1.0) >= kershner_bound(100.0, 2.0)


class TestReport:
    def test_single_scenario_report(self):
        text = build_report(
            separation_factor=12.0,
            scenario_ids=[1],
            foi_target_points=220,
            lloyd_grid_target=900,
            resolution=12,
        )
        assert "# Optimal Marching - reproduction report" in text
        assert "Table I" in text
        assert "Scenario 1" in text
        assert "ours (a)" in text
        # Markdown tables well-formed: same pipe counts per block line.
        lines = [l for l in text.splitlines() if l.startswith("|")]
        assert lines and all(l.count("|") >= 5 for l in lines)

    def test_chaos_section(self):
        text = build_report(
            separation_factor=12.0,
            scenario_ids=[1],
            foi_target_points=220,
            lloyd_grid_target=900,
            resolution=12,
            chaos=True,
            chaos_scenarios=[1],
        )
        assert "## Recovery under failures" in text
        assert "recovered" in text
        assert "escort rejoins" in text

    def test_write_report(self, tmp_path):
        path = write_report(
            tmp_path / "report.md",
            separation_factor=12.0,
            scenario_ids=[1],
            foi_target_points=220,
            lloyd_grid_target=900,
            resolution=12,
        )
        assert path.exists()
        assert path.read_text().startswith("# Optimal Marching")
