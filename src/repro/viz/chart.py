"""Dependency-free SVG line charts for the benchmark series.

Renders the Fig. 3/4/5-style series (distance ratio and stable link
ratio vs M1-M2 separation) as standalone SVG files.  The visual rules
follow a validated reference palette and mark spec: categorical colours
in a fixed slot order per method (colour follows the entity, never its
rank), 2 px lines with 8 px markers, recessive grid, one y-axis, a
legend plus a direct label at each series' last point, and all text in
ink tokens rather than series colours.  Every chart ships alongside the
text table the harness prints, which serves as its table view.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

__all__ = ["LineChart", "METHOD_COLORS"]

# Validated categorical palette (fixed slot order; worst adjacent CVD
# delta-E 24.2 on the light surface).  The method -> slot assignment is
# frozen so a chart with fewer methods never repaints the survivors.
METHOD_COLORS: dict[str, str] = {
    "ours (a)": "#2a78d6",  # blue
    "ours (b)": "#1baf7a",  # aqua
    "direct translation": "#eda100",  # yellow
    "Hungarian": "#008300",  # green
    "greedy matching": "#4a3aa7",  # violet
}
_FALLBACK_COLOR = "#e34948"

_SURFACE = "#fcfcfb"
_INK_PRIMARY = "#0b0b0b"
_INK_SECONDARY = "#52514e"
_GRID = "#e4e4e0"
_AXIS = "#b9b8b2"


def _nice_ticks(lo: float, hi: float, target: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi] at a 1/2/5 step."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(target - 1, 1)
    mag = 10.0 ** np.floor(np.log10(raw))
    for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = mult * mag
        if span / step <= target:
            break
    start = np.ceil(lo / step) * step
    ticks = list(np.arange(start, hi + step * 0.51, step))
    return [float(t) for t in ticks]


class LineChart:
    """A single-axis line chart over numeric x/y series.

    Parameters
    ----------
    title : str
    x_label, y_label : str
    width, height : int
        Pixel dimensions.
    y_range : (lo, hi), optional
        Fixed y-axis range; inferred from the data when omitted.
    """

    def __init__(
        self,
        title: str,
        x_label: str,
        y_label: str,
        width: int = 640,
        height: int = 400,
        y_range: tuple[float, float] | None = None,
    ) -> None:
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.width = width
        self.height = height
        self._y_range = y_range
        self._series: list[tuple[str, np.ndarray, np.ndarray, str]] = []

    def add_series(self, name: str, xs, ys, color: str | None = None) -> None:
        """Add one named series (colour defaults to the method slot)."""
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.shape != ys.shape or xs.ndim != 1 or len(xs) == 0:
            raise ValueError("series needs matching non-empty 1-D x and y")
        c = color or METHOD_COLORS.get(name, _FALLBACK_COLOR)
        self._series.append((name, xs, ys, c))

    # ------------------------------------------------------------------

    def _layout(self):
        # The right margin hosts the direct labels; sized for the longest
        # method name ("direct translation", ~18 chars at 11 px).
        margin_l, margin_r = 64, 140
        margin_t, margin_b = 64, 52
        plot_w = self.width - margin_l - margin_r
        plot_h = self.height - margin_t - margin_b
        all_x = np.concatenate([s[1] for s in self._series])
        all_y = np.concatenate([s[2] for s in self._series])
        x_lo, x_hi = float(all_x.min()), float(all_x.max())
        if self._y_range is not None:
            y_lo, y_hi = self._y_range
        else:
            y_lo, y_hi = float(all_y.min()), float(all_y.max())
            pad = 0.08 * max(y_hi - y_lo, 1e-9)
            y_lo, y_hi = y_lo - pad, y_hi + pad
        if x_hi <= x_lo:
            x_hi = x_lo + 1.0
        if y_hi <= y_lo:
            y_hi = y_lo + 1.0

        def sx(x):
            return margin_l + (x - x_lo) / (x_hi - x_lo) * plot_w

        def sy(y):
            return margin_t + (y_hi - y) / (y_hi - y_lo) * plot_h

        return (margin_l, margin_t, plot_w, plot_h, x_lo, x_hi, y_lo, y_hi, sx, sy)

    def to_string(self) -> str:
        """Serialise the chart as an SVG document."""
        if not self._series:
            raise ValueError("chart has no series")
        (ml, mt, pw, ph, x_lo, x_hi, y_lo, y_hi, sx, sy) = self._layout()
        el: list[str] = []

        # Title and axis labels (ink tokens, never series colours).
        el.append(
            f'<text x="{ml}" y="24" font-size="15" font-weight="600" '
            f'fill="{_INK_PRIMARY}" font-family="sans-serif">{self.title}</text>'
        )
        el.append(
            f'<text x="{ml + pw / 2:.0f}" y="{self.height - 12}" font-size="12" '
            f'fill="{_INK_SECONDARY}" text-anchor="middle" '
            f'font-family="sans-serif">{self.x_label}</text>'
        )
        el.append(
            f'<text x="16" y="{mt + ph / 2:.0f}" font-size="12" '
            f'fill="{_INK_SECONDARY}" text-anchor="middle" '
            f'font-family="sans-serif" '
            f'transform="rotate(-90 16 {mt + ph / 2:.0f})">{self.y_label}</text>'
        )

        # Recessive grid + tick labels.
        for t in _nice_ticks(y_lo, y_hi):
            if not (y_lo - 1e-12 <= t <= y_hi + 1e-12):
                continue
            y = sy(t)
            el.append(
                f'<line x1="{ml}" y1="{y:.1f}" x2="{ml + pw}" y2="{y:.1f}" '
                f'stroke="{_GRID}" stroke-width="1"/>'
            )
            el.append(
                f'<text x="{ml - 8}" y="{y + 4:.1f}" font-size="11" '
                f'fill="{_INK_SECONDARY}" text-anchor="end" '
                f'font-family="sans-serif">{t:g}</text>'
            )
        for t in _nice_ticks(x_lo, x_hi):
            if not (x_lo - 1e-12 <= t <= x_hi + 1e-12):
                continue
            x = sx(t)
            el.append(
                f'<line x1="{x:.1f}" y1="{mt + ph}" x2="{x:.1f}" '
                f'y2="{mt + ph + 4}" stroke="{_AXIS}" stroke-width="1"/>'
            )
            el.append(
                f'<text x="{x:.1f}" y="{mt + ph + 18}" font-size="11" '
                f'fill="{_INK_SECONDARY}" text-anchor="middle" '
                f'font-family="sans-serif">{t:g}</text>'
            )
        # Axis line (baseline only; recessive).
        el.append(
            f'<line x1="{ml}" y1="{mt + ph}" x2="{ml + pw}" y2="{mt + ph}" '
            f'stroke="{_AXIS}" stroke-width="1"/>'
        )
        el.append(
            f'<line x1="{ml}" y1="{mt}" x2="{ml}" y2="{mt + ph}" '
            f'stroke="{_AXIS}" stroke-width="1"/>'
        )

        # Series: 2 px lines, 8 px markers, direct label at the last point.
        label_ys: list[float] = []
        for name, xs, ys, color in self._series:
            pts = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(xs, ys))
            el.append(
                f'<polyline points="{pts}" fill="none" stroke="{color}" '
                f'stroke-width="2" stroke-linejoin="round"/>'
            )
            for x, y in zip(xs, ys):
                el.append(
                    f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="4" '
                    f'fill="{color}" stroke="{_SURFACE}" stroke-width="2"/>'
                )
            # Direct label, nudged to avoid collisions with earlier labels.
            label_y = sy(float(ys[-1]))
            while any(abs(label_y - other) < 14 for other in label_ys):
                label_y += 14
            label_ys.append(label_y)
            el.append(
                f'<circle cx="{ml + pw + 10}" cy="{label_y - 4:.1f}" r="4" '
                f'fill="{color}"/>'
            )
            el.append(
                f'<text x="{ml + pw + 18}" y="{label_y:.1f}" font-size="11" '
                f'fill="{_INK_PRIMARY}" font-family="sans-serif">{name}</text>'
            )

        # Legend row under the title (identity never colour-alone: the
        # direct labels above repeat every name in ink).
        lx = ml
        for name, _, _, color in self._series:
            el.append(
                f'<rect x="{lx}" y="34" width="10" height="10" rx="2" '
                f'fill="{color}"/>'
            )
            el.append(
                f'<text x="{lx + 14}" y="43" font-size="11" '
                f'fill="{_INK_SECONDARY}" font-family="sans-serif">{name}</text>'
            )
            lx += 14 + 7 * len(name) + 18

        body = "\n".join(el)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="100%" height="100%" fill="{_SURFACE}"/>\n{body}\n</svg>\n'
        )

    def save(self, path) -> Path:
        """Write the chart to ``path`` and return it."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(self.to_string())
        return p
