"""Stress shapes (deep concavity) and the SVG transition animation."""

import numpy as np
import pytest

from repro.coverage import LloydConfig
from repro.foi import FieldOfInterest, ellipse_polygon, ring_with_gap, u_corridor
from repro.marching import MarchingConfig, MarchingPlanner
from repro.mesh import triangulate_foi
from repro.metrics import connectivity_report
from repro.harmonic import compute_disk_map
from repro.robots import RadioSpec, Swarm, straight_transition
from repro.viz import animate_transition

FAST = MarchingConfig(
    foi_target_points=260, lloyd=LloydConfig(grid_target=900, max_iterations=25)
)


class TestStressShapes:
    def test_u_corridor_valid(self):
        foi = u_corridor().scaled_to_area(120_000.0)
        assert foi.area == pytest.approx(120_000.0)
        assert not foi.outer.is_convex
        assert foi.outer.is_simple()

    def test_ring_with_gap_valid(self):
        foi = ring_with_gap().scaled_to_area(120_000.0)
        assert foi.outer.is_simple()
        assert not foi.has_holes  # the gap keeps it a topological disk

    def test_u_corridor_mesh_and_diskmap(self):
        foi = u_corridor().scaled_to_area(120_000.0)
        fm = triangulate_foi(foi, target_points=350)
        assert fm.mesh.is_topological_disk()
        dm = compute_disk_map(fm.mesh)
        assert dm.is_embedding()

    def test_ring_mesh_and_diskmap(self):
        foi = ring_with_gap().scaled_to_area(120_000.0)
        fm = triangulate_foi(foi, target_points=400)
        assert fm.mesh.is_topological_disk()
        dm = compute_disk_map(fm.mesh)
        assert dm.is_embedding()

    def test_march_into_u_corridor_keeps_guarantee(self):
        """The headline guarantee must survive a deeply concave target."""
        radio = RadioSpec.from_comm_range(80.0)
        m1 = FieldOfInterest(
            ellipse_polygon(1.0, 1.0, samples=32).scaled_to_area(120_000.0),
            name="m1",
        )
        swarm = Swarm.deploy_lattice(m1, 49, radio)
        m2 = u_corridor().scaled_to_area(110_000.0)
        m2 = m2.translated(m1.centroid + np.array([1000.0, 0.0]) - m2.centroid)
        result = MarchingPlanner(FAST).plan(swarm, m2)
        rep = connectivity_report(
            result.trajectory, radio.comm_range, result.boundary_anchors
        )
        assert rep.connected
        assert m2.contains(result.final_positions).all()


class TestAnimation:
    def test_animated_svg_written(self, tmp_path):
        pos = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 8.0]])
        traj = straight_transition(pos, pos + [50.0, 10.0])
        foi = FieldOfInterest([(40, -10), (70, -10), (70, 25), (40, 25)])
        out = animate_transition(traj, [foi], tmp_path / "anim.svg", samples=10)
        text = out.read_text()
        assert text.count("<animate ") == 6  # cx + cy per robot
        assert 'repeatCount="indefinite"' in text
        assert "keyTimes" in text

    def test_keyframe_counts(self, tmp_path):
        pos = np.array([[0.0, 0.0]])
        traj = straight_transition(pos, pos + [10.0, 0.0])
        foi = FieldOfInterest([(0, -5), (15, -5), (15, 5), (0, 5)])
        out = animate_transition(traj, [foi], tmp_path / "a.svg", samples=7)
        text = out.read_text()
        # 7 keyTimes entries -> 6 separators in each values list.
        values = text.split('values="')[1].split('"')[0]
        assert values.count(";") == 6

    def test_invalid_params(self, tmp_path):
        pos = np.array([[0.0, 0.0]])
        traj = straight_transition(pos, pos)
        foi = FieldOfInterest([(0, 0), (1, 0), (1, 1), (0, 1)])
        with pytest.raises(ValueError):
            animate_transition(traj, [foi], tmp_path / "x.svg", duration_seconds=0)
        with pytest.raises(ValueError):
            animate_transition(traj, [foi], tmp_path / "x.svg", samples=1)
