"""Consistent-hash routing of jobs onto shard workers.

The fleet version of the planning service runs N shard workers, each
owning a private :class:`~repro.service.jobs.JobQueue` and its own
dispatcher pool.  Every request is routed by its *content address*
(the job id, a :func:`repro.exec.stable_hash` of the canonical
request), so the same request always lands on the same shard no matter
which frontend connection carried it - which is exactly what keeps
deduplication working across a fleet: identical submissions collapse
onto one queued job on one shard, and everything else about the PR-3
dedup contract carries over unchanged.

The router is a classic hash ring with virtual nodes: each shard owns
``replicas`` points on a 64-bit ring, and a job id is owned by the
first shard point at or after its own ring position.  Properties the
service relies on (and the tests pin):

* **Deterministic** - ``shard_for`` is a pure function of
  ``(job_id, shards, replicas)``; two processes or two runs always
  agree, so routing never has to be persisted.
* **Balanced** - virtual nodes keep the per-shard key share close to
  ``1/shards`` without any coordination.
* **Consistent** - growing the fleet from N to N+1 shards only moves
  the keys won by the new shard's ring points; keys that stay put keep
  their shard, so warm per-shard state survives a resize.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ServiceError

__all__ = ["ShardRouter", "ring_point"]


def ring_point(data: str) -> int:
    """Position of ``data`` on the 64-bit hash ring (stable across runs)."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """Maps job ids to shard indices via a virtual-node hash ring.

    Parameters
    ----------
    shards : int
        Number of shard workers in the fleet (>= 1).
    replicas : int
        Virtual nodes per shard; more replicas smooth the balance at
        the cost of a slightly larger ring (64 is plenty for the
        single-digit shard counts a service process runs).
    """

    def __init__(self, shards: int, replicas: int = 64) -> None:
        if shards < 1:
            raise ServiceError("shard count must be positive")
        if replicas < 1:
            raise ServiceError("replicas per shard must be positive")
        self.shards = shards
        self.replicas = replicas
        ring = [
            (ring_point(f"repro-shard:{shard}:{replica}"), shard)
            for shard in range(shards)
            for replica in range(replicas)
        ]
        ring.sort()
        self._points = [point for point, _ in ring]
        self._owners = [shard for _, shard in ring]

    def shard_for(self, job_id: str) -> int:
        """The shard index owning ``job_id`` (first point at/after it)."""
        index = bisect.bisect_left(self._points, ring_point(job_id))
        if index == len(self._points):  # wrap around the ring
            index = 0
        return self._owners[index]

    def partition(self, job_ids: "list[str]") -> dict[int, list[str]]:
        """Group job ids by owning shard (preserving input order).

        Crash recovery replays one fleet-wide journal and must hand each
        restored job back to the shard that owns its content address -
        the same deterministic routing a fresh submission would get, so
        dedup keeps working against recovered jobs.
        """
        out: dict[int, list[str]] = {}
        for job_id in job_ids:
            out.setdefault(self.shard_for(job_id), []).append(job_id)
        return out
