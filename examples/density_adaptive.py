"""Density-adaptive deployment (paper Sec. IV-E / Fig. 6).

"We can add the temperature into the density function when computing
the centroid of a Voronoi region, so more robots will be deployed near
the center of a fire with higher temperature."

The swarm marches from M1 into the flower-pond FoI of Fig. 2(d) twice:
once with a uniform density and once with a density that grows toward
the hole ("the closer to the hole, the more mobile robots are needed").
The example reports how many robots end up within one communication
range of the hole in each case and writes both deployments as SVG.

Run:  python examples/density_adaptive.py
"""

from __future__ import annotations

import numpy as np

from repro import MarchingConfig, MarchingPlanner, RadioSpec, Swarm
from repro.coverage import hole_proximity_density
from repro.foi import m1_base, m2_scenario3
from repro.viz import render_deployment


def robots_near_hole(foi, positions, radius: float) -> int:
    return int((foi.hole_distances(positions) <= radius).sum())


def main() -> None:
    radio = RadioSpec.from_comm_range(80.0)
    m1 = m1_base()
    swarm = Swarm.deploy_lattice(m1, 144, radio)
    m2 = m2_scenario3()
    m2 = m2.translated(m1.centroid + np.array([1600.0, 0.0]) - m2.centroid)

    planner = MarchingPlanner(MarchingConfig(method="a"))

    uniform = planner.plan(swarm, m2)
    hot = planner.plan(
        swarm, m2,
        density=hole_proximity_density(m2, sigma=120.0, peak=6.0),
    )

    r = radio.comm_range
    near_uniform = robots_near_hole(m2, uniform.final_positions, r)
    near_hot = robots_near_hole(m2, hot.final_positions, r)
    print(f"Robots within {r:.0f} m of the hot hole:")
    print(f"  uniform density       : {near_uniform:3d} / {swarm.size}")
    print(f"  hole-proximity density: {near_hot:3d} / {swarm.size}")
    print(f"  concentration gain    : {near_hot / max(near_uniform, 1):.2f}x")

    for name, result in (("uniform", uniform), ("hot", hot)):
        path = f"examples/output/density_{name}.svg"
        render_deployment(
            m2, result.final_positions, r,
            initial_links=result.links.links, path=path,
        )
        print(f"  wrote {path}")


if __name__ == "__main__":
    main()
