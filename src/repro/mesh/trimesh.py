"""Triangle-mesh data structure with boundary-loop extraction.

The marching pipeline manipulates two meshes: the triangulation ``T``
extracted from the swarm's connectivity graph and the grid
triangulation of the target FoI.  Both need the same queries: vertex
adjacency, boundary edges ("a boundary edge incidents with only one
triangle", Sec. III-B), ordered boundary loops, and structural
validation.  :class:`TriMesh` provides them over plain numpy arrays.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from repro.errors import MeshError
from repro.geometry.polygon import signed_area
from repro.geometry.vec import as_points

__all__ = ["TriMesh", "edges_of_triangles"]


def edges_of_triangles(triangles: np.ndarray) -> np.ndarray:
    """Unique undirected edges ``(u, v)`` with ``u < v`` of a triangle array."""
    tris = np.asarray(triangles, dtype=int)
    if tris.size == 0:
        return np.zeros((0, 2), dtype=int)
    e = np.vstack([tris[:, [0, 1]], tris[:, [1, 2]], tris[:, [2, 0]]])
    e.sort(axis=1)
    return np.unique(e, axis=0)


class TriMesh:
    """An immutable 2-D triangle mesh.

    Parameters
    ----------
    vertices : (n, 2) array-like
        Vertex coordinates.
    triangles : (m, 3) int array-like
        Vertex indices; triangles are re-oriented CCW on construction.

    Raises
    ------
    MeshError
        On out-of-range indices, repeated vertices within a triangle,
        or (numerically) degenerate triangles.
    """

    def __init__(self, vertices, triangles) -> None:
        self.vertices = as_points(vertices)
        tris = np.asarray(triangles, dtype=int)
        if tris.size == 0:
            tris = tris.reshape(0, 3)
        if tris.ndim != 2 or tris.shape[1] != 3:
            raise MeshError(f"triangles must have shape (m, 3), got {tris.shape}")
        if len(tris) and (tris.min() < 0 or tris.max() >= len(self.vertices)):
            raise MeshError("triangle indices out of range")
        if len(tris):
            dup = (
                (tris[:, 0] == tris[:, 1])
                | (tris[:, 1] == tris[:, 2])
                | (tris[:, 0] == tris[:, 2])
            )
            if dup.any():
                t = tris[int(np.flatnonzero(dup)[0])]
                raise MeshError(f"triangle {t.tolist()} repeats a vertex")
        # Orient all triangles counter-clockwise.
        if len(tris):
            a = self.vertices[tris[:, 0]]
            b = self.vertices[tris[:, 1]]
            c = self.vertices[tris[:, 2]]
            area2 = (b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1]) - (b[:, 1] - a[:, 1]) * (
                c[:, 0] - a[:, 0]
            )
            scale = max(1.0, float(np.abs(self.vertices).max()) ** 2)
            if np.any(np.abs(area2) < 1e-14 * scale):
                bad = int(np.argmin(np.abs(area2)))
                raise MeshError(f"triangle {tris[bad].tolist()} is degenerate")
            flip = area2 < 0
            tris = tris.copy()
            tris[flip] = tris[flip][:, ::-1]
        self.triangles = tris
        self.vertices.setflags(write=False)
        self.triangles.setflags(write=False)

    # ------------------------------------------------------------------
    # Counts
    # ------------------------------------------------------------------

    @property
    def vertex_count(self) -> int:
        return len(self.vertices)

    @property
    def triangle_count(self) -> int:
        return len(self.triangles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TriMesh(V={self.vertex_count}, E={len(self.edges)}, "
            f"F={self.triangle_count})"
        )

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    @cached_property
    def edges(self) -> np.ndarray:
        """Unique undirected edges, each as ``(u, v)`` with ``u < v``."""
        return edges_of_triangles(self.triangles)

    @cached_property
    def edge_triangles(self) -> dict[tuple[int, int], list[int]]:
        """Mapping from undirected edge to the indices of incident triangles."""
        mapping: dict[tuple[int, int], list[int]] = {}
        for t_idx, (a, b, c) in enumerate(self.triangles):
            for u, v in ((a, b), (b, c), (c, a)):
                key = (u, v) if u < v else (v, u)
                mapping.setdefault(key, []).append(t_idx)
        return mapping

    @cached_property
    def adjacency_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Vertex adjacency in CSR form: ``(indptr, indices)``.

        ``indices[indptr[v]:indptr[v + 1]]`` are vertex ``v``'s
        neighbours in ascending order; the harmonic solvers consume
        this directly so assembling a Laplacian never loops over
        vertices in Python.
        """
        n = self.vertex_count
        e = self.edges
        indptr = np.zeros(n + 1, dtype=np.int64)
        if len(e) == 0:
            return indptr, np.zeros(0, dtype=np.int64)
        src = np.concatenate([e[:, 0], e[:, 1]])
        dst = np.concatenate([e[:, 1], e[:, 0]])
        order = np.lexsort((dst, src))
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        return indptr, dst[order]

    @cached_property
    def adjacency(self) -> list[list[int]]:
        """Per-vertex sorted list of neighbouring vertex indices."""
        indptr, indices = self.adjacency_csr
        return [
            indices[indptr[v]:indptr[v + 1]].tolist()
            for v in range(self.vertex_count)
        ]

    def neighbors(self, v: int) -> list[int]:
        """Neighbouring vertex indices of vertex ``v``."""
        return self.adjacency[v]

    def degree(self, v: int) -> int:
        return len(self.adjacency[v])

    @cached_property
    def vertex_triangles(self) -> list[list[int]]:
        """Per-vertex list of incident triangle indices."""
        vt: list[list[int]] = [[] for _ in range(self.vertex_count)]
        for t_idx, tri in enumerate(self.triangles):
            for v in tri:
                vt[int(v)].append(t_idx)
        return vt

    # ------------------------------------------------------------------
    # Boundary
    # ------------------------------------------------------------------

    @cached_property
    def boundary_edges(self) -> list[tuple[int, int]]:
        """Edges incident to exactly one triangle."""
        return [e for e, ts in self.edge_triangles.items() if len(ts) == 1]

    @cached_property
    def boundary_vertices(self) -> np.ndarray:
        """Sorted indices of vertices on any boundary loop."""
        verts: set[int] = set()
        for u, v in self.boundary_edges:
            verts.add(u)
            verts.add(v)
        return np.array(sorted(verts), dtype=int)

    @cached_property
    def interior_vertices(self) -> np.ndarray:
        """Sorted indices of vertices not on any boundary."""
        b = set(self.boundary_vertices.tolist())
        return np.array([v for v in range(self.vertex_count) if v not in b], dtype=int)

    @cached_property
    def boundary_loops(self) -> list[list[int]]:
        """Closed boundary loops as ordered vertex-index lists.

        Each loop is ordered by walking boundary edges; the first loop
        returned is the outer boundary (largest absolute enclosed
        area), the rest are hole loops.

        Raises
        ------
        MeshError
            If boundary edges do not form disjoint simple cycles (e.g.
            a vertex with more than two incident boundary edges, which
            indicates a non-manifold pinch).
        """
        incident: dict[int, list[int]] = {}
        for u, v in self.boundary_edges:
            incident.setdefault(u, []).append(v)
            incident.setdefault(v, []).append(u)
        for v, nbrs in incident.items():
            if len(nbrs) != 2:
                raise MeshError(
                    f"boundary vertex {v} has {len(nbrs)} boundary edges; "
                    "mesh is pinched (non-manifold boundary)"
                )
        loops: list[list[int]] = []
        visited: set[int] = set()
        for start in sorted(incident):
            if start in visited:
                continue
            loop = [start]
            visited.add(start)
            prev, cur = None, start
            while True:
                nxt_candidates = [w for w in incident[cur] if w != prev]
                nxt = nxt_candidates[0]
                if nxt == start:
                    break
                loop.append(nxt)
                visited.add(nxt)
                prev, cur = cur, nxt
            loops.append(loop)
        loops.sort(
            key=lambda lp: abs(signed_area(self.vertices[np.array(lp)])), reverse=True
        )
        return loops

    @cached_property
    def outer_boundary_loop(self) -> list[int]:
        """The outer boundary loop, oriented counter-clockwise."""
        if not self.boundary_loops:
            raise MeshError("mesh has no boundary (empty or closed surface)")
        loop = self.boundary_loops[0]
        if signed_area(self.vertices[np.array(loop)]) < 0:
            loop = loop[::-1]
        return loop

    @property
    def hole_loops(self) -> list[list[int]]:
        """Boundary loops other than the outer one."""
        return self.boundary_loops[1:]

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def euler_characteristic(self) -> int:
        """``V - E + F`` (2 minus twice genus minus boundary count, +1 for disk)."""
        return self.vertex_count - len(self.edges) + self.triangle_count

    def is_topological_disk(self) -> bool:
        """Whether the mesh is a disk: connected, one boundary loop, Euler 1."""
        if self.triangle_count == 0:
            return False
        return (
            self.euler_characteristic == 1
            and len(self.boundary_loops) == 1
            and self.is_connected()
        )

    def is_connected(self) -> bool:
        """Whether the vertex-edge graph is a single component."""
        if self.vertex_count == 0:
            return True
        seen = np.zeros(self.vertex_count, dtype=bool)
        stack = [0]
        seen[0] = True
        count = 1
        adj = self.adjacency
        while stack:
            v = stack.pop()
            for w in adj[v]:
                if not seen[w]:
                    seen[w] = True
                    count += 1
                    stack.append(w)
        return count == self.vertex_count

    # ------------------------------------------------------------------
    # Derived meshes
    # ------------------------------------------------------------------

    def with_vertices(self, new_vertices) -> "TriMesh":
        """Same connectivity with replaced vertex coordinates."""
        new_v = as_points(new_vertices)
        if len(new_v) != self.vertex_count:
            raise MeshError(
                f"expected {self.vertex_count} vertices, got {len(new_v)}"
            )
        return TriMesh(new_v, self.triangles)

    def submesh(self, triangle_indices: Iterable[int]) -> tuple["TriMesh", np.ndarray]:
        """Mesh restricted to the given triangles.

        Returns
        -------
        (TriMesh, (k,) int ndarray)
            The submesh and, for each of its vertices, the index of the
            originating vertex in this mesh.
        """
        t_idx = np.asarray(sorted(set(int(i) for i in triangle_indices)), dtype=int)
        if len(t_idx) == 0:
            raise MeshError("submesh needs at least one triangle")
        tris = self.triangles[t_idx]
        used = np.unique(tris)
        remap = -np.ones(self.vertex_count, dtype=int)
        remap[used] = np.arange(len(used))
        return TriMesh(self.vertices[used], remap[tris]), used

    def largest_component(self) -> tuple["TriMesh", np.ndarray]:
        """The edge-connected triangle component with the most triangles."""
        if self.triangle_count == 0:
            raise MeshError("largest_component of an empty mesh")
        parent = list(range(self.triangle_count))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for ts in self.edge_triangles.values():
            for other in ts[1:]:
                ra, rb = find(ts[0]), find(other)
                if ra != rb:
                    parent[rb] = ra
        roots = [find(i) for i in range(self.triangle_count)]
        counts: dict[int, int] = {}
        for r in roots:
            counts[r] = counts.get(r, 0) + 1
        best_root = max(counts, key=lambda r: counts[r])
        keep = [i for i, r in enumerate(roots) if r == best_root]
        return self.submesh(keep)

    def edge_lengths(self) -> np.ndarray:
        """Length of every edge, aligned with :attr:`edges`."""
        e = self.edges
        d = self.vertices[e[:, 0]] - self.vertices[e[:, 1]]
        return np.hypot(d[:, 0], d[:, 1])

    def triangle_areas(self) -> np.ndarray:
        """Unsigned area of every triangle."""
        a = self.vertices[self.triangles[:, 0]]
        b = self.vertices[self.triangles[:, 1]]
        c = self.vertices[self.triangles[:, 2]]
        return 0.5 * np.abs(
            (b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1])
            - (b[:, 1] - a[:, 1]) * (c[:, 0] - a[:, 0])
        )

    def ordered_boundary_positions(self, loop: Sequence[int] | None = None) -> np.ndarray:
        """Coordinates of a boundary loop (default: outer) in loop order."""
        lp = self.outer_boundary_loop if loop is None else list(loop)
        return self.vertices[np.array(lp, dtype=int)]
