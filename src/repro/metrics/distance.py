"""Moving-distance metrics (paper Sec. II-A).

``D = sum_i d_i`` where ``d_i`` is the distance robot ``i`` actually
travels - including hole detours and the Lloyd adjustment steps, as in
the paper's evaluation ("we have included the adjustment cost ... into
our methods").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.vec import as_points
from repro.robots.motion import SwarmTrajectory

__all__ = ["DistanceReport", "total_moving_distance", "distance_report", "straight_line_lower_bound"]


@dataclass(frozen=True)
class DistanceReport:
    """Per-robot and aggregate moving distances for one transition."""

    per_robot: np.ndarray
    total: float
    mean: float
    max: float

    def ratio_to(self, baseline_total: float) -> float:
        """``D / D_baseline`` - the normalised metric plotted in Fig. 3."""
        if baseline_total <= 0:
            raise ValueError("baseline distance must be positive")
        return self.total / baseline_total


def total_moving_distance(trajectory: SwarmTrajectory) -> float:
    """The paper's ``D`` for a trajectory."""
    return trajectory.total_distance()


def distance_report(trajectory: SwarmTrajectory) -> DistanceReport:
    """Full distance statistics for a trajectory."""
    per_robot = trajectory.path_lengths()
    return DistanceReport(
        per_robot=per_robot,
        total=float(per_robot.sum()),
        mean=float(per_robot.mean()),
        max=float(per_robot.max()),
    )


def straight_line_lower_bound(starts, targets) -> float:
    """Sum of straight-line distances - a lower bound on any plan's ``D``."""
    p = as_points(starts)
    q = as_points(targets)
    d = q - p
    return float(np.hypot(d[:, 0], d[:, 1]).sum())
