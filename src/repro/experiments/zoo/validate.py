"""Validation of generated FoIs: simple, positive area, deployable.

Every zoo shape (and, through :func:`repro.experiments.generator.
random_foi`, every fuzz shape) passes through :func:`validate_foi`
before it reaches the planner, so a campaign failure is always a
planner/metrics counterexample - never a degenerate polygon slipping
through.  The hole-clearance helpers live here too: both the zoo and
the blob fuzzer must keep holes away from the outer boundary or the
free region pinches into near-disconnection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError, ScenarioError
from repro.foi.region import FieldOfInterest
from repro.geometry.polygon import Polygon
from repro.robots.robot import RadioSpec
from repro.robots.swarm import Swarm

__all__ = [
    "ValidationReport",
    "hole_clearance",
    "shrink_hole_to_clearance",
    "validate_foi",
    "assert_deployable",
]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of the structural checks on one region.

    Attributes
    ----------
    checks : dict
        ``check name -> bool`` for every check run.
    detail : str
        Human-readable note on the first failure (empty when ok).
    """

    checks: dict[str, bool]
    detail: str = ""

    @property
    def ok(self) -> bool:
        return all(self.checks.values())

    @property
    def failures(self) -> list[str]:
        return [name for name, passed in self.checks.items() if not passed]


def hole_clearance(outer: Polygon, hole: Polygon) -> float:
    """Smallest distance from a hole vertex to the outer boundary.

    Returns ``-inf`` when any hole vertex escapes the outer polygon
    (negative clearance - the hole pinches through the boundary).
    """
    if not bool(np.all(outer.contains(hole.vertices))):
        return float("-inf")
    return float(outer.boundary_distances(hole.vertices).min())


def shrink_hole_to_clearance(
    outer: Polygon,
    hole: Polygon,
    clearance: float,
    min_scale: float = 0.3,
) -> Polygon | None:
    """Shrink ``hole`` about its centroid until it clears the boundary.

    Returns the hole unchanged when it already satisfies ``clearance``,
    a scaled copy when a factor in ``[min_scale, 1)`` suffices, and
    ``None`` when even the smallest permitted copy still violates the
    clearance (the caller should reject the draw rather than emit a
    pinched region).
    """
    if clearance < 0:
        raise ScenarioError(f"hole clearance must be >= 0, got {clearance}")
    if hole_clearance(outer, hole) >= clearance:
        return hole
    lo, hi = min_scale, 1.0
    best: Polygon | None = None
    for _ in range(24):
        mid = 0.5 * (lo + hi)
        candidate = hole.scaled(mid, about=hole.centroid)
        if hole_clearance(outer, candidate) >= clearance:
            best, lo = candidate, mid
        else:
            hi = mid
    return best


def validate_foi(
    foi: FieldOfInterest,
    min_clearance: float = 0.0,
    max_hole_fraction: float = 0.6,
) -> ValidationReport:
    """Structural validation: simple boundaries, positive free area,
    contained and mutually disjoint holes with ``min_clearance``.

    Deployability is a separate, costlier check
    (:func:`assert_deployable`): structural validity is a property of
    the region alone, deployability also depends on swarm size and
    radio range.
    """
    checks: dict[str, bool] = {}
    detail = ""
    checks["outer_simple"] = foi.outer.is_simple()
    checks["holes_simple"] = all(h.is_simple() for h in foi.holes)
    checks["free_area_positive"] = foi.area > 0
    hole_area = sum(h.area for h in foi.holes)
    checks["hole_fraction_bounded"] = hole_area <= max_hole_fraction * foi.outer.area
    clear_ok = True
    for i, hole in enumerate(foi.holes):
        c = hole_clearance(foi.outer, hole)
        if c < min_clearance:
            clear_ok = False
            detail = (
                f"hole {i} clearance {c:.4g} below required {min_clearance:.4g}"
            )
            break
    checks["hole_clearance"] = clear_ok
    disjoint = True
    for i in range(len(foi.holes)):
        for j in range(i + 1, len(foi.holes)):
            a, b = foi.holes[i], foi.holes[j]
            if bool(np.any(a.contains(b.vertices))) or bool(
                np.any(b.contains(a.vertices))
            ):
                disjoint = False
                detail = detail or f"holes {i} and {j} intersect"
                break
        if not disjoint:
            break
    checks["holes_disjoint"] = disjoint
    if not detail and not all(checks.values()):
        detail = f"failed: {[k for k, v in checks.items() if not v]}"
    return ValidationReport(checks=checks, detail=detail)


def assert_deployable(
    foi: FieldOfInterest,
    robot_count: int = 25,
    comm_range: float = 80.0,
    spacing_factor: float = 0.6,
) -> Swarm:
    """Prove the region is lattice-deployable by deploying into it.

    Scales a copy of the region so ``robot_count`` robots fit at
    ``spacing_factor * comm_range`` lattice pitch (the experiments'
    sizing rule), then runs the real lattice deployment.  Returns the
    deployed swarm; raises :class:`ScenarioError` when the deployment
    fails or comes out disconnected.
    """
    radio = RadioSpec.from_comm_range(comm_range)
    target_spacing = spacing_factor * comm_range
    area = float(np.sqrt(3.0) / 2.0 * robot_count * target_spacing**2)
    scaled = foi.scaled_to_area(area)
    try:
        swarm = Swarm.deploy_lattice(scaled, robot_count, radio)
    except GeometryError as exc:
        raise ScenarioError(
            f"{foi.name}: not lattice-deployable at {robot_count} robots "
            f"({exc})"
        ) from exc
    if not swarm.is_connected():
        raise ScenarioError(
            f"{foi.name}: lattice deployment starts disconnected"
        )
    return swarm
