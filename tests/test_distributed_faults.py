"""Fault-injection tests: message loss and the reliable flooding variant."""

import pytest

from repro.distributed import (
    SyncNetwork,
    flood_aggregate,
    reliable_flood_aggregate,
)
from repro.distributed.protocols.flooding import FloodSumNode
from repro.errors import ProtocolError
from repro.network import adjacency_from_edges


def line_adjacency(n):
    return adjacency_from_edges(n, [(i, i + 1) for i in range(n - 1)])


class TestRuntimeLoss:
    def test_invalid_loss_rate(self):
        with pytest.raises(ProtocolError):
            SyncNetwork([], [], loss_rate=1.0)

    def test_loss_is_counted(self):
        n = 8
        adj = line_adjacency(n)
        nodes = [FloodSumNode(i, float(i), n) for i in range(n)]
        net = SyncNetwork(nodes, adj, loss_rate=0.5, seed=3)
        try:
            net.run(max_rounds=64)
        except ProtocolError:
            pass  # livelock guard may trip; we only inspect the counters
        assert net.dropped_messages > 0

    def test_zero_loss_drops_nothing(self):
        n = 6
        adj = line_adjacency(n)
        out = flood_aggregate([1.0] * n, adj)
        assert out == [float(n)] * n

    def test_loss_deterministic_per_seed(self):
        n = 8
        adj = line_adjacency(n)

        def run(seed):
            nodes = [FloodSumNode(i, float(i), n) for i in range(n)]
            net = SyncNetwork(nodes, adj, loss_rate=0.3, seed=seed)
            try:
                net.run(max_rounds=40)
            except ProtocolError:
                pass
            return net.dropped_messages, [
                len(node.state["records"]) for node in nodes
            ]

        assert run(7) == run(7)


class TestPlainFloodUnderLoss:
    def test_single_shot_flooding_can_lose_records(self):
        """The motivation for the reliable variant: with one-shot
        broadcasts, a dropped message is gone forever, so some seed
        leaves some node with an incomplete record set."""
        n = 10
        adj = line_adjacency(n)
        failures = 0
        for seed in range(10):
            nodes = [FloodSumNode(i, float(i), n) for i in range(n)]
            net = SyncNetwork(nodes, adj, loss_rate=0.3, seed=seed)
            try:
                net.run(max_rounds=200)
            except ProtocolError:
                failures += 1
                continue
            if any(len(node.state["records"]) < n for node in nodes):
                failures += 1
        assert failures > 0


class TestReliableFlood:
    def test_matches_plain_without_loss(self):
        n = 7
        adj = line_adjacency(n)
        values = [float(i * i) for i in range(n)]
        assert reliable_flood_aggregate(values, adj) == flood_aggregate(values, adj)

    @pytest.mark.parametrize("loss", [0.1, 0.3])
    def test_survives_message_loss(self, loss):
        n = 10
        adj = line_adjacency(n)
        values = [float(i) for i in range(n)]
        out = reliable_flood_aggregate(values, adj, loss_rate=loss, seed=11)
        assert out == [sum(values)] * n

    def test_max_combiner_under_loss(self):
        n = 8
        adj = line_adjacency(n)
        out = reliable_flood_aggregate(
            [3.0, 9.0, 1.0, 4.0, 7.0, 2.0, 8.0, 5.0], adj,
            combine=max, loss_rate=0.2, seed=5,
        )
        assert out == [9.0] * n

    def test_extreme_loss_raises_cleanly(self):
        n = 6
        adj = line_adjacency(n)
        with pytest.raises(ProtocolError):
            reliable_flood_aggregate(
                [1.0] * n, adj, loss_rate=0.95, seed=1, max_rounds=30
            )
