"""Plain-text rendering of the paper's tables and figure series.

The benchmark harness prints these so a run's stdout contains the same
rows the paper reports (Table I, the distance-ratio and stable-link
series of Figs. 3-5).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.experiments.harness import ScenarioRun, SweepResult

__all__ = ["format_table", "render_sweep", "render_table1"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as a fixed-width text table with a header rule."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))
    rule = "-+-".join("-" * w for w in widths)
    lines = [fmt(headers), rule]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_sweep(sweep: SweepResult, methods: Sequence[str]) -> str:
    """Fig. 3-style series: distance ratio and stable link ratio per method."""
    headers = ["sep (x r_c)"]
    for m in methods:
        headers.append(f"D/{'D_H'} {m}")
    for m in methods:
        headers.append(f"L {m}")
    rows = []
    for point in sweep.points:
        row = [f"{point.separation_factor:g}"]
        row.extend(f"{point.distance_ratio[m]:.3f}" for m in methods)
        row.extend(f"{point.stable_link_ratio[m]:.3f}" for m in methods)
        rows.append(row)
    title = f"Scenario {sweep.scenario_id}: metrics vs M1-M2 separation"
    return title + "\n" + format_table(headers, rows)


def render_table1(runs: Mapping[int, ScenarioRun], methods: Sequence[str]) -> str:
    """Table I: global connectivity Y/N per scenario and method."""
    headers = ["Scenario"] + list(methods)
    rows = []
    for scenario_id in sorted(runs):
        run = runs[scenario_id]
        row = [f"Scenario {scenario_id}"]
        for m in methods:
            row.append(run.evaluations[m].connectivity_flag)
        rows.append(row)
    return "TABLE I. GLOBAL CONNECTIVITY DURING TRANSITION\n" + format_table(
        headers, rows
    )
