"""Streaming missions: online replanning against moving targets.

A mission is a seeded sequence of target FoIs - the base zoo scenario
plus per-epoch drift/deform motion - executed as one long-running job.
:class:`MissionRunner` marches the swarm, replans at every epoch
boundary (translated targets are disk-map cache hits, deformed targets
genuine re-solves), composes optional crash faults, and produces a
canonical byte-stable mission document plus streamed
``epoch``/``plan_diff``/``recovery`` progress events.

With a ``checkpoint_dir``, :class:`MissionCheckpoint` commits every
completed epoch durably, so a killed process resumes from the boundary
- and the resumed document stays byte-identical to an uninterrupted
run.  An ``interrupt`` callable turns a service drain into a
checkpoint-and-release (:class:`~repro.errors.MissionInterrupted`)
instead of lost work.
"""

from repro.missions.checkpoint import MissionCheckpoint, checkpoint_key
from repro.missions.diff import PlanDiff, plan_diff
from repro.missions.spec import MOTIONS, MissionConfig, MissionSpec
from repro.missions.targets import mission_targets
from repro.missions.runner import MissionRunner, run_mission

__all__ = [
    "MOTIONS",
    "MissionCheckpoint",
    "MissionConfig",
    "MissionRunner",
    "MissionSpec",
    "PlanDiff",
    "checkpoint_key",
    "mission_targets",
    "plan_diff",
    "run_mission",
]
