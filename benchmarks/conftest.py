"""Benchmark-suite configuration.

Benchmarks regenerate the paper's tables and figures; each prints its
rows to stdout (run pytest with ``-s`` or check the captured output)
and times the underlying computation once via ``benchmark.pedantic`` -
these are experiment harnesses, not micro-benchmarks, so a single round
is the honest measurement.
"""

import sys
from pathlib import Path

# Allow `import _shared` from sibling benchmark modules regardless of
# how pytest sets up sys.path (rootdir vs benchmarks/).
sys.path.insert(0, str(Path(__file__).parent))
